#!/usr/bin/env python
"""Anomaly detection in a dynamic graph — one of the applications the
paper's introduction motivates.

Scenario: a communication network evolves normally, but at a known
snapshot a small set of vertices is compromised and starts forming an
abnormal clique while rewriting its features.  We detect the compromised
vertices by scoring how far each vertex's DGNN embedding moves between
consecutive snapshots — and we run the DGNN with TaGNN's topology-aware
engine, so the detector inherits all of its savings.

The example shows a practical subtlety: the similarity-aware skipping
never skips the anomalous vertices (their similarity scores crash), so
the approximation is *detection-preserving* by construction.

Run:  python examples/anomaly_detection.py
"""

import numpy as np

from repro.engine import ConcurrentEngine
from repro.graphs import CSRSnapshot, DynamicGraph, load_dataset
from repro.models import make_model
from repro.skipping import CellUpdateMode

ANOMALY_SNAPSHOT = 5
NUM_ANOMALOUS = 12


def inject_anomaly(graph: DynamicGraph, at: int, k: int, seed: int = 7):
    """Return (new_graph, anomalous_ids): from snapshot ``at`` onward,
    ``k`` random vertices form a clique and get shifted features."""
    rng = np.random.default_rng(seed)
    present = np.flatnonzero(graph[at].present)
    bad = rng.choice(present, size=k, replace=False)
    snapshots = list(graph.snapshots[:at])
    for t in range(at, graph.num_snapshots):
        snap = graph[t]
        edges = snap.edge_array()
        clique = np.array(
            [(u, v) for u in bad for v in bad if u < v], dtype=np.int64
        )
        feats = snap.features.copy()
        feats[bad] += 3.0  # feature shift
        merged = np.concatenate([edges, clique, clique[:, ::-1]])
        snapshots.append(
            CSRSnapshot.from_edges(
                graph.num_vertices, merged, feats,
                present=snap.present.copy(), undirected=False,
            )
        )
    return DynamicGraph(snapshots, name=f"{graph.name}+anomaly"), np.sort(bad)


def main() -> None:
    base = load_dataset("GT", num_snapshots=8)
    graph, anomalous = inject_anomaly(base, ANOMALY_SNAPSHOT, NUM_ANOMALOUS)
    print(f"injected a {NUM_ANOMALOUS}-vertex anomaly at snapshot {ANOMALY_SNAPSHOT}")

    model = make_model("GC-LSTM", graph.dim, hidden_dim=32, seed=1)
    result = ConcurrentEngine(model, window_size=4).run(graph)
    print(
        f"inference done: {result.metrics.skip_ratio():.1%} of cell updates "
        f"skipped, {result.metrics.cell_macs_saved:,} cell MACs saved"
    )

    # anomaly score: embedding displacement across the anomaly boundary
    h_before = result.outputs[ANOMALY_SNAPSHOT - 1]
    h_after = result.outputs[ANOMALY_SNAPSHOT]
    score = np.linalg.norm(h_after - h_before, axis=1)
    score[~graph[ANOMALY_SNAPSHOT].present] = 0.0

    top = np.argsort(-score)[: 2 * NUM_ANOMALOUS]
    hits = len(np.intersect1d(top, anomalous))
    recall = hits / NUM_ANOMALOUS
    print(
        f"\ntop-{2 * NUM_ANOMALOUS} displacement scores contain "
        f"{hits}/{NUM_ANOMALOUS} injected anomalies (recall {recall:.0%})"
    )

    # the skipping policy never skipped the anomalous vertices at the
    # anomaly snapshot: their theta collapsed, forcing full updates.
    # Decisions exist only for non-refresh snapshots (the first snapshot
    # of each window takes the unconditional full update), so map the
    # anomaly snapshot to its decision index.
    window = 4
    decided_snapshots = [
        t for t in range(graph.num_snapshots) if t % window != 0
    ]
    d_at = result.extra["decisions"][decided_snapshots.index(ANOMALY_SNAPSHOT)]
    skipped = set(d_at.rows(CellUpdateMode.SKIP).tolist())
    leaked = skipped.intersection(anomalous.tolist())
    print(f"anomalous vertices skipped at the anomaly step: {len(leaked)} (want 0)")

    assert recall >= 0.75, "detector should find most injected anomalies"
    assert not leaked, "similarity gate must not skip anomalous vertices"
    print("\nanomaly detection succeeded under topology-aware execution")


if __name__ == "__main__":
    main()
