#!/usr/bin/env python
"""Streaming ingestion: maintain O-CSR under a live update stream.

Production dynamic-graph systems receive *events* (edge inserts/deletes,
feature updates), not pre-built snapshots.  This example replays a
dynamic graph as its event stream, maintains the O-CSR affected-subgraph
store incrementally (the dynamic maintenance the paper claims for O-CSR),
and verifies the incrementally-maintained store matches a from-scratch
rebuild at every step.

Run:  python examples/streaming_updates.py
"""

import numpy as np

from repro.analysis import extract_affected_subgraph
from repro.formats import OCSRStorage, SnapshotCSRStorage, WindowSelection
from repro.graphs import UpdateKind, event_stream, load_dataset


def main() -> None:
    graph = load_dataset("GT", num_snapshots=6)
    window = graph.window(0, 4)

    # build the affected-subgraph O-CSR for the current window
    subgraph = extract_affected_subgraph(window)
    sel = WindowSelection(window, subgraph.vertices)
    store = OCSRStorage(sel)
    csr = SnapshotCSRStorage(sel)
    print(
        f"affected subgraph: {subgraph.num_vertices} vertices "
        f"({100 * subgraph.stats()['subgraph_fraction']:.1f}% of the graph)"
    )
    print(
        f"O-CSR: {store.num_entries} entries, {store.storage_bytes():,} B "
        f"({100 * store.compression_vs(csr):.1f}% smaller than per-snapshot CSR)"
    )

    # replay the next step's events against the *last* snapshot of the
    # window, applying the structural ones to the O-CSR in place
    events = event_stream(graph)[3]  # snapshot 3 -> 4
    in_sub = set(subgraph.vertices.tolist())
    applied = {"insert": 0, "delete": 0, "feature": 0, "skipped": 0}
    last = window.num_snapshots - 1
    for ev in events:
        if ev.kind is UpdateKind.EDGE_INSERT and ev.payload[0] in in_sub:
            store.insert_edge(ev.payload[0], ev.payload[1], last)
            applied["insert"] += 1
        elif ev.kind is UpdateKind.EDGE_DELETE and ev.payload[0] in in_sub:
            if store.delete_edge(ev.payload[0], ev.payload[1], last):
                applied["delete"] += 1
        elif ev.kind is UpdateKind.FEATURE_UPDATE and ev.vertex in in_sub:
            store.update_feature(ev.vertex, last, ev.payload)
            applied["feature"] += 1
        else:
            applied["skipped"] += 1
    print(f"\napplied events in place: {applied}")

    # verify a few touched runs against direct recomputation
    touched = [
        ev.payload[0]
        for ev in events
        if ev.kind is UpdateKind.EDGE_INSERT and ev.payload[0] in in_sub
    ][:10]
    checked = 0
    for v in touched:
        tgts, ts = store.gather(v)
        at_last = set(tgts[ts == last].tolist())
        # after applying inserts/deletes, the run at `last` must contain
        # the inserted neighbours
        inserted = {
            ev.payload[1]
            for ev in events
            if ev.kind is UpdateKind.EDGE_INSERT and ev.payload[0] == v
        }
        deleted = {
            ev.payload[1]
            for ev in events
            if ev.kind is UpdateKind.EDGE_DELETE and ev.payload[0] == v
        }
        assert inserted - deleted <= at_last, (v, inserted, at_last)
        checked += 1
    print(f"verified {checked} incrementally-updated runs against the event log")
    print("\nstreaming maintenance of O-CSR verified")


if __name__ == "__main__":
    main()
