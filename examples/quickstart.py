#!/usr/bin/env python
"""Quickstart: run TaGNN's topology-aware DGNN inference end to end.

This walks the whole public API in one page:

1. generate a synthetic dynamic graph (a stand-in for the paper's Gdelt);
2. build a T-GCN model (1 GCN layer + GRU, as in the paper);
3. run conventional snapshot-by-snapshot inference (the baseline);
4. run TaGNN's topology-aware concurrent execution (TaGNN-S engine);
5. price both on hardware: the TaGNN accelerator vs an A100 running PiPAD;
6. check the accuracy cost of similarity-aware cell skipping.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.accel import PIPAD, TaGNNSimulator, WorkloadStats
from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_dataset
from repro.models import evaluate_accuracy, fit_readout, make_model, make_teacher_labels


def main() -> None:
    # 1. a dynamic graph: 8 snapshots of an evolving network
    graph = load_dataset("GT", num_snapshots=8)
    print(f"dynamic graph: {graph.stats()}")

    # 2. a DGNN: T-GCN = GCN + GRU with frozen seeded weights
    model = make_model("T-GCN", graph.dim, hidden_dim=32, seed=0)
    print(f"model: {model.name}, {model.num_layers} layers, out dim {model.out_dim}")

    # 3. conventional snapshot-by-snapshot inference
    reference = ReferenceEngine(model, window_size=4).run(graph)
    m = reference.metrics
    print(
        f"\nconventional execution: {m.total_words:,} words moved, "
        f"{m.total_macs:,} MACs, useful-data ratio {m.useful_ratio():.1%}"
    )

    # 4. TaGNN's topology-aware concurrent execution
    tagnn_s = ConcurrentEngine(model, window_size=4).run(graph)
    ms = tagnn_s.metrics
    print(
        f"topology-aware execution: {ms.total_words:,} words "
        f"({1 - ms.total_words / m.total_words:.1%} saved), "
        f"{ms.total_macs:,} MACs ({1 - ms.total_macs / m.total_macs:.1%} saved), "
        f"{ms.skip_ratio():.1%} of cell updates skipped"
    )

    # 5. hardware: the TaGNN accelerator vs PiPAD on an A100
    workload = WorkloadStats.analyze(graph, model, 4)
    tagnn_hw = TaGNNSimulator().simulate(model, graph, "GT", workload=workload)
    pipad = PIPAD.simulate(model, graph, "GT", metrics=m, workload=workload)
    print(
        f"\nTaGNN accelerator: {tagnn_hw.seconds * 1e6:.1f} us, "
        f"{tagnn_hw.joules * 1e3:.2f} mJ"
    )
    print(
        f"PiPAD on A100:     {pipad.seconds * 1e6:.1f} us, "
        f"{pipad.joules * 1e3:.2f} mJ "
        f"-> TaGNN is {tagnn_hw.speedup_over(pipad):.1f}x faster, "
        f"{tagnn_hw.energy_saving_over(pipad):.1f}x more energy-efficient"
    )

    # 6. accuracy: skipping must cost (almost) nothing
    labels = make_teacher_labels(graph, num_classes=4)
    readout = fit_readout(reference.outputs, labels, graph)
    acc_exact = evaluate_accuracy(reference.outputs, labels, graph, readout=readout)
    acc_skip = evaluate_accuracy(tagnn_s.outputs, labels, graph, readout=readout)
    print(
        f"\naccuracy: exact {acc_exact:.1%} vs with cell skipping {acc_skip:.1%} "
        f"(loss {100 * (acc_exact - acc_skip):+.2f} points)"
    )

    # sanity: the two engines agree bit-exactly when skipping is off
    exact = ConcurrentEngine(model, window_size=4, enable_skipping=False).run(graph)
    worst = max(
        np.abs(a - b).max() for a, b in zip(exact.outputs, reference.outputs)
    )
    print(f"engine equivalence check (skipping off): max |diff| = {worst:.2e}")


if __name__ == "__main__":
    main()
