#!/usr/bin/env python
"""Accelerator design-space exploration with the TaGNN simulator.

A hardware architect's workflow: given a target workload (model +
dynamic-graph characteristics), sweep the TaGNN configuration — DCU
count, MAC budget, snapshot batch size — and pick the configuration with
the best latency that still fits the U280, reproducing the reasoning
behind the paper's Fig. 14 parameter choices.

Run:  python examples/accelerator_codesign.py
"""

from repro.accel import TaGNNConfig, TaGNNSimulator, WorkloadStats, estimate_resources
from repro.graphs import load_dataset
from repro.models import make_model


def explore(model, graph, dataset: str):
    base_engine = None
    candidates = []
    for num_dcus in (4, 8, 16, 32):
        for macs_per_dcu in (128, 256, 512):
            cfg = TaGNNConfig(num_dcus=num_dcus, cpes_per_dcu=macs_per_dcu)
            sim = TaGNNSimulator(cfg)
            if base_engine is None:
                base_engine = sim.run_engine(model, graph)
            rep = sim.simulate(
                model, graph, dataset,
                engine_result=base_engine,
                workload=WorkloadStats.analyze(graph, model, cfg.window_size),
            )
            res = estimate_resources(model, cfg)
            candidates.append((cfg, rep, res))
    return candidates


def main() -> None:
    graph = load_dataset("ML", num_snapshots=8)
    model = make_model("CD-GCN", graph.dim, hidden_dim=32, seed=0)
    print(f"workload: {model.name} on {graph.stats()['name']}\n")

    candidates = explore(model, graph, "ML")
    print(f"{'DCUs':>5} {'MACs':>6} {'time (us)':>10} {'power(W)':>9} "
          f"{'DSP%':>6} {'URAM%':>6} {'fits':>5}")
    feasible = []
    for cfg, rep, res in candidates:
        u = res.utilization()
        fits = res.fits()
        print(
            f"{cfg.num_dcus:>5} {cfg.total_macs:>6} {rep.seconds * 1e6:>10.1f} "
            f"{rep.watts:>9.1f} {100 * u['DSP']:>6.1f} {100 * u['UltraRAM']:>6.1f} "
            f"{'yes' if fits else 'NO':>5}"
        )
        if fits:
            feasible.append((cfg, rep))

    best_cfg, best_rep = min(feasible, key=lambda c: c[1].seconds)
    print(
        f"\nbest feasible configuration: {best_cfg.num_dcus} DCUs x "
        f"{best_cfg.cpes_per_dcu} CPEs = {best_cfg.total_macs} MACs "
        f"-> {best_rep.seconds * 1e6:.1f} us, {best_rep.joules * 1e3:.2f} mJ"
    )

    # window-size sweep at the best config (Fig. 14(c)'s question)
    print("\nsnapshot batch-size sweep (time per snapshot, us):")
    for k in (1, 2, 4, 6, 8):
        cfg = best_cfg.with_window(k)
        rep = TaGNNSimulator(cfg).simulate(
            model, graph, "ML",
            workload=WorkloadStats.analyze(graph, model, k),
        )
        per_snap = rep.seconds * 1e6 / graph.num_snapshots
        print(f"  window={k}: {per_snap:.2f} us/snapshot")

    # the paper's configuration should be at or near the frontier
    assert best_cfg.total_macs >= 2048
    print("\ndesign-space exploration complete")


if __name__ == "__main__":
    main()
