#!/usr/bin/env python
"""Online DGNN serving: snapshots arrive one at a time.

A monitoring service receives a new graph snapshot every interval and
must emit fresh vertex embeddings with bounded latency.  This example
drives :class:`repro.engine.StreamingInference` with snapshots pushed
one by one, shows when results are released (at window boundaries and on
flush), and verifies the stream agrees with an offline batch run over
the same history.

Run:  python examples/online_inference.py
"""

import numpy as np

from repro.engine import ConcurrentEngine, StreamingInference
from repro.graphs import load_dataset
from repro.models import make_model


def main() -> None:
    graph = load_dataset("ML", num_snapshots=11)  # 11: forces a partial tail
    model = make_model("T-GCN", graph.dim, hidden_dim=32, seed=5)
    stream = StreamingInference(model, window_size=4)

    print("pushing snapshots as they 'arrive':")
    released = []
    for t, snap in enumerate(graph):
        result = stream.push(snap)
        if result is None:
            print(f"  t={t}: buffered ({stream.pending}/4 in window)")
        else:
            released.extend(result.outputs)
            skipped = result.metrics.skip_ratio()
            print(
                f"  t={t}: window complete -> released embeddings for "
                f"t={result.timestamps[0]}..{result.timestamps[-1]} "
                f"({skipped:.0%} of cell updates skipped)"
            )
    tail = stream.flush()
    if tail:
        released.extend(tail.outputs)
        print(f"  flush: released trailing t={tail.timestamps}")

    print(
        f"\nstream totals: {stream.metrics.snapshots_processed} snapshots, "
        f"{stream.metrics.windows_processed} windows, "
        f"{stream.metrics.cells_skipped:,} cell updates skipped"
    )

    # offline batch over the same history must agree exactly
    batch = ConcurrentEngine(
        make_model("T-GCN", graph.dim, hidden_dim=32, seed=5), window_size=4
    ).run(graph)
    worst = max(np.abs(a - b).max() for a, b in zip(released, batch.outputs))
    print(f"stream vs offline batch: max |diff| = {worst:.2e}")
    assert worst == 0.0
    print("online inference matches offline batch bit-for-bit")


if __name__ == "__main__":
    main()
