#!/usr/bin/env python
"""Surviving a hostile update feed — the resilience layer end to end.

Scenario: a dynamic-graph service consumes a live event feed that is
everything production feeds are — events arrive corrupted, duplicated
and out of order, a snapshot is torn mid-write, an invariant trips
mid-window, and the storage backend hiccups.  The resilient serving path
(``repro.resilience``) absorbs every one of those faults and still
releases an output for every timestamp:

1. a seeded :class:`FaultPlan` schedules one fault of every kind;
2. :func:`run_chaos_campaign` replays the graph's event stream through
   guarded ingestion + the supervised streaming engine under that plan;
3. the incident report reconciles what happened against the plan;
4. a checkpoint taken mid-stream proves crash/replay resumes the
   uninterrupted outputs bit-identically.

Run:  python examples/chaos_serving.py
"""

import io

import numpy as np

from repro.engine import StreamingInference
from repro.graphs import load_dataset
from repro.models import make_model
from repro.resilience import (
    FaultPlan,
    load_checkpoint,
    run_chaos_campaign,
    save_checkpoint,
)

WINDOW = 4
SEED = 3
FAULT_SEED = 11


def main() -> None:
    graph = load_dataset("GT", num_snapshots=8, seed=SEED)
    model = make_model("T-GCN", graph.dim, hidden_dim=32, seed=SEED)

    # --- 1-3: the chaos campaign -----------------------------------
    plan = FaultPlan.generate(seed=FAULT_SEED, num_steps=graph.num_snapshots)
    print(f"injecting {len(plan)} faults into {graph.num_snapshots} steps "
          f"of {model.name} on GT:\n")
    report = run_chaos_campaign(model, graph, plan, window_size=WINDOW)
    print(report.summary())
    assert len(report.outputs) == graph.num_snapshots
    print(f"\nevery timestamp got an output despite {len(plan)} faults.")

    # --- 4: crash + checkpoint/replay ------------------------------
    def run(stream, snapshots):
        outs = []
        for snap in snapshots:
            r = stream.push(snap.copy())
            if r is not None:
                outs.extend(r.outputs)
        r = stream.flush()
        if r is not None:
            outs.extend(r.outputs)
        return outs

    uninterrupted = run(
        StreamingInference(make_model("T-GCN", graph.dim, hidden_dim=32,
                                      seed=SEED), window_size=WINDOW),
        list(graph),
    )

    crash_at = 5
    first = StreamingInference(
        make_model("T-GCN", graph.dim, hidden_dim=32, seed=SEED),
        window_size=WINDOW,
    )
    early = []
    for snap in list(graph)[:crash_at]:
        r = first.push(snap.copy())
        if r is not None:
            early.extend(r.outputs)
    checkpoint = io.BytesIO()
    save_checkpoint(first, checkpoint)
    del first  # the "crash": the process and its carry state are gone

    checkpoint.seek(0)
    resumed = StreamingInference(
        make_model("T-GCN", graph.dim, hidden_dim=32, seed=SEED),
        window_size=WINDOW,
    )
    resumed.restore_carry(load_checkpoint(checkpoint))
    late = run(resumed, list(graph)[crash_at:])

    replayed = early + late
    assert len(replayed) == len(uninterrupted)
    worst = max(
        float(np.abs(a - b).max()) for a, b in zip(uninterrupted, replayed)
    )
    print(f"crash at t={crash_at}, restore from checkpoint, replay rest: "
          f"max |diff| = {worst:.2e}")
    assert worst == 0.0
    print("checkpoint/replay reproduced the uninterrupted run bit-identically.")


if __name__ == "__main__":
    main()
