#!/usr/bin/env python
"""Multi-tenant serving on a supervised shard cluster.

Scenario: one dynamic-graph inference service hosts several tenants on a
cluster of four shards.  Each shard owns a slice of the vertex set (cut
by the accelerator's GSPM partitioner); outputs are stitched from every
shard's owned rows, so the service only releases a timestamp once all
shards agree on it.  Three stories unfold:

1. **steady state** — two tenants stream side by side and every released
   output is bit-identical to the unsharded engine;
2. **shard failures** — a seeded campaign crashes, stalls, slows and
   checkpoint-tears every shard at least once; the supervisor restarts
   each one from its rotating checkpoints plus catch-up replay, and the
   outputs *still* match the unsharded engine exactly, with zero lost
   (non-dead-lettered) events;
3. **overload** — a hot shard falls behind, the per-tenant admission
   gate sheds with explicit backpressure (structured incidents, rejects
   into the dead-letter queue), the circuit breaker opens, and queries
   keep serving stale rows until the shard catches up.

Run:  python examples/sharded_serving.py
"""

import numpy as np

from repro.engine import StreamingInference
from repro.graphs import load_dataset
from repro.models import make_model
from repro.resilience import FaultPlan
from repro.serving import ShardCluster, run_cluster_campaign

WINDOW = 3
SEED = 3
FAULT_SEED = 11
SHARDS = 4
SNAPSHOTS = 6


def factory():
    return make_model("T-GCN", 32, hidden_dim=8, seed=SEED)


def unsharded(graph):
    stream = StreamingInference(factory(), window_size=WINDOW,
                                enable_skipping=True)
    outs = []
    for snap in graph:
        r = stream.push(snap.copy())
        if r is not None:
            outs.extend(r.outputs)
    r = stream.flush()
    if r is not None:
        outs.extend(r.outputs)
    return outs


def main() -> None:
    tenants = {
        "acme": load_dataset("GT", scale=0.05, num_snapshots=SNAPSHOTS,
                             seed=SEED),
        "globex": load_dataset("GT", scale=0.05, num_snapshots=SNAPSHOTS,
                               seed=SEED + 1),
    }

    # --- 1: steady-state multi-tenant serving -----------------------
    cluster = ShardCluster(factory, num_shards=SHARDS, window_size=WINDOW,
                           seed=SEED)
    for name in sorted(tenants):
        cluster.register_tenant(name)
    for t in range(SNAPSHOTS):
        for name in sorted(tenants):
            cluster.push(name, tenants[name][t].copy())
    for name in sorted(tenants):
        cluster.flush(name)
    smap = cluster.shard_map
    print(f"{SHARDS}-shard cluster serving {len(tenants)} tenants "
          f"({smap.num_vertices} vertices, {smap.cut_edges} cut edges):")
    for name in sorted(tenants):
        got = cluster.released(name)
        expected = unsharded(tenants[name])
        identical = len(got) == len(expected) and all(
            np.array_equal(a, b) for a, b in zip(got, expected)
        )
        print(f"  {name:>8}: {len(got)} outputs released, "
              f"bit-identical to unsharded engine: {identical}")
        assert identical

    # --- 2: the shard-failure campaign ------------------------------
    plan = FaultPlan.generate_cluster(
        seed=FAULT_SEED, num_steps=SNAPSHOTS, num_shards=SHARDS
    )
    print(f"\ninjecting {len(plan)} shard faults "
          f"(every shard x every kind):\n")
    report = run_cluster_campaign(
        factory, tenants, plan,
        num_shards=SHARDS, window_size=WINDOW, seed=SEED,
    )
    print(report.summary())
    assert report.identical and report.lost == 0
    assert report.restarted_shards == list(range(SHARDS))

    # --- 3: overload, backpressure and stale serves -----------------
    hot = ShardCluster(
        factory, num_shards=SHARDS, window_size=2,
        max_backlog=2, breaker_threshold=2, seed=SEED,
    )
    hot.register_tenant("acme")
    hot.register_tenant("globex")
    shed = {"acme": 0, "globex": 0}
    for t in range(SNAPSHOTS):
        if t == 2:
            hot.workers[1].slow(40)  # shard 1 goes hot: 40 ticks/snapshot
        for name in sorted(tenants):
            receipt = hot.push(name, tenants[name][t].copy())
            if not receipt.accepted:
                shed[name] += 1
    matrix, stale = hot.query("acme")
    print(f"\nhot shard 1 (40x service time), max_backlog=2:")
    for name in sorted(shed):
        stats = hot.gate.stats(name)
        print(f"  {name:>8}: admitted {stats['admitted']}, "
              f"shed {stats['shed']} "
              f"(breaker {'open' if stats['breaker_open'] else 'closed'})")
    print(f"  query served {matrix.shape[0]} rows with {stale} shard(s) "
          f"stale; {len(hot.dlq)} rejects in the dead-letter queue")
    assert sum(shed.values()) > 0
    assert len(hot.dlq) == sum(shed.values())
    shed_incidents = [i for i in hot.incidents if i.action == "shed"]
    assert len(shed_incidents) == sum(shed.values())
    hot.drain_backlogs()  # the slow shard eventually catches up
    receipt = hot.push("acme", tenants["acme"][SNAPSHOTS - 1].copy())
    print("  backlog drained after the burst; next push admitted again: "
          f"{receipt.accepted}")
    assert receipt.accepted


if __name__ == "__main__":
    main()
