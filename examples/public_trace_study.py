#!/usr/bin/env python
"""Cell-skipping accuracy study on a public-style interaction trace.

The paper's accuracy claims (Table 5) are made on public dynamic graphs.
This example shows the full study pipeline on a *timestamped edge list* —
the format public traces (SNAP, Network Repository) actually ship in:

1. parse an edge-list trace (here: generated in the same format a real
   download would have; point ``TRACE`` at e.g. ``soc-sign-bitcoin`` or
   ``CollegeMsg.txt`` to run on a real file);
2. bucket it into snapshots with interaction expiry;
3. measure the overlap statistics that make skipping viable;
4. run exact inference vs similarity-aware skipping vs the prior
   approximation baselines, under a fixed trained readout;
5. report the accuracy ledger.

Run:  python examples/public_trace_study.py [path/to/trace.txt]
"""

import sys

import numpy as np

from repro.analysis import classify_window
from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_edge_list
from repro.models import evaluate_accuracy, fit_readout, make_model, make_teacher_labels
from repro.skipping import APPROXIMATORS


def synthetic_public_trace(n=600, buckets=10, seed=42) -> str:
    """A trace with the statistical signature of public interaction
    networks: a persistent friendship core whose pairs interact every
    interval, plus bursty activity drifting through neighbourhoods."""
    rng = np.random.default_rng(seed)
    lines = ["# synthetic public-style trace: src dst unix_time"]
    core = [(int(u), int(v)) for u, v in rng.integers(0, n, (2 * n, 2)) if u != v]
    t = 1_500_000_000
    bucket_span = 86_400  # one "day" per bucket
    for b in range(buckets):
        t0 = t + b * bucket_span
        # the friendship core fires every interval (steady behaviour)
        for u, v in core:
            lines.append(f"{u} {v} {t0 + int(rng.integers(bucket_span))}")
        # a burst sweeps one 25-vertex neighbourhood per interval
        center = int(rng.integers(n))
        for _ in range(400):
            u = (center + int(rng.integers(25))) % n
            v = (center + int(rng.integers(25))) % n
            if u != v:
                lines.append(f"{u} {v} {t0 + int(rng.integers(bucket_span))}")
    return "\n".join(lines)


def main() -> None:
    source = sys.argv[1] if len(sys.argv) > 1 else synthetic_public_trace()
    graph = load_edge_list(source, num_snapshots=10, retention=3, dim=24,
                           name="public-trace", seed=7)
    print(f"trace loaded: {graph.stats()}")

    # overlap statistics (the viability check)
    c3 = classify_window(graph.window(4, 3))
    c4 = classify_window(graph.window(4, 4))
    print(
        f"overlap: {c3.unaffected_ratio():.1%} unaffected over 3 snapshots, "
        f"{c4.unaffected_ratio():.1%} over 4"
    )

    model = make_model("GC-LSTM", graph.dim, hidden_dim=32, seed=0)
    labels = make_teacher_labels(graph, num_classes=4)

    exact = ReferenceEngine(model, window_size=4).run(graph)
    readout = fit_readout(exact.outputs, labels, graph)
    base_acc = evaluate_accuracy(exact.outputs, labels, graph, readout=readout)

    results = {"exact": (base_acc, 0.0)}

    skip = ConcurrentEngine(model, window_size=4).run(graph)
    acc = evaluate_accuracy(skip.outputs, labels, graph, readout=readout)
    results["TaGNN skipping"] = (acc, skip.metrics.skip_ratio())

    for name in ("TaGNN-DR", "TaGNN-AM", "TaGNN-AS"):
        approx = APPROXIMATORS[name]()
        approx.start(model.cell, graph.num_vertices)
        state = model.init_state(graph.num_vertices)
        outs = []
        for snap in graph:
            z = model.gnn_forward(snap)
            h, state = approx.cell_step(model.cell, z, state)
            outs.append(h)
        results[name] = (
            evaluate_accuracy(outs, labels, graph, readout=readout), 0.0
        )

    print(f"\n{'method':>16} {'accuracy':>9} {'loss':>7} {'skipped':>8}")
    for name, (acc, skipped) in results.items():
        print(
            f"{name:>16} {acc:9.1%} {100 * (base_acc - acc):+6.2f}pp "
            f"{skipped:8.1%}"
        )

    tagnn_loss = base_acc - results["TaGNN skipping"][0]
    worst_prior = min(results[n][0] for n in ("TaGNN-DR", "TaGNN-AM", "TaGNN-AS"))
    assert tagnn_loss < 0.02, "skipping should cost < 2 points on this trace"
    assert results["TaGNN skipping"][0] > worst_prior, (
        "topology-aware skipping should beat topology-blind approximations"
    )
    print("\npublic-trace study complete: the Table 5 shape holds off-registry")


if __name__ == "__main__":
    main()
