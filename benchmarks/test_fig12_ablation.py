"""Figure 12 — contribution of the two main mechanisms.

Paper: OADL contributes a 4.41x average speedup (71.38% of the total
gain); ADSC contributes 2.48x (28.62%).
"""

from repro.accel import TaGNNConfig, TaGNNSimulator
from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    geomean,
    get_graph,
    get_model,
    get_workload,
    render_table,
    save_result,
)


def _simulate(m, d, cfg):
    return TaGNNSimulator(cfg).simulate(
        get_model(m, d), get_graph(d), d,
        workload=get_workload(m, d, cfg.window_size),
    )


def build_fig12():
    rows = []
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            full = _simulate(m, d, TaGNNConfig())
            wo_oadl = _simulate(m, d, TaGNNConfig().ablated(oadl=False))
            wo_adsc = _simulate(m, d, TaGNNConfig().ablated(adsc=False))
            rows.append(
                [
                    m,
                    d,
                    wo_oadl.seconds / full.seconds,  # OADL gain
                    wo_adsc.seconds / full.seconds,  # ADSC gain
                ]
            )
    return rows


def test_fig12_ablation(benchmark):
    rows = benchmark.pedantic(build_fig12, rounds=1, iterations=1)
    oadl_gain = geomean([r[2] for r in rows])
    adsc_gain = geomean([r[3] for r in rows])
    import math

    oadl_share = 100 * math.log(oadl_gain) / (
        math.log(oadl_gain) + math.log(adsc_gain)
    )
    text = render_table(
        f"Fig 12: mechanism ablations — OADL {oadl_gain:.2f}x "
        f"({oadl_share:.1f}% of gains), ADSC {adsc_gain:.2f}x",
        ["Model", "Dataset", "WO/OADL slowdown", "WO/ADSC slowdown"],
        rows,
    )
    save_result("fig12_ablation", text)

    # paper: OADL 4.41x, ADSC 2.48x; OADL is the larger contributor
    assert 2.5 < oadl_gain < 8.0, oadl_gain
    assert 1.3 < adsc_gain < 4.5, adsc_gain
    assert oadl_gain > adsc_gain
    assert 55 < oadl_share < 85  # paper: 71.38%
    for r in rows:
        assert r[2] > 1.0 and r[3] > 1.0  # both mechanisms always help
