"""Figure 2 — motivation studies of conventional DGNN systems.

(a) execution-time breakdown of PiPAD across models/datasets;
(b) software frameworks normalised to PyGT on T-GCN;
(c) useful-data ratio of each framework over 4 snapshots;
(d) PiPAD latency breakdown + SM utilisation.
"""

import pytest

from repro.accel import MOTIVATION_FRAMEWORKS
from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    get_graph,
    get_model,
    get_reference,
    get_workload,
    render_table,
    save_result,
)


def _framework_report(name, model_name, dataset):
    fw = MOTIVATION_FRAMEWORKS[name]
    return fw.simulate(
        get_model(model_name, dataset),
        get_graph(dataset),
        dataset,
        metrics=get_reference(model_name, dataset).metrics,
        workload=get_workload(model_name, dataset),
    )


def build_fig2a():
    """Phase breakdown (%) of the conventional execution, from the MAC
    and memory counters (aggregation / combination / cell-update /
    other)."""
    rows = []
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            bd = get_reference(m, d).metrics.breakdown()
            # time-weight the phases: aggregation is gather-bound (an
            # irregular access costs ~16 MAC-equivalents), cell updates
            # run as small latency-bound matmuls (~1.5x derate),
            # combination streams at full MAC throughput
            agg = bd["aggregation"] * 16.0
            comb = bd["combination"]
            cell = bd["cell_update"] * 1.5
            other = 0.12 * (agg + comb + cell)
            tot = agg + comb + cell + other
            rows.append(
                [m, d, 100 * agg / tot, 100 * comb / tot, 100 * cell / tot,
                 100 * other / tot]
            )
    return rows


def test_fig2a_breakdown(benchmark):
    rows = benchmark.pedantic(build_fig2a, rounds=1, iterations=1)
    text = render_table(
        "Fig 2(a): conventional execution time breakdown (%)",
        ["Model", "Dataset", "Aggregation", "Combination", "Cell-update", "Other"],
        rows,
    )
    save_result("fig2a_breakdown", text)
    # the paper: aggregation+update dominate everywhere; aggregation can
    # reach ~77% and never collapses below ~25%
    for r in rows:
        assert r[2] + r[4] > 50.0
        assert 20.0 < r[2] < 90.0


def build_fig2b():
    rows = []
    for d in GRID_DATASETS:
        base = _framework_report("PyGT", "T-GCN", d).seconds
        row = [d] + [
            _framework_report(n, "T-GCN", d).seconds / base
            for n in ("PyGT", "CacheG", "ESDG", "PiPAD")
        ]
        rows.append(row)
    return rows


def test_fig2b_frameworks(benchmark):
    rows = benchmark.pedantic(build_fig2b, rounds=1, iterations=1)
    text = render_table(
        "Fig 2(b): T-GCN execution time normalised to PyGT",
        ["Dataset", "PyGT", "CacheG", "ESDG", "PiPAD"],
        rows,
    )
    save_result("fig2b_frameworks", text)
    for r in rows:
        # PiPAD outperforms the others in every scenario (paper)
        assert r[4] < r[3] < r[2] < r[1] == pytest.approx(1.0)


def build_fig2c():
    rows = []
    for d in GRID_DATASETS:
        metrics = get_reference("T-GCN", d).metrics
        base_useful = metrics.useful_ratio()
        row = [d]
        for n in ("PyGT", "CacheG", "ESDG", "PiPAD"):
            fw = MOTIVATION_FRAMEWORKS[n]
            # a framework's cache removes part of the redundancy; the rest
            # is fetched anyway
            redundant = (metrics.redundant_words / metrics.total_words) * (
                1 - fw.redundancy_elimination
            )
            row.append(100 * (1 - redundant))
        rows.append(row)
    return rows


def test_fig2c_useful_data(benchmark):
    rows = benchmark.pedantic(build_fig2c, rounds=1, iterations=1)
    text = render_table(
        "Fig 2(c): useful-data ratio over 4 snapshots (%) — T-GCN",
        ["Dataset", "PyGT", "CacheG", "ESDG", "PiPAD"],
        rows,
    )
    save_result("fig2c_useful_data", text)
    for r in rows:
        # the paper: even PiPAD leaves >81.7% of accesses redundant
        assert r[4] < 35.0  # PiPAD useful ratio stays low
        assert r[1] <= r[2] <= r[3] <= r[4]  # caching improves it monotonically


def build_fig2d():
    rows = []
    for d in GRID_DATASETS:
        r = _framework_report("PiPAD", "T-GCN", d)
        mem = r.breakdown["memory_s"] / r.seconds
        comp = r.breakdown["compute_s"] / r.seconds
        ovh = r.breakdown["overhead_s"] / r.seconds
        rows.append([d, 100 * mem, 100 * comp, 100 * ovh,
                     100 * r.extra["utilization"]])
    return rows


def test_fig2d_pipad_breakdown(benchmark):
    rows = benchmark.pedantic(build_fig2d, rounds=1, iterations=1)
    text = render_table(
        "Fig 2(d): PiPAD latency breakdown + SM utilisation (%)",
        ["Dataset", "Memory", "Compute", "Overhead", "SM util"],
        rows,
    )
    save_result("fig2d_pipad", text)
    for r in rows:
        assert r[1] > 55.0  # memory dominates (paper: 70.4% average)
        assert r[4] < 25.0  # SM utilisation below 22.3%
