"""Tables 1 and 4 — the qualitative comparison and the accelerator
configurations.

Table 1 is reproduced *from the code*: each property checkmark is
derived from what the corresponding platform model / engine actually
implements, so the table cannot drift from the implementation.
Table 4 is printed from the configured platform parameters and checked
against the paper's figures.
"""

from repro.accel import (
    ACCELERATOR_BASELINES,
    CAMBRICON_DG,
    DGNN_BOOSTER,
    E_DGCN,
    TaGNNConfig,
)
from repro.bench import render_table, save_result


def build_table1():
    """Derive the feature matrix from the implementations."""
    rows = []

    def mark(b):
        return "yes" if b else "no"

    # DGL: static-graph framework priced via the reference engine
    rows.append(["DGL", mark(False), mark(False), mark(False), mark(False)])
    for name, p in ACCELERATOR_BASELINES.items():
        rows.append(
            [
                name,
                mark(True),  # all three are DGNN accelerators
                mark(False),  # none gates the RNN temporal dependency
                mark(p.redundancy_elimination > 0),  # locality mechanism
                mark(False),  # all snapshot-by-snapshot
            ]
        )
    cfg = TaGNNConfig()
    rows.append(
        [
            "TaGNN",
            mark(True),
            mark(cfg.enable_adsc),  # similarity-aware cell skipping
            mark(cfg.enable_oadl),  # O-CSR + overlap-aware loading
            mark(cfg.window_size > 1),  # multi-snapshot execution
        ]
    )
    return rows


def test_table1_feature_matrix(benchmark):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    text = render_table(
        "Table 1: DGNN-solution comparison (derived from the implementations)",
        ["Solution", "Dynamic graph", "Alleviates dependencies",
         "Better locality", "High parallelism"],
        rows,
    )
    save_result("table1_comparison", text)
    by = {r[0]: r[1:] for r in rows}
    # the paper's checkmark pattern
    assert by["DGL"] == ["no", "no", "no", "no"]
    assert by["DGNN-Booster"] == ["yes", "no", "no", "no"]
    assert by["E-DGCN"] == ["yes", "no", "no", "no"]
    assert by["Cambricon-DG"] == ["yes", "no", "yes", "no"]
    assert by["TaGNN"] == ["yes", "yes", "yes", "yes"]


def build_table4():
    cfg = TaGNNConfig()
    ms = cfg.memory_subsystem()
    rows = [
        ["DGNN-Booster", f"{DGNN_BOOSTER.frequency_mhz:.0f} MHz",
         DGNN_BOOSTER.macs, "5 MB", f"{DGNN_BOOSTER.bandwidth_gbs:.0f} GB/s"],
        ["E-DGCN", f"{E_DGCN.frequency_mhz:.0f} MHz", E_DGCN.macs,
         "12 MB", f"{E_DGCN.bandwidth_gbs:.0f} GB/s"],
        ["Cambricon-DG", f"{CAMBRICON_DG.frequency_mhz:.0f} MHz",
         CAMBRICON_DG.macs, "-", f"{CAMBRICON_DG.bandwidth_gbs:.0f} GB/s"],
        ["TaGNN", f"{cfg.frequency_mhz:.0f} MHz", cfg.total_macs,
         f"{ms.total_sram_bytes() // (1024 * 1024)} MB "
         f"({cfg.num_dcus} DCUs x {cfg.cpes_per_dcu} CPEs + "
         f"{cfg.apes_per_dcu} APEs)",
         f"{cfg.hbm_bandwidth_gbs:.0f} GB/s"],
    ]
    return rows


def test_table4_configurations(benchmark):
    rows = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    text = render_table(
        "Table 4: compared accelerator configurations (as instantiated)",
        ["Accelerator", "Clock", "MACs", "On-chip memory", "Off-chip BW"],
        rows,
    )
    save_result("table4_configs", text)
    by = {r[0]: r for r in rows}
    # every platform carries Table 4's 4,096 MACs and 256 GB/s HBM
    for name in ("DGNN-Booster", "E-DGCN", "Cambricon-DG", "TaGNN"):
        assert by[name][2] == 4096
        assert by[name][4] == "256 GB/s"
    # clocks per Table 4 (TaGNN at Section 5.1's experimental 225 MHz)
    assert by["DGNN-Booster"][1] == "280 MHz"
    assert by["E-DGCN"][1] == "1000 MHz"
    assert by["Cambricon-DG"][1] == "1000 MHz"
    assert by["TaGNN"][1] == "225 MHz"
    # TaGNN's buffer inventory sums to the Table 4 sizes (4 MB total)
    assert by["TaGNN"][3].startswith("4 MB")
