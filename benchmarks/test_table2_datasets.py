"""Table 2 — dataset statistics.

Regenerates the dataset table: the paper-reported statistics of the five
real traces alongside the synthetic stand-ins actually used (scale,
per-snapshot sizes, measured churn).  Benchmarks dataset generation.
"""

from repro.bench import render_table, save_result
from repro.graphs import DATASET_NAMES, dataset_spec, load_dataset, paper_stats


def build_table2():
    rows = []
    for name in DATASET_NAMES:
        ps = paper_stats(name)
        spec = dataset_spec(name)
        g = load_dataset(name, num_snapshots=4)
        rows.append(
            [
                f"{ps.name}({ps.abbrev})",
                f"{ps.num_vertices:,}",
                f"{ps.num_edges:,}",
                ps.dim,
                ps.num_snapshots,
                ps.granularity,
                spec.num_vertices,
                int(g.stats()["mean_edges"]),
                spec.dim,
            ]
        )
    return rows


def test_table2_report(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    text = render_table(
        "Table 2: dynamic graph datasets (paper | synthetic stand-in)",
        [
            "Dataset", "#V (paper)", "#E (paper)", "dim", "#snaps",
            "granularity", "#V (synth)", "#E/snap (synth)", "dim (synth)",
        ],
        rows,
    )
    save_result("table2_datasets", text)
    assert len(rows) == 5


def test_generation_speed(benchmark):
    """Dataset generation itself must stay fast (it runs inside every
    other bench)."""
    g = benchmark(lambda: load_dataset("GT", num_snapshots=4, seed=99))
    assert g.num_snapshots == 4
