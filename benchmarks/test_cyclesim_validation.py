"""Extension bench: event-driven vs analytic model cross-validation.

Two independently-constructed performance models — the analytic
composition (`TaGNNSimulator`) and the per-task queueing simulation
(`CycleSimulator`) — are run on the same workloads.  Their agreement is
the sanity check on the cycle numbers behind Figs. 9-14; the FIFO-sizing
sweep shows the Table 4 Task-FIFO (256 KB) is large enough that loader
backpressure never throttles the pipeline.
"""

from repro.accel import CycleSimulator, TaGNNConfig
from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    get_concurrent,
    get_tagnn_report,
    get_workload,
    render_table,
    save_result,
)


def build_agreement():
    rows = []
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            wl = get_workload(m, d)
            skip = get_concurrent(m, d).metrics.skip_ratio()
            ev = CycleSimulator().run_workload(wl, skip_ratio=skip)
            analytic = get_tagnn_report(m, d)
            rows.append(
                [
                    m, d,
                    analytic.cycles,
                    ev.total_cycles,
                    ev.total_cycles / analytic.cycles,
                    ev.dcu_utilization,
                    ev.max_fifo_occupancy,
                ]
            )
    return rows


def test_model_agreement(benchmark):
    rows = benchmark.pedantic(build_agreement, rounds=1, iterations=1)
    text = render_table(
        "Cross-validation: analytic vs event-driven cycles",
        ["Model", "Dataset", "analytic", "event", "ratio",
         "DCU util", "max FIFO occ"],
        rows,
    )
    save_result("ext_cyclesim_agreement", text)
    ratios = [r[4] for r in rows]
    # every cell agrees within a factor of 3 in either direction
    assert all(1 / 3 < r < 3 for r in ratios), ratios
    # and the grid as a whole is unbiased within ~60%
    mean = sum(ratios) / len(ratios)
    assert 0.5 < mean < 1.6, mean


def build_fifo_sweep():
    wl = get_workload("CD-GCN", "FK")
    skip = get_concurrent("CD-GCN", "FK").metrics.skip_ratio()
    rows = []
    for cap in (16, 64, 256, 1024, 4096):
        r = CycleSimulator(TaGNNConfig(), fifo_capacity=cap).run_workload(
            wl, skip_ratio=skip
        )
        rows.append([cap, r.total_cycles, r.loader_stall_cycles,
                     r.max_fifo_occupancy])
    return rows


def test_fifo_sizing(benchmark):
    rows = benchmark.pedantic(build_fifo_sweep, rounds=1, iterations=1)
    text = render_table(
        "Task-FIFO sizing (CD-GCN on FK): capacity vs stalls",
        ["capacity (entries)", "total cycles", "loader stalls",
         "max occupancy"],
        rows,
    )
    save_result("ext_fifo_sizing", text)
    by = {r[0]: r for r in rows}
    # larger FIFOs never hurt
    totals = [r[1] for r in rows]
    assert totals == sorted(totals, reverse=True)
    # Table 4's 4096-entry FIFO runs without throttling the total
    assert by[4096][1] <= by[16][1]
