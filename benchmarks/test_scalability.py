"""Extension bench: scaling behaviour with graph size.

Not a paper figure — this checks that the reproduced advantage is not an
artefact of the (scaled-down) default workload size: TaGNN's speedup
over the conventional accelerators must persist as the synthetic graphs
grow toward the real datasets' sizes, and the GSPM partitioning path
must engage once the working set overflows the Feature Memory.
"""

from repro.accel import (
    DGNN_BOOSTER,
    TaGNNConfig,
    TaGNNSimulator,
    WorkloadStats,
)
from repro.bench import render_table, save_result
from repro.engine import ReferenceEngine
from repro.graphs import load_dataset
from repro.models import make_model

SCALES = (1.0, 2.0, 4.0, 8.0)


def build_scaling():
    rows = []
    for scale in SCALES:
        g = load_dataset("GT", scale=scale, num_snapshots=8)
        model = make_model("T-GCN", g.dim, 32, seed=3)
        wl = WorkloadStats.analyze(g, model, 4)
        tagnn = TaGNNSimulator().simulate(model, g, "GT", workload=wl)
        ref = ReferenceEngine(model, window_size=4).run(g)
        booster = DGNN_BOOSTER.simulate(
            model, g, "GT", metrics=ref.metrics, workload=wl
        )
        rows.append(
            [
                scale,
                g.num_vertices,
                tagnn.seconds * 1e6,
                booster.seconds * 1e6,
                tagnn.speedup_over(booster),
                "yes" if tagnn.extra["gspm_windows"] else "no",
            ]
        )
    return rows


def test_speedup_persists_at_scale(benchmark):
    rows = benchmark.pedantic(build_scaling, rounds=1, iterations=1)
    text = render_table(
        "Scalability: TaGNN vs DGNN-Booster as the GT stand-in grows",
        ["scale", "#V", "TaGNN (us)", "Booster (us)", "speedup",
         "GSPM engaged"],
        rows,
    )
    save_result("ext_scalability", text)
    speedups = [r[4] for r in rows]
    # the advantage never collapses with size
    assert all(s > 4.0 for s in speedups), speedups
    # and the largest scale exercises the partitioned-loading path
    assert rows[-1][5] == "yes"
    # times grow monotonically with scale on both platforms
    assert [r[2] for r in rows] == sorted(r[2] for r in rows)
    assert [r[3] for r in rows] == sorted(r[3] for r in rows)
