"""Figure 13 — architecture analysis.

(a) performance-gain breakdown across the three architectural components
    (paper: MSDL+DCU 53.6%, Task Dispatcher 13.8%, Adaptive RNN Unit
    32.6% of the total improvement), measured by ablating each;
(b) O-CSR against per-snapshot CSR and PMA: end-to-end execution-time
    factors (paper: 2.3-3.4x vs CSR, 1.8-2.5x vs PMA) and redundant-
    storage reduction (73.5-82.4% and 53.2-61.8% for 4 snapshots).
"""

import math

import numpy as np

from repro.accel import TaGNNConfig, TaGNNSimulator
from repro.analysis import extract_affected_subgraph
from repro.bench import (
    GRID_DATASETS,
    geomean,
    get_graph,
    get_model,
    get_workload,
    render_table,
    save_result,
)
from repro.formats import (
    OCSRStorage,
    PMAStorage,
    SnapshotCSRStorage,
    WindowSelection,
)


def _simulate(m, d, cfg):
    return TaGNNSimulator(cfg).simulate(
        get_model(m, d), get_graph(d), d,
        workload=get_workload(m, d, cfg.window_size),
    )


def build_fig13a():
    """Ablate each component on T-GCN; attribute log-gains."""
    rows = []
    for d in GRID_DATASETS:
        full = _simulate("T-GCN", d, TaGNNConfig()).seconds
        wo_msdl_dcu = _simulate(
            "T-GCN", d, TaGNNConfig().ablated(oadl=False, pipeline_overlap=False)
        ).seconds
        wo_dispatch = _simulate(
            "T-GCN", d, TaGNNConfig().ablated(dispatcher=False)
        ).seconds
        wo_aru = _simulate("T-GCN", d, TaGNNConfig().ablated(adsc=False)).seconds
        gains = {
            "MSDL+DCU": wo_msdl_dcu / full,
            "Dispatcher": wo_dispatch / full,
            "ARU": wo_aru / full,
        }
        logsum = sum(math.log(v) for v in gains.values())
        rows.append(
            [d]
            + [gains[k] for k in ("MSDL+DCU", "Dispatcher", "ARU")]
            + [100 * math.log(gains[k]) / logsum for k in ("MSDL+DCU", "Dispatcher", "ARU")]
        )
    return rows


def test_fig13a_component_breakdown(benchmark):
    rows = benchmark.pedantic(build_fig13a, rounds=1, iterations=1)
    text = render_table(
        "Fig 13(a): component gains (x) and share of total improvement (%)",
        ["Dataset", "MSDL+DCU x", "Dispatcher x", "ARU x",
         "MSDL+DCU %", "Dispatcher %", "ARU %"],
        rows,
    )
    save_result("fig13a_architecture", text)
    shares = np.array([r[4:7] for r in rows]).mean(axis=0)
    # paper shares: 53.6 / 13.8 / 32.6 — require the ordering and rough
    # magnitudes
    assert shares[0] > shares[2] > shares[1], shares
    assert 35 < shares[0] < 75, shares
    assert 4 < shares[1] < 30, shares
    assert 15 < shares[2] < 50, shares


def build_fig13b():
    from repro.bench import get_tagnn_report
    from repro.graphs import load_dataset

    # loader pricing consistent with the simulator's HBM model:
    # independent gathers (CSR rows, O-CSR runs) amortise the 45 ns DRAM
    # latency over ~72 in-flight requests (0.14 cycles each); the PMA's
    # segment search is a *dependent* pointer chase and sustains far
    # fewer (0.35 cycles each); streams run at the full HBM rate
    # (284 words/cycle at 225 MHz).
    LAT_INDEPENDENT, LAT_DEPENDENT, WPC = 0.14, 0.35, 284.0

    def loader_cycles(fmt):
        c = fmt.scan_cost()
        lat = LAT_DEPENDENT if fmt.name == "PMA" else LAT_INDEPENDENT
        return c.random_accesses * lat + c.sequential_words / WPC

    rows = []
    for d in GRID_DATASETS:
        # --- execution time: the format changes only the loading path;
        # compute (DCU/ARU/MSDL) is unchanged and loading overlaps it in
        # dataflow style, so per-window time is max(scan, compute) + fill
        g = get_graph(d)
        window = g.window(0, 4)
        sel = WindowSelection(window, extract_affected_subgraph(window).vertices)
        rep = get_tagnn_report("T-GCN", d)
        n_windows = max(rep.metrics.windows_processed, 1)
        compute = max(
            rep.breakdown["dcu"], rep.breakdown["aru"], rep.breakdown["msdl"]
        ) / n_windows
        t = {
            f.name: max(loader_cycles(f), compute)
            + rep.breakdown["fill"] / n_windows
            for f in (
                SnapshotCSRStorage(sel), OCSRStorage(sel), PMAStorage(sel)
            )
        }

        # --- storage: feature-dominated at production scale (the real
        # datasets carry 162-500-dim features), so measure the redundant
        # storage at a paper-scale feature width
        g_wide = load_dataset(d, num_snapshots=4, dim=160)
        w_wide = g_wide.window(0, 4)
        sel_w = WindowSelection(
            w_wide, extract_affected_subgraph(w_wide).vertices
        )
        csr_w = SnapshotCSRStorage(sel_w)
        ocsr_w = OCSRStorage(sel_w)
        pma_w = PMAStorage(sel_w)
        minimal = ocsr_w.feature_table.nbytes + ocsr_w.tindex.size * 4
        red = {
            f.name: max(f.storage_bytes() - minimal, 1)
            for f in (csr_w, ocsr_w, pma_w)
        }
        rows.append(
            [
                d,
                t["CSR"] / t["O-CSR"],
                t["PMA"] / t["O-CSR"],
                100 * (1 - red["O-CSR"] / red["CSR"]),
                100 * (1 - red["O-CSR"] / red["PMA"]),
            ]
        )
    return rows


def test_fig13b_ocsr_vs_formats(benchmark):
    rows = benchmark.pedantic(build_fig13b, rounds=1, iterations=1)
    text = render_table(
        "Fig 13(b): O-CSR vs CSR/PMA — time factors and redundant-storage "
        "reduction (4 snapshots, affected subgraph)",
        ["Dataset", "CSR/O-CSR time", "PMA/O-CSR time",
         "storage red. vs CSR %", "storage red. vs PMA %"],
        rows,
    )
    save_result("fig13b_formats", text)
    for r in rows:
        assert r[1] > r[2] > 1.0  # O-CSR fastest; PMA between
        assert r[1] > 1.6  # paper: 2.3-3.4x vs CSR
        assert r[3] > 45.0  # paper: 73.5-82.4% vs CSR
        assert r[4] > 30.0  # paper: 53.2-61.8% vs PMA
        assert r[3] > r[4]
