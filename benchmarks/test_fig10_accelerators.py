"""Figure 10 — TaGNN against the DGNN accelerators, normalised to
DGNN-Booster.

Paper averages: TaGNN is 13.5x / 10.2x / 6.5x faster than DGNN-Booster /
E-DGCN / Cambricon-DG, because it removes 78.3-84.6% / 69.2-72.5% /
52.1-63.4% of their redundant accesses.
"""

from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    geomean,
    get_platform_report,
    get_tagnn_report,
    render_table,
    save_result,
)

ACCELS = ("DGNN-Booster", "E-DGCN", "Cambricon-DG", "TaGNN")


def build_fig10():
    rows = []
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            base = get_platform_report("DGNN-Booster", m, d).seconds
            rows.append(
                [m, d]
                + [base / get_platform_report(s, m, d).seconds for s in ACCELS]
            )
    return rows


def test_fig10_speedups(benchmark):
    rows = benchmark.pedantic(build_fig10, rounds=1, iterations=1)
    avg = ["AVG", ""] + [
        geomean([r[2 + i] for r in rows]) for i in range(len(ACCELS))
    ]
    text = render_table(
        "Fig 10: speedup over DGNN-Booster (higher is better)",
        ["Model", "Dataset"] + list(ACCELS),
        rows + [avg],
        floatfmt="{:.2f}",
    )
    save_result("fig10_accelerators", text)

    tagnn_vs = {
        name: geomean([r[5] / r[2 + i] for r in rows])
        for i, name in enumerate(ACCELS[:-1])
    }
    # bands around the paper averages 13.5 / 10.2 / 6.5
    assert 8 < tagnn_vs["DGNN-Booster"] < 22, tagnn_vs
    assert 6 < tagnn_vs["E-DGCN"] < 16, tagnn_vs
    assert 4 < tagnn_vs["Cambricon-DG"] < 10, tagnn_vs
    # ordering: Cambricon-DG is the strongest baseline, Booster weakest
    assert tagnn_vs["DGNN-Booster"] > tagnn_vs["E-DGCN"] > tagnn_vs["Cambricon-DG"]


def test_fig10_traffic_reduction(benchmark):
    """TaGNN's advantage is traffic: its off-chip words are a small
    fraction of what the CSR-based baselines move."""

    def build():
        out = []
        for m in GRID_MODELS:
            for d in GRID_DATASETS:
                tagnn = get_tagnn_report(m, d)
                booster = get_platform_report("DGNN-Booster", m, d)
                cambricon = get_platform_report("Cambricon-DG", m, d)
                out.append(
                    [
                        m,
                        d,
                        100 * (1 - tagnn.extra["words"] / booster.extra["words"]),
                        100 * (1 - tagnn.extra["words"] / cambricon.extra["words"]),
                    ]
                )
        return out

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    text = render_table(
        "Fig 10 (analysis): off-chip traffic reduction by TaGNN (%)",
        ["Model", "Dataset", "vs DGNN-Booster", "vs Cambricon-DG"],
        rows,
        floatfmt="{:.1f}",
    )
    save_result("fig10_traffic_reduction", text)
    for r in rows:
        assert r[2] > 55.0  # paper: 78.3-84.6% vs Booster
        assert r[3] > 35.0  # paper: 52.1-63.4% vs Cambricon-DG
        assert r[2] > r[3]
