"""Ablations of this reproduction's own design choices (DESIGN.md).

Beyond the paper's figures, DESIGN.md calls out four load-bearing
decisions; each gets an ablation here so future changes cannot silently
invalidate them:

1. **Mean vs symmetric GCN normalisation** — under symmetric
   normalisation an unaffected vertex's output is *not* invariant (a
   neighbour's degree change leaks in), so the multi-snapshot GNN would
   be approximate instead of exact.
2. **Cosine-sharpness calibration** — without the affine stretch, the
   reservoir models' cosine distribution saturates near 1 and the
   paper's thresholds over-skip, costing accuracy.
3. **Per-batch refresh** — skipping without the window-boundary full
   update accumulates drift.
4. **Delta epsilon** — the condense threshold trades delta-path compute
   against exactness; the default keeps the path near-lossless.
"""

import numpy as np

from repro.analysis.similarity import similarity_scores
from repro.bench import (
    get_graph,
    get_labels,
    get_model,
    get_reference,
    render_table,
    save_result,
)
from repro.engine import ConcurrentEngine
from repro.models import evaluate_accuracy, fit_readout
from repro.skipping import condense, generate_delta


def build_normalization_ablation():
    """Error of reusing snapshot-0 GNN outputs for unaffected vertices,
    under mean vs symmetric normalisation."""
    from repro.analysis import classify_window

    g = get_graph("GT")
    w = g.window(0, 4)
    cls = classify_window(w)
    unaffected = cls.unaffected_mask & w[0].present
    x = w[0].features

    def sym_aggregate(snap, x):
        d = snap.degrees.astype(np.float64) + 1.0
        coeff = np.zeros_like(d)
        np.divide(1.0, np.sqrt(d), out=coeff, where=d > 0)
        coeff[~snap.present] = 0.0
        xs = x * coeff[:, None].astype(np.float32)
        out = np.zeros_like(xs)
        src = np.repeat(np.arange(snap.num_vertices), snap.degrees)
        np.add.at(out, src, xs[snap.indices])
        out += xs
        return out * coeff[:, None].astype(np.float32)

    rows = []
    for name, agg in (("mean", lambda s, x: s.aggregate(x)),
                      ("symmetric", sym_aggregate)):
        ref0 = agg(w[0], w[0].features)
        worst = 0.0
        for t in range(1, 4):
            out_t = agg(w[t], w[t].features)
            err = np.abs(out_t[unaffected] - ref0[unaffected])
            worst = max(worst, float(err.max()) if err.size else 0.0)
        rows.append([name, worst])
    return rows


def test_normalization_choice(benchmark):
    rows = benchmark.pedantic(build_normalization_ablation, rounds=1, iterations=1)
    text = render_table(
        "Design ablation: unaffected-vertex output invariance across a "
        "window, by GCN normalisation",
        ["normalisation", "max |output drift| on unaffected vertices"],
        rows,
        floatfmt="{:.2e}",
    )
    save_result("design_normalization", text)
    by = dict(rows)
    assert by["mean"] == 0.0  # exact invariance: OADL is an identity
    assert by["symmetric"] > 1e-4  # symmetric leaks neighbour-degree change


def build_sharpness_ablation():
    g = get_graph("FK")
    model = get_model("T-GCN", "FK")
    labels = get_labels("FK")
    ref = get_reference("T-GCN", "FK")
    readout = fit_readout(ref.outputs, labels, g)
    base = evaluate_accuracy(ref.outputs, labels, g, readout=readout)

    rows = []
    for sharp in (1.0, 10.0 / 3.0, 8.0):
        import repro.analysis.similarity as sim
        import repro.engine.concurrent as conc

        orig = sim.similarity_scores

        def patched(*args, _s=sharp, **kw):
            kw["sharpness"] = _s
            return orig(*args, **kw)

        conc.similarity_scores = patched
        try:
            res = ConcurrentEngine(model, window_size=4).run(g)
        finally:
            conc.similarity_scores = orig
        acc = evaluate_accuracy(res.outputs, labels, g, readout=readout)
        rows.append(
            [sharp, res.metrics.skip_ratio(), 100 * (base - acc)]
        )
    return rows


def test_sharpness_calibration(benchmark):
    rows = benchmark.pedantic(build_sharpness_ablation, rounds=1, iterations=1)
    text = render_table(
        "Design ablation: cosine sharpness vs skip ratio / accuracy loss "
        "(T-GCN on FK, thresholds [-0.5, 0.5])",
        ["sharpness", "skip ratio", "accuracy loss (pp)"],
        rows,
    )
    save_result("design_sharpness", text)
    raw, default, steep = rows
    # raw cosine saturates -> over-skips and loses more accuracy
    assert raw[1] > default[1]
    assert raw[2] > default[2]
    # the default stays accurate
    assert default[2] < 1.5
    # steeper = more conservative (skips less), no worse accuracy
    assert steep[1] <= default[1] + 1e-9


def build_refresh_ablation():
    g = get_graph("FK")
    model = get_model("T-GCN", "FK")
    labels = get_labels("FK")
    ref = get_reference("T-GCN", "FK")
    readout = fit_readout(ref.outputs, labels, g)
    base = evaluate_accuracy(ref.outputs, labels, g, readout=readout)
    rows = []
    for refresh in (True, False):
        res = ConcurrentEngine(
            model, window_size=4, refresh_each_window=refresh
        ).run(g)
        acc = evaluate_accuracy(res.outputs, labels, g, readout=readout)
        saved = res.metrics.cell_macs_saved / max(
            res.metrics.cell_macs + res.metrics.cell_macs_saved, 1
        )
        rows.append([str(refresh), 100 * (base - acc), saved])
    return rows


def test_batch_refresh(benchmark):
    rows = benchmark.pedantic(build_refresh_ablation, rounds=1, iterations=1)
    text = render_table(
        "Design ablation: per-batch full refresh (the paper's per-batch "
        "recalculation) — T-GCN on FK",
        ["refresh each window", "accuracy loss (pp)", "cell MACs saved"],
        rows,
    )
    save_result("design_refresh", text)
    with_r, without_r = rows
    # refreshing bounds the drift; skipping it saves more compute but
    # costs accuracy — exactly the trade-off the paper resolves by
    # recalculating per batch
    assert with_r[1] < without_r[1]
    assert without_r[2] > with_r[2]
    assert with_r[1] < 1.5


def build_epsilon_ablation():
    g = get_graph("GT")
    model = get_model("T-GCN", "GT")
    zs = [model.gnn_forward(s) for s in g]
    rows = []
    for eps in (1e-4, 1e-3, 1e-2, 1e-1):
        nnz_frac, err = [], []
        for t in range(1, len(zs)):
            delta = generate_delta(zs[t], zs[t - 1], epsilon=eps)
            packed = condense(delta)
            nnz_frac.append(packed.density())
            err.append(
                np.abs((zs[t - 1] + delta) - zs[t]).max()
            )
        rows.append([eps, float(np.mean(nnz_frac)), float(np.max(err))])
    return rows


def test_delta_epsilon(benchmark):
    rows = benchmark.pedantic(build_epsilon_ablation, rounds=1, iterations=1)
    text = render_table(
        "Design ablation: condense-unit epsilon vs delta density and "
        "reconstruction error (T-GCN on GT)",
        ["epsilon", "mean nnz density", "max reconstruction error"],
        rows,
        floatfmt="{:.4g}",
    )
    save_result("design_epsilon", text)
    densities = [r[1] for r in rows]
    errors = [r[2] for r in rows]
    # larger epsilon -> sparser deltas but larger error (monotone both ways)
    assert densities == sorted(densities, reverse=True)
    assert errors == sorted(errors)
    # the default (1e-3) reconstructs to within its threshold
    assert rows[1][2] <= 1e-3 + 1e-9


def build_gspm_ablation():
    """GSPM strategy comparison: cut fraction (= extra traffic) per
    strategy, on an id-shuffled window so vertex ids carry no locality."""
    from repro.accel import GSPM
    from repro.graphs import CSRSnapshot, DynamicGraph

    g = get_graph("FK")
    w = g.window(0, 4)
    rng = np.random.default_rng(0)
    perm = rng.permutation(w.num_vertices)
    snaps = []
    for s in w:
        edges = perm[s.edge_array()]
        feats = np.zeros_like(s.features)
        feats[perm] = s.features
        present = np.zeros_like(s.present)
        present[perm] = s.present
        snaps.append(
            CSRSnapshot.from_edges(
                w.num_vertices, edges, feats, present=present, undirected=False
            )
        )
    shuffled = DynamicGraph(snaps)
    gspm = GSPM(shuffled, budget_words=400 * (shuffled.dim + 2))
    plans = gspm.compare_strategies()
    return [
        [name, plan.num_partitions, plan.cut_fraction(),
         plan.extra_words(shuffled.dim)]
        for name, plan in plans.items()
    ]


def test_gspm_strategies(benchmark):
    rows = benchmark.pedantic(build_gspm_ablation, rounds=1, iterations=1)
    text = render_table(
        "Design ablation: GSPM partitioning strategies (FK, id-shuffled, "
        "4-snapshot window)",
        ["strategy", "#partitions", "cut fraction", "extra words"],
        rows,
        floatfmt="{:.3f}",
    )
    save_result("design_gspm", text)
    by = {r[0]: r for r in rows}
    # the DFS-locality strategy minimises the cut -> the least extra
    # off-chip traffic when a window overflows the Feature Memory
    assert by["locality"][2] < by["range"][2]
    assert by["locality"][2] < by["balanced"][2]
