"""Extension bench: dynamic link prediction under approximation.

The paper motivates DGNNs with dynamic link prediction but evaluates
accuracy on classification-style tasks (Table 5).  This bench runs the
structural analogue: ROC-AUC of next-snapshot link prediction under a
decoder trained on the exact model's embeddings, for exact inference,
TaGNN's similarity-aware skipping, and the prior approximation schemes.
The Table 5 shape must carry over: skipping costs ~nothing, the
topology-blind schemes cost real AUC.
"""

from repro.bench import (
    get_concurrent,
    get_graph,
    get_model,
    get_reference,
    render_table,
    save_result,
)
from repro.models import temporal_link_prediction_auc
from repro.skipping import APPROXIMATORS

CELLS = (("GC-LSTM", "GT"), ("T-GCN", "FK"), ("CD-GCN", "ML"))


def _approx_outputs(model_name, dataset, approx_name):
    g = get_graph(dataset)
    model = get_model(model_name, dataset)
    approx = APPROXIMATORS[approx_name]()
    approx.start(model.cell, g.num_vertices)
    state = model.init_state(g.num_vertices)
    outs = []
    for snap in g:
        z = model.gnn_forward(snap)
        h, state = approx.cell_step(model.cell, z, state)
        outs.append(h)
    return outs


def build_linkpred():
    rows = []
    for m, d in CELLS:
        g = get_graph(d)
        exact = get_reference(m, d).outputs
        auc_exact = temporal_link_prediction_auc(exact, g, num_samples=800)
        variants = {
            "TaGNN": get_concurrent(m, d).outputs,
            "TaGNN-DR": _approx_outputs(m, d, "TaGNN-DR"),
            "TaGNN-AM": _approx_outputs(m, d, "TaGNN-AM"),
            "TaGNN-AS": _approx_outputs(m, d, "TaGNN-AS"),
        }
        row = [m, d, 100 * auc_exact]
        for name in ("TaGNN", "TaGNN-DR", "TaGNN-AM", "TaGNN-AS"):
            auc = temporal_link_prediction_auc(
                variants[name], g, num_samples=800, decoder_outputs=exact
            )
            row.append(100 * auc)
        rows.append(row)
    return rows


def test_linkpred_under_approximation(benchmark):
    rows = benchmark.pedantic(build_linkpred, rounds=1, iterations=1)
    text = render_table(
        "Extension: next-snapshot link prediction AUC (%) under a fixed "
        "exact-model decoder",
        ["Model", "Dataset", "Exact", "TaGNN", "TaGNN-DR", "TaGNN-AM",
         "TaGNN-AS"],
        rows,
        floatfmt="{:.1f}",
    )
    save_result("ext_linkpred", text)
    for r in rows:
        exact, tagnn = r[2], r[3]
        priors = r[4:]
        assert exact > 55.0  # the task is learnable
        assert exact - tagnn < 2.0  # skipping costs < 2 AUC points
        # at least one prior scheme loses visibly more than TaGNN
        assert min(priors) < tagnn - 1.0
