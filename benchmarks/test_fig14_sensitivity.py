"""Figure 14 — sensitivity studies (T-GCN).

(a) thresholds [theta_s, theta_e]: performance/accuracy trade-off on FK
    (paper: [-0.5, 0.5] is the sweet spot);
(b) DCU count: performance peaks by 16 DCUs, then memory bandwidth
    saturates;
(c) snapshot-batch size on FK: best around 4 snapshots;
(d) MAC count: performance levels off with more MACs (4,096 chosen).
"""

import numpy as np

from repro.accel import TaGNNConfig, TaGNNSimulator
from repro.bench import (
    get_graph,
    get_labels,
    get_model,
    get_reference,
    get_workload,
    render_table,
    save_result,
    series_chart,
)
from repro.engine import ConcurrentEngine
from repro.models import evaluate_accuracy, fit_readout
from repro.skipping import SkipThresholds


def _simulate(m, d, cfg, engine_result=None):
    return TaGNNSimulator(cfg).simulate(
        get_model(m, d), get_graph(d), d,
        engine_result=engine_result,
        workload=get_workload(m, d, cfg.window_size),
    )


def build_fig14a():
    d = "FK"
    g = get_graph(d)
    model = get_model("T-GCN", d)
    labels = get_labels(d)
    readout = fit_readout(get_reference("T-GCN", d).outputs, labels, g)
    base_acc = evaluate_accuracy(
        get_reference("T-GCN", d).outputs, labels, g, readout=readout
    )
    rows = []
    for ts, te in [(-0.9, 0.9), (-0.5, 0.5), (-0.2, 0.2), (0.0, 0.9),
                   (-0.9, 0.0), (0.5, 0.9), (1.0, 1.0)]:
        engine = ConcurrentEngine(
            model, window_size=4, thresholds=SkipThresholds(ts, te)
        )
        res = engine.run(g)
        rep = _simulate("T-GCN", d, TaGNNConfig(), engine_result=res)
        acc = evaluate_accuracy(res.outputs, labels, g, readout=readout)
        rows.append(
            [f"[{ts:+.1f},{te:+.1f}]", rep.seconds * 1e6, 100 * acc,
             100 * (base_acc - acc), res.metrics.skip_ratio()]
        )
    return base_acc, rows


def test_fig14a_thresholds(benchmark):
    base_acc, rows = benchmark.pedantic(build_fig14a, rounds=1, iterations=1)
    text = render_table(
        f"Fig 14(a): [theta_s, theta_e] sensitivity — T-GCN on FK "
        f"(baseline acc {100 * base_acc:.1f}%)",
        ["thresholds", "time (us)", "accuracy %", "loss pp", "skip ratio"],
        rows,
    )
    save_result("fig14a_thresholds", text)
    by = {r[0]: r for r in rows}
    default = by["[-0.5,+0.5]"]
    never = by["[+1.0,+1.0]"]
    aggressive = by["[-0.9,+0.0]"]
    # skipping must actually buy time over never-skipping
    assert default[1] < never[1]
    # the default keeps accuracy within ~1.5 points
    assert default[3] < 1.5
    # more aggressive skipping saves at most a little more time but costs
    # more accuracy — the paper's reason to stop at [-0.5, 0.5]
    assert aggressive[4] >= default[4]
    assert aggressive[3] >= default[3] - 0.2


def build_fig14bcd():
    m, d = "T-GCN", "FK"
    dcus = [(n, _simulate(m, d, TaGNNConfig().with_dcus(n)).seconds * 1e6)
            for n in (2, 4, 8, 16, 32)]
    base_seconds = {}
    windows = []
    for k in (1, 2, 4, 6, 8):
        cfg = TaGNNConfig().with_window(k)
        rep = TaGNNSimulator(cfg).simulate(
            get_model(m, d), get_graph(d), d,
            workload=get_workload(m, d, k),
        )
        windows.append((k, rep.seconds * 1e6 / get_graph(d).num_snapshots))
    macs = [(n, _simulate(m, d, TaGNNConfig().with_macs(n)).seconds * 1e6)
            for n in (1024, 2048, 4096, 8192, 16384)]
    return dcus, windows, macs


def test_fig14bcd_scaling(benchmark):
    dcus, windows, macs = benchmark.pedantic(
        build_fig14bcd, rounds=1, iterations=1
    )
    text = (
        render_table("Fig 14(b): #DCUs vs time (us), T-GCN/FK",
                     ["DCUs", "time (us)"], dcus)
        + series_chart("Fig 14(b) chart", [d[0] for d in dcus],
                       [d[1] for d in dcus], ylabel="us")
        + render_table("Fig 14(c): snapshots per batch vs time per snapshot (us)",
                       ["window", "us/snapshot"], windows)
        + series_chart("Fig 14(c) chart", [w[0] for w in windows],
                       [w[1] for w in windows], ylabel="us/snapshot")
        + render_table("Fig 14(d): #MACs vs time (us)",
                       ["MACs", "time (us)"], macs)
        + series_chart("Fig 14(d) chart", [m_[0] for m_ in macs],
                       [m_[1] for m_ in macs], ylabel="us")
    )
    save_result("fig14bcd_scaling", text)

    t_dcu = dict(dcus)
    # performance improves up to 16 DCUs...
    assert t_dcu[2] > t_dcu[4] > t_dcu[8] > t_dcu[16]
    # ...with diminishing returns beyond (paper: memory bandwidth
    # saturates; in our model the fixed MSDL/ARU pipelines take over)
    gain_8_16 = (t_dcu[8] - t_dcu[16]) / t_dcu[8]
    gain_16_32 = (t_dcu[16] - t_dcu[32]) / t_dcu[16]
    assert gain_16_32 < gain_8_16
    assert gain_16_32 < 0.35

    t_win = dict(windows)
    # batching beats snapshot-by-snapshot strongly...
    assert t_win[4] < 0.7 * t_win[1]
    # ...with a clear knee at 4: gains flatten beyond it (the paper sees
    # a slight decline from identification overhead; our analytic loader
    # model plateaus instead — see EXPERIMENTS.md deviations)
    assert t_win[2] < t_win[1] and t_win[4] < t_win[2]
    assert abs(t_win[6] - t_win[4]) / t_win[4] < 0.15
    assert abs(t_win[8] - t_win[4]) / t_win[4] < 0.30
    gain_14 = (t_win[1] - t_win[4]) / t_win[1]
    gain_48 = max(0.0, (t_win[4] - t_win[8]) / t_win[4])
    assert gain_14 > 2 * gain_48  # diminishing returns past 4

    t_mac = dict(macs)
    assert t_mac[1024] > t_mac[4096]
    # diminishing returns beyond 4,096 (the paper's chosen size)
    gain_up = (t_mac[4096] - t_mac[16384]) / t_mac[4096]
    gain_down = (t_mac[1024] - t_mac[4096]) / t_mac[1024]
    assert gain_up < gain_down
