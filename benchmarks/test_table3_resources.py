"""Table 3 — FPGA resource utilisation of TaGNN on the U280."""

from repro.accel import estimate_resources
from repro.bench import GRID_MODELS, get_model, render_table, save_result

PAPER_TABLE3 = {
    "CD-GCN": {"DSP": 77.2, "LUT": 42.6, "FF": 34.9, "BRAM": 62.4, "UltraRAM": 82.4},
    "GC-LSTM": {"DSP": 80.2, "LUT": 49.5, "FF": 35.2, "BRAM": 69.7, "UltraRAM": 89.7},
    "T-GCN": {"DSP": 73.6, "LUT": 40.1, "FF": 30.4, "BRAM": 59.3, "UltraRAM": 80.3},
}


def build_table3():
    rows = []
    for m in GRID_MODELS:
        util = estimate_resources(get_model(m, "GT")).utilization()
        paper = PAPER_TABLE3[m]
        for res in ("DSP", "LUT", "FF", "BRAM", "UltraRAM"):
            rows.append([m, res, paper[res], 100 * util[res]])
    return rows


def test_table3_resources(benchmark):
    rows = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    text = render_table(
        "Table 3: U280 resource utilisation (%) — paper vs model",
        ["Model", "Resource", "Paper", "Reproduced"],
        rows,
        floatfmt="{:.1f}",
    )
    save_result("table3_resources", text)
    for m, res, paper, ours in rows:
        assert abs(ours - paper) < 7.0, (m, res, paper, ours)
        assert ours < 100.0  # must fit the device
