"""Figure 3 — the two insights TaGNN is built on.

(a) the unaffected-vertex ratio across 2/3/4-snapshot windows per
    dataset (paper bands: 27.3-45.3% at 3 snapshots, 10.6-24.4% at 4);
(b) the correlation between GNN-output similarity and final-feature
    similarity, and the accuracy cliff of topology-blind approximation
    (T-GCN on FK).
"""

import numpy as np

from repro.analysis import classify_window, cosine_rows
from repro.bench import (
    GRID_DATASETS,
    get_concurrent,
    get_graph,
    get_labels,
    get_model,
    get_reference,
    render_table,
    save_result,
)
from repro.models import evaluate_accuracy
from repro.skipping import DeltaRNNApprox


def build_fig3a():
    rows = []
    for d in GRID_DATASETS:
        g = get_graph(d)
        ratios = [
            100 * classify_window(g.window(0, k)).unaffected_ratio()
            for k in (2, 3, 4)
        ]
        rows.append([d] + ratios)
    return rows


def test_fig3a_unaffected_ratio(benchmark):
    rows = benchmark.pedantic(build_fig3a, rounds=1, iterations=1)
    text = render_table(
        "Fig 3(a): unaffected vertices / all vertices (%)",
        ["Dataset", "2 snapshots", "3 snapshots", "4 snapshots"],
        rows,
    )
    save_result("fig3a_unaffected", text)
    for r in rows:
        assert 25.0 <= r[2] <= 48.0, r  # paper band 27.3-45.3
        assert 9.0 <= r[3] <= 27.0, r  # paper band 10.6-24.4
        assert r[1] > r[2] > r[3]  # monotone in window size


def build_fig3b():
    """Correlate Z-similarity with H-similarity, and measure the accuracy
    of indiscriminate (topology-blind) delta-skipping at increasing
    aggressiveness — the paper's warning example."""
    d = "FK"
    g = get_graph(d)
    model = get_model("T-GCN", d)
    ref = get_reference("T-GCN", d)
    labels = get_labels(d)
    baseline_acc = evaluate_accuracy(ref.outputs, labels, g)

    # correlation: per vertex, cosine(Z_t, Z_{t+1}) vs cosine(H_t, H_{t+1})
    zs = [model.gnn_forward(s) for s in g]
    z_sim, h_sim = [], []
    for t in range(len(g) - 1):
        both = g[t].present & g[t + 1].present
        z_sim.append(cosine_rows(zs[t][both], zs[t + 1][both]))
        h_sim.append(cosine_rows(ref.outputs[t][both], ref.outputs[t + 1][both]))
    z_sim = np.concatenate(z_sim)
    h_sim = np.concatenate(h_sim)
    corr = float(np.corrcoef(z_sim, h_sim)[0, 1])

    # topology-blind approximation accuracy vs aggressiveness
    rows = []
    for th in (0.05, 0.15, 0.3, 0.6):
        approx = DeltaRNNApprox(threshold=th)
        approx.start(model.cell, g.num_vertices)
        state = model.init_state(g.num_vertices)
        outs = []
        for t, snap in enumerate(g):
            h, state = approx.cell_step(model.cell, zs[t], state)
            outs.append(h)
        acc = evaluate_accuracy(outs, labels, g)
        rows.append([th, 100 * acc, 100 * (baseline_acc - acc)])
    return corr, baseline_acc, rows


def test_fig3b_stability_and_accuracy(benchmark):
    corr, baseline_acc, rows = benchmark.pedantic(
        build_fig3b, rounds=1, iterations=1
    )
    text = render_table(
        f"Fig 3(b): T-GCN on FK — Z/H similarity correlation = {corr:.3f}, "
        f"baseline acc = {100 * baseline_acc:.1f}%",
        ["blind-delta threshold", "accuracy (%)", "loss vs baseline (pp)"],
        rows,
    )
    save_result("fig3b_stability", text)
    # Insight Two: similar GNN outputs -> similar final features
    assert corr > 0.5
    # the baseline is solid (FK: paper reports 58.4% for T-GCN; our
    # synthetic task gives a comparable mid-range accuracy)
    assert baseline_acc > 0.45
    # topology-blind approximation costs real accuracy as it gets more
    # aggressive (the paper's sub-54.3% example)
    assert rows[-1][2] > rows[0][2]
    assert rows[-1][2] > 2.0  # multiple points lost at high thresholds
