"""Figure 11 — energy consumption normalised to TaGNN.

Paper averages: TaGNN saves 742.6x vs DGL-CPU, 104.9x vs PiPAD, and
15.9x / 11.7x / 7.8x vs DGNN-Booster / E-DGCN / Cambricon-DG.
"""

from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    geomean,
    get_platform_report,
    render_table,
    save_result,
)

PLATFORMS = ("DGL-CPU", "PiPAD", "DGNN-Booster", "E-DGCN", "Cambricon-DG")


def build_fig11():
    rows = []
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            tagnn = get_platform_report("TaGNN", m, d)
            rows.append(
                [m, d]
                + [
                    get_platform_report(p, m, d).joules / tagnn.joules
                    for p in PLATFORMS
                ]
            )
    return rows


def test_fig11_energy(benchmark):
    rows = benchmark.pedantic(build_fig11, rounds=1, iterations=1)
    avg = ["AVG", ""] + [
        geomean([r[2 + i] for r in rows]) for i in range(len(PLATFORMS))
    ]
    text = render_table(
        "Fig 11: energy consumption normalised to TaGNN (higher = worse)",
        ["Model", "Dataset"] + list(PLATFORMS),
        rows + [avg],
        floatfmt="{:.1f}",
    )
    save_result("fig11_energy", text)

    # energy composition (where each platform's joules go) — the analysis
    # behind the paper's attribution of TaGNN's savings to its pipeline
    # and memory subsystem
    comp_rows = []
    for p in ("TaGNN",) + PLATFORMS:
        r = get_platform_report(p, "T-GCN", "GT")
        bd = r.extra["energy_breakdown"]
        tot = sum(bd.values())
        comp_rows.append(
            [p] + [100 * bd[k] / tot for k in
                   ("compute_j", "sram_j", "dram_j", "static_j")]
        )
    comp = render_table(
        "Fig 11 (analysis): energy composition (%) — T-GCN on GT",
        ["Platform", "compute", "SRAM", "DRAM", "static"],
        comp_rows,
        floatfmt="{:.1f}",
    )
    save_result("fig11_energy_composition", comp)

    means = dict(zip(PLATFORMS, avg[2:]))
    # bands around the paper averages
    assert 350 < means["DGL-CPU"] < 1500, means
    assert 50 < means["PiPAD"] < 220, means
    assert 9 < means["DGNN-Booster"] < 26, means
    assert 7 < means["E-DGCN"] < 20, means
    assert 5 < means["Cambricon-DG"] < 12, means
    # every platform costs more energy than TaGNN in every cell
    for r in rows:
        assert all(v > 1.0 for v in r[2:])
