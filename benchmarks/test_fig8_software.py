"""Figure 8 — TaGNN-S against the software systems (T-GCN, window = 4).

(a) normalised execution time with memory / compute / runtime-overhead
    split, for DGL-CPU, PiPAD, and TaGNN-S;
(b) the memory-access and computation reductions TaGNN-S achieves over
    the conventional pattern (paper: 21.2-47.5% less redundant access
    time and 14.2-22.2% less unnecessary computation for T-GCN).
"""

from repro.bench import (
    GRID_DATASETS,
    geomean,
    get_concurrent,
    get_platform_report,
    get_reference,
    render_table,
    save_result,
)


def build_fig8a():
    rows = []
    for d in GRID_DATASETS:
        cpu = get_platform_report("DGL-CPU", "T-GCN", d)
        base = cpu.seconds
        for name in ("DGL-CPU", "PiPAD", "TaGNN-S"):
            r = get_platform_report(name, "T-GCN", d)
            bd = r.breakdown
            tot = r.seconds
            rows.append(
                [
                    d,
                    name,
                    tot / base,
                    100 * bd["memory_s"] / tot,
                    100 * bd["compute_s"] / tot,
                    100 * bd["overhead_s"] / tot,
                ]
            )
    return rows


def test_fig8a_breakdown(benchmark):
    rows = benchmark.pedantic(build_fig8a, rounds=1, iterations=1)
    text = render_table(
        "Fig 8(a): software systems, normalised time + breakdown (T-GCN, w=4)",
        ["Dataset", "System", "Norm. time", "Memory %", "Compute %", "Overhead %"],
        rows,
        floatfmt="{:.3f}",
    )
    save_result("fig8a_software_breakdown", text)
    by = {(r[0], r[1]): r for r in rows}
    ratios, ovh_fracs, mem_ratios = [], [], []
    for d in GRID_DATASETS:
        pipad = by[(d, "PiPAD")]
        ts = by[(d, "TaGNN-S")]
        ratios.append(pipad[2] / ts[2])
        ovh_fracs.append(ts[5])
        # memory access time ratio PiPAD / TaGNN-S
        mem_ratios.append((pipad[2] * pipad[3]) / (ts[2] * ts[3]))
    # TaGNN-S outperforms PiPAD overall (but only modestly)
    assert geomean(ratios) > 1.0
    assert geomean(ratios) < 3.0
    # runtime overhead is a large share of TaGNN-S (paper: 40.1-62.3%)
    assert sum(ovh_fracs) / len(ovh_fracs) > 35.0
    # PiPAD's memory time is a multiple of TaGNN-S's (paper: 2.7-4.1x)
    assert min(mem_ratios) > 1.8


def build_fig8b():
    rows = []
    for d in GRID_DATASETS:
        ref = get_reference("T-GCN", d).metrics
        conc = get_concurrent("T-GCN", d).metrics
        access_red = 100 * (1 - conc.total_words / ref.total_words)
        comp_red = 100 * (
            1 - (conc.total_macs) / ref.total_macs
        )
        rows.append([d, access_red, comp_red, 100 * conc.skip_ratio()])
    return rows


def test_fig8b_reductions(benchmark):
    rows = benchmark.pedantic(build_fig8b, rounds=1, iterations=1)
    text = render_table(
        "Fig 8(b): TaGNN-S reductions over conventional execution (T-GCN)",
        ["Dataset", "Access words saved %", "Computation saved %", "Cells skipped %"],
        rows,
        floatfmt="{:.1f}",
    )
    save_result("fig8b_reductions", text)
    for r in rows:
        assert r[1] > 10.0  # meaningful access reduction (paper 21-47%)
        assert r[2] > 10.0  # meaningful compute reduction (paper 14-22%)
