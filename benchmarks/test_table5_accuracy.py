"""Table 5 — accuracy of TaGNN's similarity-aware skipping vs prior RNN
approximation schemes.

Protocol (DESIGN.md): frozen reservoir models + trained ridge readout on
each variant's own embeddings, against teacher labels.  The paper's
shape: TaGNN loses < 1 point vs exact inference, while DeltaRNN / ALSTM /
ATLAS grafts lose many points because they ignore graph topology.
"""

import numpy as np

from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    get_concurrent,
    get_graph,
    get_labels,
    get_model,
    get_reference,
    render_table,
    save_result,
)
from repro.models import evaluate_accuracy, fit_readout
from repro.skipping import APPROXIMATORS

METHODS = ("Baseline", "TaGNN-DR", "TaGNN-AM", "TaGNN-AS", "TaGNN")


def _approx_outputs(model_name, dataset, approx_name):
    """Run a model with the GNN exact and the named RNN approximation."""
    g = get_graph(dataset)
    model = get_model(model_name, dataset)
    approx = APPROXIMATORS[approx_name]()
    approx.start(model.cell, g.num_vertices)
    state = model.init_state(g.num_vertices)
    outs = []
    for snap in g:
        z = model.gnn_forward(snap)
        h, state = approx.cell_step(model.cell, z, state)
        outs.append(h)
    return outs


def accuracy_matrix():
    table = {}
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            g = get_graph(d)
            labels = get_labels(d)
            base_outputs = get_reference(m, d).outputs
            # deployment protocol: the readout is trained once on the
            # exact model's embeddings, then held fixed for every variant
            readout = fit_readout(base_outputs, labels, g)
            accs = {}
            accs["Baseline"] = evaluate_accuracy(
                base_outputs, labels, g, readout=readout
            )
            for name in ("TaGNN-DR", "TaGNN-AM", "TaGNN-AS"):
                accs[name] = evaluate_accuracy(
                    _approx_outputs(m, d, name), labels, g, readout=readout
                )
            accs["TaGNN"] = evaluate_accuracy(
                get_concurrent(m, d).outputs, labels, g, readout=readout
            )
            table[(m, d)] = accs
    return table


def test_table5_accuracy(benchmark):
    table = benchmark.pedantic(accuracy_matrix, rounds=1, iterations=1)
    rows = []
    for m in GRID_MODELS:
        for method in METHODS:
            rows.append(
                [m, method]
                + [100 * table[(m, d)][method] for d in GRID_DATASETS]
            )
        losses = [
            100 * (table[(m, d)]["Baseline"] - table[(m, d)]["TaGNN"])
            for d in GRID_DATASETS
        ]
        rows.append(
            [m, "TaGNN loss", *losses]
        )
    text = render_table(
        "Table 5: accuracy (%) — baseline vs approximation methods",
        ["Model", "Method"] + list(GRID_DATASETS),
        rows,
        floatfmt="{:.1f}",
    )
    save_result("table5_accuracy", text)

    for m in GRID_MODELS:
        tagnn_losses = []
        for d in GRID_DATASETS:
            accs = table[(m, d)]
            base = accs["Baseline"]
            tagnn_losses.append(base - accs["TaGNN"])
            # every prior approximation loses more than TaGNN
            worst_prior = min(accs[n] for n in ("TaGNN-DR", "TaGNN-AM", "TaGNN-AS"))
            assert accs["TaGNN"] > worst_prior, (m, d, accs)
        # TaGNN's loss stays small on average (paper: 0.1-0.9 points;
        # we allow up to 2 points on the synthetic task)
        assert np.mean(tagnn_losses) < 0.02, (m, tagnn_losses)
        # and the prior methods lose several points on average
        prior_losses = [
            table[(m, d)]["Baseline"] - min(
                table[(m, d)][n] for n in ("TaGNN-DR", "TaGNN-AM", "TaGNN-AS")
            )
            for d in GRID_DATASETS
        ]
        assert np.mean(prior_losses) > 0.03, (m, prior_losses)
