"""Figure 9 — overall performance normalised to DGL-CPU.

The paper's headline software comparison: TaGNN beats DGL-CPU by
415.2-612.6x (535.2x average) and PiPAD by 62.8-146.4x (84.3x average);
TaGNN-S sits slightly above PiPAD.
"""

from repro.bench import (
    GRID_DATASETS,
    GRID_MODELS,
    bar_chart,
    geomean,
    get_platform_report,
    render_table,
    save_result,
)

SYSTEMS = ("DGL-CPU", "PiPAD", "TaGNN-S", "TaGNN")


def build_fig9():
    rows = []
    for m in GRID_MODELS:
        for d in GRID_DATASETS:
            base = get_platform_report("DGL-CPU", m, d).seconds
            speedups = [
                base / get_platform_report(s, m, d).seconds for s in SYSTEMS
            ]
            rows.append([m, d] + speedups)
    return rows


def test_fig9_speedups(benchmark):
    rows = benchmark.pedantic(build_fig9, rounds=1, iterations=1)
    avg = ["AVG", ""] + [
        geomean([r[2 + i] for r in rows]) for i in range(len(SYSTEMS))
    ]
    text = render_table(
        "Fig 9: speedup over DGL-CPU (higher is better)",
        ["Model", "Dataset"] + list(SYSTEMS),
        rows + [avg],
        floatfmt="{:.1f}",
    )
    text += "\n" + bar_chart(
        "Fig 9 (chart): geomean speedup over DGL-CPU (log scale)",
        list(SYSTEMS),
        avg[2:],
        log=True,
        unit="x",
    )
    save_result("fig9_speedup", text)

    tagnn_over_cpu = [r[5] for r in rows]
    tagnn_over_pipad = [r[5] / r[3] for r in rows]
    # headline bands (paper: 415-613x CPU, 63-146x GPU on real datasets;
    # we accept a generous band around the same order of magnitude)
    avg_cpu = geomean(tagnn_over_cpu)
    avg_gpu = geomean(tagnn_over_pipad)
    assert 250 < avg_cpu < 1100, avg_cpu
    assert 40 < avg_gpu < 180, avg_gpu
    for r in rows:
        # ordering holds in every cell: TaGNN > TaGNN-S >= ~PiPAD > DGL
        assert r[5] > r[4] > 1.0
        assert r[3] > 1.0


def test_fig9_tagnn_s_vs_pipad(benchmark):
    rows = benchmark.pedantic(build_fig9, rounds=1, iterations=1)
    ratios = [r[4] / r[3] for r in rows]  # TaGNN-S / PiPAD
    # Fig 8/9: TaGNN-S only slightly outperforms PiPAD on average
    g = geomean(ratios)
    assert 0.9 < g < 2.5, g
