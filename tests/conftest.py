"""Suite-wide fixtures.

The runtime sanitizer (repro.check.sanitizer) is enabled for every test,
so each existing simulator test doubles as a conservation test: any
cycle-simulator, memory-model, O-CSR, or energy-composition invariant
violation surfaces as a SanitizerViolation in whichever test triggered
it.
"""

import pytest

from repro.check.sanitizer import sanitized


@pytest.fixture(autouse=True)
def _repro_sanitizer():
    """Run every test under the runtime sanitizer."""
    with sanitized():
        yield
