"""Property tests of the central engine invariant: topology-aware
concurrent execution without skipping is *exactly* the reference
computation, for arbitrary random dynamic graphs, models, and windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import ChurnConfig, DynamicGraphSpec, generate_dynamic_graph
from repro.models import make_model


def random_graph(seed, n=80, t=6, churn_scale=1.0):
    return generate_dynamic_graph(
        DynamicGraphSpec(
            name="prop",
            num_vertices=n,
            num_edges=250,
            dim=6,
            num_snapshots=t,
            churn=ChurnConfig().scaled(churn_scale),
            seed=seed,
        )
    )


class TestExactnessProperty:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        model_name=st.sampled_from(["T-GCN", "CD-GCN", "GC-LSTM", "EvolveGCN", "GCRN"]),
        window=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_bit_exact_for_random_workloads(self, seed, model_name, window):
        g = random_graph(seed)
        ref = ReferenceEngine(
            make_model(model_name, g.dim, 8, seed=seed), window_size=window
        ).run(g)
        conc = ConcurrentEngine(
            make_model(model_name, g.dim, 8, seed=seed),
            window_size=window,
            enable_skipping=False,
        ).run(g)
        for a, b in zip(ref.outputs, conc.outputs):
            np.testing.assert_array_equal(a, b)

    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        churn=st.floats(min_value=0.2, max_value=3.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_exact_under_extreme_churn(self, seed, churn):
        """High- and low-churn regimes alike: exactness does not depend
        on how much of the graph changes."""
        g = random_graph(seed, churn_scale=churn)
        ref = ReferenceEngine(
            make_model("T-GCN", g.dim, 8, seed=seed), window_size=3
        ).run(g)
        conc = ConcurrentEngine(
            make_model("T-GCN", g.dim, 8, seed=seed),
            window_size=3,
            enable_skipping=False,
        ).run(g)
        for a, b in zip(ref.outputs, conc.outputs):
            np.testing.assert_array_equal(a, b)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_skipping_error_bounded(self, seed):
        """With skipping on, divergence stays bounded even on random
        workloads (the similarity gate + per-batch refresh at work)."""
        g = random_graph(seed)
        ref = ReferenceEngine(
            make_model("T-GCN", g.dim, 8, seed=seed), window_size=3
        ).run(g)
        conc = ConcurrentEngine(
            make_model("T-GCN", g.dim, 8, seed=seed), window_size=3
        ).run(g)
        err = np.mean(
            [np.abs(a - b).mean() for a, b in zip(ref.outputs, conc.outputs)]
        )
        assert err < 0.1

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_traffic_never_exceeds_reference(self, seed):
        """The concurrent engine can never move more feature words than
        the conventional pattern."""
        g = random_graph(seed)
        ref = ReferenceEngine(
            make_model("T-GCN", g.dim, 8, seed=seed), window_size=3
        ).run(g)
        conc = ConcurrentEngine(
            make_model("T-GCN", g.dim, 8, seed=seed), window_size=3
        ).run(g)
        assert conc.metrics.feature_words <= ref.metrics.feature_words
