"""Tests for push-based streaming inference."""

import numpy as np
import pytest

from repro.engine import ConcurrentEngine, StreamingInference
from repro.graphs import load_dataset
from repro.models import MODEL_ZOO, make_model


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=10)


def run_stream(model, graph, window=4, **kw):
    stream = StreamingInference(model, window_size=window, **kw)
    outs, stamps = [], []
    for snap in graph:
        r = stream.push(snap)
        if r:
            outs.extend(r.outputs)
            stamps.extend(r.timestamps)
    r = stream.flush()
    if r:
        outs.extend(r.outputs)
        stamps.extend(r.timestamps)
    return outs, stamps, stream


class TestStreamingEquivalence:
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_stream_equals_batch(self, graph, name):
        """Pushing snapshot-by-snapshot must reproduce the batch engine's
        outputs bit-for-bit (including the trailing partial window)."""
        batch = ConcurrentEngine(
            make_model(name, graph.dim, 16, seed=1), window_size=4
        ).run(graph)
        outs, stamps, _ = run_stream(
            make_model(name, graph.dim, 16, seed=1), graph
        )
        assert stamps == list(range(10))
        for a, b in zip(outs, batch.outputs):
            np.testing.assert_array_equal(a, b)

    def test_stream_equals_batch_no_skipping(self, graph):
        batch = ConcurrentEngine(
            make_model("T-GCN", graph.dim, 16, seed=1),
            window_size=3,
            enable_skipping=False,
        ).run(graph)
        outs, _, _ = run_stream(
            make_model("T-GCN", graph.dim, 16, seed=1), graph,
            window=3, enable_skipping=False,
        )
        for a, b in zip(outs, batch.outputs):
            np.testing.assert_array_equal(a, b)


class TestStreamingAPI:
    def test_results_only_on_full_windows(self, graph):
        stream = StreamingInference(
            make_model("T-GCN", graph.dim, 16, seed=1), window_size=4
        )
        assert stream.push(graph[0]) is None
        assert stream.pending == 1
        assert stream.push(graph[1]) is None
        assert stream.push(graph[2]) is None
        r = stream.push(graph[3])
        assert r is not None and len(r.outputs) == 4
        assert stream.pending == 0

    def test_flush_partial_window(self, graph):
        stream = StreamingInference(
            make_model("T-GCN", graph.dim, 16, seed=1), window_size=4
        )
        stream.push(graph[0])
        stream.push(graph[1])
        r = stream.flush()
        assert r is not None and len(r.outputs) == 2
        assert stream.flush() is None  # nothing left

    def test_metrics_accumulate(self, graph):
        _, _, stream = run_stream(
            make_model("T-GCN", graph.dim, 16, seed=1), graph
        )
        assert stream.metrics.snapshots_processed == 10
        assert stream.metrics.windows_processed == 3  # 4 + 4 + 2

    def test_vertex_count_change_rejected(self, graph):
        from repro.graphs import CSRSnapshot

        stream = StreamingInference(
            make_model("T-GCN", graph.dim, 16, seed=1), window_size=2
        )
        stream.push(graph[0])
        stream.push(graph[1])
        bad = CSRSnapshot.from_edges(graph.num_vertices + 5,
                                     np.array([[0, 1]]), dim=graph.dim)
        with pytest.raises(ValueError, match="vertex count"):
            stream.push(bad)

    def test_invalid_window(self, graph):
        with pytest.raises(ValueError):
            StreamingInference(
                make_model("T-GCN", graph.dim, 16), window_size=0
            )
