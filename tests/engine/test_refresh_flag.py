"""Unit tests for the per-batch refresh design flag."""

import numpy as np

from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_dataset
from repro.models import make_model


class TestRefreshFlag:
    def test_no_refresh_skips_more(self):
        g = load_dataset("GT", num_snapshots=8)
        with_r = ConcurrentEngine(
            make_model("T-GCN", g.dim, 16, seed=1), window_size=4
        ).run(g)
        without_r = ConcurrentEngine(
            make_model("T-GCN", g.dim, 16, seed=1),
            window_size=4,
            refresh_each_window=False,
        ).run(g)
        assert without_r.metrics.cells_full < with_r.metrics.cells_full
        assert without_r.metrics.cells_skipped > with_r.metrics.cells_skipped

    def test_no_refresh_drifts_more(self):
        g = load_dataset("GT", num_snapshots=8)
        ref = ReferenceEngine(
            make_model("T-GCN", g.dim, 16, seed=1), window_size=4
        ).run(g)

        def err(refresh):
            res = ConcurrentEngine(
                make_model("T-GCN", g.dim, 16, seed=1),
                window_size=4,
                refresh_each_window=refresh,
            ).run(g)
            return np.mean(
                [np.abs(a - b).mean() for a, b in zip(res.outputs, ref.outputs)]
            )

        assert err(False) > err(True)

    def test_exactness_unaffected_by_flag_when_not_skipping(self):
        g = load_dataset("GT", num_snapshots=8)
        ref = ReferenceEngine(
            make_model("T-GCN", g.dim, 16, seed=1), window_size=4
        ).run(g)
        res = ConcurrentEngine(
            make_model("T-GCN", g.dim, 16, seed=1),
            window_size=4,
            enable_skipping=False,
            refresh_each_window=False,
        ).run(g)
        for a, b in zip(ref.outputs, res.outputs):
            np.testing.assert_array_equal(a, b)
