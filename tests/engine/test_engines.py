"""Engine tests: exactness, savings, skipping behaviour, ablation flags.

The central invariant: ``ConcurrentEngine(enable_skipping=False)`` is
bit-exact against ``ReferenceEngine`` for every model — the multi-snapshot
GNN with changed-set propagation is an *identity*, not an approximation.
"""

import numpy as np
import pytest

from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_dataset
from repro.models import MODEL_ZOO, make_model
from repro.skipping import SkipThresholds


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=8)


@pytest.fixture(scope="module")
def reference_results(graph):
    out = {}
    for name in MODEL_ZOO:
        model = make_model(name, graph.dim, 24, seed=5)
        out[name] = (model, ReferenceEngine(model, window_size=4).run(graph))
    return out


class TestReferenceEngine:
    def test_output_shapes(self, graph, reference_results):
        _, res = reference_results["T-GCN"]
        assert len(res.outputs) == graph.num_snapshots
        assert res.outputs[0].shape == (graph.num_vertices, 24)

    def test_metrics_populated(self, reference_results):
        _, res = reference_results["T-GCN"]
        m = res.metrics
        assert m.total_words > 0
        assert m.total_macs > 0
        assert m.cells_full > 0
        assert m.cells_skipped == 0
        assert m.snapshots_processed == 8

    def test_redundancy_accounted(self, reference_results):
        _, res = reference_results["T-GCN"]
        assert 0 < res.metrics.redundant_words < res.metrics.total_words

    def test_absent_rows_frozen(self, graph):
        """Vertices absent at t keep their previous output row."""
        model = make_model("T-GCN", graph.dim, 24, seed=5)
        res = ReferenceEngine(model).run(graph)
        for t in range(1, graph.num_snapshots):
            absent = ~graph[t].present
            if absent.any():
                np.testing.assert_array_equal(
                    res.outputs[t][absent], res.outputs[t - 1][absent]
                )

    def test_invalid_window_size(self, graph):
        model = make_model("T-GCN", graph.dim, 24)
        with pytest.raises(ValueError):
            ReferenceEngine(model, window_size=0)


class TestConcurrentEngineExactness:
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_bit_exact_without_skipping(self, graph, reference_results, name):
        model, ref = reference_results[name]
        res = ConcurrentEngine(
            model, window_size=4, enable_skipping=False
        ).run(graph)
        for a, b in zip(res.outputs, ref.outputs):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_exact_without_overlap_too(self, graph, reference_results, name):
        """Disabling OADL must not change semantics either."""
        model, ref = reference_results[name]
        res = ConcurrentEngine(
            model, window_size=4, enable_skipping=False, enable_overlap=False
        ).run(graph)
        for a, b in zip(res.outputs, ref.outputs):
            np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-6)

    def test_window_size_one_exact(self, graph, reference_results):
        model, ref = reference_results["T-GCN"]
        res = ConcurrentEngine(
            model, window_size=1, enable_skipping=False
        ).run(graph)
        for a, b in zip(res.outputs, ref.outputs):
            np.testing.assert_array_equal(a, b)

    def test_non_divisible_window(self, reference_results):
        """T=7 with window 4 -> windows of 4 and 3; still exact."""
        g7 = load_dataset("GT", num_snapshots=7)
        model = make_model("T-GCN", g7.dim, 24, seed=5)
        ref = ReferenceEngine(model, window_size=4).run(g7)
        res = ConcurrentEngine(model, window_size=4, enable_skipping=False).run(g7)
        for a, b in zip(res.outputs, ref.outputs):
            np.testing.assert_array_equal(a, b)


class TestConcurrentEngineSkipping:
    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_outputs_close_with_skipping(self, graph, reference_results, name):
        model, ref = reference_results[name]
        res = ConcurrentEngine(model, window_size=4).run(graph)
        # bounded approximation: mean absolute divergence stays small
        # (the ungated Elman cell in GCRN drifts the most of the zoo)
        err = np.mean(
            [np.abs(a - b).mean() for a, b in zip(res.outputs, ref.outputs)]
        )
        assert err < 0.08

    def test_skipping_saves_cell_macs(self, graph, reference_results):
        model, ref = reference_results["T-GCN"]
        res = ConcurrentEngine(model, window_size=4).run(graph)
        assert res.metrics.cells_skipped > 0
        assert res.metrics.cell_macs_saved > 0
        assert res.metrics.cell_macs < ref.metrics.cell_macs

    def test_overlap_saves_traffic_and_macs(self, graph, reference_results):
        model, ref = reference_results["T-GCN"]
        res = ConcurrentEngine(model, window_size=4, enable_skipping=False).run(graph)
        m = res.metrics
        assert m.feature_words < ref.metrics.feature_words
        assert m.aggregation_macs < ref.metrics.aggregation_macs
        assert m.combination_macs < ref.metrics.combination_macs

    def test_decisions_recorded(self, graph):
        model = make_model("T-GCN", graph.dim, 24, seed=5)
        res = ConcurrentEngine(model, window_size=4).run(graph)
        decisions = res.extra["decisions"]
        assert len(decisions) > 0
        modes = np.concatenate([d.modes for d in decisions])
        assert len(np.unique(modes)) >= 2  # policy actually differentiates

    def test_never_skip_thresholds(self, graph, reference_results):
        """theta_s = theta_e = 1 -> no vertex can exceed theta_e, so SKIP
        mode is impossible (vertices at exactly 1.0 take DELTA, which is
        lossless for an unchanged input)."""
        model, ref = reference_results["T-GCN"]
        res = ConcurrentEngine(
            model, window_size=4, thresholds=SkipThresholds(1.0, 1.0)
        ).run(graph)
        d = res.extra["decisions"]
        assert all(dd.counts()["skip"] == 0 for dd in d)
        # only the unaffected force-skip remains: divergence stays small
        err = np.mean(
            [np.abs(a - b).mean() for a, b in zip(res.outputs, ref.outputs)]
        )
        assert err < 0.02

    def test_wider_skip_band_saves_more(self, graph):
        model = make_model("T-GCN", graph.dim, 24, seed=5)
        narrow = ConcurrentEngine(
            model, window_size=4, thresholds=SkipThresholds(0.8, 0.9)
        ).run(graph)
        wide = ConcurrentEngine(
            model, window_size=4, thresholds=SkipThresholds(-0.9, 0.0)
        ).run(graph)
        assert wide.metrics.cells_skipped > narrow.metrics.cells_skipped

    def test_window_accounting(self, graph):
        model = make_model("T-GCN", graph.dim, 24, seed=5)
        res = ConcurrentEngine(model, window_size=4).run(graph)
        assert res.metrics.windows_processed == 2
        assert res.metrics.snapshots_processed == 8
        assert res.metrics.overhead_ops > 0

    def test_invalid_window_size(self, graph):
        model = make_model("T-GCN", graph.dim, 24)
        with pytest.raises(ValueError):
            ConcurrentEngine(model, window_size=0)
