"""Tests for the execution-metrics counters."""

import pytest

from repro.engine import ExecutionMetrics
from repro.engine.metrics import SCALAR_FIELDS


class TestExecutionMetrics:
    def test_totals(self):
        m = ExecutionMetrics(
            feature_words=100, structure_words=50, weight_words=25, output_words=25
        )
        assert m.total_words == 200
        assert m.total_bytes == 800

    def test_useful_ratio(self):
        m = ExecutionMetrics(feature_words=100, redundant_words=25)
        assert m.useful_ratio() == pytest.approx(0.75)

    def test_useful_ratio_empty(self):
        assert ExecutionMetrics().useful_ratio() == 1.0

    def test_skip_ratio(self):
        m = ExecutionMetrics(cells_full=5, cells_delta=3, cells_skipped=2)
        assert m.skip_ratio() == pytest.approx(0.2)
        assert ExecutionMetrics().skip_ratio() == 0.0

    def test_total_macs(self):
        m = ExecutionMetrics(
            aggregation_macs=10, combination_macs=20, cell_macs=30
        )
        assert m.total_macs == 60

    def test_merge(self):
        a = ExecutionMetrics(feature_words=10, cells_full=1)
        b = ExecutionMetrics(feature_words=5, cells_skipped=2)
        c = a.merge(b)
        assert c.feature_words == 15
        assert c.cells_full == 1
        assert c.cells_skipped == 2
        # originals untouched
        assert a.feature_words == 10

    def test_breakdown_keys(self):
        bd = ExecutionMetrics().breakdown()
        assert set(bd) == {"aggregation", "combination", "cell_update", "overhead"}

    def test_as_dict_roundtrip(self):
        m = ExecutionMetrics(feature_words=7)
        d = m.as_dict()
        assert d["feature_words"] == 7
        assert ExecutionMetrics(**d).feature_words == 7


class TestWindowModes:
    def test_record_and_read_back(self):
        m = ExecutionMetrics()
        m.record_window_modes(5, 2, 1)
        m.record_window_modes(0, 0, 8)
        assert m.window_modes == [(5, 2, 1), (0, 0, 8)]
        assert m.per_window_modes() == [
            {"full": 5, "delta": 2, "skip": 1},
            {"full": 0, "delta": 0, "skip": 8},
        ]

    def test_merge_concatenates_trajectories(self):
        a = ExecutionMetrics()
        a.record_window_modes(1, 0, 0)
        b = ExecutionMetrics()
        b.record_window_modes(0, 2, 0)
        c = a.merge(b)
        assert c.window_modes == [(1, 0, 0), (0, 2, 0)]
        # originals untouched (no aliasing through merge)
        assert a.window_modes == [(1, 0, 0)]

    def test_as_dict_copies_the_list(self):
        m = ExecutionMetrics()
        m.record_window_modes(3, 1, 0)
        d = m.as_dict()
        d["window_modes"].append((9, 9, 9))
        assert m.window_modes == [(3, 1, 0)]

    def test_scalar_fields_exclude_lists(self):
        assert "window_modes" not in SCALAR_FIELDS
        assert "delta_nnz" in SCALAR_FIELDS
        assert "windows_planned" in SCALAR_FIELDS
        assert "drift_probes" in SCALAR_FIELDS
        m = ExecutionMetrics()
        for name in SCALAR_FIELDS:
            assert isinstance(getattr(m, name), int)
