"""Tests for the execution-metrics counters."""

import pytest

from repro.engine import ExecutionMetrics


class TestExecutionMetrics:
    def test_totals(self):
        m = ExecutionMetrics(
            feature_words=100, structure_words=50, weight_words=25, output_words=25
        )
        assert m.total_words == 200
        assert m.total_bytes == 800

    def test_useful_ratio(self):
        m = ExecutionMetrics(feature_words=100, redundant_words=25)
        assert m.useful_ratio() == pytest.approx(0.75)

    def test_useful_ratio_empty(self):
        assert ExecutionMetrics().useful_ratio() == 1.0

    def test_skip_ratio(self):
        m = ExecutionMetrics(cells_full=5, cells_delta=3, cells_skipped=2)
        assert m.skip_ratio() == pytest.approx(0.2)
        assert ExecutionMetrics().skip_ratio() == 0.0

    def test_total_macs(self):
        m = ExecutionMetrics(
            aggregation_macs=10, combination_macs=20, cell_macs=30
        )
        assert m.total_macs == 60

    def test_merge(self):
        a = ExecutionMetrics(feature_words=10, cells_full=1)
        b = ExecutionMetrics(feature_words=5, cells_skipped=2)
        c = a.merge(b)
        assert c.feature_words == 15
        assert c.cells_full == 1
        assert c.cells_skipped == 2
        # originals untouched
        assert a.feature_words == 10

    def test_breakdown_keys(self):
        bd = ExecutionMetrics().breakdown()
        assert set(bd) == {"aggregation", "combination", "cell_update", "overhead"}

    def test_as_dict_roundtrip(self):
        m = ExecutionMetrics(feature_words=7)
        d = m.as_dict()
        assert d["feature_words"] == 7
        assert ExecutionMetrics(**d).feature_words == 7
