"""Tests for the calibrated cost model and its offline calibration."""

import pytest

from repro.adaptive import (
    CalibrationTable,
    CostModel,
    KernelChoice,
    StorageChoice,
    calibrate_cost_model,
    profile_window,
)
from repro.analysis import classify_window
from repro.graphs import load_dataset
from repro.models import make_model


@pytest.fixture(scope="module")
def profile():
    graph = load_dataset("GT", num_snapshots=8, seed=3)
    window = graph.window(0, 4)
    model = make_model("T-GCN", graph.dim, 16, seed=3)
    return profile_window(window, classify_window(window), model)


class TestKernelPredictions:
    def test_all_kernels_priced_positive(self, profile):
        model = CostModel()
        for kernel in KernelChoice:
            assert model.predict_kernel_seconds(profile, kernel) > 0.0

    def test_ewma_overrides_prediction(self, profile):
        model = CostModel(ewma_alpha=0.5)
        k = KernelChoice.BATCHED_SPMM
        model.observe(k, 1.0)
        assert model.kernel_seconds(profile, k) == 1.0
        model.observe(k, 2.0)
        assert model.kernel_seconds(profile, k) == pytest.approx(1.5)
        assert model.observation_count(k) == 2
        # other kernels still use the closed form
        other = KernelChoice.DENSE_GEMM
        assert model.observed_seconds(other) is None
        assert model.kernel_seconds(
            profile, other
        ) == model.predict_kernel_seconds(profile, other)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            CostModel(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            CostModel(ewma_alpha=1.5)

    def test_snapshot_serializable(self, profile):
        import json

        model = CostModel()
        model.observe(KernelChoice.DELTA_CONDENSED, 0.01)
        snap = model.snapshot()
        json.dumps(snap)
        assert snap["table_source"] == "default"
        assert snap["observations"] == {"delta-condensed": 1}


class TestStoragePredictions:
    def test_all_formats_priced_positive(self, profile):
        model = CostModel()
        for storage in StorageChoice:
            assert model.predict_storage_cycles(profile, storage) > 0.0

    def test_ocsr_beats_csr_on_multi_snapshot_windows(self, profile):
        """Version sharing is O-CSR's whole point: on a window with
        more than one snapshot it must price below plain CSR."""
        model = CostModel()
        assert model.predict_storage_cycles(
            profile, StorageChoice.OCSR
        ) < model.predict_storage_cycles(profile, StorageChoice.CSR)


class TestCalibration:
    def test_calibrated_table_positive_and_sourced(self):
        table = calibrate_cost_model(
            seed=3, num_vertices=256, avg_degree=4, dim=8, repeats=1
        )
        assert table.source == "calibrated"
        assert table.scatter_seconds_per_edge_dim > 0.0
        assert table.dense_seconds_per_slot_dim > 0.0
        assert table.combine_seconds_per_mac > 0.0
        assert table.cell_seconds_per_flop > 0.0
        assert table.classify_seconds_per_vertex > 0.0
        assert table.subgraph_seconds_per_edge > 0.0
        assert table.mask_seconds_per_vertex > 0.0

    def test_with_source(self):
        table = CalibrationTable().with_source("calibrated")
        assert table.source == "calibrated"
        assert (
            table.scatter_seconds_per_edge_dim
            == CalibrationTable().scatter_seconds_per_edge_dim
        )
