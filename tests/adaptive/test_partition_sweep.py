"""Partition-hint sensitivity sweep (the paper's Fig.-14 experiment).

Two pinned regressions:

* the planner's dataflow hint as a function of the workload shape — a
  matrix over (degree skew, churn) whose cells must not drift; and
* the GSPM cut-fraction sweep over on-chip budgets — the
  topology-aware DFS strategy must beat naive vertex ranges at every
  budget that forces multiple partitions, with the exact fractions
  pinned for fixed seeds so a silent regression in any strategy shows
  up as a number change, not just a flipped inequality.
"""

import dataclasses

import numpy as np
import pytest

from repro.accel import GSPM, PartitionStrategy
from repro.adaptive import AdaptivePlanner, profile_window
from repro.analysis import classify_window
from repro.graphs import (
    CSRSnapshot,
    DynamicGraph,
    DynamicGraphSpec,
    generate_dynamic_graph,
    load_dataset,
)
from repro.models import make_model


# ----------------------------------------------------------------------
# planner hint matrix
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def base_profile():
    graph = load_dataset("GT", num_snapshots=8, seed=3)
    window = graph.window(0, 4)
    model = make_model("T-GCN", graph.dim, 16, seed=3)
    return profile_window(window, classify_window(window), model)


@pytest.mark.parametrize(
    "degree_cv, changed_frac, expected",
    [
        # skew dominates: any churn level gets load-balanced blocks
        (1.5, 0.1, "balanced"),
        (1.5, 0.9, "balanced"),
        (2.5, 0.5, "balanced"),
        # regular degrees, quiet window: keep locality
        (0.5, 0.1, "locality"),
        (0.5, 0.49, "locality"),
        (0.0, 0.0, "locality"),
        # regular degrees, high churn: trivial ranges
        (0.5, 0.5, "range"),  # boundary — churn test is strict <
        (0.5, 0.9, "range"),
        (1.0, 0.8, "range"),  # boundary — skew test is strict >
    ],
)
def test_dataflow_hint_matrix(base_profile, degree_cv, changed_frac, expected):
    profile = dataclasses.replace(
        base_profile,
        degree_cv=degree_cv,
        stable_frac=changed_frac,
        affected_frac=0.0,
        unaffected_frac=1.0 - changed_frac,
    )
    assert profile.changed_frac == pytest.approx(changed_frac)
    plan = AdaptivePlanner().plan(profile)
    assert plan.partition_strategy == expected
    # the hint is always one the GSPM can execute
    assert plan.partition_strategy in {s.value for s in PartitionStrategy}


def test_hint_is_explained(base_profile):
    profile = dataclasses.replace(base_profile, degree_cv=1.5)
    plan = AdaptivePlanner().plan(profile)
    assert any("load-balanced" in r for r in plan.reasons)


# ----------------------------------------------------------------------
# GSPM cut-fraction sweep
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def shuffled_window():
    """A generated window with vertex ids shuffled so id-ranges carry no
    accidental locality (Chung-Lu ids correlate with degree)."""
    g = generate_dynamic_graph(
        DynamicGraphSpec(
            name="sweep", num_vertices=160, num_edges=520, dim=4,
            num_snapshots=3, seed=11,
        )
    )
    w = g.window(0, 3)
    rng = np.random.default_rng(7)
    perm = rng.permutation(w.num_vertices)
    snaps = []
    for s in w:
        edges = perm[s.edge_array()]
        feats = np.zeros_like(s.features)
        feats[perm] = s.features
        present = np.zeros_like(s.present)
        present[perm] = s.present
        snaps.append(
            CSRSnapshot.from_edges(
                w.num_vertices, edges, feats,
                present=present, undirected=False,
            )
        )
    return DynamicGraph(snaps)


#: budget (in staged vertices) -> pinned cut fractions for seed 11/7.
_PINNED_SWEEP = {
    20: {"range": 0.8767, "balanced": 0.8994, "locality": 0.7742},
    40: {"range": 0.7438, "balanced": 0.7628, "locality": 0.6850},
    80: {"range": 0.5104, "balanced": 0.4706, "locality": 0.4668},
    160: {"range": 0.0, "balanced": 0.0, "locality": 0.0},
}


def _sweep(window):
    wpv = window.dim + 2
    out = {}
    for budget_vertices in sorted(_PINNED_SWEEP):
        gspm = GSPM(window, budget_words=budget_vertices * wpv)
        out[budget_vertices] = {
            name: plan.cut_fraction()
            for name, plan in gspm.compare_strategies().items()
        }
    return out

def test_cut_fraction_sweep_is_pinned(shuffled_window):
    got = _sweep(shuffled_window)
    for budget, pinned in _PINNED_SWEEP.items():
        for name, frac in pinned.items():
            assert got[budget][name] == pytest.approx(frac, abs=5e-5), (
                f"budget={budget} strategy={name}"
            )


def test_locality_beats_range_at_every_forced_split(shuffled_window):
    got = _sweep(shuffled_window)
    for budget, fracs in got.items():
        if fracs["range"] > 0.0:  # multiple partitions were forced
            assert fracs["locality"] < fracs["range"], f"budget={budget}"


def test_cut_shrinks_as_budget_grows(shuffled_window):
    got = _sweep(shuffled_window)
    budgets = sorted(got)
    for name in ("range", "balanced", "locality"):
        series = [got[b][name] for b in budgets]
        assert series == sorted(series, reverse=True), name
