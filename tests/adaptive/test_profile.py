"""Tests for the per-window workload profiler."""

import pytest

from repro.adaptive import WindowProfile, profile_window
from repro.analysis import classify_window
from repro.graphs import load_dataset
from repro.models import make_model


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=8, seed=3)


@pytest.fixture(scope="module")
def profile(graph):
    window = graph.window(0, 4)
    model = make_model("T-GCN", graph.dim, 16, seed=3)
    return profile_window(window, classify_window(window), model)


class TestProfileWindow:
    def test_geometry(self, graph, profile):
        assert profile.num_vertices == graph.num_vertices
        assert profile.num_snapshots == 4
        assert profile.dim == graph.dim
        assert profile.edges_total == sum(
            graph[t].num_edges for t in range(4)
        )
        assert profile.edges_first == graph[0].num_edges
        assert profile.max_degree >= 1

    def test_class_fractions_partition_unity(self, profile):
        total = (
            profile.unaffected_frac
            + profile.stable_frac
            + profile.affected_frac
        )
        assert total == pytest.approx(1.0)
        assert profile.changed_frac == pytest.approx(
            profile.stable_frac + profile.affected_frac
        )

    def test_derived_quantities_bounded(self, profile):
        assert 0.0 < profile.feature_density <= 1.0
        assert 0.0 <= profile.subgraph_density <= 1.0
        assert profile.avg_degree > 0.0
        assert profile.degree_cv >= 0.0

    def test_model_shape_capture(self, graph, profile):
        model = make_model("T-GCN", graph.dim, 16, seed=3)
        assert profile.layer_dims == tuple(
            (layer.in_dim, layer.out_dim) for layer in model.gnn.layers
        )
        assert profile.cell_flops_per_vertex == model.cell.flops_per_vertex()

    def test_as_dict_is_json_scalars(self, profile):
        d = profile.as_dict()
        assert d["num_vertices"] == profile.num_vertices
        assert all(isinstance(v, (int, float)) for v in d.values())

    def test_deterministic(self, graph):
        window = graph.window(0, 4)
        model = make_model("T-GCN", graph.dim, 16, seed=3)
        cls = classify_window(window)
        a = profile_window(window, cls, model)
        b = profile_window(window, cls, model)
        assert a == b

    def test_zero_vertices_degenerate(self):
        p = WindowProfile(
            num_vertices=0,
            num_snapshots=1,
            dim=4,
            edges_total=0,
            edges_first=0,
            max_degree=0,
            degree_cv=0.0,
            unaffected_frac=0.0,
            stable_frac=0.0,
            affected_frac=0.0,
            feature_density=0.0,
            delta_nnz_ratio=0.0,
            layer_dims=((4, 8),),
            cell_flops_per_vertex=10,
        )
        assert p.avg_degree == 0.0
        assert p.subgraph_density == 0.0
