"""Unit tests for the planner: controller, exploration, probe schedule."""

import numpy as np
import pytest

from repro.adaptive import (
    AdaptiveConfig,
    AdaptivePlanner,
    CostModel,
    KernelChoice,
    StorageChoice,
    profile_window,
    relative_drift,
)
from repro.analysis import classify_window
from repro.graphs import load_dataset
from repro.models import make_model
from repro.skipping import SkipThresholds


@pytest.fixture(scope="module")
def profile():
    graph = load_dataset("GT", num_snapshots=8, seed=3)
    window = graph.window(0, 4)
    model = make_model("T-GCN", graph.dim, 16, seed=3)
    return profile_window(window, classify_window(window), model)


class TestConfigValidation:
    def test_defaults_valid(self):
        AdaptiveConfig()

    @pytest.mark.parametrize(
        "kw",
        [
            {"drift_budget": -0.1},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"explore_margin": -1.0},
            {"explore_min_obs": -1},
            {"theta_s_min": 0.0},  # must be <= default theta_s (-0.5)
            {"theta_s_min": -1.5},
            {"theta_e_min": 0.9},  # must be <= default theta_e (+0.5)
            {"theta_e_min": -1.5},
            {"max_probes": -1},
        ],
    )
    def test_bad_values_rejected(self, kw):
        with pytest.raises(ValueError):
            AdaptiveConfig(**kw)


class TestThresholdController:
    def test_defaults_at_zero_aggressiveness(self):
        planner = AdaptivePlanner()
        assert planner.aggressiveness == 0.0
        assert planner.thresholds() == SkipThresholds()

    def test_full_aggressiveness_hits_the_bounds(self):
        planner = AdaptivePlanner()
        planner._aggressiveness = 1.0
        thr = planner.thresholds()
        assert thr.theta_s == pytest.approx(planner.config.theta_s_min)
        assert thr.theta_e == pytest.approx(planner.config.theta_e_min)

    def test_tuning_disabled_pins_defaults(self):
        planner = AdaptivePlanner(AdaptiveConfig(tune_thresholds=False))
        planner._aggressiveness = 1.0
        assert planner.thresholds() == SkipThresholds()

    def test_low_drift_raises_aggressiveness(self):
        planner = AdaptivePlanner()
        planner.observe_drift(0.0)
        assert planner.aggressiveness == pytest.approx(0.25)
        planner.observe_drift(0.001)  # <= budget/2
        assert planner.aggressiveness == pytest.approx(0.5)

    def test_over_budget_retreats_hard(self):
        planner = AdaptivePlanner()
        planner._aggressiveness = 1.0
        planner.observe_drift(0.05)  # budget is 0.02
        assert planner.aggressiveness == pytest.approx(0.25)
        planner.observe_drift(0.05)
        assert planner.aggressiveness == 0.0
        assert planner.max_observed_drift == pytest.approx(0.05)

    def test_near_budget_holds(self):
        planner = AdaptivePlanner()
        planner._aggressiveness = 0.5
        planner.observe_drift(0.015)  # in (budget/2, budget]
        assert planner.aggressiveness == pytest.approx(0.5)

    def test_zero_budget_never_tunes(self):
        planner = AdaptivePlanner(AdaptiveConfig(drift_budget=0.0))
        planner.observe_drift(0.0)
        planner.observe_drift(0.0)
        assert planner.aggressiveness == 0.0
        assert planner.thresholds() == SkipThresholds()


class TestProbeSchedule:
    def _plan_n(self, planner, profile, n):
        for _ in range(n):
            planner.plan(profile)

    def test_exponential_spacing(self, profile):
        planner = AdaptivePlanner()
        fired_at = []
        for i in range(1, 40):
            planner.plan(profile)
            if planner.wants_probe():
                fired_at.append(i)
                planner.observe_drift(0.015)  # hold: isolates the schedule
        assert fired_at == [2, 4, 8, 16, 32]

    def test_max_probes_caps_the_schedule(self, profile):
        planner = AdaptivePlanner(AdaptiveConfig(max_probes=2))
        fired = 0
        for _ in range(40):
            planner.plan(profile)
            if planner.wants_probe():
                fired += 1
                planner.observe_drift(0.0)
        assert fired == 2
        assert planner.probes_done == 2

    def test_no_probes_when_tuning_disabled(self, profile):
        planner = AdaptivePlanner(AdaptiveConfig(tune_thresholds=False))
        for _ in range(10):
            planner.plan(profile)
            assert not planner.wants_probe()


class TestKernelSelection:
    def _observed(self, mapping, **cfg_kw):
        cfg = AdaptiveConfig(explore_min_obs=0, **cfg_kw)
        planner = AdaptivePlanner(cfg)
        for kernel, seconds in mapping.items():
            planner.cost_model.observe(kernel, seconds)
        return planner

    def test_argmin_of_observed_latency(self, profile):
        planner = self._observed(
            {
                KernelChoice.DELTA_CONDENSED: 0.030,
                KernelChoice.BATCHED_SPMM: 0.010,
                KernelChoice.DENSE_GEMM: 0.050,
            }
        )
        plan = planner.plan(profile)
        assert plan.kernel is KernelChoice.BATCHED_SPMM

    def test_exploration_revisits_under_observed_kernels(self, profile):
        """A candidate with fewer than ``explore_min_obs`` samples and a
        near-best prediction gets picked over the current argmin."""
        cfg = AdaptiveConfig(explore_min_obs=1, explore_margin=1000.0)
        planner = AdaptivePlanner(cfg)
        first = planner.plan(profile).kernel
        planner.cost_model.observe(first, 0.01)  # observed once, now best
        second = planner.plan(profile).kernel
        assert second is not first  # explored, not exploited
        assert any("exploring" in r for r in planner.records[-1].plan.reasons)

    def test_kernel_switches_counted(self, profile):
        planner = self._observed({KernelChoice.BATCHED_SPMM: 1e-6})
        planner.plan(profile)
        assert planner.kernel_switches == 0
        planner.cost_model.observe(KernelChoice.DENSE_GEMM, 1e-9)
        planner.plan(profile)
        assert planner.kernel_switches == 1

    def test_choice_disabled_is_static(self, profile):
        planner = AdaptivePlanner(
            AdaptiveConfig(choose_kernel=False, choose_storage=False)
        )
        plan = planner.plan(profile)
        assert plan.kernel is KernelChoice.DELTA_CONDENSED
        assert plan.storage is StorageChoice.OCSR


class TestAudit:
    def test_explain_lists_every_window(self, profile):
        planner = AdaptivePlanner()
        assert planner.explain() == "no windows planned yet"
        for _ in range(3):
            plan = planner.plan(profile)
            planner.observe(plan, 0.012)
        text = planner.explain()
        assert "window   0" in text and "window   2" in text
        assert "12.00 ms" in text
        assert "latest plan:" in text

    def test_plan_as_dict_serializable(self, profile):
        import json

        plan = AdaptivePlanner().plan(profile)
        json.dumps(plan.as_dict())
        assert plan.as_dict()["kernel"] == plan.kernel.value
        assert plan.explain()  # non-empty rationale text


class TestRelativeDrift:
    def test_identical_is_zero(self):
        x = [np.ones((3, 2)), np.full((3, 2), 2.0)]
        assert relative_drift(x, [a.copy() for a in x]) == 0.0

    def test_scales_with_divergence(self):
        base = [np.ones((2, 2))]
        assert relative_drift(base, [np.full((2, 2), 1.1)]) == pytest.approx(
            0.1
        )

    def test_zero_baseline(self):
        z = [np.zeros((2, 2))]
        assert relative_drift(z, [np.zeros((2, 2))]) == 0.0
        assert relative_drift(z, [np.ones((2, 2))]) == float("inf")
