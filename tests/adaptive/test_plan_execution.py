"""The adaptive correctness contract, property-tested.

Two halves:

* **bit-identity by construction** — whatever kernel or storage format
  the planner picks, the outputs are *exactly* the static pipeline's
  (all kernels apply the same additions in the same order; all formats
  hold the same canonical content).  Only thresholds may change results.
* **bounded drift** — the one accuracy-affecting knob, auto-tuned
  :math:`(\\theta_s, \\theta_e)`, stays inside the configured drift
  budget at every probe, and a zero budget degenerates to the exact
  default-threshold pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    AdaptiveConfig,
    AdaptivePlanner,
    KernelChoice,
    StorageChoice,
    relative_drift,
)
from repro.engine import ConcurrentEngine, StreamingInference
from repro.formats import FORMATS, WindowSelection
from repro.graphs import (
    ChurnConfig,
    DynamicGraphSpec,
    generate_dynamic_graph,
    load_dataset,
)
from repro.models import make_model

SEED = 3


def random_graph(seed, n=60, t=6, churn_scale=1.0):
    return generate_dynamic_graph(
        DynamicGraphSpec(
            name="adaptive-prop",
            num_vertices=n,
            num_edges=180,
            dim=6,
            num_snapshots=t,
            churn=ChurnConfig().scaled(churn_scale),
            seed=seed,
        )
    )


def forced_planner(kernel: KernelChoice) -> AdaptivePlanner:
    """A planner that always picks ``kernel`` and never tunes thresholds
    (observed latencies rig the argmin; exploration is disabled)."""
    planner = AdaptivePlanner(
        AdaptiveConfig(explore_min_obs=0, tune_thresholds=False)
    )
    for k in KernelChoice:
        planner.cost_model.observe(k, 1e-9 if k is kernel else 1e3)
    return planner


def run_stream(model, graph, planner=None, window=4):
    stream = StreamingInference(model, window_size=window, planner=planner)
    outs = []
    for snap in graph:
        r = stream.push(snap)
        if r is not None:
            outs.extend(r.outputs)
    r = stream.flush()
    if r is not None:
        outs.extend(r.outputs)
    return outs, stream


class TestKernelBitIdentity:
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        model_name=st.sampled_from(["T-GCN", "CD-GCN", "GC-LSTM"]),
        kernel=st.sampled_from(list(KernelChoice)),
        churn=st.floats(min_value=0.3, max_value=2.5),
    )
    @settings(max_examples=24, deadline=None)
    def test_forced_kernel_matches_static_engine(
        self, seed, model_name, kernel, churn
    ):
        """Any kernel the planner can pick yields the static engine's
        outputs bit-for-bit, for arbitrary random workloads."""
        g = random_graph(seed, churn_scale=churn)
        static = ConcurrentEngine(
            make_model(model_name, g.dim, 8, seed=seed), window_size=4
        ).run(g)
        planner = forced_planner(kernel)
        adaptive = ConcurrentEngine(
            make_model(model_name, g.dim, 8, seed=seed),
            window_size=4,
            planner=planner,
        ).run(g)
        assert all(rec.plan.kernel is kernel for rec in planner.records)
        assert len(planner.records) == static.metrics.windows_processed
        for a, b in zip(static.outputs, adaptive.outputs):
            np.testing.assert_array_equal(a, b)

    @given(
        seed=st.integers(min_value=0, max_value=2_000),
        kernel=st.sampled_from(list(KernelChoice)),
    )
    @settings(max_examples=9, deadline=None)
    def test_forced_kernel_matches_static_streaming(self, seed, kernel):
        g = random_graph(seed)
        static, _ = run_stream(make_model("T-GCN", g.dim, 8, seed=seed), g)
        adaptive, _ = run_stream(
            make_model("T-GCN", g.dim, 8, seed=seed),
            g,
            planner=forced_planner(kernel),
        )
        assert len(static) == len(adaptive) == g.num_snapshots
        for a, b in zip(static, adaptive):
            np.testing.assert_array_equal(a, b)

    def test_untuned_planner_is_bit_identical_end_to_end(self):
        """Free kernel/storage choice with threshold tuning off: the
        planner may reorder *work*, never *results*."""
        g = load_dataset("GT", num_snapshots=10, seed=SEED)
        static, _ = run_stream(make_model("T-GCN", g.dim, 16, seed=SEED), g)
        planner = AdaptivePlanner(AdaptiveConfig(tune_thresholds=False))
        adaptive, stream = run_stream(
            make_model("T-GCN", g.dim, 16, seed=SEED), g, planner=planner
        )
        for a, b in zip(static, adaptive):
            np.testing.assert_array_equal(a, b)
        assert stream.metrics.windows_planned == len(planner.records)


class TestStorageContentIdentity:
    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=10, deadline=None)
    def test_all_formats_hold_identical_content(self, seed):
        """Every storage the planner can pick returns the same canonical
        edge set — the format axis cannot affect results."""
        g = random_graph(seed, t=4)
        rng = np.random.default_rng(seed)
        sources = np.unique(
            rng.choice(g.num_vertices, size=20, replace=False)
        )
        sel = WindowSelection(g.window(0, 4), sources)
        edges = {
            name: cls(sel).all_edges() for name, cls in FORMATS.items()
        }
        assert set(edges) == {s.value for s in StorageChoice}
        ref = edges["O-CSR"]
        for name, e in edges.items():
            np.testing.assert_array_equal(e, ref)


class TestBoundedDrift:
    def _tuned_vs_default(self, budget, snapshots=16):
        g = load_dataset("GT", num_snapshots=snapshots, seed=SEED)
        default, _ = run_stream(make_model("T-GCN", g.dim, 16, seed=SEED), g)
        planner = AdaptivePlanner(AdaptiveConfig(drift_budget=budget))
        tuned, _ = run_stream(
            make_model("T-GCN", g.dim, 16, seed=SEED), g, planner=planner
        )
        return default, tuned, planner

    def test_probed_drift_never_exceeds_budget_unanswered(self):
        """Every probe's measured drift is either within budget or the
        controller retreated — and on this workload the tuned stream
        stays within budget at every probe."""
        default, tuned, planner = self._tuned_vs_default(budget=0.02)
        assert planner.probes_done >= 2
        assert planner.max_observed_drift <= planner.config.drift_budget
        # thresholds actually moved (the test would be vacuous otherwise)
        assert planner.aggressiveness > 0.0
        # end-to-end divergence stays small (a few multiples of the
        # per-window budget — windows compound through carried state)
        assert relative_drift(default, tuned) <= 10 * 0.02

    def test_zero_budget_is_bit_identical(self):
        default, tuned, planner = self._tuned_vs_default(budget=0.0)
        assert planner.aggressiveness == 0.0
        for a, b in zip(default, tuned):
            np.testing.assert_array_equal(a, b)

    def test_drift_recorded_in_metrics(self):
        g = load_dataset("GT", num_snapshots=12, seed=SEED)
        planner = AdaptivePlanner()
        _, stream = run_stream(
            make_model("T-GCN", g.dim, 16, seed=SEED), g, planner=planner
        )
        assert stream.metrics.drift_probes == planner.probes_done
        assert stream.metrics.windows_planned == len(planner.records)


class TestPlanBookkeeping:
    def test_window_mode_trajectory_matches_totals(self):
        g = load_dataset("GT", num_snapshots=8, seed=SEED)
        planner = AdaptivePlanner(AdaptiveConfig(tune_thresholds=False))
        _, stream = run_stream(
            make_model("T-GCN", g.dim, 16, seed=SEED), g, planner=planner
        )
        m = stream.metrics
        assert len(m.window_modes) == m.windows_processed
        assert sum(f for f, _, _ in m.window_modes) == m.cells_full
        assert sum(d for _, d, _ in m.window_modes) == m.cells_delta
        assert sum(s for _, _, s in m.window_modes) == m.cells_skipped

    def test_engine_result_carries_plans(self):
        g = load_dataset("GT", num_snapshots=8, seed=SEED)
        planner = AdaptivePlanner(AdaptiveConfig(tune_thresholds=False))
        result = ConcurrentEngine(
            make_model("T-GCN", g.dim, 16, seed=SEED),
            window_size=4,
            planner=planner,
        ).run(g)
        plans = result.extra["plans"]
        assert len(plans) == result.metrics.windows_processed
        assert all(p.kernel in KernelChoice for p in plans)
