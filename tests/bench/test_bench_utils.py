"""Tests for the bench harness utilities (rendering, memoisation,
aggregation)."""

import math
import os

import pytest

from repro.bench import (
    geomean,
    get_graph,
    get_model,
    get_platform_report,
    render_table,
    save_result,
)


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 100]) == pytest.approx(10.0)
        assert geomean([5]) == pytest.approx(5.0)

    def test_empty_and_nonpositive(self):
        assert geomean([]) == 0.0
        assert geomean([0, -3]) == 0.0
        assert geomean([0, 4, 16]) == pytest.approx(8.0)  # ignores zeros

    def test_log_identity(self):
        vals = [2.0, 3.0, 4.0]
        assert geomean(vals) == pytest.approx(
            math.exp(sum(math.log(v) for v in vals) / 3)
        )


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["xyz", 3.0]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert "xyz" in text and "2.50" in text

    def test_float_format(self):
        text = render_table("T", ["x"], [[1.23456]], floatfmt="{:.4f}")
        assert "1.2346" in text

    def test_save_result_writes_file(self, tmp_path, monkeypatch):
        import repro.bench.report as rep

        monkeypatch.setattr(rep, "RESULTS_DIR", str(tmp_path))
        path = save_result("unit-test", "hello\n")
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read() == "hello\n"


class TestMemoisation:
    def test_graph_cached(self):
        assert get_graph("GT") is get_graph("GT")

    def test_model_cached_per_dataset(self):
        assert get_model("T-GCN", "GT") is get_model("T-GCN", "GT")
        assert get_model("T-GCN", "GT") is not get_model("T-GCN", "ML")

    def test_platform_report_smoke(self):
        r = get_platform_report("TaGNN", "T-GCN", "GT")
        assert r.platform == "TaGNN"
        assert r.seconds > 0
