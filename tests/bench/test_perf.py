"""Unit tests for the ``repro perf`` suite.

Fast by construction: real measurement cells run once on tiny scaled-down
graphs; the full-suite shape and the CLI plumbing are covered with canned
result documents and a monkeypatched ``run_perf``.
"""

import json

import numpy as np
import pytest

from repro.bench.perf import (
    SCHEMA,
    PerfConfig,
    bench_event_application,
    bench_streaming,
    bench_streaming_adaptive,
    render_delta_table,
    render_perf_tables,
    run_perf,
    write_result,
)


def canned_result(speedup=6.0, p50=2.0):
    return {
        "schema": SCHEMA,
        "created_utc": "2026-08-08T12:00:00Z",
        "config": {"smoke": True, "repeats": 1, "seed": 3,
                   "hidden_dim": 32, "window_size": 4},
        "event_application": [
            {
                "dataset": "GT", "scale": 1.0, "num_vertices": 1000,
                "num_edges_snapshot0": 8000, "num_events": 5000,
                "batched_seconds": 0.01, "reference_seconds": 0.01 * speedup,
                "batched_events_per_s": 5000 / 0.01,
                "reference_events_per_s": 5000 / (0.01 * speedup),
                "speedup": speedup,
            }
        ],
        "streaming": [
            {
                "model": "T-GCN", "dataset": "GT", "scale": 1.0,
                "num_vertices": 1000, "window_size": 4,
                "windows_timed": 4, "p50_ms": p50, "p95_ms": p50 * 1.5,
                "best_ms": p50 * 0.8,
            }
        ],
        "peak_rss_kb": 65536,
    }


def canned_adaptive_cell(speedup=1.3, static_p50=2.0):
    return {
        "model": "T-GCN", "dataset": "GT", "scale": 1.0,
        "num_vertices": 1000, "window_size": 4, "windows_timed": 4,
        "static_p50_ms": static_p50, "static_p95_ms": static_p50 * 1.5,
        "adaptive_p50_ms": static_p50 / speedup,
        "adaptive_p95_ms": static_p50 * 1.5 / speedup,
        "adaptive_rep_p50_ms": [static_p50, static_p50 / speedup],
        "speedup_p50": speedup,
        "plan": {
            "kernels": {"batched-spmm": 3, "delta-condensed": 1},
            "storages": {"DENSE": 4},
            "partition": "balanced",
            "thresholds": {"theta_s": -0.65, "theta_e": 0.35},
            "aggressiveness": 0.5,
            "kernel_switches": 2,
            "probes": 2,
            "max_drift": 0.008,
            "drift_budget": 0.02,
            "cost_model": {"table_source": "calibrated"},
        },
    }


class TestPerfConfig:
    def test_defaults(self):
        cfg = PerfConfig()
        assert not cfg.smoke
        assert not cfg.adaptive
        assert cfg.effective_repeats == 7
        assert len(cfg.event_cells) == 3
        assert len(cfg.stream_cells) == 4

    def test_smoke_shrinks_the_grid_and_repeats(self):
        cfg = PerfConfig(smoke=True, repeats=7)
        assert cfg.effective_repeats == 3
        assert len(cfg.event_cells) == 1
        assert len(cfg.stream_cells) == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="repeats"):
            PerfConfig(repeats=0)
        with pytest.raises(ValueError, match="seed"):
            PerfConfig(seed=-1)


class TestMeasurementCells:
    def test_event_application_cell(self):
        cell = bench_event_application("GT", 0.2, 3, repeats=1, seed=3)
        assert cell["dataset"] == "GT"
        assert cell["num_events"] > 0
        assert cell["batched_seconds"] > 0
        assert cell["reference_seconds"] > 0
        assert cell["speedup"] == pytest.approx(
            cell["reference_seconds"] / cell["batched_seconds"]
        )
        assert cell["batched_events_per_s"] > 0

    def test_streaming_cell(self):
        cell = bench_streaming("T-GCN", "GT", 0.2, 4, repeats=1, seed=3)
        assert cell["windows_timed"] == 1  # 4 snapshots / window 4
        assert 0 < cell["best_ms"] <= cell["p50_ms"] <= cell["p95_ms"]

    def test_adaptive_cell(self):
        cell = bench_streaming_adaptive(
            "T-GCN", "GT", 0.2, 4, repeats=2, seed=3
        )
        assert cell["windows_timed"] == 2  # one window per pass, 2 passes
        assert cell["static_p50_ms"] > 0
        assert cell["adaptive_p50_ms"] > 0
        assert cell["speedup_p50"] == pytest.approx(
            cell["static_p50_ms"] / cell["adaptive_p50_ms"]
        )
        assert len(cell["adaptive_rep_p50_ms"]) == 2
        plan = cell["plan"]
        assert sum(plan["kernels"].values()) == 2  # every window planned
        assert plan["drift_budget"] == 0.02
        assert -1.0 <= plan["thresholds"]["theta_s"] <= -0.5
        assert 0.2 <= plan["thresholds"]["theta_e"] <= 0.5
        # the whole cell document must be JSON-archivable
        json.dumps(cell)


class TestResultDocument:
    def test_write_result_round_trips(self, tmp_path):
        result = canned_result()
        path = write_result(result, tmp_path)
        assert path.name == "BENCH_20260808T120000Z.json"
        assert json.loads(path.read_text()) == result

    def test_write_result_creates_missing_directory(self, tmp_path):
        path = write_result(canned_result(), tmp_path / "does" / "not")
        assert path.exists()

    def test_render_tables_mentions_every_cell(self):
        out = render_perf_tables(canned_result())
        assert "GT x1" in out
        assert "T-GCN" in out
        assert "6.0x" in out
        assert "peak RSS: 64.0 MiB" in out
        assert SCHEMA in out

    def test_delta_table_reports_relative_change(self):
        base = canned_result(speedup=6.0, p50=2.0)
        cur = canned_result(speedup=6.0, p50=3.0)
        cur["event_application"][0]["batched_events_per_s"] *= 1.10
        out = render_delta_table(cur, base)
        assert "+10.0%" in out      # throughput up
        assert "+50.0%" in out      # latency up
        assert "report-only" in out

    def test_render_tables_with_adaptive_section(self):
        result = canned_result()
        result["adaptive"] = {
            "calibration": {"source": "calibrated"},
            "cells": [canned_adaptive_cell()],
        }
        out = render_perf_tables(result)
        assert "Adaptive planning" in out
        assert "1.30x" in out
        assert "batched-spmm" in out
        assert "(-0.65,+0.35)" in out

    def test_delta_table_includes_adaptive_vs_static_baseline(self):
        base = canned_result(p50=2.0)
        cur = canned_result(p50=2.0)
        cur["adaptive"] = {
            "calibration": {},
            "cells": [canned_adaptive_cell(speedup=1.25, static_p50=2.0)],
        }
        out = render_delta_table(cur, base)
        assert "adaptive T-GCN/GT p50" in out
        assert "-20.0%" in out  # 2.0ms -> 1.6ms against the baseline row

    def test_delta_table_with_no_overlap(self):
        base = canned_result()
        base["event_application"][0]["dataset"] = "EP"
        base["streaming"][0]["model"] = "GCRN"
        out = render_delta_table(canned_result(), base)
        assert "no overlapping cells" in out


class TestSuite:
    def test_smoke_suite_document_shape(self):
        result = run_perf(PerfConfig(smoke=True, repeats=1))
        assert result["schema"] == SCHEMA
        assert result["config"]["smoke"] is True
        assert len(result["event_application"]) == 1
        assert len(result["streaming"]) == 1
        assert result["peak_rss_kb"] > 0
        # the timestamp doubles as the archive filename stamp
        assert result["created_utc"].endswith("Z")


class TestCli:
    def test_cmd_perf_smoke_no_write(self, capsys, monkeypatch, tmp_path):
        import repro.bench.perf as perf_mod
        from repro.cli import main

        monkeypatch.setattr(
            perf_mod, "run_perf", lambda cfg: canned_result()
        )
        rc = main(["perf", "--smoke", "--no-write"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Event application" in out
        assert "wrote" not in out

    def test_cmd_perf_writes_and_compares(self, capsys, monkeypatch, tmp_path):
        import repro.bench.perf as perf_mod
        from repro.cli import main

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(canned_result()))
        monkeypatch.setattr(
            perf_mod, "run_perf", lambda cfg: canned_result()
        )
        rc = main([
            "perf", "--smoke", "--out", str(tmp_path),
            "--baseline", str(baseline),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Delta vs baseline" in out
        assert (tmp_path / "BENCH_20260808T120000Z.json").exists()
