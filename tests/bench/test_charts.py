"""Tests for the ASCII chart renderers."""

import pytest

from repro.bench import bar_chart, grouped_bar_chart, series_chart


class TestBarChart:
    def test_longest_bar_is_max(self):
        out = bar_chart("t", ["a", "bb", "c"], [1.0, 4.0, 2.0])
        lines = out.splitlines()[2:]
        lengths = {l.split("|")[0].strip(): len(l.split("|")[1].strip().split()[0])
                   for l in lines}
        assert lengths["bb"] > lengths["c"] > lengths["a"]

    def test_values_printed(self):
        out = bar_chart("t", ["x"], [3.5], unit="us")
        assert "3.5us" in out

    def test_zero_and_negative_safe(self):
        out = bar_chart("t", ["a", "b"], [0.0, -5.0])
        assert "a" in out and "b" in out  # no crash, no bars

    def test_log_scale_compresses(self):
        lin = bar_chart("t", ["a", "b"], [1.0, 1000.0])
        log = bar_chart("t", ["a", "b"], [1.0, 1000.0], log=True)

        def bar_len(out, label):
            for l in out.splitlines():
                if l.strip().startswith(label):
                    seg = l.split("|")[1].strip()
                    return len(seg.split()[0]) if seg and not seg[0].isdigit() else 0
            return 0

        # in log scale the small value still gets a visible bar
        assert bar_len(log, "a") > bar_len(lin, "a")

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            bar_chart("t", ["a"], [1.0, 2.0])

    def test_empty(self):
        assert "(empty)" in bar_chart("t", [], [])


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(
            "g", ["HP", "GT"], {"TaGNN": [1, 2], "PiPAD": [3, 4]}
        )
        assert "HP:" in out and "GT:" in out
        assert out.count("TaGNN") == 2 and out.count("PiPAD") == 2

    def test_length_validation(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("g", ["a"], {"s": [1, 2]})

    def test_empty(self):
        assert "(empty)" in grouped_bar_chart("g", [], {})


class TestSeriesChart:
    def test_knee_visible(self):
        out = series_chart("dcus", [2, 4, 8, 16], [100, 50, 25, 24],
                           ylabel="us")
        assert "[us]" in out
        assert "100" in out and "24" in out
