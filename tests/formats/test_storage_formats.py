"""Cross-format tests: CSR, O-CSR, and PMA must store identical content
with the ordering of costs the paper reports (Fig. 13(b))."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    FORMATS,
    OCSRStorage,
    PMAStorage,
    SnapshotCSRStorage,
    WindowSelection,
)
from repro.graphs import DynamicGraphSpec, generate_dynamic_graph, load_dataset


@pytest.fixture(scope="module")
def selection():
    g = load_dataset("GT", num_snapshots=4)
    rng = np.random.default_rng(3)
    sources = rng.choice(g.num_vertices, size=150, replace=False)
    return WindowSelection(g.window(0, 4), sources)


@pytest.fixture(scope="module")
def built(selection):
    return {name: cls(selection) for name, cls in FORMATS.items()}


class TestSelection:
    def test_sources_sorted_unique(self, selection):
        s = selection.sources
        assert np.all(np.diff(s) > 0)

    def test_out_of_range_source_rejected(self, selection):
        with pytest.raises(ValueError):
            WindowSelection(selection.window, np.array([10**9]))

    def test_edges_sorted_canonically(self, selection):
        e = selection.edges()
        order = np.lexsort((e[:, 1], e[:, 2], e[:, 0]))
        assert np.array_equal(order, np.arange(len(e)))

    def test_whole_graph_selection(self):
        g = load_dataset("GT", num_snapshots=2)
        sel = WindowSelection.whole_graph(g.window(0, 2))
        assert len(sel.sources) == g.num_vertices
        assert len(sel.edges()) == g[0].num_edges + g[1].num_edges

    def test_feature_versions_start_at_zero(self, selection):
        for v, versions in selection.feature_versions().items():
            assert versions[0] == 0
            assert versions == sorted(versions)


class TestContentEquivalence:
    def test_all_formats_store_same_edges(self, selection, built):
        ref = selection.edges()
        for name, fmt in built.items():
            assert np.array_equal(fmt.all_edges(), ref), name

    def test_gather_ordering(self, selection, built):
        """gather() must return (timestamp, target)-ordered entries."""
        for name, fmt in built.items():
            for s in selection.sources[:20].tolist():
                tgt, ts = fmt.gather(s)
                key = ts * 10**9 + tgt
                assert np.all(np.diff(key) >= 0), name

    def test_gather_missing_source_empty(self, built, selection):
        absent = int(selection.sources.max()) + 1
        if absent < selection.window.num_vertices:
            for name, fmt in built.items():
                tgt, ts = fmt.gather(absent)
                assert tgt.size == 0 and ts.size == 0, name


class TestCostOrdering:
    @pytest.fixture(scope="class")
    def built_wide(self):
        """A feature-dominated selection (paper-scale feature width) —
        the regime Fig. 13(b)'s storage comparison is measured in."""
        g = load_dataset("GT", num_snapshots=4, dim=160)
        rng = np.random.default_rng(3)
        sources = rng.choice(g.num_vertices, size=150, replace=False)
        sel = WindowSelection(g.window(0, 4), sources)
        return {name: cls(sel) for name, cls in FORMATS.items()}

    def test_storage_ordering_feature_dominated(self, built_wide):
        """At production feature widths: CSR (full duplication) > PMA
        (dedup structure, indexed features) > O-CSR."""
        assert (
            built_wide["CSR"].storage_bytes()
            > built_wide["PMA"].storage_bytes()
            > built_wide["O-CSR"].storage_bytes()
        )

    def test_csr_always_largest(self, built):
        """Even at narrow feature widths, per-snapshot CSR is the most
        redundant format (PMA vs O-CSR can flip there: PMA deduplicates
        per-timestamp structure entries that O-CSR stores per snapshot)."""
        assert built["CSR"].storage_bytes() > built["O-CSR"].storage_bytes()
        assert built["CSR"].storage_bytes() > built["PMA"].storage_bytes()

    def test_scan_cost_ordering(self, built):
        """O-CSR's contiguous runs must beat both baselines, and PMA's
        single search must beat CSR's K row lookups + per-feature randoms."""
        c = {n: f.scan_cost().cycles() for n, f in built.items()}
        assert c["O-CSR"] < c["PMA"] < c["CSR"]

    def test_ocsr_compression_positive(self, built, built_wide):
        assert built["O-CSR"].compression_vs(built["CSR"]) > 0.3
        assert built_wide["O-CSR"].compression_vs(built_wide["PMA"]) > 0.2

    def test_access_cost_arithmetic(self, built):
        a = built["O-CSR"].scan_cost()
        b = built["CSR"].scan_cost()
        total = a + b
        assert total.random_accesses == a.random_accesses + b.random_accesses
        assert total.cycles() == pytest.approx(a.cycles() + b.cycles())


class TestOCSRSpecifics:
    def test_enum_matches_run_lengths(self, selection):
        ocsr = OCSRStorage(selection)
        assert ocsr.enum.sum() == ocsr.num_entries
        assert np.array_equal(np.diff(ocsr.offsets), ocsr.enum)

    def test_paper_example_layout(self):
        """Reproduce the paper's O-CSR walkthrough: v4 has neighbours
        v5,v6 at t-1, v5 at t, v6 at t+1 -> Tindex=[5,6,5,6],
        Timestamp=[0,0,1,2], Enum=4."""
        from repro.graphs import CSRSnapshot, DynamicGraph

        n, d = 8, 2
        feats = np.zeros((n, d), dtype=np.float32)
        s0 = CSRSnapshot.from_edges(n, np.array([[4, 5], [4, 6]]), feats.copy(),
                                    undirected=False)
        s1 = CSRSnapshot.from_edges(n, np.array([[4, 5]]), feats.copy(),
                                    undirected=False)
        s2 = CSRSnapshot.from_edges(n, np.array([[4, 6]]), feats.copy(),
                                    undirected=False)
        w = DynamicGraph([s0, s1, s2])
        ocsr = OCSRStorage(WindowSelection(w, np.array([4])))
        assert ocsr.sindex.tolist() == [4]
        assert ocsr.tindex.tolist() == [5, 6, 5, 6]
        assert ocsr.timestamp.tolist() == [0, 0, 1, 2]
        assert ocsr.enum.tolist() == [4]

    def test_stable_feature_stored_once(self):
        """A vertex whose feature never changes contributes exactly one
        feature-table row regardless of window length."""
        from repro.graphs import CSRSnapshot, DynamicGraph

        n, d = 4, 3
        feats = np.ones((n, d), dtype=np.float32)
        snaps = [
            CSRSnapshot.from_edges(n, np.array([[0, 1]]), feats.copy())
            for _ in range(4)
        ]
        w = DynamicGraph(snaps)
        ocsr = OCSRStorage(WindowSelection(w, np.array([0])))
        assert (ocsr.fv_vertex == 0).sum() == 1
        assert (ocsr.fv_vertex == 1).sum() == 1

    def test_changed_feature_versioned(self):
        from repro.graphs import CSRSnapshot, DynamicGraph

        n, d = 4, 3
        f0 = np.ones((n, d), dtype=np.float32)
        f1 = f0.copy()
        f1[1] = 2.0
        s0 = CSRSnapshot.from_edges(n, np.array([[0, 1]]), f0)
        s1 = CSRSnapshot.from_edges(n, np.array([[0, 1]]), f1)
        w = DynamicGraph([s0, s1])
        ocsr = OCSRStorage(WindowSelection(w, np.array([0])))
        assert (ocsr.fv_vertex == 1).sum() == 2
        np.testing.assert_array_equal(ocsr.feature_row(1, 0), f0[1])
        np.testing.assert_array_equal(ocsr.feature_row(1, 1), f1[1])

    def test_feature_row_unknown_vertex(self, selection):
        ocsr = OCSRStorage(selection)
        with pytest.raises(KeyError):
            # a vertex guaranteed not stored: use an isolated absent id
            ocsr.feature_row(-1, 0)


class TestOCSRDynamicMaintenance:
    def _tiny(self):
        from repro.graphs import CSRSnapshot, DynamicGraph

        n, d = 6, 2
        feats = np.zeros((n, d), dtype=np.float32)
        s0 = CSRSnapshot.from_edges(n, np.array([[0, 1], [2, 3]]), feats.copy(),
                                    undirected=False)
        s1 = CSRSnapshot.from_edges(n, np.array([[0, 1]]), feats.copy(),
                                    undirected=False)
        w = DynamicGraph([s0, s1])
        return OCSRStorage(WindowSelection(w, np.array([0, 2])))

    def test_insert_edge(self):
        ocsr = self._tiny()
        ocsr.insert_edge(0, 4, 1)
        tgt, ts = ocsr.gather(0)
        assert (4 in tgt.tolist()) and ocsr.enum[0] == 3

    def test_insert_new_source(self):
        ocsr = self._tiny()
        ocsr.insert_edge(5, 1, 0)
        assert 5 in ocsr.sindex.tolist()
        tgt, _ = ocsr.gather(5)
        assert tgt.tolist() == [1]

    def test_insert_duplicate_noop(self):
        ocsr = self._tiny()
        before = ocsr.num_entries
        ocsr.insert_edge(0, 1, 0)
        assert ocsr.num_entries == before

    def test_insert_out_of_window_raises(self):
        ocsr = self._tiny()
        with pytest.raises(ValueError):
            ocsr.insert_edge(0, 1, 7)

    def test_delete_edge(self):
        ocsr = self._tiny()
        assert ocsr.delete_edge(2, 3, 0)
        assert not ocsr.delete_edge(2, 3, 0)
        # source 2's run became empty and was removed entirely
        assert 2 not in ocsr.sindex.tolist()

    def test_delete_keeps_offsets_consistent(self):
        ocsr = self._tiny()
        ocsr.delete_edge(0, 1, 1)
        assert np.array_equal(np.diff(ocsr.offsets), ocsr.enum)
        assert ocsr.offsets[-1] == ocsr.num_entries

    def test_update_feature_new_version(self):
        ocsr = self._tiny()
        vec = np.array([5.0, 6.0], dtype=np.float32)
        ocsr.update_feature(1, 1, vec)
        np.testing.assert_array_equal(ocsr.feature_row(1, 1), vec)
        # version at snapshot 0 unchanged
        assert ocsr.feature_row(1, 0)[0] == 0.0

    def test_update_feature_overwrite(self):
        ocsr = self._tiny()
        vec = np.array([7.0, 8.0], dtype=np.float32)
        ocsr.update_feature(1, 0, vec)
        np.testing.assert_array_equal(ocsr.feature_row(1, 0), vec)

    def test_update_feature_dim_mismatch(self):
        ocsr = self._tiny()
        with pytest.raises(ValueError):
            ocsr.update_feature(1, 0, np.zeros(5))

    def test_insert_then_delete_roundtrip(self):
        ocsr = self._tiny()
        before_t = ocsr.tindex.copy()
        ocsr.insert_edge(0, 5, 1)
        ocsr.delete_edge(0, 5, 1)
        assert np.array_equal(ocsr.tindex, before_t)


class TestFormatsProperty:
    @given(seed=st.integers(min_value=0, max_value=3000),
           k=st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_equivalence_on_random_graphs(self, seed, k):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="prop", num_vertices=80, num_edges=250, dim=3,
                num_snapshots=k, seed=seed,
            )
        )
        rng = np.random.default_rng(seed)
        sources = rng.choice(80, size=25, replace=False)
        sel = WindowSelection(g.window(0, k), sources)
        ref = sel.edges()
        for cls in (SnapshotCSRStorage, OCSRStorage, PMAStorage):
            assert np.array_equal(cls(sel).all_edges(), ref), cls.name
