"""Property and unit tests for the Packed Memory Array core."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import PackedMemoryArray


class TestPMABasics:
    def test_insert_and_contains(self):
        pma = PackedMemoryArray()
        assert pma.insert(5, 50)
        assert pma.insert(3, 30)
        assert pma.insert(9, 90)
        assert 5 in pma and 3 in pma and 9 in pma
        assert 4 not in pma
        assert len(pma) == 3

    def test_payload_retrieval(self):
        pma = PackedMemoryArray()
        pma.insert(7, 70)
        assert pma.get(7) == 70
        assert pma.get(8) is None

    def test_duplicate_insert_overwrites_payload(self):
        pma = PackedMemoryArray()
        assert pma.insert(1, 10)
        assert not pma.insert(1, 11)
        assert pma.get(1) == 11
        assert len(pma) == 1

    def test_delete(self):
        pma = PackedMemoryArray()
        pma.insert(1)
        pma.insert(2)
        assert pma.delete(1)
        assert not pma.delete(1)
        assert 1 not in pma and 2 in pma
        assert len(pma) == 1

    def test_items_sorted(self):
        pma = PackedMemoryArray()
        for k in [9, 1, 7, 3, 5]:
            pma.insert(k)
        ks, _ = pma.items()
        assert ks.tolist() == [1, 3, 5, 7, 9]

    def test_growth(self):
        pma = PackedMemoryArray(capacity=8)
        for k in range(100):
            pma.insert(k)
        assert len(pma) == 100
        assert pma.capacity >= 100
        pma.check_invariants()

    def test_shrink(self):
        pma = PackedMemoryArray(capacity=8)
        for k in range(200):
            pma.insert(k)
        cap_full = pma.capacity
        for k in range(190):
            pma.delete(k)
        assert pma.capacity < cap_full
        assert sorted(pma.items()[0].tolist()) == list(range(190, 200))

    def test_moved_slots_accounting(self):
        pma = PackedMemoryArray(capacity=8)
        for k in range(50):
            pma.insert(k)
        assert pma.moved_slots > 0  # rebalances must have happened

    def test_invalid_densities(self):
        with pytest.raises(ValueError):
            PackedMemoryArray(leaf_density=(0.5, 0.9))  # min >= root min
        with pytest.raises(ValueError):
            PackedMemoryArray(leaf_density=(0.1, 0.6))  # max <= root max

    def test_search_cost_grows_with_size(self):
        small = PackedMemoryArray(capacity=8)
        big = PackedMemoryArray(capacity=8)
        for k in range(1000):
            big.insert(k)
        assert big.search_cost_randoms() >= small.search_cost_randoms()

    def test_thresholds_interpolate(self):
        pma = PackedMemoryArray(capacity=1024)
        leaf_min, leaf_max = pma.thresholds(0)
        root_min, root_max = pma.thresholds(pma.height)
        assert leaf_max > root_max
        assert leaf_min < root_min


class TestPMAProperties:
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=500)),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_reference_set(self, ops):
        """Arbitrary insert/delete interleavings must track a Python set
        and preserve all PMA invariants."""
        pma = PackedMemoryArray(capacity=8)
        ref: set[int] = set()
        for is_insert, key in ops:
            if is_insert:
                pma.insert(key)
                ref.add(key)
            else:
                pma.delete(key)
                ref.discard(key)
        pma.check_invariants()
        ks, _ = pma.items()
        assert set(ks.tolist()) == ref

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_bulk_load_sorted(self, seed):
        rng = np.random.default_rng(seed)
        keys = rng.choice(100_000, size=500, replace=False)
        pma = PackedMemoryArray(capacity=8)
        for k in keys:
            pma.insert(int(k))
        ks, _ = pma.items()
        assert np.array_equal(ks, np.sort(keys))
        pma.check_invariants()
