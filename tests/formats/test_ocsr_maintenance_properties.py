"""Property tests: O-CSR dynamic maintenance vs. rebuild-from-scratch.

The paper claims O-CSR "efficiently accommodates dynamic changes, such as
inserting, updating, and deleting edges and vertices, by adjusting the
appropriate entries".  These tests apply *random interleavings* of
insert/delete/update operations to an incrementally-maintained O-CSR and
assert it stays exactly equivalent to one rebuilt from scratch over the
same logical content.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import OCSRStorage, WindowSelection
from repro.graphs import CSRSnapshot, DynamicGraph


def tiny_window(n=8, k=3, seed=0):
    rng = np.random.default_rng(seed)
    snaps = []
    for t in range(k):
        m = rng.integers(3, 10)
        edges = rng.integers(0, n, size=(m, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        feats = rng.standard_normal((n, 2)).astype(np.float32)
        snaps.append(CSRSnapshot.from_edges(n, edges, feats, undirected=False))
    return DynamicGraph(snaps)


@st.composite
def op_sequences(draw):
    n, k = 8, 3
    seed = draw(st.integers(min_value=0, max_value=2000))
    n_ops = draw(st.integers(min_value=1, max_value=40))
    rng = np.random.default_rng(seed + 77)
    ops = []
    for _ in range(n_ops):
        kind = rng.integers(0, 3)
        if kind == 0:
            ops.append(("insert", int(rng.integers(n)), int(rng.integers(n)),
                        int(rng.integers(k))))
        elif kind == 1:
            ops.append(("delete", int(rng.integers(n)), int(rng.integers(n)),
                        int(rng.integers(k))))
        else:
            ops.append(("update", int(rng.integers(n)), int(rng.integers(k)),
                        rng.standard_normal(2).astype(np.float32)))
    return seed, ops


class OCSRReference:
    """Ground truth: a plain set of (src, tgt, ts) plus a version dict."""

    def __init__(self, store: OCSRStorage):
        self.edges = {tuple(e) for e in store.all_edges().tolist()}
        self.features: dict[tuple[int, int], np.ndarray] = {}
        for v, start in zip(store.fv_vertex.tolist(), store.fv_start.tolist()):
            self.features[(v, start)] = None  # values checked separately

    def apply(self, op):
        if op[0] == "insert":
            self.edges.add((op[1], op[2], op[3]))
        elif op[0] == "delete":
            self.edges.discard((op[1], op[2], op[3]))


class TestMaintenanceProperties:
    @given(op_sequences())
    @settings(max_examples=25, deadline=None)
    def test_edges_track_reference_set(self, case):
        seed, ops = case
        w = tiny_window(seed=seed)
        store = OCSRStorage(WindowSelection(w, np.arange(8)))
        ref = OCSRReference(store)
        for op in ops:
            if op[0] == "insert":
                store.insert_edge(op[1], op[2], op[3])
            elif op[0] == "delete":
                store.delete_edge(op[1], op[2], op[3])
            else:
                store.update_feature(op[1], op[2], op[3])
            ref.apply(op)
        got = {tuple(e) for e in store.all_edges().tolist()}
        assert got == ref.edges

    @given(op_sequences())
    @settings(max_examples=25, deadline=None)
    def test_structural_invariants_hold(self, case):
        """After any op sequence: offsets consistent with enum, runs
        sorted by (timestamp, target), sindex sorted, no empty runs."""
        seed, ops = case
        w = tiny_window(seed=seed)
        store = OCSRStorage(WindowSelection(w, np.arange(8)))
        for op in ops:
            if op[0] == "insert":
                store.insert_edge(op[1], op[2], op[3])
            elif op[0] == "delete":
                store.delete_edge(op[1], op[2], op[3])
            else:
                store.update_feature(op[1], op[2], op[3])
            # invariants checked after EVERY op, not just at the end
            assert np.all(np.diff(store.sindex) > 0)
            assert np.array_equal(np.diff(store.offsets), store.enum)
            assert store.offsets[-1] == store.num_entries
            assert np.all(store.enum > 0)
            for i in range(store.num_sources):
                sl = slice(int(store.offsets[i]), int(store.offsets[i + 1]))
                key = (
                    store.timestamp[sl] * np.int64(w.num_vertices)
                    + store.tindex[sl]
                )
                assert np.all(np.diff(key) > 0)

    @given(op_sequences())
    @settings(max_examples=15, deadline=None)
    def test_feature_versions_sorted(self, case):
        seed, ops = case
        w = tiny_window(seed=seed)
        store = OCSRStorage(WindowSelection(w, np.arange(8)))
        for op in ops:
            if op[0] == "update":
                store.update_feature(op[1], op[2], op[3])
        assert np.all(np.diff(store.fv_vertex) >= 0)
        for v in np.unique(store.fv_vertex).tolist():
            starts = store.fv_start[store.fv_vertex == v]
            assert np.all(np.diff(starts) > 0)

    @given(op_sequences())
    @settings(max_examples=15, deadline=None)
    def test_update_then_read_back(self, case):
        seed, ops = case
        w = tiny_window(seed=seed)
        store = OCSRStorage(WindowSelection(w, np.arange(8)))
        last_value: dict[tuple[int, int], np.ndarray] = {}
        for op in ops:
            if op[0] == "update":
                store.update_feature(op[1], op[2], op[3])
                last_value[(op[1], op[2])] = op[3]
        for (v, t), val in last_value.items():
            np.testing.assert_array_equal(store.feature_row(v, t), val)
