"""Tests for the shared access-cost model of the storage formats."""

import pytest

from repro.formats import (
    RANDOM_ACCESS_CYCLES,
    WORDS_PER_CYCLE,
    AccessCost,
)


class TestAccessCost:
    def test_add_and_cycles(self):
        c = AccessCost()
        c.add(randoms=10, words=160)
        assert c.random_accesses == 10
        assert c.sequential_words == 160
        assert c.cycles() == pytest.approx(
            10 * RANDOM_ACCESS_CYCLES + 160 / WORDS_PER_CYCLE
        )

    def test_sum_operator(self):
        a = AccessCost(random_accesses=3, sequential_words=32)
        b = AccessCost(random_accesses=7, sequential_words=64)
        c = a + b
        assert c.random_accesses == 10
        assert c.sequential_words == 96
        # operands untouched
        assert a.random_accesses == 3

    def test_empty_cost(self):
        assert AccessCost().cycles() == 0.0

    def test_randoms_expensive_relative_to_words(self):
        """One random access must cost more than one streamed word —
        otherwise the format comparison would be meaningless."""
        one_random = AccessCost(random_accesses=1).cycles()
        one_word = AccessCost(sequential_words=1).cycles()
        assert one_random > 10 * one_word
