"""Regression tests: O-CSR bulk splices stay O(1) allocations per batch.

``mutation_allocs`` counts array (re)allocations performed by the
mutation kernels.  The bulk-splice guarantee is that one batch costs a
*constant* number of allocations however many edges or feature versions
it carries — a 1-row batch and a 500-row batch must bump the counter by
exactly the same amount.  A per-element loop sneaking back into the
kernels would break these tests immediately.
"""

import numpy as np

from repro.formats import OCSRStorage, WindowSelection
from repro.graphs import CSRSnapshot, DynamicGraph

N = 64
K = 3
DIM = 2


def make_store(seed=0, stable_features=False):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((N, DIM)).astype(np.float32)
    snaps = []
    for _ in range(K):
        edges = rng.integers(0, N, size=(40, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        feats = (
            base if stable_features
            else rng.standard_normal((N, DIM)).astype(np.float32)
        )
        snaps.append(CSRSnapshot.from_edges(N, edges, feats, undirected=False))
    return OCSRStorage(WindowSelection(DynamicGraph(snaps), np.arange(N)))


def fresh_edges(store, rng, count):
    """(src, tgt, ts) rows not currently stored."""
    have = {tuple(e) for e in store.all_edges().tolist()}
    out = []
    while len(out) < count:
        cand = (int(rng.integers(N)), int(rng.integers(N)), int(rng.integers(K)))
        if cand not in have:
            have.add(cand)
            out.append(cand)
    return np.asarray(out, dtype=np.int64)


def alloc_delta(store, fn):
    before = store.mutation_allocs
    fn()
    return store.mutation_allocs - before


class TestBulkAllocationBudget:
    def test_insert_allocs_independent_of_batch_size(self):
        rng = np.random.default_rng(1)
        small = make_store(seed=1)
        big = make_store(seed=1)
        d_small = alloc_delta(
            small, lambda: small.insert_edges(fresh_edges(small, rng, 1))
        )
        d_big = alloc_delta(
            big, lambda: big.insert_edges(fresh_edges(big, rng, 500))
        )
        assert d_small == d_big
        assert d_small > 0

    def test_delete_allocs_independent_of_batch_size(self):
        small = make_store(seed=2)
        big = make_store(seed=2)
        stored = small.all_edges()
        assert stored.shape[0] >= 20
        d_small = alloc_delta(
            small, lambda: small.delete_edges(stored[:1])
        )
        d_big = alloc_delta(big, lambda: big.delete_edges(stored[:20]))
        assert d_small == d_big
        assert d_small > 0

    def test_feature_splice_allocs_independent_of_batch_size(self):
        rng = np.random.default_rng(3)
        # stable features: each vertex holds one version (start 0), so a
        # snapshot K-1 upsert is a genuinely fresh splice
        small = make_store(seed=3, stable_features=True)
        big = make_store(seed=3, stable_features=True)
        verts = np.arange(N, dtype=np.int64)

        def upsert(store, m):
            store.update_features(
                verts[:m],
                np.full(m, K - 1, dtype=np.int64),
                rng.standard_normal((m, DIM)).astype(np.float32),
            )

        d_small = alloc_delta(small, lambda: upsert(small, 1))
        d_big = alloc_delta(big, lambda: upsert(big, N))
        assert d_small == d_big
        assert d_small > 0

    def test_noop_batches_allocate_nothing(self):
        store = make_store(seed=4)
        stored = store.all_edges()
        # duplicate insert, absent delete, in-place overwrite: all 0 allocs
        assert alloc_delta(store, lambda: store.insert_edges(stored[:5])) == 0
        gone = fresh_edges(store, np.random.default_rng(4), 5)
        assert alloc_delta(store, lambda: store.delete_edges(gone)) == 0
        v = int(store.fv_vertex[0])
        s = int(store.fv_start[0])
        val = np.zeros((1, DIM), dtype=np.float32)
        assert (
            alloc_delta(
                store,
                lambda: store.update_features(
                    np.array([v]), np.array([s]), val
                ),
            )
            == 0
        )

    def test_empty_batches_allocate_nothing(self):
        store = make_store(seed=5)
        empty = np.empty((0, 3), dtype=np.int64)
        assert alloc_delta(store, lambda: store.insert_edges(empty)) == 0
        assert alloc_delta(store, lambda: store.delete_edges(empty)) == 0
        assert (
            alloc_delta(
                store,
                lambda: store.update_features(
                    np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.int64),
                    np.empty((0, DIM), dtype=np.float32),
                ),
            )
            == 0
        )
