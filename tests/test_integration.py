"""End-to-end integration tests across the whole stack.

These chain every subsystem the way the benches and examples do:
generator -> classification -> subgraph -> O-CSR -> engines -> simulator
-> platforms -> accuracy protocol, and assert the cross-module contracts.
"""

import numpy as np
import pytest

from repro.accel import (
    ACCELERATOR_BASELINES,
    TAGNN_S,
    DGL_CPU,
    PIPAD,
    TaGNNConfig,
    TaGNNSimulator,
    WorkloadStats,
    estimate_resources,
)
from repro.analysis import classify_window, extract_affected_subgraph
from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.formats import OCSRStorage, SnapshotCSRStorage, WindowSelection
from repro.graphs import load_dataset
from repro.models import (
    evaluate_accuracy,
    fit_readout,
    make_model,
    make_teacher_labels,
)


@pytest.fixture(scope="module")
def stack():
    graph = load_dataset("GT", num_snapshots=8)
    model = make_model("T-GCN", graph.dim, 32, seed=0)
    reference = ReferenceEngine(model, window_size=4).run(graph)
    concurrent = ConcurrentEngine(model, window_size=4).run(graph)
    return graph, model, reference, concurrent


class TestFullPipeline:
    def test_subgraph_feeds_ocsr(self, stack):
        graph, *_ = stack
        window = graph.window(0, 4)
        sg = extract_affected_subgraph(window)
        store = OCSRStorage(sg.selection())
        csr = SnapshotCSRStorage(sg.selection())
        assert np.array_equal(store.all_edges(), csr.all_edges())
        assert store.storage_bytes() < csr.storage_bytes()

    def test_engines_agree_semantically(self, stack):
        graph, model, reference, concurrent = stack
        err = np.mean(
            [
                np.abs(a - b).mean()
                for a, b in zip(concurrent.outputs, reference.outputs)
            ]
        )
        assert err < 0.05

    def test_savings_flow_to_simulator(self, stack):
        graph, model, reference, concurrent = stack
        wl = WorkloadStats.analyze(graph, model, 4)
        tagnn = TaGNNSimulator().simulate(model, graph, "GT", workload=wl)
        # functional savings must appear in the hardware numbers
        assert tagnn.metrics.cells_skipped == concurrent.metrics.cells_skipped
        assert tagnn.extra["words"] < reference.metrics.total_words

    def test_all_platforms_report(self, stack):
        graph, model, reference, _ = stack
        wl = WorkloadStats.analyze(graph, model, 4)
        reports = {"TaGNN": TaGNNSimulator().simulate(model, graph, "GT", workload=wl)}
        for name, p in {**ACCELERATOR_BASELINES, "DGL-CPU": DGL_CPU, "PiPAD": PIPAD}.items():
            reports[name] = p.simulate(
                model, graph, "GT", metrics=reference.metrics, workload=wl
            )
        reports["TaGNN-S"] = TAGNN_S.simulate(model, graph, "GT", workload=wl)
        # TaGNN wins everywhere, on both axes
        for name, r in reports.items():
            if name == "TaGNN":
                continue
            assert reports["TaGNN"].seconds < r.seconds, name
            assert reports["TaGNN"].joules < r.joules, name

    def test_accuracy_protocol_end_to_end(self, stack):
        graph, model, reference, concurrent = stack
        labels = make_teacher_labels(graph, 4)
        readout = fit_readout(reference.outputs, labels, graph)
        acc_ref = evaluate_accuracy(reference.outputs, labels, graph, readout=readout)
        acc_skip = evaluate_accuracy(concurrent.outputs, labels, graph, readout=readout)
        assert acc_ref > 0.35  # learnable task
        assert acc_ref - acc_skip < 0.02  # skipping costs < 2 points

    def test_resources_fit_for_all_models(self, stack):
        graph, *_ = stack
        for name in ("CD-GCN", "GC-LSTM", "T-GCN"):
            model = make_model(name, graph.dim, 32)
            assert estimate_resources(model).fits()

    def test_window_sweep_consistency(self, stack):
        """Larger windows monotonically reduce loader traffic per
        snapshot under OADL (more overlap exploited)."""
        graph, model, *_ = stack
        words = []
        for k in (1, 2, 4, 8):
            cfg = TaGNNConfig().with_window(k)
            rep = TaGNNSimulator(cfg).simulate(
                model, graph, "GT",
                workload=WorkloadStats.analyze(graph, model, k),
            )
            words.append(rep.extra["words"])
        assert words[0] > words[1] > words[2] > words[3]

    def test_classification_drives_engine_savings(self, stack):
        """The unaffected fraction bounds the GNN compute savings: the
        engine must compute at most (1 + changed share) of the reference
        aggregation work (within the representative-pass overhead)."""
        graph, model, reference, concurrent = stack
        c = classify_window(graph.window(0, 4))
        changed_share = 1.0 - c.unaffected_ratio()
        ratio = (
            concurrent.metrics.aggregation_macs
            / reference.metrics.aggregation_macs
        )
        assert ratio < 0.3 + changed_share  # 0.3 covers the rep pass
