"""End-to-end determinism locks.

Every number this repository reports must be exactly reproducible: same
inputs, same bits.  These tests run key pipelines twice from scratch and
require identity (not closeness) — the property the archived
test/bench outputs rely on.
"""

import numpy as np

from repro.accel import CycleSimulator, TaGNNSimulator, WorkloadStats
from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_dataset
from repro.models import make_model, make_teacher_labels


def build_everything(seed=3):
    g = load_dataset("GT", num_snapshots=6, seed=seed)
    m = make_model("T-GCN", g.dim, 16, seed=seed)
    ref = ReferenceEngine(m, window_size=4).run(g)
    conc = ConcurrentEngine(
        make_model("T-GCN", g.dim, 16, seed=seed), window_size=4
    ).run(g)
    wl = WorkloadStats.analyze(g, m, 4)
    rep = TaGNNSimulator().simulate(m, g, "GT", workload=wl)
    ev = CycleSimulator().run_workload(wl, skip_ratio=0.5)
    labels = make_teacher_labels(g, 4)
    return g, ref, conc, rep, ev, labels


class TestDeterminism:
    def test_two_runs_identical(self):
        g1, ref1, conc1, rep1, ev1, lab1 = build_everything()
        g2, ref2, conc2, rep2, ev2, lab2 = build_everything()

        for a, b in zip(ref1.outputs, ref2.outputs):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(conc1.outputs, conc2.outputs):
            np.testing.assert_array_equal(a, b)
        assert rep1.cycles == rep2.cycles
        assert rep1.joules == rep2.joules
        assert rep1.extra["words"] == rep2.extra["words"]
        assert ev1.total_cycles == ev2.total_cycles
        np.testing.assert_array_equal(lab1, lab2)

    def test_metrics_identical(self):
        _, _, conc1, *_ = build_everything()
        _, _, conc2, *_ = build_everything()
        assert conc1.metrics.as_dict() == conc2.metrics.as_dict()

    def test_decisions_identical(self):
        _, _, conc1, *_ = build_everything()
        _, _, conc2, *_ = build_everything()
        for d1, d2 in zip(conc1.extra["decisions"], conc2.extra["decisions"]):
            np.testing.assert_array_equal(d1.vertices, d2.vertices)
            np.testing.assert_array_equal(d1.modes, d2.modes)
            np.testing.assert_array_equal(d1.theta, d2.theta)

    def test_different_seed_differs(self):
        _, ref1, *_ = build_everything(seed=3)
        _, ref2, *_ = build_everything(seed=4)
        assert not np.array_equal(ref1.outputs[-1], ref2.outputs[-1])

    def test_cyclesim_identical_under_sanitizer(self, monkeypatch):
        """Two sanitized runs are bit-identical and violation-free: the
        conservation checks observe without perturbing the simulation."""
        from repro.accel import Task
        from repro.check import sanitized

        monkeypatch.setenv("REPRO_SANITIZE", "1")
        tasks = [
            Task(vertex=i, gnn_macs=900.0 + 7 * (i % 5), rnn_macs=80.0,
                 load_words=12.0 + (i % 3))
            for i in range(300)
        ]
        with sanitized() as stats:
            before = stats.checks
            a = CycleSimulator().run(tasks)  # raises on any violation
            b = CycleSimulator().run(tasks)
            assert stats.checks > before
        assert a == b
        assert a.summary() == b.summary()
