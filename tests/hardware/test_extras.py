"""Additional hardware-model tests: utilization, spills, energy edges."""

import pytest

from repro.hardware import (
    FPGA_U280,
    MemorySubsystem,
    OnChipBuffer,
    Pipeline,
    PipelineStage,
)


class TestPipelineUtilization:
    def test_zero_items(self):
        p = Pipeline("p", [PipelineStage("a", 1)])
        assert p.utilization(0) == 0.0

    def test_long_streams_approach_full(self):
        p = Pipeline("p", [PipelineStage("a", 1), PipelineStage("b", 1)])
        assert p.utilization(10_000) > 0.99
        assert p.utilization(10_000) <= 1.0

    def test_unbalanced_pipeline_underutilised(self):
        balanced = Pipeline("b", [PipelineStage("a", 2), PipelineStage("b", 2)])
        skewed = Pipeline("s", [PipelineStage("a", 1), PipelineStage("b", 3)])
        n = 10_000
        assert skewed.utilization(n) < balanced.utilization(n)


class TestMemorySpills:
    def test_subsystem_spill_aggregation(self):
        ms = MemorySubsystem.tagnn_default()
        cap_words = ms.buffers["output_buffer"].usable_bytes // 4
        spill = ms.buffers["output_buffer"].load_tile(cap_words + 100)
        assert spill == 100
        assert ms.total_spill_words() == 100
        ms.reset_counters()
        assert ms.total_spill_words() == 0

    def test_exact_fit_no_spill(self):
        b = OnChipBuffer("x", 800, ping_pong=False)
        assert b.load_tile(200) == 0  # 800 B = 200 words
        assert b.spill_words == 0


class TestEnergyEdges:
    def test_zero_everything_zero_energy(self):
        assert FPGA_U280.total_joules() == 0.0

    def test_dynamic_vs_static_split(self):
        dyn = FPGA_U280.dynamic_joules(macs=1e9)
        stat = FPGA_U280.static_joules(1e6)
        total = FPGA_U280.total_joules(macs=1e9, cycles=1e6)
        assert total == pytest.approx(dyn + stat)
