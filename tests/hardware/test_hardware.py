"""Tests for the hardware substrate: memory, pipelines, units, energy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    ASIC_1GHZ,
    CPU_XEON,
    FPGA_U280,
    GPU_A100,
    AdderTree,
    HBMModel,
    MACArray,
    MemorySubsystem,
    OnChipBuffer,
    Pipeline,
    PipelineStage,
    SimilarityCore,
    overlap,
    serial,
)


class TestHBMModel:
    def test_table4_bandwidth(self):
        hbm = HBMModel()  # defaults are the Table 4 settings
        assert hbm.bandwidth_gbs == 256.0
        # 256 GB/s at 225 MHz = ~1138 B/cycle
        assert hbm.bytes_per_cycle == pytest.approx(256e9 / 225e6)

    def test_streaming_cycles_linear(self):
        hbm = HBMModel()
        assert hbm.cycles(words=2000) == pytest.approx(2 * hbm.cycles(words=1000))

    def test_random_latency_dominates_small_transfers(self):
        hbm = HBMModel()
        assert hbm.cycles(randoms=100) > hbm.cycles(words=100)

    def test_higher_clock_more_cycles_per_byte(self):
        slow = HBMModel(frequency_mhz=225)
        fast = HBMModel(frequency_mhz=1000)
        assert fast.cycles(words=1000) > slow.cycles(words=1000)


class TestOnChipBuffer:
    def test_ping_pong_halves_capacity(self):
        b = OnChipBuffer("x", 1024, ping_pong=True)
        assert b.usable_bytes == 512
        b2 = OnChipBuffer("x", 1024, ping_pong=False)
        assert b2.usable_bytes == 1024

    def test_fits(self):
        b = OnChipBuffer("x", 1024)
        assert b.fits(128)  # 512 usable bytes = 128 words
        assert not b.fits(129)

    def test_spill_accounting(self):
        b = OnChipBuffer("x", 1024)
        spill = b.load_tile(200)  # 128 words fit
        assert spill == 72
        assert b.spill_words == 72
        assert b.load_tile(50) == 0

    def test_reset(self):
        b = OnChipBuffer("x", 1024)
        b.access(reads=5, writes=3)
        b.reset_counters()
        assert b.reads == 0 and b.writes == 0


class TestMemorySubsystem:
    def test_tagnn_default_matches_table4(self):
        ms = MemorySubsystem.tagnn_default()
        assert ms.buffers["feature_memory"].capacity_bytes == 2 * 1024 * 1024
        assert ms.buffers["task_fifo"].capacity_bytes == 256 * 1024
        assert ms.buffers["ocsr_table"].capacity_bytes == 1024 * 1024
        assert ms.buffers["structure_memory"].capacity_bytes == 512 * 1024
        assert ms.buffers["intermediate"].capacity_bytes == 128 * 1024
        assert ms.buffers["output_buffer"].capacity_bytes == 128 * 1024
        # total ~4 MB of on-chip memory
        assert ms.total_sram_bytes() == 4 * 1024 * 1024 - 0

    def test_counters_aggregate(self):
        ms = MemorySubsystem.tagnn_default()
        ms.buffers["task_fifo"].access(reads=10)
        ms.buffers["output_buffer"].access(writes=5)
        assert ms.total_sram_accesses() == 15
        ms.reset_counters()
        assert ms.total_sram_accesses() == 0


class TestPipeline:
    def _msdl_like(self):
        # the paper's 6-stage loader with replicated fetch stages
        return Pipeline(
            "msdl",
            [
                PipelineStage("fetch_vertex", 1),
                PipelineStage("fetch_snapshot", 1),
                PipelineStage("fetch_offsets", 1),
                PipelineStage("fetch_neighbors", 4, replication=2),
                PipelineStage("fetch_features", 4, replication=2),
                PipelineStage("identify_vertices", 1),
            ],
        )

    def test_initiation_interval_is_bottleneck(self):
        p = self._msdl_like()
        assert p.initiation_interval == 2.0  # 4 cycles / 2 replicas
        assert p.bottleneck().name in ("fetch_neighbors", "fetch_features")

    def test_fill_plus_steady_state(self):
        p = self._msdl_like()
        assert p.cycles(1) == pytest.approx(p.fill_latency)
        assert p.cycles(101) == pytest.approx(p.fill_latency + 100 * 2.0)

    def test_zero_items(self):
        assert self._msdl_like().cycles(0) == 0.0

    def test_replication_balances(self):
        """The paper replicates the fetch stages; without replication the
        pipeline would be 2x slower in steady state."""
        unbalanced = Pipeline(
            "u", [PipelineStage("a", 1), PipelineStage("b", 4)]
        )
        balanced = Pipeline(
            "b", [PipelineStage("a", 1), PipelineStage("b", 4, replication=4)]
        )
        n = 10_000
        assert balanced.cycles(n) < unbalanced.cycles(n) / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Pipeline("empty", [])
        with pytest.raises(ValueError):
            PipelineStage("bad", -1)
        with pytest.raises(ValueError):
            PipelineStage("bad", 1, replication=0)
        with pytest.raises(ValueError):
            self._msdl_like().cycles(-1)

    @given(
        costs=st.lists(st.floats(min_value=0.1, max_value=10), min_size=1, max_size=8),
        n=st.integers(min_value=1, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_cycles_bounded_by_serial_execution(self, costs, n):
        p = Pipeline("p", [PipelineStage(f"s{i}", c) for i, c in enumerate(costs)])
        serial_cost = n * sum(costs)
        assert p.cycles(n) <= serial_cost + 1e-6
        assert p.cycles(n) >= n * max(costs) - 1e-6

    def test_overlap_and_serial(self):
        assert overlap(10, 20, 5) == 20
        assert serial(10, 20, 5) == 35
        assert overlap() == 0.0


class TestUnits:
    def test_mac_array_throughput(self):
        mac = MACArray(4096, efficiency=1.0)
        assert mac.cycles(4096) == 1.0
        assert mac.matmul_cycles(10, 20, 30) == pytest.approx(10 * 20 * 30 / 4096)

    def test_mac_efficiency_derates(self):
        assert MACArray(100, efficiency=0.5).cycles(100) == 2.0

    def test_mac_validation(self):
        with pytest.raises(ValueError):
            MACArray(0)
        with pytest.raises(ValueError):
            MACArray(10, efficiency=1.5)
        with pytest.raises(ValueError):
            MACArray(10).cycles(-1)

    def test_adder_tree(self):
        t = AdderTree(width=16, count=128)
        assert t.depth == 4
        assert t.cycles(0) == 0.0
        # throughput term dominates for large batches
        assert t.cycles(16 * 128 * 1000) == pytest.approx(1000 + 4)

    def test_adder_tree_aggregate(self):
        t = AdderTree(width=16, count=128)
        assert t.aggregate_cycles(100, 32) == t.cycles(3200)

    def test_similarity_core(self):
        s = SimilarityCore(lanes=16, count=8)
        assert s.cycles(0, 32, 4) == 0.0
        c1 = s.cycles(100, 32, 4)
        c2 = s.cycles(200, 32, 4)
        assert c2 > c1
        # wider common-neighbour sets dominate when they exceed dim
        assert s.cycles(100, 16, 64) > s.cycles(100, 16, 4)

    def test_unit_validation(self):
        with pytest.raises(ValueError):
            AdderTree(width=1)
        with pytest.raises(ValueError):
            SimilarityCore(lanes=0)


class TestEnergy:
    def test_dynamic_energy_scales(self):
        e = FPGA_U280.dynamic_joules(macs=1e9)
        assert e == pytest.approx(1e9 * 4.0 * 1e-12)

    def test_static_energy(self):
        # 225e6 cycles at 225 MHz = 1 s -> static_watts joules
        assert FPGA_U280.static_joules(225e6) == pytest.approx(
            FPGA_U280.static_watts
        )

    def test_total_combines(self):
        t = FPGA_U280.total_joules(macs=1e6, dram_words=1e6, cycles=225e6)
        assert t == pytest.approx(
            FPGA_U280.dynamic_joules(macs=1e6, dram_words=1e6)
            + FPGA_U280.static_joules(225e6)
        )

    def test_platform_ordering_per_mac(self):
        """ASIC < FPGA < GPU < CPU in energy per MAC — the technology
        ordering behind the paper's Fig. 11."""
        assert (
            ASIC_1GHZ.mac_pj < FPGA_U280.mac_pj < GPU_A100.mac_pj < CPU_XEON.mac_pj
        )

    def test_seconds(self):
        assert FPGA_U280.seconds(225e6) == pytest.approx(1.0)
