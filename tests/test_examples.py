"""Smoke tests: every shipped example must run to completion.

Examples are part of the public deliverable; they run as subprocesses so
an example crashing (or calling sys.exit) cannot take the test session
down with it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = [
    "quickstart.py",
    "anomaly_detection.py",
    "streaming_updates.py",
    "accelerator_codesign.py",
    "public_trace_study.py",
    "online_inference.py",
    "chaos_serving.py",
    "sharded_serving.py",
]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()  # examples must narrate what they did


def test_quickstart_reports_key_results():
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=420,
    )
    out = proc.stdout
    assert "TaGNN accelerator" in out
    assert "faster" in out
    assert "max |diff| = 0.00e+00" in out  # the exactness check
