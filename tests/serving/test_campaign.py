"""Tests for seeded cluster chaos campaigns — the sharding chaos proof."""

import json

import pytest

from repro.graphs import load_dataset
from repro.models import make_model
from repro.resilience import SHARD_FAULTS, FaultKind, FaultPlan
from repro.serving import ClusterChaosReport, run_cluster_campaign

WINDOW = 3
SEED = 3
SHARDS = 4
DIM = 32


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", scale=0.05, num_snapshots=6, seed=SEED)


@pytest.fixture(scope="module")
def graph_b():
    return load_dataset("GT", scale=0.05, num_snapshots=6, seed=SEED + 1)


def factory():
    return make_model("T-GCN", DIM, 8, seed=SEED)


@pytest.fixture(scope="module")
def plan(graph):
    return FaultPlan.generate_cluster(
        seed=7, num_steps=graph.num_snapshots, num_shards=SHARDS
    )


@pytest.fixture(scope="module")
def report(graph, graph_b, plan):
    return run_cluster_campaign(
        factory,
        {"a": graph, "b": graph_b},
        plan,
        num_shards=SHARDS,
        window_size=WINDOW,
        seed=SEED,
    )


class TestClusterCampaign:
    def test_every_shard_gets_every_fault_kind(self, plan):
        assert len(plan) == SHARDS * len(SHARD_FAULTS)
        assert plan.shards_touched() == frozenset(range(SHARDS))

    def test_bit_identical_with_zero_loss(self, report):
        assert report.identical
        assert report.lost == 0
        for name in report.tenants:
            assert len(report.outputs[name]) == report.admitted[name]

    def test_every_shard_was_restarted(self, report):
        # crash/stall/torn faults hit every shard at least once, so
        # every shard must appear in the recovery log
        assert report.restarted_shards == list(range(SHARDS))
        assert report.restarts >= SHARDS

    def test_every_recovery_is_a_structured_incident(self, report):
        restarted = [
            inc for inc in report.incidents if inc.action == "restarted"
        ]
        assert len(restarted) >= report.restarts
        for inc in restarted:
            assert 0 <= inc.shard < SHARDS
            assert inc.tenant in report.tenants
            assert inc.kind in ("worker-crash", "worker-stall")
            assert "resumed from" in inc.detail

    def test_torn_checkpoints_surface_as_rollbacks(self, report, plan):
        assert any(
            spec.kind is FaultKind.TORN_CHECKPOINT for spec in plan.specs
        )
        torn = [
            inc for inc in report.incidents
            if inc.kind == "torn-checkpoint"
        ]
        assert torn
        for inc in torn:
            assert inc.action in ("rolled-back", "cold-start")

    def test_metrics_aggregate_recovery_work(self, report):
        m = report.metrics
        assert m.shard_restarts == report.restarts
        assert m.restores >= 1
        assert m.incidents >= len(report.incidents)

    def test_shard_summaries_cover_every_shard(self, report, graph):
        assert [s["shard"] for s in report.shard_summaries] == list(
            range(SHARDS)
        )
        owned = sum(s["owned_vertices"] for s in report.shard_summaries)
        assert owned == graph.num_vertices

    def test_summary_is_operator_readable(self, report):
        text = report.summary()
        assert "bit-identical       : yes" in text
        assert "lost (non-DLQ)      : 0" in text
        assert "incident log:" in text

    def test_report_json_round_trips(self, report):
        blob = json.dumps(report.to_json(), sort_keys=True)
        back = json.loads(blob)
        assert back["identical"] is True
        assert back["lost"] == 0
        assert back["restarted_shards"] == list(range(SHARDS))
        assert len(back["incidents"]) == len(report.incidents)

    def test_campaign_is_deterministic(self, graph, plan, report):
        again = run_cluster_campaign(
            factory,
            {"a": graph},
            plan,
            num_shards=SHARDS,
            window_size=WINDOW,
            seed=SEED,
        )
        assert again.identical
        assert again.restarted_shards == report.restarted_shards

    def test_single_graph_wraps_to_one_tenant(self, graph, plan):
        got = run_cluster_campaign(
            factory, graph, plan, num_shards=SHARDS,
            window_size=WINDOW, seed=SEED,
        )
        assert got.tenants == ["tenant-0"]
        assert got.identical

    def test_report_validation(self):
        with pytest.raises(ValueError):
            ClusterChaosReport(lost=-1)
        with pytest.raises(ValueError):
            ClusterChaosReport(restarts=-1)
