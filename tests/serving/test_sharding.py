"""Tests for the shard map, virtual clock, and tenant gate."""

import numpy as np
import pytest

from repro.accel.partition import PartitionStrategy
from repro.graphs import load_dataset
from repro.serving import ShardMap, TenantGate, VirtualClock

SEED = 3


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", scale=0.05, num_snapshots=4, seed=SEED)


class TestVirtualClock:
    def test_starts_and_ticks(self):
        clock = VirtualClock()
        assert clock.now == 0
        clock.tick()
        clock.tick(3)
        assert clock.now == 4

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            VirtualClock(start=-1)
        with pytest.raises(ValueError):
            VirtualClock().tick(0)


class TestShardMap:
    def test_build_partitions_every_vertex(self, graph):
        window = graph.window(0, 1)
        smap = ShardMap.build(window, 4)
        assert smap.num_shards == 4
        assert smap.num_vertices == graph.num_vertices
        assert smap.owner.shape == (graph.num_vertices,)
        assert set(np.unique(smap.owner)) <= set(range(4))
        total = sum(smap.rows(s).size for s in range(4))
        assert total == graph.num_vertices

    def test_rows_are_disjoint(self, graph):
        smap = ShardMap.build(graph.window(0, 1), 4)
        seen = np.zeros(graph.num_vertices, dtype=bool)
        for s in smap.active_shards():
            owned = smap.rows(s)
            assert not seen[owned].any()
            seen[owned] = True
        assert seen.all()

    def test_build_is_deterministic(self, graph):
        a = ShardMap.build(graph.window(0, 1), 4)
        b = ShardMap.build(graph.window(0, 1), 4)
        assert np.array_equal(a.owner, b.owner)
        assert a.cut_edges == b.cut_edges

    def test_stitch_reassembles_full_matrix(self, graph):
        smap = ShardMap.build(graph.window(0, 1), 3)
        full = np.random.default_rng(0).normal(
            size=(graph.num_vertices, 5)
        )
        parts = {
            s: full[smap.rows(s)].copy() for s in smap.active_shards()
        }
        assert np.array_equal(smap.stitch(parts), full)

    def test_stitch_requires_every_active_shard(self, graph):
        smap = ShardMap.build(graph.window(0, 1), 3)
        full = np.ones((graph.num_vertices, 2))
        parts = {
            s: full[smap.rows(s)] for s in smap.active_shards()[:-1]
        }
        with pytest.raises(ValueError):
            smap.stitch(parts)

    def test_boundary_words_scale_with_dim(self, graph):
        smap = ShardMap.build(graph.window(0, 1), 4)
        assert smap.boundary_words(8) == smap.cut_edges * 8

    def test_num_shards_bounds(self, graph):
        window = graph.window(0, 1)
        with pytest.raises(ValueError):
            ShardMap.build(window, 0)
        with pytest.raises(ValueError):
            ShardMap.build(window, graph.num_vertices + 1)

    def test_strategy_is_threaded_through(self, graph):
        window = graph.window(0, 1)
        smap = ShardMap.build(
            window, 4, strategy=PartitionStrategy.RANGE
        )
        assert smap.num_shards == 4


class TestTenantGate:
    def test_unbounded_always_admits(self):
        gate = TenantGate(max_backlog=None)
        gate.register("a")
        for _ in range(100):
            assert gate.admit("a", 99) == ""

    def test_backlog_full_sheds(self):
        gate = TenantGate(max_backlog=2)
        gate.register("a")
        assert gate.admit("a", 0) == ""
        assert gate.admit("a", 2) == "backlog-full"

    def test_breaker_opens_after_consecutive_sheds(self):
        gate = TenantGate(max_backlog=1, breaker_threshold=3)
        gate.register("a")
        for _ in range(3):
            assert gate.admit("a", 5) == "backlog-full"
        assert gate.breaker_open("a")
        assert gate.admit("a", 5) == "circuit-open"

    def test_breaker_half_closes_on_headroom(self):
        gate = TenantGate(max_backlog=1, breaker_threshold=2)
        gate.register("a")
        gate.admit("a", 5)
        gate.admit("a", 5)
        assert gate.breaker_open("a")
        # headroom returned: the breaker lets the tenant back in
        assert gate.admit("a", 0) == ""
        assert not gate.breaker_open("a")

    def test_tenants_are_isolated(self):
        gate = TenantGate(max_backlog=1, breaker_threshold=1)
        gate.register("a")
        gate.register("b")
        gate.admit("a", 5)
        assert gate.breaker_open("a")
        assert gate.admit("b", 0) == ""
        assert not gate.breaker_open("b")

    def test_unknown_tenant_rejected(self):
        gate = TenantGate()
        with pytest.raises(ValueError):
            gate.admit("ghost", 0)
