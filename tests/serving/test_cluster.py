"""Tests for the supervised shard cluster: identity, recovery, shedding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import StreamingInference
from repro.graphs import load_dataset
from repro.models import make_model
from repro.serving import ShardCluster

WINDOW = 3
SEED = 3
SHARDS = 4


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", scale=0.05, num_snapshots=6, seed=SEED)


@pytest.fixture(scope="module")
def graph_b():
    return load_dataset("GT", scale=0.05, num_snapshots=6, seed=SEED + 1)


DIM = 32  # GT's feature width (asserted below)


def factory():
    return make_model("T-GCN", DIM, 8, seed=SEED)


def test_fixture_geometry(graph, graph_b):
    assert graph.dim == DIM and graph_b.dim == DIM


def reference_outputs(graph):
    stream = StreamingInference(
        factory(), window_size=WINDOW, enable_skipping=True
    )
    outputs = []
    for snap in graph:
        result = stream.push(snap.copy())
        if result is not None:
            outputs.extend(result.outputs)
    result = stream.flush()
    if result is not None:
        outputs.extend(result.outputs)
    return outputs


def serve(cluster, tenant, graph):
    cluster.register_tenant(tenant)
    for snap in graph:
        cluster.push(tenant, snap.copy())
    cluster.flush(tenant)
    return cluster.released(tenant)


def assert_identical(got, expected):
    assert len(got) == len(expected)
    for a, b in zip(got, expected):
        assert np.array_equal(a, b)


class TestNoFaultServing:
    def test_bit_identical_to_unsharded(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        got = serve(cluster, "t0", graph)
        assert_identical(got, reference_outputs(graph))
        assert cluster.supervisor.restarts == 0
        assert cluster.metrics.shard_restarts == 0

    def test_single_shard_degenerate_case(self, graph):
        cluster = ShardCluster(
            factory, num_shards=1, window_size=WINDOW, seed=SEED
        )
        got = serve(cluster, "t0", graph)
        assert_identical(got, reference_outputs(graph))

    def test_boundary_words_accounted(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        serve(cluster, "t0", graph)
        m = cluster.metrics
        if cluster.shard_map.cut_edges:
            assert m.boundary_words > 0

    def test_per_shard_metrics_trajectories(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        serve(cluster, "t0", graph)
        per_shard = cluster.shard_metrics()
        assert len(per_shard) == SHARDS
        for m in per_shard:
            assert m.snapshots_processed == graph.num_snapshots


class TestRecovery:
    def test_crash_recovery_is_bit_identical(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW,
            heartbeat_timeout=1, seed=SEED,
        )
        cluster.register_tenant("t0")
        for t, snap in enumerate(graph):
            if t == 3:
                cluster.workers[1].crash()
            cluster.push("t0", snap.copy())
        cluster.flush("t0")
        assert_identical(cluster.released("t0"), reference_outputs(graph))
        assert cluster.supervisor.restarts >= 1
        kinds = {inc.kind for inc in cluster.incidents}
        assert "worker-crash" in kinds
        restarted = [i for i in cluster.incidents if i.action == "restarted"]
        assert all(i.shard == 1 for i in restarted)
        assert all(i.tenant == "t0" for i in restarted)

    def test_stall_recovery_is_bit_identical(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW,
            heartbeat_timeout=1, seed=SEED,
        )
        cluster.register_tenant("t0")
        for t, snap in enumerate(graph):
            if t == 2:
                cluster.workers[2].stall()
            cluster.push("t0", snap.copy())
        cluster.flush("t0")
        assert_identical(cluster.released("t0"), reference_outputs(graph))
        kinds = {inc.kind for inc in cluster.incidents}
        assert "worker-stall" in kinds

    def test_torn_checkpoint_rolls_back(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=2,
            heartbeat_timeout=1, seed=SEED,
        )
        cluster.register_tenant("t0")
        for t, snap in enumerate(graph):
            if t == 5:
                cluster.workers[0].tear_checkpoints()
                cluster.workers[0].crash()
            cluster.push("t0", snap.copy())
        cluster.flush("t0")
        expected = []
        ref = StreamingInference(factory(), window_size=2,
                                 enable_skipping=True)
        for snap in graph:
            result = ref.push(snap.copy())
            if result is not None:
                expected.extend(result.outputs)
        result = ref.flush()
        if result is not None:
            expected.extend(result.outputs)
        assert_identical(cluster.released("t0"), expected)
        torn = [i for i in cluster.incidents if i.kind == "torn-checkpoint"]
        assert torn and torn[0].action in ("rolled-back", "cold-start")

    def test_storage_flakes_are_retried_into_metrics(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW,
            heartbeat_timeout=1, seed=SEED,
        )
        cluster.register_tenant("t0")
        for t, snap in enumerate(graph):
            if t == 4:
                cluster.workers[3].flake_storage(1)
                cluster.workers[3].crash()
            cluster.push("t0", snap.copy())
        cluster.flush("t0")
        assert_identical(cluster.released("t0"), reference_outputs(graph))
        m = cluster.metrics
        assert m.retries >= 1
        assert m.retry_attempts >= 2
        assert m.retry_backoff_ns > 0

    def test_slow_shard_serves_stale_rows(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=2, seed=SEED
        )
        cluster.register_tenant("t0")
        for t, snap in enumerate(graph):
            if t == 2:
                cluster.workers[1].slow(6)
            cluster.push("t0", snap.copy())
        matrix, stale = cluster.query("t0")
        assert matrix.shape[0] == graph.num_vertices
        assert stale >= 1
        assert cluster.metrics.stale_serves >= 1
        assert any(
            inc.kind == "slow-shard" and inc.action == "degraded"
            for inc in cluster.incidents
        )
        # drain catches the slow shard up; outputs stay bit-identical
        cluster.flush("t0")
        expected = []
        ref = StreamingInference(factory(), window_size=2,
                                 enable_skipping=True)
        for snap in graph:
            result = ref.push(snap.copy())
            if result is not None:
                expected.extend(result.outputs)
        result = ref.flush()
        if result is not None:
            expected.extend(result.outputs)
        assert_identical(cluster.released("t0"), expected)


class TestBackpressure:
    def test_hot_shard_sheds_with_structured_incident(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW,
            max_backlog=2, breaker_threshold=2, seed=SEED,
        )
        cluster.register_tenant("t0")
        cluster.workers[0].slow(50)  # hot shard: backlog builds fast
        receipts = [cluster.push("t0", snap.copy()) for snap in graph]
        shed = [r for r in receipts if not r.accepted]
        assert shed, "expected the hot shard to force shedding"
        first = shed[0]
        assert first.shed_reason in ("backlog-full", "circuit-open")
        assert first.incident is not None
        assert first.incident.action == "shed"
        assert first.incident.tenant == "t0"
        assert cluster.metrics.shed_events == len(shed)
        # every shed snapshot is dead-lettered, never silently dropped
        assert len(cluster.dlq) >= len(shed)

    def test_breaker_opens_then_recovers(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW,
            max_backlog=1, breaker_threshold=2, seed=SEED,
        )
        cluster.register_tenant("t0")
        cluster.workers[0].stall()  # nothing drains until the supervisor acts
        reasons = []
        opened = False
        for t in range(6):
            reasons.append(
                cluster.push("t0", graph[t % 2].copy()).shed_reason
            )
            opened = opened or cluster.gate.breaker_open("t0")
        assert "circuit-open" in reasons
        assert opened
        # the supervisor restarted the stalled shard mid-sequence, the
        # backlog drained, and the returned headroom half-closed the
        # breaker — the last push is admitted again
        assert reasons[-1] == ""
        assert not cluster.gate.breaker_open("t0")

    def test_poison_snapshot_dead_lettered(self, graph):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        cluster.register_tenant("t0")
        cluster.push("t0", graph[0].copy())
        torn = graph[1].copy()
        torn.features[0, 0] = np.nan
        receipt = cluster.push("t0", torn)
        assert not receipt.accepted
        assert receipt.shed_reason == "poison-snapshot"
        assert receipt.incident.action == "dead-lettered"
        assert len(cluster.dlq) == 1
        assert len(cluster.history("t0")) == 1

    def test_unregistered_tenant_rejected(self, graph):
        cluster = ShardCluster(factory, num_shards=2, seed=SEED)
        with pytest.raises(ValueError):
            cluster.push("ghost", graph[0].copy())


class TestMultiTenant:
    def test_two_tenants_isolated_and_identical(self, graph, graph_b):
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        cluster.register_tenant("a")
        cluster.register_tenant("b")
        for t in range(graph.num_snapshots):
            cluster.push("a", graph[t].copy())
            cluster.push("b", graph_b[t].copy())
        cluster.flush("a")
        cluster.flush("b")
        assert_identical(cluster.released("a"), reference_outputs(graph))
        assert_identical(cluster.released("b"), reference_outputs(graph_b))

    @settings(max_examples=8, deadline=None)
    @given(order=st.lists(st.booleans(), min_size=6, max_size=6))
    def test_any_interleaving_matches_solo_serving(
        self, graph, graph_b, order
    ):
        """Property: interleaving two tenants' streams in any order
        yields bit-identical per-tenant results vs serving each alone."""
        cluster = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        cluster.register_tenant("a")
        cluster.register_tenant("b")
        ia = ib = 0
        # `order` schedules which tenant pushes next; leftovers append
        for a_first in order:
            if a_first and ia < graph.num_snapshots:
                cluster.push("a", graph[ia].copy())
                ia += 1
            elif ib < graph_b.num_snapshots:
                cluster.push("b", graph_b[ib].copy())
                ib += 1
        while ia < graph.num_snapshots:
            cluster.push("a", graph[ia].copy())
            ia += 1
        while ib < graph_b.num_snapshots:
            cluster.push("b", graph_b[ib].copy())
            ib += 1
        cluster.flush("a")
        cluster.flush("b")

        solo_a = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        got_a = serve(solo_a, "a", graph)
        solo_b = ShardCluster(
            factory, num_shards=SHARDS, window_size=WINDOW, seed=SEED
        )
        got_b = serve(solo_b, "b", graph_b)
        assert_identical(cluster.released("a"), got_a)
        assert_identical(cluster.released("b"), got_b)
        # and both equal the unsharded engine
        assert_identical(got_a, reference_outputs(graph))
        assert_identical(got_b, reference_outputs(graph_b))
