"""Unit and property tests for CSR snapshots."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRSnapshot, build_csr, degrees_from_indptr
from repro.graphs.snapshot import FEAT_DTYPE


def small_snapshot(undirected=True):
    edges = np.array([[0, 1], [1, 2], [2, 3], [0, 2]])
    feats = np.arange(20, dtype=FEAT_DTYPE).reshape(5, 4)
    return CSRSnapshot.from_edges(5, edges, feats, undirected=undirected)


class TestBuildCSR:
    def test_empty_graph(self):
        indptr, indices = build_csr(4, np.array([]), np.array([]))
        assert indptr.tolist() == [0, 0, 0, 0, 0]
        assert indices.size == 0

    def test_sorted_rows(self):
        src = np.array([2, 0, 0, 2, 1])
        dst = np.array([1, 3, 1, 0, 2])
        indptr, indices = build_csr(4, src, dst)
        assert indptr.tolist() == [0, 2, 3, 5, 5]
        assert indices.tolist() == [1, 3, 2, 0, 1]

    def test_dedup(self):
        src = np.array([0, 0, 0])
        dst = np.array([1, 1, 2])
        indptr, indices = build_csr(3, src, dst)
        assert indices.tolist() == [1, 2]

    def test_no_dedup(self):
        src = np.array([0, 0])
        dst = np.array([1, 1])
        indptr, indices = build_csr(3, src, dst, dedup=False)
        assert indices.tolist() == [1, 1]

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            build_csr(3, np.array([0]), np.array([5]))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="mismatch"):
            build_csr(3, np.array([0, 1]), np.array([1]))


class TestSnapshotBasics:
    def test_counts(self):
        s = small_snapshot()
        assert s.num_vertices == 5
        assert s.num_edges == 8  # 4 undirected edges, both directions
        assert s.dim == 4
        assert s.num_present == 5

    def test_neighbors_sorted_views(self):
        s = small_snapshot()
        assert s.neighbors(0).tolist() == [1, 2]
        assert s.neighbors(2).tolist() == [0, 1, 3]
        assert s.neighbors(4).tolist() == []
        # zero-copy: the row is a view into indices
        assert s.neighbors(0).base is s.indices

    def test_degrees(self):
        s = small_snapshot()
        assert s.degrees.tolist() == [2, 2, 3, 1, 0]
        assert degrees_from_indptr(s.indptr).tolist() == [2, 2, 3, 1, 0]

    def test_has_edge(self):
        s = small_snapshot()
        assert s.has_edge(0, 1)
        assert s.has_edge(1, 0)
        assert not s.has_edge(0, 3)
        assert not s.has_edge(4, 0)

    def test_directed_mode(self):
        s = small_snapshot(undirected=False)
        assert s.has_edge(0, 1)
        assert not s.has_edge(1, 0)

    def test_feature_shape_validation(self):
        with pytest.raises(ValueError, match="features rows"):
            CSRSnapshot(
                indptr=np.array([0, 0], dtype=np.int64),
                indices=np.array([], dtype=np.int32),
                features=np.zeros((2, 3), dtype=FEAT_DTYPE),
                present=np.ones(1, dtype=bool),
            )

    def test_malformed_indptr_rejected(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRSnapshot(
                indptr=np.array([0, 5], dtype=np.int64),
                indices=np.array([], dtype=np.int32),
                features=np.zeros((1, 1), dtype=FEAT_DTYPE),
                present=np.ones(1, dtype=bool),
            )

    def test_edge_array_roundtrip(self):
        s = small_snapshot()
        ea = s.edge_array()
        rebuilt = CSRSnapshot.from_edges(
            5, ea, s.features, undirected=False
        )
        assert np.array_equal(rebuilt.indptr, s.indptr)
        assert np.array_equal(rebuilt.indices, s.indices)

    def test_to_networkx(self):
        s = small_snapshot()
        g = s.to_networkx()
        assert g.number_of_nodes() == 5
        assert g.number_of_edges() == 8

    def test_memory_bytes_positive(self):
        s = small_snapshot()
        assert s.memory_bytes() > s.features.nbytes


class TestAggregate:
    def test_matches_dense_reference(self):
        """aggregate() must equal D_hat^-1 (A+I) X computed densely."""
        rng = np.random.default_rng(0)
        n, d = 30, 7
        edges = rng.integers(0, n, size=(60, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        x = rng.standard_normal((n, d)).astype(np.float32)
        s = CSRSnapshot.from_edges(n, edges, x)

        a = np.zeros((n, n))
        for u, v in s.edge_array():
            a[u, v] = 1.0
        a += np.eye(n)
        dd = a.sum(axis=1)
        ref = (a / dd[:, None]) @ x.astype(np.float64)

        out = s.aggregate(x)
        np.testing.assert_allclose(out, ref, rtol=1e-4, atol=1e-5)

    def test_unaffected_invariance(self):
        """The property the whole paper rests on: a vertex with unchanged
        neighbours, features, and neighbours' features has an identical
        aggregation output even when a *neighbour's degree* changes
        elsewhere (true under mean normalisation, false under symmetric)."""
        x = np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32)
        s1 = CSRSnapshot.from_edges(5, np.array([[0, 1], [1, 2]]), x)
        # add an edge 2-4: vertex 2's degree changes, but vertex 0's
        # neighbourhood (just v1) and v1's feature are untouched
        s2 = CSRSnapshot.from_edges(5, np.array([[0, 1], [1, 2], [2, 4]]), x)
        out1 = s1.aggregate(x)
        out2 = s2.aggregate(x)
        np.testing.assert_allclose(out1[0], out2[0], rtol=1e-6)

    def test_absent_vertices_do_not_contribute(self):
        edges = np.array([[0, 1], [1, 2]])
        x = np.ones((3, 2), dtype=np.float32)
        present = np.array([True, True, False])
        s = CSRSnapshot.from_edges(3, edges, x, present=present)
        out = s.aggregate(x)
        # vertex 2 is absent: its coefficient is zero so its row is zero
        assert np.all(out[2] == 0)

    def test_isolated_vertex_self_loop_only(self):
        x = np.array([[2.0, 4.0]], dtype=np.float32)
        s = CSRSnapshot.from_edges(1, np.empty((0, 2), dtype=int), x)
        out = s.aggregate(x)
        np.testing.assert_allclose(out, x)  # d_hat = 1 -> output = input

    def test_no_self_loops_mode(self):
        edges = np.array([[0, 1]])
        x = np.array([[1.0, 0.0], [0.0, 1.0]], dtype=np.float32)
        s = CSRSnapshot.from_edges(2, edges, x)
        out = s.aggregate(x, add_self_loops=False)
        # pure mean over neighbours: each vertex sees the other
        np.testing.assert_allclose(out, [[0.0, 1.0], [1.0, 0.0]], atol=1e-6)


class TestFingerprints:
    def test_identical_rows_equal_fingerprints(self):
        s1 = small_snapshot()
        s2 = small_snapshot()
        np.testing.assert_array_equal(s1.row_fingerprints(), s2.row_fingerprints())

    def test_changed_row_changes_fingerprint(self):
        s1 = small_snapshot()
        edges = np.array([[0, 1], [1, 2], [2, 3], [0, 3]])  # 0-2 -> 0-3
        s2 = CSRSnapshot.from_edges(5, edges, s1.features)
        f1, f2 = s1.row_fingerprints(), s2.row_fingerprints()
        assert f1[0] != f2[0]
        assert f1[1] == f2[1]

    def test_empty_vs_missing_distinguished_by_degree_mix(self):
        # vertex with no edges has a deterministic fingerprint
        s = small_snapshot()
        f = s.row_fingerprints()
        assert f[4] == np.uint64(0)  # degree 0, no neighbours

    def test_same_row_helper(self):
        s1 = small_snapshot()
        edges = np.array([[0, 1], [1, 2], [2, 3], [0, 3]])
        s2 = CSRSnapshot.from_edges(5, edges, s1.features)
        assert s1.same_row(s2, 1)
        assert not s1.same_row(s2, 0)


@st.composite
def random_edge_lists(draw):
    n = draw(st.integers(min_value=2, max_value=40))
    m = draw(st.integers(min_value=0, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    return n, edges


class TestSnapshotProperties:
    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_csr_rows_sorted_unique(self, case):
        n, edges = case
        s = CSRSnapshot.from_edges(n, edges, dim=2)
        for v in range(n):
            row = s.neighbors(v)
            assert np.all(np.diff(row) > 0)  # strictly increasing

    @given(random_edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_undirected_symmetry(self, case):
        n, edges = case
        s = CSRSnapshot.from_edges(n, edges, dim=2)
        for u, v in s.edge_array():
            assert s.has_edge(v, u)

    @given(random_edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_is_max_norm_contraction(self, case):
        """Mean aggregation is row-stochastic: every output entry is a
        convex combination of inputs, so the max-norm never grows."""
        n, edges = case
        rng = np.random.default_rng(0)
        x = rng.standard_normal((n, 3)).astype(np.float32)
        s = CSRSnapshot.from_edges(n, edges, dim=3)
        out = s.aggregate(x)
        assert np.abs(out).max() <= np.abs(x).max() * (1.0 + 1e-5)

    @given(random_edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_stable_under_rebuild(self, case):
        n, edges = case
        s1 = CSRSnapshot.from_edges(n, edges, dim=1)
        perm = np.random.default_rng(1).permutation(len(edges))
        s2 = CSRSnapshot.from_edges(n, edges[perm], dim=1)
        np.testing.assert_array_equal(s1.row_fingerprints(), s2.row_fingerprints())
