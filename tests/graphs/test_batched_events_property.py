"""Property tests: batched event application == per-event replay.

``apply_events`` now runs a vectorised fast path with an optimistic
batched validator; the per-event reference replay is retained as the
fallback and as the semantic oracle.  Over random streams mixing valid
and hostile events these tests assert the two are indistinguishable:

* same accept/reject decision,
* the *same* first-violation error message when rejecting,
* bit-identical resulting snapshots (arrays, dtypes, timestamp) when
  accepting,
* identical dead-letter traffic (reasons, order, payloads) through
  :class:`~repro.resilience.ingest.GuardedIngest`.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import CSRSnapshot
from repro.graphs.updates import (
    UpdateEvent,
    UpdateKind,
    apply_events,
    apply_events_reference,
)
from repro.resilience.ingest import DeadLetterQueue, GuardedIngest

N = 24
DIM = 3


def base_snapshot(seed: int) -> CSRSnapshot:
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, N, size=(40, 2))
    edges = edges[edges[:, 0] != edges[:, 1]]
    feats = rng.standard_normal((N, DIM)).astype(np.float32)
    snap = CSRSnapshot.from_edges(N, edges, feats, undirected=False)
    absent = rng.choice(N, size=3, replace=False)
    present = snap.present.copy()
    present[absent] = False
    feats = snap.features.copy()
    feats[absent] = 0.0
    return CSRSnapshot(snap.indptr, snap.indices, feats, present=present)


def random_events(snap: CSRSnapshot, rng, n_events: int, hostility: float):
    """A stream biased towards valid events with hostile ones mixed in."""
    events = []
    present = snap.present.copy()
    keys = set()
    src = np.repeat(np.arange(N), snap.degrees)
    for s, d in zip(src.tolist(), snap.indices.tolist()):
        keys.add((s, d))
    for _ in range(n_events):
        if rng.random() < hostility:
            events.append(hostile_event(rng))
            continue
        kind = rng.integers(0, 5)
        if kind == 0 and keys:  # valid-ish delete
            s, d = list(keys)[rng.integers(len(keys))]
            keys.discard((s, d))
            events.append(UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d)))
        elif kind == 1:  # insert (may collide -> violation, also useful)
            s, d = int(rng.integers(N)), int(rng.integers(N))
            keys.add((s, d))
            events.append(UpdateEvent(UpdateKind.EDGE_INSERT, s, (s, d)))
        elif kind == 2:  # feature update
            v = int(rng.integers(N))
            events.append(
                UpdateEvent(
                    UpdateKind.FEATURE_UPDATE, v,
                    rng.standard_normal(DIM).astype(np.float32),
                )
            )
        elif kind == 3:  # departure of a (maybe) present vertex
            v = int(rng.integers(N))
            present[v] = False
            events.append(UpdateEvent(UpdateKind.VERTEX_DEPART, v))
        else:  # arrival of a (maybe) absent vertex
            v = int(rng.integers(N))
            present[v] = True
            events.append(UpdateEvent(UpdateKind.VERTEX_ARRIVE, v))
    return events


def hostile_event(rng):
    k = rng.integers(0, 8)
    if k == 0:
        return "not an event"
    if k == 1:
        return UpdateEvent(UpdateKind.VERTEX_ARRIVE, N + 5)
    if k == 2:
        return UpdateEvent(UpdateKind.VERTEX_DEPART, -1)
    if k == 3:
        return UpdateEvent(UpdateKind.EDGE_INSERT, 0, (0, N + 3))
    if k == 4:
        return UpdateEvent(UpdateKind.EDGE_INSERT, 0, "not a pair")
    if k == 5:
        return UpdateEvent(
            UpdateKind.FEATURE_UPDATE, 0, np.zeros(DIM + 1, dtype=np.float32)
        )
    if k == 6:
        bad = np.full(DIM, np.nan, dtype=np.float32)
        return UpdateEvent(UpdateKind.FEATURE_UPDATE, 1, bad)
    return UpdateEvent(UpdateKind.VERTEX_ARRIVE, np.bool_(True))


def assert_snapshots_identical(a: CSRSnapshot, b: CSRSnapshot):
    assert a.indptr.dtype == b.indptr.dtype
    assert a.indices.dtype == b.indices.dtype
    assert a.features.dtype == b.features.dtype
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.present, b.present)
    np.testing.assert_array_equal(a.features, b.features)
    assert a.timestamp == b.timestamp


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    n_events=st.integers(min_value=0, max_value=60),
    hostility=st.sampled_from([0.0, 0.1, 0.5]),
)
def test_batched_apply_matches_reference(seed, n_events, hostility):
    snap = base_snapshot(seed)
    events = random_events(snap, np.random.default_rng(seed + 1), n_events,
                           hostility)
    try:
        expected = apply_events_reference(snap, events)
    except ValueError as exc:
        with pytest.raises(ValueError) as got:
            apply_events(snap, events)
        assert str(got.value) == str(exc)
        return
    assert_snapshots_identical(apply_events(snap, events), expected)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    n_events=st.integers(min_value=0, max_value=50),
    hostility=st.sampled_from([0.0, 0.2, 0.6]),
)
def test_guarded_ingest_dlq_matches_sequential_walk(seed, n_events, hostility):
    snap = base_snapshot(seed)
    events = random_events(snap, np.random.default_rng(seed + 2), n_events,
                           hostility)

    fast = GuardedIngest(dlq=DeadLetterQueue())
    clean_fast, rej_fast = fast.filter_events(snap, events, step=7)

    # force the exact sequential walk by blinding the batched validator
    # (context-manager monkeypatch: hypothesis reruns the test body)
    import repro.resilience.ingest as ingest_mod

    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(ingest_mod, "_decode_events", lambda *a, **k: None)
        slow = GuardedIngest(dlq=DeadLetterQueue())
        clean_slow, rej_slow = slow.filter_events(snap, events, step=7)

    # compare by identity: both paths must keep the same event *objects*
    # (dataclass == would choke on ndarray payloads)
    assert len(clean_fast) == len(clean_slow)
    assert all(a is b for a, b in zip(clean_fast, clean_slow))
    assert len(rej_fast) == len(rej_slow)
    assert all(a is b for a, b in zip(rej_fast, rej_slow))
    assert len(fast.dlq) == len(slow.dlq)
    assert fast.dlq.by_reason() == slow.dlq.by_reason()
    for a, b in zip(fast.dlq.letters, slow.dlq.letters):
        assert (a.step, a.reason) == (b.step, b.reason)
        assert a.payload is b.payload
    # and the surviving events apply identically on both paths
    assert_snapshots_identical(
        apply_events(snap, clean_fast),
        apply_events_reference(snap, clean_slow),
    )
