"""Tests for the timestamped edge-list (real-trace) loader."""

import io

import numpy as np
import pytest

from repro.analysis import classify_window
from repro.graphs import TemporalEdgeList, load_edge_list, parse_edge_list


def make_trace(n=300, events=4000, hotspot=0.1, seed=0):
    """A synthetic SNAP-style trace: a stable core of long-lived pairs
    plus a churning hotspot — sparse enough that overlap exists."""
    rng = np.random.default_rng(seed)
    lines = ["# synthetic trace", "% another comment style is NOT skipped"]
    lines = ["# synthetic trace"]
    core_pairs = [(i, (i + 1) % n) for i in range(0, n, 3)]
    for t in range(events):
        if rng.random() < 0.7:
            u, v = core_pairs[rng.integers(len(core_pairs))]
        else:
            hot = int(n * hotspot)
            u, v = rng.integers(0, hot, 2)
        lines.append(f"{u} {v} {t}")
    return "\n".join(lines)


class TestParse:
    def test_basic_parse(self):
        tel = parse_edge_list("0 1 10\n1 2 5\n# comment\n2 0 7\n")
        assert tel.num_events == 3
        # sorted by time
        assert tel.timestamp.tolist() == [5.0, 7.0, 10.0]
        assert tel.num_vertices == 3

    def test_extra_columns_ignored(self):
        tel = parse_edge_list("5 9 100 0.75 extra\n9 5 200 1.0\n")
        assert tel.num_events == 2

    def test_relabel_dense(self):
        tel = parse_edge_list("100 900 1\n900 5000 2\n")
        assert tel.num_vertices == 3
        assert set(np.concatenate([tel.src, tel.dst]).tolist()) == {0, 1, 2}

    def test_no_relabel(self):
        tel = parse_edge_list("3 7 1\n", relabel=False)
        assert tel.num_vertices == 8

    def test_malformed_line_raises(self):
        with pytest.raises(ValueError, match="src dst timestamp"):
            parse_edge_list("1 2\n")

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="no edges"):
            parse_edge_list("# nothing\n")

    def test_file_object(self):
        tel = parse_edge_list(io.StringIO("0 1 1\n1 2 2\n"))
        assert tel.num_events == 2


class TestLoadEdgeList:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_edge_list(
            make_trace(), num_snapshots=8, retention=3, dim=8, seed=1
        )

    def test_shape(self, graph):
        assert graph.num_snapshots == 8
        assert graph.dim == 8
        assert graph.total_edges() > 0

    def test_retention_produces_churn(self, graph):
        """Edges must both appear and expire across snapshots."""
        added = sum(len(d.added_edges) for d in graph.deltas())
        removed = sum(len(d.removed_edges) for d in graph.deltas())
        assert added > 0 and removed > 0

    def test_overlap_exists(self, graph):
        """The stable core must yield unaffected vertices in later
        windows (the property the cell-skipping study needs)."""
        c = classify_window(graph.window(4, 3))
        assert c.counts()["unaffected"] > 0

    def test_presence_monotone(self, graph):
        """A vertex that has appeared stays present (its feature history
        persists even when its edges expire)."""
        for t in range(1, graph.num_snapshots):
            newly_absent = graph[t - 1].present & ~graph[t].present
            assert not newly_absent.any()

    def test_feature_churn_tracks_activity(self, graph):
        """Vertices inactive in a bucket keep their features exactly."""
        for d in graph.deltas():
            touched = set(d.touched_vertices().tolist())
            changed = set(d.feature_changed.tolist())
            assert changed <= touched

    def test_fixed_features_mode(self):
        trace = make_trace()
        tel = parse_edge_list(trace)
        n_feats = np.ones((tel.num_vertices, 4), dtype=np.float32)
        g = load_edge_list(tel, num_snapshots=4, dim=4, features=n_feats)
        # features constant for co-present vertices
        for d in g.deltas():
            assert d.feature_changed.size == 0

    def test_fixed_features_wrong_size_rejected(self):
        with pytest.raises(ValueError, match="rows"):
            load_edge_list(
                make_trace(), num_snapshots=4,
                features=np.ones((7, 4), dtype=np.float32),
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            load_edge_list(make_trace(), num_snapshots=0)
        with pytest.raises(ValueError):
            load_edge_list(make_trace(), retention=0)

    def test_drives_full_pipeline_exactly(self, graph):
        from repro.engine import ConcurrentEngine, ReferenceEngine
        from repro.models import make_model

        m = make_model("T-GCN", graph.dim, 8, seed=0)
        ref = ReferenceEngine(m, window_size=4).run(graph)
        conc = ConcurrentEngine(m, window_size=4, enable_skipping=False).run(graph)
        for a, b in zip(ref.outputs, conc.outputs):
            np.testing.assert_array_equal(a, b)
