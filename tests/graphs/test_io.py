"""Tests for dynamic-graph persistence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DynamicGraphSpec,
    generate_dynamic_graph,
    load_dataset,
    load_dynamic_graph,
    save_dynamic_graph,
)


def assert_graphs_equal(a, b):
    assert a.name == b.name
    assert a.num_vertices == b.num_vertices
    assert a.num_snapshots == b.num_snapshots
    for sa, sb in zip(a, b):
        np.testing.assert_array_equal(sa.indptr, sb.indptr)
        np.testing.assert_array_equal(sa.indices, sb.indices)
        np.testing.assert_array_equal(sa.features, sb.features)
        np.testing.assert_array_equal(sa.present, sb.present)
        assert sa.timestamp == sb.timestamp


class TestRoundTrip:
    def test_dataset_roundtrip(self, tmp_path):
        g = load_dataset("GT", num_snapshots=4)
        path = str(tmp_path / "gt.npz")
        save_dynamic_graph(g, path)
        assert_graphs_equal(g, load_dynamic_graph(path))

    def test_name_with_unicode(self, tmp_path):
        g = load_dataset("GT", num_snapshots=2)
        g.name = "gdelt-ünïcode-⊕"
        path = str(tmp_path / "u.npz")
        save_dynamic_graph(g, path)
        assert load_dynamic_graph(path).name == g.name

    @given(seed=st.integers(min_value=0, max_value=3000))
    @settings(max_examples=8, deadline=None)
    def test_random_graph_roundtrip(self, seed, tmp_path_factory):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="rt", num_vertices=60, num_edges=150, dim=3,
                num_snapshots=3, seed=seed,
            )
        )
        path = str(tmp_path_factory.mktemp("io") / f"g{seed}.npz")
        save_dynamic_graph(g, path)
        assert_graphs_equal(g, load_dynamic_graph(path))


class TestErrorHandling:
    def test_bad_version_rejected(self, tmp_path):
        g = load_dataset("GT", num_snapshots=2)
        path = str(tmp_path / "g.npz")
        save_dynamic_graph(g, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["__version__"] = np.array([999], dtype=np.int64)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_dynamic_graph(path)

    def test_truncated_archive_rejected(self, tmp_path):
        g = load_dataset("GT", num_snapshots=3)
        path = str(tmp_path / "g.npz")
        save_dynamic_graph(g, path)
        with np.load(path) as data:
            arrays = {k: data[k] for k in data.files if not k.startswith("s2_")}
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="truncated"):
            load_dynamic_graph(path)

    def test_loaded_graph_usable(self, tmp_path):
        """A reloaded graph must drive the full pipeline."""
        from repro.engine import ConcurrentEngine
        from repro.models import make_model

        g = load_dataset("GT", num_snapshots=4)
        path = str(tmp_path / "g.npz")
        save_dynamic_graph(g, path)
        g2 = load_dynamic_graph(path)
        model = make_model("T-GCN", g2.dim, 8, seed=0)
        res = ConcurrentEngine(model, window_size=4).run(g2)
        assert len(res.outputs) == 4
