"""Tests for DynamicGraph and SnapshotDelta."""

import numpy as np
import pytest

from repro.graphs import (
    CSRSnapshot,
    DynamicGraph,
    load_dataset,
    snapshot_delta,
)
from repro.graphs.snapshot import FEAT_DTYPE


def two_snapshots():
    n = 6
    feats = np.zeros((n, 3), dtype=FEAT_DTYPE)
    s0 = CSRSnapshot.from_edges(n, np.array([[0, 1], [1, 2], [3, 4]]), feats.copy())
    feats1 = feats.copy()
    feats1[2] = 1.0  # feature change on vertex 2
    present1 = np.ones(n, dtype=bool)
    present1[4] = False  # vertex 4 departs (takes edge 3-4 with it)
    s1 = CSRSnapshot.from_edges(
        n, np.array([[0, 1], [1, 2], [2, 5]]), feats1, present=present1
    )
    return s0, s1


class TestSnapshotDelta:
    def test_edge_changes(self):
        s0, s1 = two_snapshots()
        d = snapshot_delta(s0, s1)
        added = set(map(tuple, d.added_edges.tolist()))
        removed = set(map(tuple, d.removed_edges.tolist()))
        assert (2, 5) in added and (5, 2) in added
        assert (3, 4) in removed and (4, 3) in removed

    def test_feature_changes_only_on_co_present(self):
        s0, s1 = two_snapshots()
        d = snapshot_delta(s0, s1)
        assert d.feature_changed.tolist() == [2]

    def test_departures(self):
        s0, s1 = two_snapshots()
        d = snapshot_delta(s0, s1)
        assert d.departed.tolist() == [4]
        assert d.arrived.tolist() == []

    def test_touched_vertices_superset(self):
        s0, s1 = two_snapshots()
        d = snapshot_delta(s0, s1)
        touched = set(d.touched_vertices().tolist())
        assert {2, 3, 4, 5}.issubset(touched)
        assert 0 not in touched

    def test_identical_snapshots_empty_delta(self):
        s0, _ = two_snapshots()
        d = snapshot_delta(s0, s0)
        assert d.num_structural_changes == 0
        assert d.feature_changed.size == 0

    def test_atol_tolerance(self):
        s0, _ = two_snapshots()
        feats = s0.features.copy()
        feats[0] += 1e-6
        s1 = CSRSnapshot.from_edges(6, s0.edge_array(), feats, undirected=False)
        assert snapshot_delta(s0, s1).feature_changed.tolist() == [0]
        assert snapshot_delta(s0, s1, atol=1e-3).feature_changed.size == 0

    def test_mismatched_id_space_raises(self):
        s0, _ = two_snapshots()
        small = CSRSnapshot.from_edges(3, np.array([[0, 1]]), dim=3)
        with pytest.raises(ValueError, match="global id space"):
            snapshot_delta(s0, small)


class TestDynamicGraph:
    def test_construction_and_indexing(self):
        g = load_dataset("GT", num_snapshots=5)
        assert len(g) == 5
        assert g[0].timestamp == 0
        assert g[4].timestamp == 4
        assert g.num_snapshots == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DynamicGraph([])

    def test_dim_mismatch_rejected(self):
        s0 = CSRSnapshot.from_edges(4, np.array([[0, 1]]), dim=2)
        s1 = CSRSnapshot.from_edges(4, np.array([[0, 1]]), dim=3)
        with pytest.raises(ValueError, match="dimension"):
            DynamicGraph([s0, s1])

    def test_vertex_count_mismatch_rejected(self):
        s0 = CSRSnapshot.from_edges(4, np.array([[0, 1]]), dim=2)
        s1 = CSRSnapshot.from_edges(5, np.array([[0, 1]]), dim=2)
        with pytest.raises(ValueError, match="vertex count"):
            DynamicGraph([s0, s1])

    def test_window_preserves_timestamps(self):
        g = load_dataset("GT", num_snapshots=8)
        w = g.window(3, 4)
        assert len(w) == 4
        assert [s.timestamp for s in w] == [3, 4, 5, 6]
        # window shares the snapshot objects (views, not copies)
        assert w[0] is g[3]

    def test_window_bounds(self):
        g = load_dataset("GT", num_snapshots=5)
        with pytest.raises(IndexError):
            g.window(3, 4)
        with pytest.raises(ValueError):
            g.window(0, 0)

    def test_windows_iteration_default_stride(self):
        g = load_dataset("GT", num_snapshots=8)
        ws = list(g.windows(4))
        assert len(ws) == 2
        assert ws[0][0].timestamp == 0
        assert ws[1][0].timestamp == 4

    def test_windows_custom_stride(self):
        g = load_dataset("GT", num_snapshots=8)
        ws = list(g.windows(4, stride=2))
        assert [w[0].timestamp for w in ws] == [0, 2, 4]

    def test_delta_caching(self):
        g = load_dataset("GT", num_snapshots=4)
        d1 = g.delta(0)
        d2 = g.delta(0)
        assert d1 is d2

    def test_delta_out_of_range(self):
        g = load_dataset("GT", num_snapshots=3)
        with pytest.raises(IndexError):
            g.delta(2)

    def test_deltas_cover_all_steps(self):
        g = load_dataset("GT", num_snapshots=5)
        assert len(g.deltas()) == 4

    def test_stats_keys(self):
        g = load_dataset("GT", num_snapshots=3)
        st = g.stats()
        assert st["num_snapshots"] == 3
        assert st["total_edges"] == sum(s.num_edges for s in g)
        assert st["max_edges"] >= st["mean_edges"]

    def test_memory_bytes_sums_snapshots(self):
        g = load_dataset("GT", num_snapshots=3)
        assert g.memory_bytes() == sum(s.memory_bytes() for s in g)


class TestGeneratedDynamics:
    """The generator must actually produce dynamics — every consecutive
    pair of snapshots should differ structurally and in features."""

    def test_every_step_changes(self):
        g = load_dataset("GT", num_snapshots=6)
        for d in g.deltas():
            assert d.num_structural_changes > 0
            assert len(d.feature_changed) > 0

    def test_most_vertices_untouched_per_step(self):
        """Churn is localized: the directly-touched set stays a minority
        (the paper's Fig. 3(a) has >= 27% of vertices *unaffected* over a
        3-snapshot window, so per-step touched must stay well below half)."""
        g = load_dataset("HP", num_snapshots=6)
        n = g.num_vertices
        for d in g.deltas():
            assert len(d.touched_vertices()) < 0.45 * n

    def test_determinism(self):
        g1 = load_dataset("GT", num_snapshots=4)
        g2 = load_dataset("GT", num_snapshots=4)
        for a, b in zip(g1, g2):
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.features, b.features)

    def test_seed_changes_graph(self):
        g1 = load_dataset("GT", num_snapshots=4)
        g2 = load_dataset("GT", num_snapshots=4, seed=999)
        assert not np.array_equal(g1[0].indices, g2[0].indices)
