"""Tests for the synthetic dynamic-graph generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    ChurnConfig,
    DynamicGraphSpec,
    chung_lu_edges,
    generate_dynamic_graph,
)


def tiny_spec(**kw):
    defaults = dict(
        name="tiny",
        num_vertices=200,
        num_edges=800,
        dim=8,
        num_snapshots=5,
        seed=7,
    )
    defaults.update(kw)
    return DynamicGraphSpec(**defaults)


class TestChungLu:
    def test_edge_count_near_target(self):
        rng = np.random.default_rng(0)
        edges = chung_lu_edges(500, 2000, 2.2, rng)
        assert 0.8 * 2000 <= len(edges) <= 2000

    def test_no_self_loops(self):
        rng = np.random.default_rng(1)
        edges = chung_lu_edges(300, 1500, 2.2, rng)
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_canonical_orientation_unique(self):
        rng = np.random.default_rng(2)
        edges = chung_lu_edges(300, 1500, 2.2, rng)
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = edges[:, 0] * 300 + edges[:, 1]
        assert len(np.unique(keys)) == len(keys)

    def test_power_law_skew(self):
        """Low-id vertices (heavier weights) should collect far more
        degree than high-id vertices."""
        rng = np.random.default_rng(3)
        n = 1000
        edges = chung_lu_edges(n, 8000, 2.1, rng)
        deg = np.bincount(edges.reshape(-1), minlength=n)
        assert deg[:50].mean() > 5 * deg[-500:].mean()

    def test_too_few_vertices_raises(self):
        with pytest.raises(ValueError):
            chung_lu_edges(1, 10, 2.2, np.random.default_rng(0))


class TestGenerateDynamicGraph:
    def test_shape_matches_spec(self):
        spec = tiny_spec()
        g = generate_dynamic_graph(spec)
        assert g.num_vertices == spec.num_vertices
        assert g.num_snapshots == spec.num_snapshots
        assert g.dim == spec.dim

    def test_deterministic(self):
        g1 = generate_dynamic_graph(tiny_spec())
        g2 = generate_dynamic_graph(tiny_spec())
        for a, b in zip(g1, g2):
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.features, b.features)
            assert np.array_equal(a.present, b.present)

    def test_undirected_snapshots(self):
        g = generate_dynamic_graph(tiny_spec())
        s = g[0]
        for u, v in s.edge_array()[:200]:
            assert s.has_edge(v, u)

    def test_absent_vertices_have_no_edges(self):
        g = generate_dynamic_graph(tiny_spec(num_snapshots=6))
        for s in g:
            absent = np.flatnonzero(~s.present)
            assert np.all(s.degrees[absent] == 0)
            # and nobody points at them
            absent_set = set(absent.tolist())
            assert not absent_set.intersection(s.indices.tolist())

    def test_arrivals_and_departures_happen(self):
        spec = tiny_spec(
            num_vertices=400,
            num_snapshots=8,
            churn=ChurnConfig(
                vertex_arrival_frac=0.02, vertex_departure_frac=0.02
            ),
        )
        g = generate_dynamic_graph(spec)
        arrived = sum(len(d.arrived) for d in g.deltas())
        departed = sum(len(d.departed) for d in g.deltas())
        assert arrived > 0 and departed > 0

    def test_churn_scaling_increases_changes(self):
        lo = generate_dynamic_graph(
            tiny_spec(churn=ChurnConfig(active_frac=0.05, edge_change_frac=0.02))
        )
        hi = generate_dynamic_graph(
            tiny_spec(churn=ChurnConfig(active_frac=0.3, edge_change_frac=0.2))
        )
        lo_changes = sum(d.num_structural_changes for d in lo.deltas())
        hi_changes = sum(d.num_structural_changes for d in hi.deltas())
        assert hi_changes > 2 * lo_changes

    def test_churnconfig_scaled(self):
        cfg = ChurnConfig(active_frac=0.1, edge_change_frac=0.05)
        up = cfg.scaled(2.0)
        assert up.active_frac == pytest.approx(0.2)
        assert up.edge_change_frac == pytest.approx(0.1)
        capped = cfg.scaled(100.0)
        assert capped.active_frac == 1.0

    def test_feature_dtype(self):
        g = generate_dynamic_graph(tiny_spec())
        assert g[0].features.dtype == np.float32


class TestGeneratorProperties:
    @given(
        n=st.integers(min_value=50, max_value=300),
        m=st.integers(min_value=100, max_value=1000),
        t=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_invariants_hold_for_random_specs(self, n, m, t, seed):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="prop", num_vertices=n, num_edges=m, dim=4,
                num_snapshots=t, seed=seed,
            )
        )
        for s in g:
            # CSR well-formedness
            assert s.indptr[0] == 0
            assert s.indptr[-1] == len(s.indices)
            assert np.all(np.diff(s.indptr) >= 0)
            # edges only between present vertices
            if s.num_edges:
                src = np.repeat(np.arange(n), s.degrees)
                assert s.present[src].all()
                assert s.present[s.indices].all()
