"""Tests for the update-stream (event) view of a dynamic graph."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DynamicGraphSpec,
    UpdateKind,
    apply_events,
    delta_to_events,
    event_stream,
    generate_dynamic_graph,
    load_dataset,
    snapshot_delta,
)


class TestEventRoundTrip:
    def test_replay_reconstructs_next_snapshot(self):
        g = load_dataset("GT", num_snapshots=4)
        for t in range(3):
            delta = snapshot_delta(g[t], g[t + 1])
            events = delta_to_events(delta, new_features=g[t + 1].features)
            rebuilt = apply_events(g[t], events)
            assert np.array_equal(rebuilt.indptr, g[t + 1].indptr)
            assert np.array_equal(rebuilt.indices, g[t + 1].indices)
            assert np.array_equal(rebuilt.present, g[t + 1].present)
            np.testing.assert_array_equal(rebuilt.features, g[t + 1].features)

    def test_timestamp_advances(self):
        g = load_dataset("GT", num_snapshots=2)
        events = delta_to_events(g.delta(0), new_features=g[1].features)
        rebuilt = apply_events(g[0], events)
        assert rebuilt.timestamp == g[0].timestamp + 1

    def test_empty_event_list_is_identity(self):
        g = load_dataset("GT", num_snapshots=2)
        rebuilt = apply_events(g[0], [])
        assert np.array_equal(rebuilt.indices, g[0].indices)
        assert np.array_equal(rebuilt.present, g[0].present)


class TestEventStream:
    def test_stream_length(self):
        g = load_dataset("GT", num_snapshots=5)
        streams = event_stream(g)
        assert len(streams) == 4

    def test_event_kinds_present(self):
        g = load_dataset("GT", num_snapshots=5)
        kinds = {ev.kind for evs in event_stream(g) for ev in evs}
        assert UpdateKind.EDGE_INSERT in kinds
        assert UpdateKind.EDGE_DELETE in kinds
        assert UpdateKind.FEATURE_UPDATE in kinds

    def test_event_ordering_departures_before_arrivals(self):
        g = load_dataset("GT", num_snapshots=5)
        for evs in event_stream(g):
            order = {k: i for i, k in enumerate(
                [UpdateKind.VERTEX_DEPART, UpdateKind.EDGE_DELETE,
                 UpdateKind.VERTEX_ARRIVE, UpdateKind.EDGE_INSERT,
                 UpdateKind.FEATURE_UPDATE])}
            ranks = [order[ev.kind] for ev in evs]
            assert ranks == sorted(ranks)


class TestEventStreamProperty:
    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=15, deadline=None)
    def test_replay_roundtrip_random_graphs(self, seed):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="prop", num_vertices=120, num_edges=400, dim=3,
                num_snapshots=3, seed=seed,
            )
        )
        for t in range(2):
            events = delta_to_events(g.delta(t), new_features=g[t + 1].features)
            rebuilt = apply_events(g[t], events)
            assert np.array_equal(rebuilt.indices, g[t + 1].indices)
            np.testing.assert_array_equal(rebuilt.features, g[t + 1].features)
