"""Tests for the Table 2 dataset registry."""

import pytest

from repro.graphs import (
    DATASET_NAMES,
    TABLE2,
    available_datasets,
    dataset_spec,
    load_dataset,
    paper_stats,
)


class TestRegistry:
    def test_all_five_datasets_registered(self):
        assert set(available_datasets()) == {"HP", "GT", "ML", "EP", "FK"}

    def test_paper_stats_match_table2(self):
        hp = paper_stats("HP")
        assert hp.num_vertices == 28_090
        assert hp.num_edges == 1_543_901
        assert hp.dim == 172
        assert hp.num_snapshots == 243
        fk = paper_stats("FK")
        assert fk.num_vertices == 2_302_925
        assert fk.num_edges == 33_140_017

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            paper_stats("XX")
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_spec("XX")

    def test_relative_sizes_preserved(self):
        """Synthetic stand-ins keep Table 2's size ordering: FK is the
        largest, GT the smallest."""
        sizes = {name: dataset_spec(name).num_vertices for name in DATASET_NAMES}
        assert sizes["FK"] == max(sizes.values())
        assert sizes["GT"] == min(sizes.values())

    def test_all_specs_generate(self):
        for name in DATASET_NAMES:
            g = load_dataset(name, num_snapshots=2)
            assert g.num_snapshots == 2
            assert g.total_edges() > 0


class TestScaling:
    def test_scale_multiplies_sizes(self):
        base = dataset_spec("GT")
        double = dataset_spec("GT", scale=2.0)
        assert double.num_vertices == 2 * base.num_vertices
        assert double.num_edges == 2 * base.num_edges

    def test_scale_floor(self):
        tiny = dataset_spec("GT", scale=1e-6)
        assert tiny.num_vertices >= 16
        assert tiny.num_edges >= 32

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dataset_spec("GT", scale=-1)
        with pytest.raises(ValueError):
            dataset_spec("GT", num_snapshots=0)
        with pytest.raises(ValueError):
            dataset_spec("GT", dim=0)

    def test_overrides(self):
        spec = dataset_spec("GT", num_snapshots=3, dim=5, seed=42)
        assert spec.num_snapshots == 3
        assert spec.dim == 5
        assert spec.seed == 42

    def test_spec_unchanged_without_overrides(self):
        assert dataset_spec("GT") is dataset_spec("GT")


class TestChurnOrdering:
    def test_churn_increases_toward_social_graphs(self):
        """Per Fig. 3(a), citation graphs (HP) overlap most and social
        media (FK) least — our configs must preserve that ordering."""
        hp = dataset_spec("HP").churn
        fk = dataset_spec("FK").churn
        assert hp.active_frac < fk.active_frac
        assert hp.edge_change_frac < fk.edge_change_frac

    def test_table2_registry_consistent(self):
        for name, stats in TABLE2.items():
            assert stats.abbrev == name
            assert stats.num_vertices > 0
            assert stats.num_edges > stats.num_vertices
