"""Property tests: strict ``apply_events`` against hostile event streams.

The replay must reject — not silently absorb — duplicate edge inserts,
deletes of absent edges, out-of-range vertex ids, unknown kinds, and
malformed payloads, and it must never corrupt the input snapshot while
doing so.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    DynamicGraphSpec,
    UpdateEvent,
    UpdateKind,
    apply_events,
    event_violation,
    generate_dynamic_graph,
)


def _graph(seed):
    return generate_dynamic_graph(
        DynamicGraphSpec(
            name="hostile", num_vertices=60, num_edges=150, dim=3,
            num_snapshots=2, seed=seed,
        )
    )


def _existing_edge(snap):
    edges = snap.edge_array()
    assert edges.shape[0] > 0
    return int(edges[0, 0]), int(edges[0, 1])


def _absent_edge(snap):
    n = snap.num_vertices
    for s in range(n):
        row = set(snap.neighbors(s).tolist())
        for d in range(n):
            if d not in row:
                return s, d
    raise AssertionError("complete graph in test fixture")


class TestHostileEventsRejected:
    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_duplicate_edge_insert(self, seed):
        snap = _graph(seed)[0]
        s, d = _existing_edge(snap)
        with pytest.raises(ValueError, match="duplicate insertion"):
            apply_events(snap, [UpdateEvent(UpdateKind.EDGE_INSERT, s, (s, d))])

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_delete_of_absent_edge(self, seed):
        snap = _graph(seed)[0]
        s, d = _absent_edge(snap)
        with pytest.raises(ValueError, match="absent edge"):
            apply_events(snap, [UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d))])

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_out_of_range_vertex_id(self, seed):
        snap = _graph(seed)[0]
        n = snap.num_vertices
        bad = UpdateEvent(
            UpdateKind.FEATURE_UPDATE, n, np.zeros(snap.dim, dtype=np.float32)
        )
        with pytest.raises(ValueError, match="out of range"):
            apply_events(snap, [bad])
        with pytest.raises(ValueError, match="out of range"):
            apply_events(
                snap, [UpdateEvent(UpdateKind.EDGE_INSERT, 0, (0, n))]
            )

    def test_unknown_kind_and_malformed_payloads(self):
        snap = _graph(0)[0]
        with pytest.raises(ValueError, match="unknown event kind"):
            apply_events(snap, [UpdateEvent("mystery", 0)])
        with pytest.raises(ValueError, match="not an UpdateEvent"):
            apply_events(snap, [("edge_insert", 0, (0, 1))])
        with pytest.raises(ValueError, match="payload"):
            apply_events(snap, [UpdateEvent(UpdateKind.EDGE_INSERT, 0, (0,))])
        nan = np.zeros(snap.dim, dtype=np.float32)
        nan[0] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            apply_events(snap, [UpdateEvent(UpdateKind.FEATURE_UPDATE, 0, nan)])

    def test_presence_rules(self):
        snap = _graph(1)[0].copy()
        snap.present[5] = False
        snap.features[5] = 0.0
        with pytest.raises(ValueError, match="absent vertex"):
            apply_events(
                snap,
                [UpdateEvent(
                    UpdateKind.FEATURE_UPDATE, 5,
                    np.ones(snap.dim, dtype=np.float32),
                )],
            )
        with pytest.raises(ValueError, match="already-present"):
            apply_events(snap, [UpdateEvent(UpdateKind.VERTEX_ARRIVE, 0)])
        with pytest.raises(ValueError, match="departure of absent"):
            apply_events(snap, [UpdateEvent(UpdateKind.VERTEX_DEPART, 5)])

    @given(seed=st.integers(min_value=0, max_value=2000))
    @settings(max_examples=10, deadline=None)
    def test_rejection_does_not_corrupt_the_input(self, seed):
        snap = _graph(seed)[0]
        before = snap.copy()
        s, d = _existing_edge(snap)
        with pytest.raises(ValueError):
            apply_events(
                snap,
                [
                    UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d)),
                    UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d)),  # poison
                ],
            )
        assert np.array_equal(snap.indptr, before.indptr)
        assert np.array_equal(snap.indices, before.indices)
        assert np.array_equal(snap.present, before.present)
        np.testing.assert_array_equal(snap.features, before.features)

    def test_violation_predicate_matches_strict_replay(self):
        """event_violation is the single authority: events it clears apply
        cleanly, events it flags raise with that exact reason."""
        snap = _graph(2)[0]
        n = snap.num_vertices
        s, d = _existing_edge(snap)
        keys = set()
        src = np.repeat(np.arange(n, dtype=np.int64), snap.degrees)
        for k in (src * n + snap.indices.astype(np.int64)).tolist():
            keys.add(int(k))
        dup = UpdateEvent(UpdateKind.EDGE_INSERT, s, (s, d))
        reason = event_violation(
            dup, num_vertices=n, dim=snap.dim,
            present=snap.present, edge_keys=keys,
        )
        assert reason is not None
        with pytest.raises(ValueError, match="invalid update event"):
            apply_events(snap, [dup])
        ok = UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d))
        assert event_violation(
            ok, num_vertices=n, dim=snap.dim,
            present=snap.present, edge_keys=keys,
        ) is None
        apply_events(snap, [ok])  # must not raise
