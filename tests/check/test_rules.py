"""Exact-finding tests for every rule against the line-pinned fixtures."""

from pathlib import Path

import pytest

from repro.check import CheckConfig, scan_paths
from repro.check.registry import RULES

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(relpath: str, code: str):
    """Scan one fixture with a single rule; return {(path, line)}."""
    found = scan_paths(
        [FIXTURES / relpath],
        config=CheckConfig(),
        select=[code],
        root=FIXTURES,
    )
    assert all(f.code == code for f in found)
    return {(f.path, f.line) for f in found}


def test_registry_has_all_rules():
    assert sorted(RULES) == [
        "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
    ]


def test_r001_determinism_findings():
    path = "engine/bad_determinism.py"
    assert findings_for(path, "R001") == {
        (path, 4),   # import random
        (path, 6),   # from random import choice
        (path, 7),   # from time import time
        (path, 16),  # time.time()
        (path, 17),  # os.urandom
        (path, 18),  # unseeded default_rng()
        (path, 19),  # legacy np.random.rand
    }


def test_r001_only_fires_under_determinism_paths():
    # The same file outside accel/hardware/engine/formats is exempt.
    src = (FIXTURES / "engine" / "bad_determinism.py").read_text()
    copy = FIXTURES / "relocated_determinism.py"
    copy.write_text(src)
    try:
        assert findings_for("relocated_determinism.py", "R001") == set()
    finally:
        copy.unlink()


def test_r002_frozen_mutation_findings():
    path = "bad_frozen.py"
    assert findings_for(path, "R002") == {
        (path, 16),  # self.value = 1 outside __init__/__post_init__
        (path, 25),  # annotated-parameter mutation
        (path, 30),  # augmented assign on constructed local
        (path, 37),  # object.__setattr__ outside the frozen class
    }


def test_r003_unit_findings():
    path = "bad_units.py"
    # Line 13 repeats the line-7 mix but carries `# repro: noqa R003`.
    assert findings_for(path, "R003") == {
        (path, 7),   # cycles + bytes
        (path, 8),   # macs - joules
        (path, 9),   # cycles vs words comparison
        (path, 10),  # augmented cycles += bytes
    }


def test_r004_api_findings():
    path = "bad_api.py"
    found = scan_paths(
        [FIXTURES / path], config=CheckConfig(), select=["R004"],
        root=FIXTURES,
    )
    by_line = sorted((f.line, f.message) for f in found)
    assert {line for line, _ in by_line} == {3, 5, 12}
    messages = " | ".join(msg for _, msg in by_line)
    assert "ghost" in messages      # listed but undefined
    assert "listed" in messages     # duplicate entry
    assert "CONSTANT" in messages   # public, unlisted
    assert "unlisted" in messages   # public, unlisted


def test_r004_missing_all():
    assert findings_for("no_all.py", "R004") == {("no_all.py", 1)}


def test_r005_validation_findings():
    path = "hardware/bad_validation.py"
    assert findings_for(path, "R005") == {
        (path, 9),   # NoPostInit: numeric fields, no __post_init__
        (path, 17),  # PartialPostInit.unchecked never referenced
    }


def test_r005_only_fires_under_validation_paths():
    src = (FIXTURES / "hardware" / "bad_validation.py").read_text()
    copy = FIXTURES / "relocated_validation.py"
    copy.write_text(src)
    try:
        assert findings_for("relocated_validation.py", "R005") == set()
    finally:
        copy.unlink()


def test_r006_hot_path_loop_findings():
    path = "formats/bad_hotpath.py"
    assert findings_for(path, "R006") == {
        (path, 13),  # for v in vertices
        (path, 15),  # for ... in enumerate(edges)
        (path, 17),  # for x in vertices.tolist()
        (path, 24),  # for row in arr.tolist()
        (path, 31),  # while len(keys) > 0
        # line 34 carries `# repro: noqa R006`; cold loops in fine() and
        # the comprehension are never flagged
    }


def test_r006_only_fires_under_hot_paths():
    src = (FIXTURES / "formats" / "bad_hotpath.py").read_text()
    copy = FIXTURES / "relocated_hotpath.py"
    copy.write_text(src)
    try:
        assert findings_for("relocated_hotpath.py", "R006") == set()
    finally:
        copy.unlink()


def test_r006_message_names_the_hot_noun():
    found = scan_paths(
        [FIXTURES / "formats" / "bad_hotpath.py"],
        config=CheckConfig(), select=["R006"], root=FIXTURES,
    )
    by_line = {f.line: f.message for f in found}
    assert "'vertices'" in by_line[13]
    assert "tolist" in by_line[24]
    assert "'keys'" in by_line[31]


def test_r007_contract_consistency_findings():
    path = "graphs/bad_contracts.py"
    found = scan_paths(
        [FIXTURES / path], config=CheckConfig(), select=["R007"],
        root=FIXTURES,
    )
    by_line = {f.line: f.message for f in found}
    assert set(by_line) == {19, 24, 35, 45}
    assert "return dtype f64 where f32 declared" in by_line[19]
    assert "return rank 2 where rank 1 declared" in by_line[24]
    assert "argument 'idx' dtype f32 where i64 declared" in by_line[35]
    assert "bad contract" in by_line[45] and "q8" in by_line[45]
    # clean_kernel and gather_rows produce nothing
    assert all("clean_kernel" not in m and "in gather_rows" not in m
               for m in by_line.values())


def test_r007_only_fires_under_contract_paths():
    src = (FIXTURES / "graphs" / "bad_contracts.py").read_text()
    copy = FIXTURES / "relocated_contracts.py"
    copy.write_text(src)
    try:
        assert findings_for("relocated_contracts.py", "R007") == set()
    finally:
        copy.unlink()


def test_r008_contract_coverage_findings():
    path = "graphs/bad_coverage.py"
    found = scan_paths(
        [FIXTURES / path], config=CheckConfig(), select=["R008"],
        root=FIXTURES,
    )
    # only uncovered_kernel: covered has a contract, suppressed carries a
    # noqa, not_an_array_api has no ndarray in its signature, and
    # _private_kernel is not public.
    assert [(f.path, f.line) for f in found] == [(path, 20)]
    assert "uncovered_kernel" in found[0].message
    assert "noqa R008" in found[0].message  # message explains the escape


def test_clean_fixture_has_no_findings():
    found = scan_paths(
        [FIXTURES / "clean.py"], config=CheckConfig(), root=FIXTURES
    )
    assert found == []


def test_findings_sorted_and_formatted():
    found = scan_paths(
        [FIXTURES / "bad_units.py"], config=CheckConfig(),
        select=["R003"], root=FIXTURES,
    )
    assert found == sorted(found)
    first = found[0].format()
    assert first.startswith("bad_units.py:7 R003 ")


def test_config_disable_suppresses_rule():
    cfg = CheckConfig(disable=("R003",))
    found = scan_paths(
        [FIXTURES / "bad_units.py"], config=cfg, select=["R003"],
        root=FIXTURES,
    )
    assert found == []


def test_config_enable_restricts_to_listed_rules():
    cfg = CheckConfig(enable=("R004",))
    found = scan_paths(
        [FIXTURES / "bad_units.py"], config=cfg, root=FIXTURES
    )
    assert {f.code for f in found} == {"R004"} or found == []


def test_config_exclude_glob_skips_file():
    cfg = CheckConfig(exclude=("bad_*.py",))
    found = scan_paths(
        [FIXTURES / "bad_units.py"], config=cfg, root=FIXTURES
    )
    assert found == []


def test_noqa_bare_comment_suppresses_every_code(tmp_path):
    bad = tmp_path / "engine" / "mod.py"
    bad.parent.mkdir()
    bad.write_text(
        '"""doc."""\n\nimport random  # repro: noqa\n'
        "__all__ = []\n"
    )
    found = scan_paths([bad], config=CheckConfig(), root=tmp_path)
    assert found == []


def test_noqa_wrong_code_does_not_suppress(tmp_path):
    bad = tmp_path / "engine" / "mod.py"
    bad.parent.mkdir()
    bad.write_text(
        '"""doc."""\n\nimport random  # repro: noqa R004\n'
        "__all__ = []\n"
    )
    found = scan_paths(
        [bad], config=CheckConfig(), select=["R001"], root=tmp_path
    )
    assert [(f.code, f.line) for f in found] == [("R001", 3)]


def test_cli_exit_codes(capsys):
    from repro.check.runner import main

    rc = main([str(FIXTURES / "clean.py"), "--root", str(FIXTURES)])
    assert rc == 0
    rc = main([str(FIXTURES / "bad_api.py"), "--root", str(FIXTURES)])
    assert rc == 1
    out = capsys.readouterr().out
    assert "bad_api.py:3 R004" in out


def test_cli_list_rules(capsys):
    from repro.check.runner import main

    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("R001", "R002", "R003", "R004", "R005", "R006",
                 "R007", "R008"):
        assert code in out


def test_cli_unknown_select_code_is_an_error(capsys):
    from repro.check.runner import main

    rc = main([str(FIXTURES / "clean.py"), "--select", "R999",
               "--root", str(FIXTURES)])
    assert rc == 2
    assert "unknown rule code" in capsys.readouterr().err


def test_cli_missing_path_is_a_clean_error(capsys):
    from repro.check.runner import main

    rc = main(["does/not/exist"])
    assert rc == 2
    assert "does/not/exist" in capsys.readouterr().err


def test_scan_rejects_non_python_path(tmp_path):
    stray = tmp_path / "notes.txt"
    stray.write_text("hello")
    with pytest.raises(FileNotFoundError):
        scan_paths([stray], config=CheckConfig(), root=tmp_path)
