"""Runtime-sanitizer tests: corrupted invariants must raise, clean runs
must not, and the hooks must actually fire inside the instrumented
subsystems."""

import numpy as np
import pytest

from repro.accel import CycleSimulator
from repro.accel.cyclesim import CycleSimResult
from repro.check import (
    SanitizerViolation,
    check_buffer,
    check_cyclesim_result,
    check_energy_composition,
    check_hbm_request,
    check_ocsr,
    sanitized,
    sanitizer_enabled,
    sanitizer_stats,
)
from repro.check import sanitizer as _san
from repro.formats import OCSRStorage, WindowSelection
from repro.graphs import CSRSnapshot, DynamicGraph
from repro.hardware import OnChipBuffer


def tiny_window(n=8, k=3, seed=0):
    rng = np.random.default_rng(seed)
    snaps = []
    for t in range(k):
        edges = rng.integers(0, n, size=(8, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        feats = rng.standard_normal((n, 2)).astype(np.float32)
        snaps.append(
            CSRSnapshot.from_edges(n, edges, feats, undirected=False)
        )
    return DynamicGraph(snaps)


def make_store():
    return OCSRStorage(WindowSelection(tiny_window(), np.arange(8)))


def good_result(**overrides):
    base = dict(
        total_cycles=100.0,
        loader_stall_cycles=10.0,
        dcu_utilization=0.5,
        aru_utilization=0.25,
        max_fifo_occupancy=4,
        tasks=20,
    )
    base.update(overrides)
    return CycleSimResult(**base)


def check_result(result, **overrides):
    kwargs = dict(n_dcu=8, n_aru=2, fifo_capacity=16, dcu_busy=400.0,
                  aru_busy=50.0)
    kwargs.update(overrides)
    check_cyclesim_result(result, **kwargs)


class TestCycleSimInvariants:
    def test_clean_result_passes(self):
        check_result(good_result())

    def test_corrupted_fifo_bound_caught(self):
        with pytest.raises(SanitizerViolation) as exc:
            check_result(good_result(max_fifo_occupancy=17))
        assert exc.value.invariant == "cyclesim-fifo-bound"
        assert exc.value.value == 17

    def test_stall_exceeding_span_caught(self):
        with pytest.raises(SanitizerViolation) as exc:
            check_result(good_result(loader_stall_cycles=101.0))
        assert exc.value.invariant == "cyclesim-stall"

    def test_busy_conservation_caught(self):
        with pytest.raises(SanitizerViolation) as exc:
            check_result(good_result(), dcu_busy=900.0)
        assert exc.value.invariant == "cyclesim-busy-conservation"

    def test_utilization_out_of_range_caught(self):
        with pytest.raises(SanitizerViolation) as exc:
            check_result(good_result(aru_utilization=1.2))
        assert exc.value.invariant == "cyclesim-utilization"

    def test_violation_message_is_structured(self):
        with pytest.raises(SanitizerViolation) as exc:
            check_result(good_result(max_fifo_occupancy=-1))
        msg = str(exc.value)
        assert "cyclesim-fifo-bound" in msg
        assert "CycleSimulator.run" in msg


class TestOCSRInvariants:
    def test_fresh_store_passes(self):
        check_ocsr(make_store())

    def test_corrupted_tindex_caught(self):
        store = make_store()
        assert store.tindex.size > 0
        store.tindex[0] = 10**6  # out of [0, num_vertices)
        with pytest.raises(SanitizerViolation) as exc:
            check_ocsr(store)
        assert exc.value.invariant == "ocsr-tindex-range"

    def test_non_monotone_sindex_caught(self):
        store = make_store()
        assert store.sindex.size >= 2
        store.sindex[-1] = store.sindex[0]
        with pytest.raises(SanitizerViolation) as exc:
            check_ocsr(store)
        assert exc.value.invariant == "ocsr-sindex-monotone"

    def test_offsets_enum_mismatch_caught(self):
        store = make_store()
        store.enum[0] += 1
        with pytest.raises(SanitizerViolation) as exc:
            check_ocsr(store)
        assert exc.value.invariant == "ocsr-enum-consistency"

    def test_maintenance_runs_under_sanitizer(self):
        # insert/delete/update call check_ocsr internally when enabled.
        store = make_store()
        before = sanitizer_stats().checks
        store.insert_edge(0, 5, 1)
        store.delete_edge(0, 5, 1)
        store.update_feature(2, 1, np.zeros(2, dtype=np.float32))
        assert sanitizer_stats().checks > before


class TestOtherInvariants:
    def test_energy_composition_mismatch_caught(self):
        with pytest.raises(SanitizerViolation) as exc:
            check_energy_composition(1.0, {"sram": 0.3, "hbm": 0.3})
        assert exc.value.invariant == "energy-composition"

    def test_negative_energy_component_caught(self):
        with pytest.raises(SanitizerViolation):
            check_energy_composition(0.0, {"sram": -0.5, "hbm": 0.5})

    def test_energy_composition_tolerates_float_noise(self):
        parts = {"a": 0.1, "b": 0.2, "c": 0.3}
        check_energy_composition(sum(parts.values()), parts)

    def test_negative_hbm_request_caught(self):
        with pytest.raises(SanitizerViolation):
            check_hbm_request(-1.0, 0.0)

    def test_corrupted_buffer_counter_caught(self):
        buf = OnChipBuffer(name="fifo", capacity_bytes=1024)
        buf.reads = -3
        with pytest.raises(SanitizerViolation) as exc:
            check_buffer(buf)
        assert exc.value.invariant == "buffer-counters"


class TestEnablement:
    def test_context_manager_enables(self):
        with sanitized():
            assert sanitizer_enabled()

    def test_env_flag_enables(self, monkeypatch):
        # Neutralise the autouse test fixture's context to probe the
        # environment-variable path on its own.
        monkeypatch.setattr(_san, "_DEPTH", 0)
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitizer_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitizer_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizer_enabled()

    def test_hooks_inert_when_disabled(self, monkeypatch):
        monkeypatch.setattr(_san, "_DEPTH", 0)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        store = make_store()
        store.tindex[0] = 10**6  # corrupt, but hooks must stay silent
        store.insert_edge(1, 2, 0)

    def test_cyclesim_run_checks_counted(self):
        from tests.accel.test_cyclesim import uniform_tasks

        with sanitized() as stats:
            before = stats.checks
            CycleSimulator().run(uniform_tasks(n=50))
            assert stats.checks > before
            assert stats.by_invariant.get("cyclesim-fifo-bound", 0) > 0
