"""R006 fixture: per-element loops in a vectorised hot path.

Line numbers are pinned by tests/check/test_rules.py — edit carefully.
"""

import numpy as np

__all__ = ["walk", "scan", "drain", "fine"]


def walk(vertices, edges):
    total = 0
    for v in vertices:                       # line 13: hot target+iter
        total += v
    for i, (s, d) in enumerate(edges):       # line 15: hot iterable
        total += s + d + i
    for x in vertices.tolist():              # line 17: hot + tolist
        total += x
    return total


def scan(arr):
    out = []
    for row in arr.tolist():                 # line 24: tolist escape hatch
        out.append(row)
    return out


def drain(keys):
    n = 0
    while len(keys) > 0:                     # line 31: hot while-test
        keys = keys[1:]
        n += 1
    for v in keys:  # repro: noqa R006 — suppressed on purpose (line 34)
        n += v
    return n


def fine(snapshots, layers):
    # cold loops: no hot noun, no tolist — never flagged
    acc = 0.0
    for snap in snapshots:
        for layer in layers:
            acc += float(np.sum(layer)) + float(np.sum(snap))
    good = [k * 2 for k in range(4)]  # comprehensions are exempt
    return acc, good
