"""R007 fixture: contracted kernels whose bodies provably break their
declarations.  Line numbers are pinned by tests/check/test_rules.py."""

import numpy as np

from repro.check.shapes import contract

__all__ = [
    "wrong_dtype_return",
    "rank_changing_broadcast",
    "bad_call_site",
    "clean_kernel",
    "bad_contract_text",
]


@contract("(n, f) f32 -> (n, f) f32")
def wrong_dtype_return(x: np.ndarray) -> np.ndarray:
    return x.astype(np.float64)  # dtype f64 where f32 declared


@contract("(n,) f32 -> (n,) f32")
def rank_changing_broadcast(x: np.ndarray) -> np.ndarray:
    return x[:, None] * x[None, :]  # rank 2 where rank 1 declared


@contract("(n, f) f32, (e,) i64 -> (e, f) f32")
def gather_rows(feats: np.ndarray, idx: np.ndarray) -> np.ndarray:
    return feats[idx]


@contract("(n, f) f32 -> (n, f) f32")
def bad_call_site(x: np.ndarray) -> np.ndarray:
    sel = np.zeros(4, dtype=np.float32)
    return gather_rows(x, sel)  # idx dtype f32 where i64 declared


@contract("(n, f) f32 -> (n, f) f32")
def clean_kernel(x: np.ndarray) -> np.ndarray:
    y = np.zeros_like(x)
    y += x
    return y


@contract("(n, f) q8 -> (n,) f32")
def bad_contract_text(x: np.ndarray) -> np.ndarray:
    return x.sum(axis=1)
