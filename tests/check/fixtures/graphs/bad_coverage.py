"""R008 fixture: public array kernels with and without contracts."""

import numpy as np

from repro.check.shapes import contract

__all__ = [
    "covered_kernel",
    "uncovered_kernel",
    "suppressed_kernel",
    "not_an_array_api",
]


@contract("(n,) f -> (n,) f")
def covered_kernel(x: np.ndarray) -> np.ndarray:
    return x * 2.0


def uncovered_kernel(x: np.ndarray) -> np.ndarray:
    return x + 1.0


def suppressed_kernel(x: np.ndarray) -> np.ndarray:  # repro: noqa R008
    return x - 1.0


def not_an_array_api(name: str) -> str:
    return name.upper()


def _private_kernel(x: np.ndarray) -> np.ndarray:
    return x
