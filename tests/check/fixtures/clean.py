"""A module every rule accepts (fixture for the zero-findings case)."""

__all__ = ["well_behaved", "LIMIT"]

LIMIT = 8


def well_behaved(busy_cycles: float, total_cycles: float) -> float:
    return min(busy_cycles, total_cycles) / LIMIT
