"""R003 fixture: mismatched-quantity arithmetic and comparisons."""

__all__ = ["mix"]


def mix(total_cycles, storage_bytes, gnn_macs, e_joules, load_words):
    a = total_cycles + storage_bytes  # line 7: cycles + bytes
    b = gnn_macs - e_joules  # line 8: macs - joules
    c = total_cycles > load_words  # line 9: cycles vs words compare
    total_cycles += storage_bytes  # line 10: augmented mix
    ok = total_cycles + 2 * total_cycles  # same tag: NOT flagged
    rate = load_words / total_cycles  # division converts: NOT flagged
    noqa = total_cycles + storage_bytes  # repro: noqa R003
    return a, b, c, ok, rate, noqa
