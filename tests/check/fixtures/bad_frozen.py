"""R002 fixture: mutations of frozen dataclass instances."""

from dataclasses import dataclass

__all__ = ["Frozen", "Mutable", "mutate_param", "mutate_local", "loophole"]


@dataclass(frozen=True)
class Frozen:
    value: int = 0

    def __post_init__(self):
        object.__setattr__(self, "value", abs(self.value))  # sanctioned

    def illegal_method(self):
        self.value = 1  # line 16: self-assign outside post-init


@dataclass
class Mutable:
    value: int = 0


def mutate_param(task: Frozen):
    task.value = 3  # line 25: annotated param


def mutate_local():
    t = Frozen(1)
    t.value += 1  # line 30: constructed local, augmented
    m = Mutable(1)
    m.value = 2  # not frozen: NOT flagged
    return t, m


def loophole(x):
    object.__setattr__(x, "value", 9)  # line 37: outside frozen init
