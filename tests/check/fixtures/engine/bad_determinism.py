"""R001 fixture: every forbidden entropy source (never imported)."""

import os
import random  # line 4: stdlib random import
import time
from random import choice  # line 6: from-import
from time import time as _t  # line 7: wall-clock from-import

import numpy as np

__all__ = ["entropy_soup"]


def entropy_soup():
    a = random.random()  # attribute on forbidden module (import flagged)
    b = time.time()  # line 16: wall clock
    c = os.urandom(8)  # line 17: os entropy
    rng = np.random.default_rng()  # line 18: unseeded generator
    d = np.random.rand(3)  # line 19: legacy global RNG
    ok = np.random.default_rng(42)  # seeded: NOT flagged
    return a, b, c, rng, d, ok, choice, _t
