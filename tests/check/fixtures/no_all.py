"""R004 fixture: a module without any __all__."""


def orphan():
    return None
