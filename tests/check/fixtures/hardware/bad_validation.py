"""R005 fixture: unvalidated numeric dataclass fields."""

from dataclasses import dataclass

__all__ = ["NoPostInit", "PartialPostInit", "NonNumeric"]


@dataclass(frozen=True)
class NoPostInit:  # line 9: numeric fields, no __post_init__ at all
    bandwidth: float = 1.0
    ports: int = 2


@dataclass
class PartialPostInit:
    checked: int = 1
    unchecked: float = 0.5  # line 17: never referenced below

    def __post_init__(self):
        if self.checked < 0:
            raise ValueError("checked must be >= 0")


@dataclass
class NonNumeric:  # no numeric fields: NOT flagged
    name: str = "x"
