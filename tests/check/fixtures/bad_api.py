"""R004 fixture: __all__ drift in every direction."""

__all__ = ["listed", "ghost", "listed"]  # ghost undefined; listed twice

CONSTANT = 7  # line 5: public, unlisted


def listed():
    return CONSTANT


def unlisted():  # line 12: public, unlisted
    return 0


def _private():  # NOT flagged
    return 1
