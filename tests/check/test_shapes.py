"""The contract subsystem: DSL parser, runtime validator, decorator.

Three layers are pinned here:

* :func:`parse_contract` — grammar corners and decoration-time errors;
* :func:`validate_value` — one value against one spec with symbol
  bindings;
* :func:`contract` — the wrapper's behaviour with the sanitizer on
  (violations raise, stats count) and off (pure passthrough), including
  the acceptance scenario: a seeded shape fault caught under
  ``REPRO_SANITIZE=1`` while sanitized runs stay bit-identical.
"""

import numpy as np
import pytest

import repro.check.sanitizer as sanitizer_mod
from repro.check import SanitizerViolation, sanitized
from repro.check.sanitizer import reset_sanitizer_stats, sanitizer_stats
from repro.check.shapes import (
    AnySpec,
    ArraySpec,
    ContractError,
    DimScalarSpec,
    DimSpec,
    ScalarSpec,
    contract,
    get_contract,
    parse_contract,
    validate_value,
)

# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


def test_parse_basic_array_contract():
    spec = parse_contract("(n,f) f32, (e,) i64 -> (n,f) f32")
    assert len(spec.args) == 2 and len(spec.returns) == 1
    x, idx = spec.args
    assert x == ArraySpec(
        dims=(DimSpec("sym", "n"), DimSpec("sym", "f")), dtype="f32"
    )
    assert idx.dims == (DimSpec("sym", "e"),)
    assert idx.dtype == "i64"


def test_parse_every_spec_kind():
    spec = parse_contract(
        "n, int, float, bool, str, none, _, ?(k,) f, (...) ?, (3, *) u8"
        " -> (n+1,) i64"
    )
    kinds = [type(s).__name__ for s in spec.args]
    assert kinds == [
        "DimScalarSpec", "ScalarSpec", "ScalarSpec", "ScalarSpec",
        "ScalarSpec", "ScalarSpec", "AnySpec", "ArraySpec", "ArraySpec",
        "ArraySpec",
    ]
    assert spec.args[0] == DimScalarSpec("n")
    assert spec.args[7].optional is True
    assert spec.args[8].dims is None  # (...) = any rank
    assert spec.args[9].dims == (DimSpec("lit", value=3), DimSpec("any"))
    ret = spec.returns[0]
    assert ret.dims == (DimSpec("sym", "n", 1),)  # the indptr n+1 idiom


def test_parse_no_args_contract():
    spec = parse_contract("-> (n,) f32")
    assert spec.args == ()


@pytest.mark.parametrize(
    "text, fragment",
    [
        ("(n,) q8 -> (n,) f32", "unknown dtype 'q8'"),
        ("f32 -> (n,) f32", "without dims"),
        ("(n,) f32", "expected 'arrow'"),
        ("(n,) f32 -> (n,) f32 junk", "trailing junk"),
        ("(n,) f32 ->", "expected a spec"),
        ("(n f) f32 -> (n,) f32", "expected"),
        ("(n,) -> (n,) f32", "needs a dtype"),
    ],
)
def test_parse_errors(text, fragment):
    with pytest.raises(ContractError) as exc:
        parse_contract(text)
    assert fragment in str(exc.value)


def test_parse_roundtrips_through_str():
    spec = parse_contract("?(n, f) f32, m, _ -> (m+2,) i64, (...) f")
    assert parse_contract(str(spec)) == parse_contract(str(spec))


# ----------------------------------------------------------------------
# validate_value
# ----------------------------------------------------------------------


def test_validate_binds_and_enforces_symbols():
    spec = parse_contract("(n, f) f32, (n,) b -> (n,) f32")
    b: dict = {}
    ok, _ = validate_value(np.zeros((4, 3), np.float32), spec.args[0], b)
    assert ok and b == {"n": 4, "f": 3}
    ok, _ = validate_value(np.zeros(4, bool), spec.args[1], b)
    assert ok
    ok, detail = validate_value(np.zeros(5, bool), spec.args[1], {"n": 4})
    assert not ok and "expected n=4" in detail


def test_validate_offset_dims():
    spec = parse_contract("n -> (n+1,) i64")
    b: dict = {}
    assert validate_value(7, spec.args[0], b) == (True, "")
    assert validate_value(np.zeros(8, np.int64), spec.returns[0], b)[0]
    ok, detail = validate_value(np.zeros(7, np.int64), spec.returns[0], b)
    assert not ok and "n+1" in detail


def test_validate_dtype_kinds():
    arr = parse_contract("(n,) i -> _").args[0]
    assert validate_value(np.zeros(2, np.uint8), arr, {})[0]  # i = iu
    assert validate_value(np.zeros(2, np.int32), arr, {})[0]
    ok, detail = validate_value(np.zeros(2, np.float32), arr, {})
    assert not ok and "dtype" in detail


def test_validate_optional_and_scalars():
    spec = parse_contract("?(n,) f, int, float, none -> _")
    assert validate_value(None, spec.args[0], {})[0]
    assert not validate_value(None, parse_contract("(n,) f -> _").args[0], {})[0]
    assert validate_value(3, spec.args[1], {})[0]
    assert not validate_value(True, spec.args[1], {})[0]  # bool is not int
    assert validate_value(3, spec.args[2], {})[0]  # numeric tower
    assert validate_value(None, spec.args[3], {})[0]


# ----------------------------------------------------------------------
# the decorator
# ----------------------------------------------------------------------


@contract("(n, f) f32, (e,) i64 -> (e, f) f32")
def _gather(feats, idx):
    return feats[idx]


@contract("n, (e,) i64 -> (n+1,) i64, (e,) i64")
def _histogram(n, where):
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(where, minlength=n), out=indptr[1:])
    return indptr, np.sort(where)


def test_contract_attached_and_introspectable():
    spec = get_contract(_gather)
    assert spec is not None and len(spec.args) == 2
    assert get_contract(len) is None


def test_decoration_time_errors():
    with pytest.raises(ContractError):
        contract("(n,) z9 -> (n,) f32")

    with pytest.raises(TypeError, match="declares 3 arguments"):
        @contract("_, _, _ -> _")
        def too_short(x):
            return x


def test_valid_calls_pass_and_are_counted():
    reset_sanitizer_stats()
    feats = np.arange(6, dtype=np.float32).reshape(3, 2)
    idx = np.array([2, 0], dtype=np.int64)
    out = _gather(feats, idx)
    assert out.shape == (2, 2)
    by_invariant = sanitizer_stats().by_invariant
    assert by_invariant.get("contract-args", 0) >= 2
    assert by_invariant.get("contract-return", 0) >= 1


def test_wrong_arg_dtype_raises_before_the_kernel_runs():
    feats = np.arange(6, dtype=np.float32).reshape(3, 2)
    with pytest.raises(SanitizerViolation, match="contract-args") as exc:
        _gather(feats, np.array([0.0, 1.0]))  # float where i64 declared
    assert exc.value.quantity == "idx"
    assert "i64" in str(exc.value)


def test_symbol_mismatch_across_args_raises():
    @contract("(n, f) f32, (n,) b -> _")
    def masked(x, m):
        return x

    x = np.zeros((4, 2), np.float32)
    with pytest.raises(SanitizerViolation, match="expected n=4"):
        masked(x, np.zeros(5, bool))


def test_multi_return_and_offset_enforced():
    indptr, srt = _histogram(3, np.array([0, 2, 2], dtype=np.int64))
    assert indptr.tolist() == [0, 1, 1, 3]

    @contract("n, (e,) i64 -> (n+1,) i64, (e,) i64")
    def broken(n, where):
        return np.zeros(n, dtype=np.int64), where  # n where n+1 declared

    with pytest.raises(SanitizerViolation, match=r"return\[0\]"):
        broken(3, np.array([0], dtype=np.int64))


def test_wrong_tuple_arity_raises():
    @contract("_ -> (n,) f32, (n,) f32")
    def single(x):
        return x

    with pytest.raises(SanitizerViolation, match="2-tuple"):
        single(np.zeros(3, np.float32))


def test_methods_skip_self():
    class K:
        @contract("(n,) f -> (n,) f")
        def double(self, x):
            return x * 2.0

    assert K().double(np.ones(3, np.float32)).shape == (3,)
    with pytest.raises(SanitizerViolation):
        K().double(np.ones((3, 1), np.float32))


def test_defaulted_params_left_unspecified_are_skipped():
    @contract("(n,) f, (n,) f -> (n,) f")
    def add(x, y=None):
        return x + y if y is not None else x

    assert add(np.ones(2, np.float32)).shape == (2,)  # y unchecked
    with pytest.raises(SanitizerViolation):
        add(np.ones(2, np.float32), np.ones(3, np.float32))


# ----------------------------------------------------------------------
# sanitizer on/off semantics (the acceptance scenario)
# ----------------------------------------------------------------------


def test_disabled_wrapper_is_pure_passthrough(monkeypatch):
    # Escape the suite-wide sanitized() fixture and the env flag: with
    # the sanitizer fully off the seeded fault must NOT raise.
    monkeypatch.setattr(sanitizer_mod, "_DEPTH", 0)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    out = _gather(
        np.arange(6, dtype=np.float64).reshape(3, 2),  # f64 where f32 declared
        np.array([0, 1], dtype=np.int64),
    )
    assert out.shape == (2, 2)
    with sanitized(), pytest.raises(SanitizerViolation):
        _gather(
            np.arange(6, dtype=np.float64).reshape(3, 2),
            np.array([0, 1], dtype=np.int64),
        )


def test_env_flag_catches_seeded_shape_fault(monkeypatch):
    from repro.skipping.delta import generate_delta

    monkeypatch.setattr(sanitizer_mod, "_DEPTH", 0)
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    good = np.ones((4, 3), dtype=np.float32)
    # seeded fault: current/previous feature blocks disagree on width
    with pytest.raises(SanitizerViolation, match="contract-args"):
        generate_delta(good, np.ones((4, 2), dtype=np.float32))


def test_sanitized_runs_are_bit_identical():
    from repro.graphs.generators import (
        DynamicGraphSpec, generate_dynamic_graph,
    )
    from repro.models.layers import GCNStack

    spec = DynamicGraphSpec(
        name="t", num_vertices=40, num_edges=80, dim=8,
        num_snapshots=3, seed=5,
    )
    gnn = GCNStack([8, 8], seed=3)

    def run():
        g = generate_dynamic_graph(spec)
        return np.concatenate(
            [gnn.forward(s, s.features) for s in g]
        )

    with sanitized():
        a = run()
    with sanitized():
        b = run()
    assert a.tobytes() == b.tobytes()  # validation never perturbs data


def test_sanitized_matches_unsanitized_bits(monkeypatch):
    feats = np.linspace(0, 1, 12, dtype=np.float32).reshape(4, 3)
    idx = np.array([3, 1, 0], dtype=np.int64)
    with sanitized():
        on = _gather(feats, idx)
    monkeypatch.setattr(sanitizer_mod, "_DEPTH", 0)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    off = _gather(feats, idx)
    assert on.tobytes() == off.tobytes()
