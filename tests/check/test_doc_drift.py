"""Doc-drift gate: the audited suppression inventory must match docs.

``docs/static_analysis.md`` promises a complete table of every
``# repro: noqa`` suppression under ``src/repro`` and why it is there.
This test rebuilds the ground truth from the tree and fails the moment
a suppression is added, removed, or moved without the table keeping up
— in either direction, with a diff naming the drifted entries.
"""

from pathlib import Path

from repro.check.inventory import collect_noqa_inventory, parse_inventory_table

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "static_analysis.md"


def _diff(actual: dict, documented: dict) -> str:
    lines = []
    for key in sorted(set(actual) | set(documented)):
        a, d = actual.get(key, 0), documented.get(key, 0)
        if a != d:
            path, code = key
            lines.append(f"  {path} {code}: tree has {a}, table says {d}")
    return "\n".join(lines)


def test_documented_inventory_matches_tree():
    actual = collect_noqa_inventory(SRC)
    documented = parse_inventory_table(DOC.read_text(encoding="utf-8"))
    assert actual == documented, (
        "suppression inventory drift — update the table in "
        "docs/static_analysis.md:\n" + _diff(actual, documented)
    )


def test_tree_has_no_bare_suppressions():
    # Every suppression names its codes; a bare ``# repro: noqa`` would
    # silently disable all current *and future* rules on that line.
    bare = [p for (p, code) in collect_noqa_inventory(SRC) if code == "all"]
    assert bare == []


def test_parse_inventory_table_reads_counts_and_code_lists():
    md = (
        "| Where | Rule | Why |\n"
        "|---|---|---|\n"
        "| `a/b.py` (×3) | R006 | hot loop |\n"
        "| `c.py` | R001, R003 | clock + units |\n"
        "| not a row | R001 | ignored |\n"
    )
    assert parse_inventory_table(md) == {
        ("a/b.py", "R006"): 3,
        ("c.py", "R001"): 1,
        ("c.py", "R003"): 1,
    }


def test_collect_ignores_docstring_mentions(tmp_path):
    mod = tmp_path / "m.py"
    mod.write_text(
        '"""Mentions # repro: noqa R001 in prose only."""\n'
        "import random  # repro: noqa R001\n"
    )
    assert collect_noqa_inventory(tmp_path) == {("m.py", "R001"): 1}
