"""The gate itself: the shipped tree must scan clean.

This is the CI contract — ``repro check src/`` exits 0 — so any rule
regression or fresh violation in ``src/`` fails here first.
"""

import subprocess
import sys
from pathlib import Path

from repro.check import scan_paths

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_scans_clean():
    findings = scan_paths([REPO / "src"], root=REPO)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_module_entry_point_exits_zero():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.check", "src", "--root", "."],
        cwd=REPO,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
