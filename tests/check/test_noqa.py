"""Edge cases of the ``# repro: noqa`` suppression syntax.

The pattern is load-bearing twice over: the runner drops findings with
it, and the doc-drift gate rebuilds the audited suppression inventory
from it — a regex that over- or under-matches silently weakens the CI
gate, so its corners are pinned here.
"""

from repro.check.findings import Finding
from repro.check.runner import NOQA_PATTERN, filter_noqa


def codes_of(line: str):
    """Parsed code list for a comment line: None = no match, () = bare."""
    m = NOQA_PATTERN.search(line)
    if m is None:
        return None
    codes = m.group("codes")
    if codes is None:
        return ()
    return tuple(c.strip() for c in codes.split(","))


def test_bare_noqa_matches_all_codes():
    assert codes_of("x = 1  # repro: noqa") == ()


def test_single_code():
    assert codes_of("x = 1  # repro: noqa R006") == ("R006",)


def test_code_list_with_odd_whitespace():
    assert codes_of("x  #  repro:   noqa   R001 ,R003,  R006") == (
        "R001", "R003", "R006",
    )


def test_trailing_prose_does_not_extend_the_code_list():
    got = codes_of("y  # repro: noqa R006 — bounded by max degree")
    assert got == ("R006",)


def test_no_space_typo_does_not_suppress():
    # ``noqaR006`` must not silently act as a bare suppress-everything.
    assert codes_of("x = 1  # repro: noqaR006") is None


def test_unrelated_comment_does_not_match():
    assert codes_of("x = 1  # repro: this is fine") is None
    assert codes_of("x = 1  # noqa") is None  # flake8 noqa is not ours


def test_unknown_codes_parse_but_only_suppress_themselves():
    assert codes_of("x  # repro: noqa R999") == ("R999",)
    f = Finding(path="m.py", line=1, code="R001", message="boom")
    kept = filter_noqa([f], {"m.py": ["import random  # repro: noqa R999"]})
    assert kept == [f]


def test_filter_noqa_bare_drops_everything_on_the_line():
    f = Finding(path="m.py", line=1, code="R001", message="boom")
    assert filter_noqa([f], {"m.py": ["import random  # repro: noqa"]}) == []


def test_filter_noqa_listed_code_drops_only_listed():
    lines = {"m.py": ["import random  # repro: noqa R001, R004"]}
    hit = Finding(path="m.py", line=1, code="R001", message="boom")
    miss = Finding(path="m.py", line=1, code="R006", message="loop")
    assert filter_noqa([hit, miss], lines) == [miss]


def test_filter_noqa_out_of_range_line_is_kept():
    f = Finding(path="m.py", line=99, code="R001", message="boom")
    assert filter_noqa([f], {"m.py": ["x = 1"]}) == [f]
