"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "GT"
        assert args.model == "T-GCN"
        assert args.dcus == 16
        assert args.macs == 4096

    def test_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--no-oadl", "--dcus", "8", "--dataset", "ML"]
        )
        assert args.no_oadl and not args.no_adsc
        assert args.dcus == 8 and args.dataset == "ML"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "HepPh" in out and "Flicker" in out

    def test_classify(self, capsys):
        assert main(["classify", "--dataset", "GT", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        assert "unaffected" in out and "affected subgraph" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--dataset", "GT", "--snapshots", "4",
             "--model", "T-GCN"]
        ) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "breakdown" in out

    def test_simulate_ablated(self, capsys):
        assert main(
            ["simulate", "--dataset", "GT", "--snapshots", "4", "--no-adsc"]
        ) == 0
        assert "skip ratio 0.00" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--dataset", "GT", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("DGNN-Booster", "E-DGCN", "Cambricon-DG", "DGL-CPU",
                     "PiPAD", "TaGNN-S", "TaGNN"):
            assert name in out

    def test_accuracy(self, capsys):
        assert main(["accuracy", "--dataset", "GT", "--snapshots", "6"]) == 0
        out = capsys.readouterr().out
        assert "exact inference" in out and "with skipping" in out

    def test_evolvegcn_via_cli(self, capsys):
        assert main(
            ["simulate", "--dataset", "GT", "--snapshots", "4",
             "--model", "EvolveGCN"]
        ) == 0
        assert "latency" in capsys.readouterr().out


class TestPlan:
    def test_plan_summary(self, capsys):
        assert main(["plan", "--dataset", "GT", "--snapshots", "8",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "windows planned" in out
        assert "thresholds:" in out
        assert "probes:" in out

    def test_plan_explain(self, capsys):
        assert main(["plan", "--dataset", "GT", "--snapshots", "8",
                     "--repeats", "2", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "window   0" in out
        assert "latest plan:" in out
        assert "kernel switches:" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "T-GCN"
        assert args.repeats == 2
        assert not args.calibrate and not args.explain


class TestStats:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "GT", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        assert "temporal profile" in out
        assert "unaffected ratio" in out


class TestGenerate:
    def test_generate_writes_archive(self, tmp_path, capsys):
        out = str(tmp_path / "gt.npz")
        assert main(
            ["generate", "--dataset", "GT", "--snapshots", "3", "--out", out]
        ) == 0
        from repro.graphs import load_dynamic_graph

        g = load_dynamic_graph(out)
        assert g.num_snapshots == 3
        assert "wrote" in capsys.readouterr().out
