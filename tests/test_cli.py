"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "GT"
        assert args.model == "T-GCN"
        assert args.dcus == 16
        assert args.macs == 4096

    def test_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--no-oadl", "--dcus", "8", "--dataset", "ML"]
        )
        assert args.no_oadl and not args.no_adsc
        assert args.dcus == 8 and args.dataset == "ML"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "HepPh" in out and "Flicker" in out

    def test_classify(self, capsys):
        assert main(["classify", "--dataset", "GT", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        assert "unaffected" in out and "affected subgraph" in out

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--dataset", "GT", "--snapshots", "4",
             "--model", "T-GCN"]
        ) == 0
        out = capsys.readouterr().out
        assert "latency" in out and "breakdown" in out

    def test_simulate_ablated(self, capsys):
        assert main(
            ["simulate", "--dataset", "GT", "--snapshots", "4", "--no-adsc"]
        ) == 0
        assert "skip ratio 0.00" in capsys.readouterr().out

    def test_compare(self, capsys):
        assert main(["compare", "--dataset", "GT", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        for name in ("DGNN-Booster", "E-DGCN", "Cambricon-DG", "DGL-CPU",
                     "PiPAD", "TaGNN-S", "TaGNN"):
            assert name in out

    def test_accuracy(self, capsys):
        assert main(["accuracy", "--dataset", "GT", "--snapshots", "6"]) == 0
        out = capsys.readouterr().out
        assert "exact inference" in out and "with skipping" in out

    def test_evolvegcn_via_cli(self, capsys):
        assert main(
            ["simulate", "--dataset", "GT", "--snapshots", "4",
             "--model", "EvolveGCN"]
        ) == 0
        assert "latency" in capsys.readouterr().out


class TestPlan:
    def test_plan_summary(self, capsys):
        assert main(["plan", "--dataset", "GT", "--snapshots", "8",
                     "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "windows planned" in out
        assert "thresholds:" in out
        assert "probes:" in out

    def test_plan_explain(self, capsys):
        assert main(["plan", "--dataset", "GT", "--snapshots", "8",
                     "--repeats", "2", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "window   0" in out
        assert "latest plan:" in out
        assert "kernel switches:" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.model == "T-GCN"
        assert args.repeats == 2
        assert not args.calibrate and not args.explain


class TestStats:
    def test_stats(self, capsys):
        assert main(["stats", "--dataset", "GT", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        assert "temporal profile" in out
        assert "unaffected ratio" in out


class TestGenerate:
    def test_generate_writes_archive(self, tmp_path, capsys):
        out = str(tmp_path / "gt.npz")
        assert main(
            ["generate", "--dataset", "GT", "--snapshots", "3", "--out", out]
        ) == 0
        from repro.graphs import load_dynamic_graph

        g = load_dynamic_graph(out)
        assert g.num_snapshots == 3
        assert "wrote" in capsys.readouterr().out


class TestChaosCluster:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert not args.cluster and not args.smoke
        assert args.shards == 4 and args.tenants == 1
        assert args.report_out is None and args.dlq_out is None

    def test_cluster_smoke_writes_artifacts(self, tmp_path, capsys):
        import json

        report = str(tmp_path / "campaign.json")
        capture = str(tmp_path / "dlq.npz")
        assert main(
            ["chaos", "--cluster", "--smoke", "--shards", "2",
             "--window", "2", "--report-out", report, "--dlq-out", capture]
        ) == 0
        out = capsys.readouterr().out
        assert "cluster chaos campaign report" in out
        assert "bit-identical       : yes" in out
        with open(report) as fh:
            blob = json.load(fh)
        assert blob["identical"] is True and blob["lost"] == 0
        from repro.resilience import DeadLetterQueue

        DeadLetterQueue.load(capture)  # round-trips


class TestDlq:
    def _capture(self, tmp_path):
        import numpy as np

        from repro.graphs import load_dataset
        from repro.graphs.updates import UpdateEvent, UpdateKind
        from repro.resilience import DeadLetterQueue, GuardedIngest

        g = load_dataset("GT", num_snapshots=4, seed=3)
        dlq = DeadLetterQueue()
        guard = GuardedIngest(dlq=dlq)
        poison = UpdateEvent(
            UpdateKind.FEATURE_UPDATE, 0,
            np.full(g.dim, np.nan, dtype=np.float32),
        )
        guard.apply(g[0], [poison], step=1)
        path = tmp_path / "capture.npz"
        dlq.save(path)
        return str(path), g

    def test_inspect(self, tmp_path, capsys):
        path, _ = self._capture(tmp_path)
        assert main(["dlq", path]) == 0
        out = capsys.readouterr().out
        assert "1 dead letters" in out
        assert "non-finite" in out

    def test_redrain_writes_remainder(self, tmp_path, capsys):
        path, _ = self._capture(tmp_path)
        remainder = str(tmp_path / "remainder.npz")
        assert main(
            ["dlq", path, "--snapshots", "4", "--redrain",
             "--out", remainder]
        ) == 0
        out = capsys.readouterr().out
        assert "0 readmitted" in out and "1 still poison" in out
        from repro.resilience import DeadLetterQueue

        assert len(DeadLetterQueue.load(remainder)) == 1
