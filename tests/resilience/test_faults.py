"""Tests for the seeded fault injectors."""

import numpy as np
import pytest

from repro.check.sanitizer import SanitizerViolation
from repro.graphs import CSRSnapshot, load_dataset
from repro.resilience import (
    ENGINE_FAULTS,
    EVENT_FAULTS,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FlakyHBM,
    GuardedIngest,
    SHARD_FAULTS,
    SNAPSHOT_FAULTS,
    STORAGE_FAULTS,
    STREAM_FAULTS,
    TransientStorageError,
    snapshot_violation,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=4, seed=3)


class TestFaultSpec:
    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            FaultSpec(FaultKind.NAN_FEATURE, -1)

    def test_non_kind_rejected(self):
        with pytest.raises(ValueError, match="FaultKind"):
            FaultSpec("nan_feature", 1)

    def test_shard_kind_requires_shard_index(self):
        with pytest.raises(ValueError, match="shard index"):
            FaultSpec(FaultKind.WORKER_CRASH, 1)
        spec = FaultSpec(FaultKind.WORKER_CRASH, 1, 2)
        assert spec.shard == 2

    def test_bad_shard_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            FaultSpec(FaultKind.WORKER_STALL, 1, -2)


class TestFaultPlan:
    def test_generation_is_deterministic(self):
        a = FaultPlan.generate(seed=5, num_steps=8)
        b = FaultPlan.generate(seed=5, num_steps=8)
        assert a.specs == b.specs
        assert len(a) == len(STREAM_FAULTS)

    def test_steps_in_range_and_counts(self):
        plan = FaultPlan.generate(seed=11, num_steps=6, per_kind=3)
        assert all(1 <= s.step < 6 for s in plan.specs)
        counts = plan.counts()
        assert set(counts) == {k.value for k in STREAM_FAULTS}
        assert all(v == 3 for v in counts.values())
        assert sum(counts.values()) == len(plan)

    def test_generate_rejects_shard_kinds(self):
        with pytest.raises(ValueError, match="generate_cluster"):
            FaultPlan.generate(
                seed=0, num_steps=4, kinds=[FaultKind.WORKER_CRASH]
            )

    def test_generate_cluster_covers_every_shard(self):
        plan = FaultPlan.generate_cluster(seed=9, num_steps=8, num_shards=4)
        again = FaultPlan.generate_cluster(seed=9, num_steps=8, num_shards=4)
        assert plan.specs == again.specs
        assert plan.shards_touched() == frozenset(range(4))
        assert len(plan) == 4 * len(SHARD_FAULTS)
        assert all(1 <= s.step < 8 for s in plan.specs)
        assert all(s.kind in SHARD_FAULTS for s in plan.specs)
        # every shard gets every shard-level kind at least once
        for shard in range(4):
            kinds = {s.kind for s in plan.specs if s.shard == shard}
            assert kinds == SHARD_FAULTS

    def test_generate_cluster_rejects_stream_kinds(self):
        with pytest.raises(ValueError, match="shard-level"):
            FaultPlan.generate_cluster(
                seed=0, num_steps=4, num_shards=2,
                kinds=[FaultKind.NAN_FEATURE],
            )

    def test_spec_accessors_partition_the_plan(self):
        plan = FaultPlan.generate(seed=2, num_steps=5)
        split = []
        for t in range(5):
            split += plan.event_specs(t)
            split += plan.snapshot_specs(t)
            split += plan.engine_specs(t)
        split += [s for s in plan.specs if s.kind in STORAGE_FAULTS]
        assert sorted(split, key=lambda s: (s.step, s.kind.value)) == plan.specs
        assert plan.storage_failures() == 1

    def test_too_few_steps_rejected(self):
        with pytest.raises(ValueError, match="at least 2"):
            FaultPlan.generate(seed=0, num_steps=1)
        with pytest.raises(ValueError, match="per_kind"):
            FaultPlan.generate(seed=0, num_steps=4, per_kind=0)

    def test_kind_partitions_cover_every_kind(self):
        assert STREAM_FAULTS == (
            EVENT_FAULTS | SNAPSHOT_FAULTS | ENGINE_FAULTS | STORAGE_FAULTS
        )
        assert STREAM_FAULTS | SHARD_FAULTS == frozenset(FaultKind)
        assert not STREAM_FAULTS & SHARD_FAULTS


class TestPoisonFactories:
    @pytest.mark.parametrize("kind", sorted(EVENT_FAULTS, key=lambda k: k.value))
    def test_every_poison_event_is_rejected(self, graph, kind):
        """Each event-level factory yields exactly one invalid event."""
        plan = FaultPlan([], seed=0)
        snap = graph[1]
        ev = plan.poison_event(FaultSpec(kind, 1), snap)
        _, rejected = GuardedIngest().filter_events(snap, [ev], step=1)
        assert rejected == [ev]

    def test_poison_event_rejects_non_event_kind(self, graph):
        plan = FaultPlan([], seed=0)
        with pytest.raises(ValueError, match="not an event-level fault"):
            plan.poison_event(FaultSpec(FaultKind.TRUNCATED_SNAPSHOT, 1), graph[0])

    def test_corrupt_snapshot_is_caught_by_validation(self, graph):
        plan = FaultPlan([], seed=0)
        torn = plan.corrupt_snapshot(
            FaultSpec(FaultKind.TRUNCATED_SNAPSHOT, 1), graph[0]
        )
        assert snapshot_violation(torn) is not None
        # the original is untouched
        assert snapshot_violation(graph[0]) is None

    def test_corrupt_snapshot_edgeless_graph(self):
        n, dim = 4, 2
        snap = CSRSnapshot.from_edges(
            n, np.empty((0, 2), dtype=np.int64),
            features=np.zeros((n, dim), dtype=np.float32),
        )
        plan = FaultPlan([], seed=0)
        torn = plan.corrupt_snapshot(
            FaultSpec(FaultKind.TRUNCATED_SNAPSHOT, 1), snap
        )
        assert snapshot_violation(torn) is not None

    def test_corrupt_snapshot_rejects_wrong_kind(self, graph):
        plan = FaultPlan([], seed=0)
        with pytest.raises(ValueError, match="not a snapshot-level fault"):
            plan.corrupt_snapshot(FaultSpec(FaultKind.NAN_FEATURE, 1), graph[0])

    def test_violation_factory(self):
        plan = FaultPlan([], seed=0)
        v = plan.violation(FaultSpec(FaultKind.SANITIZER_VIOLATION, 3))
        assert isinstance(v, SanitizerViolation)
        assert "step3" in v.where
        assert v.component == "resilience"
        with pytest.raises(ValueError, match="not an engine-level fault"):
            plan.violation(FaultSpec(FaultKind.NAN_FEATURE, 3))


class TestFlakyHBM:
    def _inner(self):
        from repro.accel import TaGNNConfig

        return TaGNNConfig().hbm()

    def test_fails_first_n_then_delegates(self):
        inner = self._inner()
        flaky = FlakyHBM(inner, failures=2)
        for _ in range(2):
            with pytest.raises(TransientStorageError):
                flaky.cycles(words=10.0, randoms=1.0)
        assert flaky.cycles(words=10.0, randoms=1.0) == inner.cycles(
            words=10.0, randoms=1.0
        )
        assert flaky.calls == 3

    def test_zero_failures_is_transparent(self):
        inner = self._inner()
        flaky = FlakyHBM(inner, failures=0)
        assert flaky.cycles(words=5.0) == inner.cycles(words=5.0)

    def test_negative_failures_rejected(self):
        with pytest.raises(ValueError, match="failures"):
            FlakyHBM(self._inner(), failures=-1)
