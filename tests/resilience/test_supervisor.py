"""Tests for supervised streaming: degradation, breaker, chaos campaign."""

import numpy as np
import pytest

from repro.engine import ReferenceEngine, StreamingInference
from repro.graphs import load_dataset
from repro.models import make_model
from repro.resilience import (
    EVENT_FAULTS,
    CircuitOpenError,
    FaultKind,
    FaultPlan,
    FaultSpec,
    FlakyHBM,
    Incident,
    ResilientStreamingInference,
    RetryPolicy,
    run_chaos_campaign,
    with_retry,
)

WINDOW = 4
SEED = 3


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=8, seed=SEED)


def _model(graph):
    return make_model("T-GCN", graph.dim, hidden_dim=16, seed=SEED)


def _drain(supervisor, snapshots):
    outs = []
    for snap in snapshots:
        r = supervisor.push(snap.copy())
        if r is not None:
            outs.extend(r.outputs)
    r = supervisor.flush()
    if r is not None:
        outs.extend(r.outputs)
    return outs


class TestIncident:
    def test_field_validation(self):
        with pytest.raises(ValueError, match="window_index"):
            Incident(window_index=-1, step=0, kind="x", action="y")
        with pytest.raises(ValueError, match="step"):
            Incident(window_index=0, step=-1, kind="x", action="y")


class TestFaultFreeTransparency:
    def test_matches_unsupervised_stream_bit_for_bit(self, graph):
        plain = []
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        for snap in graph:
            r = stream.push(snap.copy())
            if r is not None:
                plain.extend(r.outputs)
        r = stream.flush()
        if r is not None:
            plain.extend(r.outputs)

        sup = ResilientStreamingInference(_model(graph), window_size=WINDOW)
        guarded = _drain(sup, list(graph))
        assert len(guarded) == len(plain)
        for a, b in zip(plain, guarded):
            np.testing.assert_array_equal(a, b)
        assert sup.incidents == []
        assert sup.metrics.incidents == 0
        assert sup.metrics.fallback_windows == 0


class TestGracefulDegradation:
    def test_every_window_degraded_equals_reference(self, graph):
        """Fault every window: the whole stream must still be bit-identical
        to the reference engine (skipping disabled by the fallback)."""
        model = _model(graph)
        sup = ResilientStreamingInference(
            model, window_size=WINDOW, failure_threshold=0
        )
        plan = FaultPlan([], seed=0)
        outs = []
        for t, snap in enumerate(graph):
            if (t + 1) % WINDOW == 0:  # this push completes a window
                sup.inject_fault(
                    plan.violation(FaultSpec(FaultKind.SANITIZER_VIOLATION, t))
                )
            r = sup.push(snap.copy())
            if r is not None:
                outs.extend(r.outputs)
        sup.inject_fault(
            plan.violation(
                FaultSpec(FaultKind.SANITIZER_VIOLATION, graph.num_snapshots)
            )
        )
        r = sup.flush()
        if r is not None:
            outs.extend(r.outputs)

        ref = ReferenceEngine(
            make_model("T-GCN", graph.dim, hidden_dim=16, seed=SEED),
            window_size=WINDOW,
        ).run(graph)
        assert len(outs) == len(ref.outputs)
        for a, b in zip(ref.outputs, outs):
            np.testing.assert_array_equal(a, b)
        assert sup.metrics.fallback_windows == sup.metrics.windows_processed
        assert sup.metrics.restores == sup.metrics.fallback_windows
        assert all(i.action == "degraded" for i in sup.incidents)
        assert all(i.component == "resilience" for i in sup.incidents)

    def test_stream_continues_after_single_degraded_window(self, graph):
        """A fault in one window must not perturb later fault-free windows."""
        model = _model(graph)
        sup = ResilientStreamingInference(
            model, window_size=WINDOW, enable_skipping=False,
            failure_threshold=0,
        )
        plan = FaultPlan([], seed=0)
        outs = []
        for t, snap in enumerate(graph):
            if t == WINDOW - 1:  # fault only the first window
                sup.inject_fault(
                    plan.violation(FaultSpec(FaultKind.SANITIZER_VIOLATION, t))
                )
            r = sup.push(snap.copy())
            if r is not None:
                outs.extend(r.outputs)
        r = sup.flush()
        if r is not None:
            outs.extend(r.outputs)
        ref = ReferenceEngine(
            make_model("T-GCN", graph.dim, hidden_dim=16, seed=SEED),
            window_size=WINDOW,
        ).run(graph)
        assert sup.metrics.fallback_windows == 1
        for a, b in zip(ref.outputs, outs):
            np.testing.assert_array_equal(a, b)


class TestPoisonSnapshots:
    def test_rejected_then_clean_redelivery(self, graph):
        sup = ResilientStreamingInference(_model(graph), window_size=WINDOW)
        plan = FaultPlan([], seed=0)
        torn = plan.corrupt_snapshot(
            FaultSpec(FaultKind.TRUNCATED_SNAPSHOT, 0), graph[0]
        )
        assert sup.push(torn) is None
        assert len(sup.dlq) == 1
        assert sup.metrics.dead_letter_events == 1
        assert sup.stream.pending == 0  # position did not advance
        assert sup.push(graph[0].copy()) is None  # buffered, no window yet
        assert sup.stream.pending == 1

    def test_breaker_opens_and_resets(self, graph):
        sup = ResilientStreamingInference(
            _model(graph), window_size=WINDOW, failure_threshold=2
        )
        plan = FaultPlan([], seed=0)
        for _ in range(2):
            torn = plan.corrupt_snapshot(
                FaultSpec(FaultKind.TRUNCATED_SNAPSHOT, 0), graph[0]
            )
            sup.push(torn)
        assert sup.circuit_open
        with pytest.raises(CircuitOpenError):
            sup.push(graph[0].copy())
        sup.reset_circuit()
        assert not sup.circuit_open
        assert sup.push(graph[0].copy()) is None  # accepted again


class TestChaosCampaign:
    @pytest.fixture(scope="class")
    def report_and_plan(self, graph):
        plan = FaultPlan.generate(seed=7, num_steps=graph.num_snapshots)
        report = run_chaos_campaign(
            _model(graph), graph, plan, window_size=WINDOW
        )
        return report, plan

    def test_all_outputs_released(self, graph, report_and_plan):
        report, _ = report_and_plan
        assert len(report.outputs) == graph.num_snapshots

    def test_every_fault_accounted(self, report_and_plan):
        report, plan = report_and_plan
        counts = plan.counts()
        n_event = sum(counts.get(k.value, 0) for k in EVENT_FAULTS)
        n_snap = counts.get(FaultKind.TRUNCATED_SNAPSHOT.value, 0)
        n_engine = counts.get(FaultKind.SANITIZER_VIOLATION.value, 0)
        n_storage = counts.get(FaultKind.TRANSIENT_STORAGE.value, 0)
        m = report.metrics
        assert m.dead_letter_events == n_event + n_snap
        assert len(report.dead_letters) == n_event + n_snap
        assert m.fallback_windows == n_engine
        assert m.restores == n_engine
        assert m.retries == n_storage
        assert m.incidents == n_event + n_snap + n_engine
        assert len(report.retry_delays) == n_storage

    def test_campaign_is_deterministic(self, graph, report_and_plan):
        report, plan = report_and_plan
        again = run_chaos_campaign(
            _model(graph), graph, plan, window_size=WINDOW
        )
        assert len(again.outputs) == len(report.outputs)
        for a, b in zip(report.outputs, again.outputs):
            np.testing.assert_array_equal(a, b)
        assert again.metrics.as_dict() == report.metrics.as_dict()
        assert again.retry_delays == report.retry_delays

    def test_degraded_windows_match_reference_positions(
        self, graph, report_and_plan
    ):
        """Outputs of non-degraded windows come from the skipping engine;
        the stream as a whole still covers every timestamp exactly once."""
        report, _ = report_and_plan
        assert all(
            o.shape == (graph.num_vertices, 16) for o in report.outputs
        )

    def test_summary_renders(self, report_and_plan):
        report, plan = report_and_plan
        text = report.summary()
        assert "chaos campaign report" in text
        assert f"planned faults      : {len(plan)}" in text
        assert "dead-letter reasons:" in text

    def test_heavier_plans_also_complete(self, graph):
        plan = FaultPlan.generate(
            seed=23, num_steps=graph.num_snapshots, per_kind=3
        )
        report = run_chaos_campaign(
            _model(graph), graph, plan, window_size=3
        )
        assert len(report.outputs) == graph.num_snapshots
        assert report.metrics.retries == plan.storage_failures()


class TestStorageRetrySeam:
    def test_flaky_hbm_retry_reproduces_clean_report(self, graph):
        from repro.accel import TaGNNConfig, TaGNNSimulator

        model = _model(graph)
        sim = TaGNNSimulator(TaGNNConfig(window_size=WINDOW))
        clean = sim.simulate(model, graph, "GT")
        flaky = FlakyHBM(sim.config.hbm(), failures=2)
        report, delays = with_retry(
            lambda: sim.simulate(model, graph, "GT", hbm=flaky),
            policy=RetryPolicy(max_attempts=3, seed=0),
        )
        assert len(delays) == 2
        assert report.cycles == clean.cycles
        assert report.joules == clean.joules
