"""Crash consistency when the stream is fed by batched event replay.

The checkpoint tests in test_checkpoint.py replay materialised
snapshots; here the snapshots are *reconstructed* through the vectorised
:func:`~repro.graphs.updates.apply_events` ingest path (via
:class:`~repro.resilience.ingest.GuardedIngest`), so a crash/restore
exercises checkpointing and batched ingestion together: kill the
pipeline at any event-batch boundary, rebuild the snapshot stream from
the surviving events on the other side, and the combined outputs must be
bit-identical to the uninterrupted run.
"""

import io

import numpy as np
import pytest

from repro.engine import StreamingInference
from repro.graphs import load_dataset
from repro.graphs.updates import event_stream
from repro.models import make_model
from repro.resilience import load_checkpoint, save_checkpoint
from repro.resilience.ingest import GuardedIngest

WINDOW = 3
SEED = 3


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=7, seed=SEED)


@pytest.fixture(scope="module")
def rebuilt_stream(graph):
    """Snapshots reconstructed through the batched ingest path."""
    ingest = GuardedIngest()
    snaps = [graph[0].copy()]
    for events in event_stream(graph):
        snaps.append(ingest.apply(snaps[-1], events))
    assert len(ingest.dlq) == 0  # generator streams carry no poison
    return snaps


def _model(graph):
    return make_model("T-GCN", graph.dim, hidden_dim=16, seed=SEED)


def _run(stream, snapshots):
    outs = []
    for snap in snapshots:
        r = stream.push(snap.copy())
        if r is not None:
            outs.extend(r.outputs)
    r = stream.flush()
    if r is not None:
        outs.extend(r.outputs)
    return outs


def test_rebuilt_snapshots_match_materialised(graph, rebuilt_stream):
    """Batched replay reconstructs the exact materialised snapshots."""
    for t, (got, want) in enumerate(zip(rebuilt_stream, graph)):
        np.testing.assert_array_equal(got.indptr, want.indptr, err_msg=f"t={t}")
        np.testing.assert_array_equal(got.indices, want.indices, err_msg=f"t={t}")
        np.testing.assert_array_equal(got.present, want.present, err_msg=f"t={t}")
        np.testing.assert_array_equal(got.features, want.features, err_msg=f"t={t}")


def test_crash_at_every_batch_boundary(graph, rebuilt_stream):
    expected = _run(
        StreamingInference(_model(graph), window_size=WINDOW), rebuilt_stream
    )
    for crash_at in range(len(rebuilt_stream) + 1):
        first = StreamingInference(_model(graph), window_size=WINDOW)
        early = []
        for snap in rebuilt_stream[:crash_at]:
            r = first.push(snap.copy())
            if r is not None:
                early.extend(r.outputs)
        buf = io.BytesIO()
        save_checkpoint(first, buf)
        del first  # the crash
        buf.seek(0)
        resumed = StreamingInference(_model(graph), window_size=WINDOW)
        resumed.restore_carry(load_checkpoint(buf))
        # the post-crash process re-derives its snapshots through the
        # same batched ingest path before replaying the tail
        ingest = GuardedIngest()
        tail = []
        if crash_at > 0:
            prev = rebuilt_stream[crash_at - 1]
            for events in event_stream(graph)[crash_at - 1 :]:
                prev = ingest.apply(prev, events)
                tail.append(prev)
        else:
            tail = rebuilt_stream
        late = _run(resumed, tail)
        replayed = early + late
        assert len(replayed) == len(expected)
        for a, b in zip(expected, replayed):
            np.testing.assert_array_equal(a, b, err_msg=f"crash_at={crash_at}")
