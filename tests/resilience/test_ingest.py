"""Tests for guarded ingestion: validation, dead-lettering, retry."""

import copy

import numpy as np
import pytest

from repro.graphs import (
    UpdateEvent,
    UpdateKind,
    apply_events,
    event_stream,
    load_dataset,
)
from repro.resilience import (
    DeadLetter,
    DeadLetterQueue,
    FaultKind,
    FaultPlan,
    FaultSpec,
    GuardedIngest,
    RetryExhaustedError,
    RetryPolicy,
    TransientStorageError,
    snapshot_violation,
    with_retry,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=4, seed=3)


class TestSnapshotViolation:
    def test_clean_snapshot_passes(self, graph):
        assert snapshot_violation(graph[0]) is None

    def test_wrong_type(self):
        assert "not a CSRSnapshot" in snapshot_violation(object())

    def test_truncated_indices(self, graph):
        bad = copy.copy(graph[0])
        bad.indices = bad.indices[: bad.num_edges // 2]
        assert "truncated CSR" in snapshot_violation(bad)

    def test_non_finite_features(self, graph):
        bad = graph[0].copy()
        bad.features[0, 0] = np.nan
        assert "non-finite" in snapshot_violation(bad)

    def test_out_of_range_neighbour(self, graph):
        bad = graph[0].copy()
        bad.indices[0] = bad.num_vertices
        assert "out of range" in snapshot_violation(bad)

    def test_geometry_drift(self, graph):
        snap = graph[0]
        assert "vertex count" in snapshot_violation(
            snap, num_vertices=snap.num_vertices + 1
        )
        assert "feature dimension" in snapshot_violation(snap, dim=snap.dim + 1)


class TestDeadLetterQueue:
    def test_record_and_tally(self):
        dlq = DeadLetterQueue()
        dlq.record(1, "a")
        dlq.record(2, "a")
        dlq.record(2, "b", payload=object())
        assert len(dlq) == 3
        assert dlq.by_reason() == {"a": 2, "b": 1}

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="step"):
            DeadLetter(step=-1, reason="x")


class TestGuardedIngest:
    def test_quarantines_exactly_the_poison_events(self, graph):
        plan = FaultPlan([], seed=0)
        legit = event_stream(graph)[0]
        poisons = [
            plan.poison_event(FaultSpec(kind, 1), graph[1])
            for kind in sorted(
                {FaultKind.CORRUPT_EVENT, FaultKind.NAN_FEATURE,
                 FaultKind.DUPLICATE_EVENT},
                key=lambda k: k.value,
            )
        ]
        guard = GuardedIngest()
        rebuilt = guard.apply(graph[0], legit + poisons, step=1)
        # poisons quarantined, clean remainder rebuilds the true successor
        assert len(guard.dlq) == len(poisons)
        assert guard.metrics.dead_letter_events == len(poisons)
        assert guard.metrics.incidents == len(poisons)
        assert np.array_equal(rebuilt.indices, graph[1].indices)
        np.testing.assert_array_equal(rebuilt.features, graph[1].features)

    def test_clean_batch_passes_untouched(self, graph):
        guard = GuardedIngest()
        legit = event_stream(graph)[0]
        clean, rejected = guard.filter_events(graph[0], legit, step=1)
        assert clean == legit
        assert rejected == []
        assert len(guard.dlq) == 0

    def test_survivors_apply_strictly(self, graph):
        """Whatever the guard passes must be accepted by strict replay."""
        guard = GuardedIngest()
        hostile = list(event_stream(graph)[0]) + [
            UpdateEvent(UpdateKind.EDGE_DELETE, 0, (0, 0)),
            UpdateEvent("garbage", 0),
        ]
        clean, _ = guard.filter_events(graph[0], hostile, step=1)
        apply_events(graph[0], clean)  # must not raise


class TestRetryPolicy:
    def test_delay_is_deterministic_and_grows(self):
        p = RetryPolicy(max_attempts=4, base_delay_s=0.01, factor=2.0,
                        jitter=0.1, seed=9)
        assert p.delay_s(1) == p.delay_s(1)
        assert p.delay_s(2) > p.delay_s(1)
        assert 0.01 <= p.delay_s(1) <= 0.01 * 1.1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay_s"):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError, match="factor"):
            RetryPolicy(factor=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError, match="seed"):
            RetryPolicy(seed=-1)
        with pytest.raises(ValueError, match="attempt"):
            RetryPolicy().delay_s(0)


class TestWithRetry:
    def test_first_try_success(self):
        result, delays = with_retry(lambda: 42)
        assert result == 42
        assert delays == []

    def test_recovers_after_transient_failures(self):
        from repro.engine import ExecutionMetrics

        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientStorageError("boom")
            return "ok"

        m = ExecutionMetrics()
        result, delays = with_retry(
            flaky, policy=RetryPolicy(max_attempts=3, seed=1), metrics=m
        )
        assert result == "ok"
        assert len(delays) == 2
        assert m.retries == 2

    def test_exhaustion_raises_chained(self):
        def always():
            raise TransientStorageError("down")

        with pytest.raises(RetryExhaustedError) as exc:
            with_retry(always, policy=RetryPolicy(max_attempts=2))
        assert isinstance(exc.value.__cause__, TransientStorageError)

    def test_non_retryable_propagates(self):
        def bad():
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            with_retry(bad)


class TestRetryTelemetry:
    """with_retry surfaces attempt counts and backoff into metrics."""

    def test_counters_on_success_path(self):
        from repro.engine import ExecutionMetrics

        m = ExecutionMetrics()
        result, delays = with_retry(lambda: 7, metrics=m)
        assert result == 7
        assert m.retry_attempts == 1  # one attempt, no retries
        assert m.retries == 0
        assert m.retry_backoff_ns == 0

    def test_counters_accumulate_per_failure(self):
        from repro.engine import ExecutionMetrics

        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientStorageError("blip")
            return "ok"

        m = ExecutionMetrics()
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.001, seed=5)
        _, delays = with_retry(flaky, policy=policy, metrics=m)
        assert m.retry_attempts == 3  # 2 failures + 1 success
        assert m.retries == 2
        expected_ns = sum(int(d * 1e9) for d in delays)
        assert m.retry_backoff_ns == expected_ns
        assert m.retry_backoff_ns > 0

    def test_counters_on_exhaustion(self):
        from repro.engine import ExecutionMetrics

        def always():
            raise TransientStorageError("down")

        m = ExecutionMetrics()
        with pytest.raises(RetryExhaustedError):
            with_retry(
                always, policy=RetryPolicy(max_attempts=3, seed=2), metrics=m
            )
        assert m.retry_attempts == 3
        assert m.retries == 3
        assert m.retry_backoff_ns > 0

    def test_telemetry_merges_across_streams(self):
        from repro.engine import ExecutionMetrics

        a, b = ExecutionMetrics(), ExecutionMetrics()
        with pytest.raises(RetryExhaustedError):
            with_retry(
                lambda: (_ for _ in ()).throw(TransientStorageError("x")),
                policy=RetryPolicy(max_attempts=2, seed=3),
                metrics=a,
            )
        _, _ = with_retry(lambda: 1, metrics=b)
        merged = a.merge(b)
        assert merged.retry_attempts == a.retry_attempts + b.retry_attempts
        assert merged.retry_backoff_ns == a.retry_backoff_ns
