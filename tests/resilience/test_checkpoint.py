"""Crash-consistency tests for checkpoint/replay.

The headline property: kill the stream at *any* event boundary, restore
from the checkpoint into a fresh process (fresh model objects, same
seeds), replay the rest of the feed — and the combined outputs are
bit-identical to the uninterrupted run.
"""

import io

import numpy as np
import pytest

from repro.engine import StreamingInference
from repro.graphs import load_dataset
from repro.models import make_model
from repro.resilience import (
    arrays_to_carry,
    carry_to_arrays,
    load_checkpoint,
    restore_stream,
    save_checkpoint,
)

WINDOW = 3
SEED = 3


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=7, seed=SEED)


def _model(graph, name="T-GCN"):
    return make_model(name, graph.dim, hidden_dim=16, seed=SEED)


def _run(stream, snapshots):
    outs = []
    for snap in snapshots:
        r = stream.push(snap.copy())
        if r is not None:
            outs.extend(r.outputs)
    r = stream.flush()
    if r is not None:
        outs.extend(r.outputs)
    return outs


def _uninterrupted(graph, name="T-GCN"):
    return _run(
        StreamingInference(_model(graph, name), window_size=WINDOW),
        list(graph),
    )


class TestCrashConsistency:
    @pytest.mark.parametrize("model_name", ["T-GCN", "GC-LSTM", "EvolveGCN"])
    def test_restore_at_every_event_boundary(self, graph, model_name):
        expected = _uninterrupted(graph, model_name)
        for crash_at in range(graph.num_snapshots + 1):
            first = StreamingInference(
                _model(graph, model_name), window_size=WINDOW
            )
            early = []
            for snap in list(graph)[:crash_at]:
                r = first.push(snap.copy())
                if r is not None:
                    early.extend(r.outputs)
            buf = io.BytesIO()
            save_checkpoint(first, buf)
            del first  # the crash
            buf.seek(0)
            resumed = StreamingInference(
                _model(graph, model_name), window_size=WINDOW
            )
            resumed.restore_carry(load_checkpoint(buf))
            late = _run(resumed, list(graph)[crash_at:])
            replayed = early + late
            assert len(replayed) == len(expected)
            for a, b in zip(expected, replayed):
                np.testing.assert_array_equal(
                    a, b, err_msg=f"crash_at={crash_at}"
                )

    def test_metrics_survive_the_round_trip(self, graph):
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        for snap in list(graph)[:4]:
            stream.push(snap.copy())
        buf = io.BytesIO()
        save_checkpoint(stream, buf)
        buf.seek(0)
        resumed = restore_stream(
            StreamingInference(_model(graph), window_size=WINDOW), buf
        )
        assert resumed.metrics.as_dict() == stream.metrics.as_dict()
        assert resumed.pending == stream.pending
        # the per-window trajectory is list-valued and travels through a
        # dedicated (W, 3) array — make sure it survives as tuples
        assert resumed.metrics.window_modes == stream.metrics.window_modes
        assert stream.metrics.window_modes, "4 pushes must complete a window"
        assert all(
            isinstance(t, tuple) and len(t) == 3
            for t in resumed.metrics.window_modes
        )

    def test_file_path_round_trip(self, graph, tmp_path):
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        for snap in list(graph)[:2]:
            stream.push(snap.copy())
        path = tmp_path / "carry.npz"
        save_checkpoint(stream, path)
        original = carry_to_arrays(stream.carry_state())
        restored = carry_to_arrays(load_checkpoint(path))
        assert set(original) == set(restored)
        for key in original:
            np.testing.assert_array_equal(original[key], restored[key])


class TestTamperRejection:
    def _arrays(self, graph, pushes=1):
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        for snap in list(graph)[:pushes]:
            stream.push(snap.copy())
        return carry_to_arrays(stream.carry_state())

    def test_unknown_format_rejected(self, graph):
        arrays = self._arrays(graph)
        arrays["meta/format"] = np.int64(999)
        with pytest.raises(ValueError, match="format"):
            arrays_to_carry(arrays)

    def test_unknown_state_kind_rejected(self, graph):
        arrays = self._arrays(graph, pushes=4)
        arrays["meta/state_kind"] = np.str_("quantum")
        with pytest.raises(ValueError, match="state kind"):
            arrays_to_carry(arrays)

    def test_truncated_pending_snapshot_rejected(self, graph):
        arrays = self._arrays(graph, pushes=1)  # window open: 1 pending
        assert int(arrays["meta/num_pending"]) == 1
        arrays["pending/0/indices"] = arrays["pending/0/indices"][:-3]
        with pytest.raises(ValueError, match="indptr"):
            arrays_to_carry(arrays)

    def test_window_size_mismatch_rejected(self, graph):
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        stream.push(graph[0].copy())
        carry = stream.carry_state()
        other = StreamingInference(_model(graph), window_size=WINDOW + 1)
        with pytest.raises(ValueError, match="window"):
            other.restore_carry(carry)

    def test_geometry_mismatch_rejected(self, graph):
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        for snap in list(graph)[:4]:
            stream.push(snap.copy())
        carry = stream.carry_state()
        narrow = StreamingInference(
            make_model("T-GCN", graph.dim, hidden_dim=8, seed=SEED),
            window_size=WINDOW,
        )
        with pytest.raises(ValueError):
            narrow.restore_carry(carry)


class TestCheckpointStore:
    """Retention (keep-last-K), pruning, and the chaos seams."""

    def _filled(self, graph, *, keep_last=3, directory=None):
        from repro.resilience import CheckpointStore

        store = CheckpointStore(directory, keep_last=keep_last)
        stream = StreamingInference(_model(graph), window_size=WINDOW)
        for snap in graph:
            stream.push(snap.copy())
            store.save(stream)
        return store, stream

    def test_prunes_to_keep_last(self, graph):
        store, _ = self._filled(graph, keep_last=3)
        stored = store.keys()
        assert len(stored) == 3
        # the survivors are the newest three, in order
        assert stored == sorted(stored)
        assert stored[-1].endswith(f"{graph.num_snapshots:08d}.npz")

    def test_resume_works_after_pruning(self, graph):
        """The headline retention property: pruning old checkpoints
        never breaks recovery — the newest survivor still resumes the
        stream bit-identically."""
        expected = _uninterrupted(graph)
        store, _ = self._filled(graph, keep_last=2)
        # the oldest survivor of the prune is still a valid resume point
        carry = store.load(store.keys()[0])
        resumed = StreamingInference(_model(graph), window_size=WINDOW)
        resumed.restore_carry(carry)
        start = carry["timestamp"] + len(carry["pending"])
        replayed = _run(resumed, list(graph)[start:])
        assert replayed
        for a, b in zip(replayed, expected[len(expected) - len(replayed):]):
            assert np.array_equal(a, b)

    def test_directory_backend_round_trip(self, graph, tmp_path):
        store, stream = self._filled(
            graph, keep_last=2, directory=tmp_path / "ckpts"
        )
        assert len(list((tmp_path / "ckpts").glob("ckpt-*.npz"))) == 2
        carry = store.load(store.keys()[-1])
        assert carry["timestamp"] == stream.carry_state()["timestamp"]

    def test_corrupt_latest_falls_back_to_older(self, graph):
        from repro.resilience import CorruptCheckpointError

        store, _ = self._filled(graph, keep_last=3)
        torn = store.corrupt_latest()
        with pytest.raises(CorruptCheckpointError):
            store.load(torn)
        older = store.keys()[-2]
        carry = store.load(older)  # the older checkpoint still works
        assert carry["timestamp"] >= 0

    def test_flaked_load_is_retryable(self, graph):
        from repro.engine import ExecutionMetrics
        from repro.resilience import RetryPolicy, with_retry

        store, _ = self._filled(graph)
        key = store.keys()[-1]
        store.fail_next_loads(2)
        m = ExecutionMetrics()
        carry, delays = with_retry(
            lambda: store.load(key),
            policy=RetryPolicy(max_attempts=3, seed=1),
            metrics=m,
        )
        assert carry["timestamp"] >= 0
        assert len(delays) == 2
        assert m.retries == 2

    def test_invalid_keep_last_rejected(self):
        from repro.resilience import CheckpointStore

        with pytest.raises(ValueError):
            CheckpointStore(keep_last=0)

    def test_missing_key_raises_key_error(self, graph):
        from repro.resilience import CheckpointStore

        store = CheckpointStore()
        with pytest.raises(KeyError):
            store.load("ckpt-00000001.npz")
