"""Tests for affected-subgraph extraction and the similarity score."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    VertexClass,
    classify_window,
    cosine_rows,
    extract_affected_subgraph,
    neighbor_stability_weights,
    similarity_scores,
    union_adjacency,
)
from repro.graphs import (
    CSRSnapshot,
    DynamicGraph,
    DynamicGraphSpec,
    generate_dynamic_graph,
    load_dataset,
)


@pytest.fixture(scope="module")
def window():
    return load_dataset("GT", num_snapshots=6).window(0, 4)


class TestUnionAdjacency:
    def test_union_contains_every_snapshot(self, window):
        indptr, indices = union_adjacency(window)
        for s in window:
            for v in range(0, window.num_vertices, 97):
                row = s.neighbors(v)
                urow = indices[indptr[v] : indptr[v + 1]]
                assert np.isin(row, urow).all()

    def test_union_deduplicates(self, window):
        indptr, indices = union_adjacency(window)
        for v in range(0, window.num_vertices, 131):
            row = indices[indptr[v] : indptr[v + 1]]
            assert len(np.unique(row)) == len(row)


class TestAffectedSubgraph:
    def test_coverage(self, window):
        sg = extract_affected_subgraph(window)
        assert sg.coverage_ok()

    def test_no_unaffected_inside(self, window):
        sg = extract_affected_subgraph(window)
        labels = sg.classification.labels
        assert np.all(labels[sg.vertices] != VertexClass.UNAFFECTED)

    def test_dfs_order_is_permutation_of_vertices(self, window):
        sg = extract_affected_subgraph(window)
        assert np.array_equal(np.sort(sg.dfs_order), sg.vertices)

    def test_roots_are_stable(self, window):
        sg = extract_affected_subgraph(window)
        labels = sg.classification.labels
        assert np.all(labels[sg.roots] == VertexClass.STABLE)

    def test_selection_matches_vertices(self, window):
        sg = extract_affected_subgraph(window)
        sel = sg.selection()
        assert np.array_equal(sel.sources, sg.vertices)

    def test_stats_fraction(self, window):
        sg = extract_affected_subgraph(window)
        st_ = sg.stats()
        assert 0 < st_["subgraph_fraction"] < 1
        assert st_["subgraph_vertices"] == sg.num_vertices

    def test_precomputed_classification_reused(self, window):
        c = classify_window(window)
        sg = extract_affected_subgraph(window, c)
        assert sg.classification is c

    def test_identical_window_empty_subgraph(self):
        n = 5
        f = np.ones((n, 2), dtype=np.float32)
        s0 = CSRSnapshot.from_edges(n, np.array([[0, 1]]), f)
        s1 = CSRSnapshot.from_edges(n, np.array([[0, 1]]), f.copy())
        sg = extract_affected_subgraph(DynamicGraph([s0, s1]))
        assert sg.num_vertices == 0

    @given(seed=st.integers(min_value=0, max_value=3000))
    @settings(max_examples=10, deadline=None)
    def test_coverage_property(self, seed):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="prop", num_vertices=100, num_edges=300, dim=3,
                num_snapshots=3, seed=seed,
            )
        )
        sg = extract_affected_subgraph(g)
        assert sg.coverage_ok()
        labels = sg.classification.labels
        assert np.all(labels[sg.vertices] != VertexClass.UNAFFECTED)


class TestCosineRows:
    def test_identical_rows_score_one(self):
        a = np.random.default_rng(0).standard_normal((5, 4))
        np.testing.assert_allclose(cosine_rows(a, a), 1.0, atol=1e-12)

    def test_opposite_rows_score_minus_one(self):
        a = np.random.default_rng(0).standard_normal((5, 4))
        np.testing.assert_allclose(cosine_rows(a, -a), -1.0, atol=1e-12)

    def test_orthogonal_rows_score_zero(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        np.testing.assert_allclose(cosine_rows(a, b), 0.0, atol=1e-12)

    def test_zero_norm_scores_zero(self):
        a = np.zeros((2, 3))
        b = np.ones((2, 3))
        np.testing.assert_array_equal(cosine_rows(a, b), [0.0, 0.0])

    def test_range_clipped(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((100, 8))
        b = rng.standard_normal((100, 8))
        c = cosine_rows(a, b)
        assert np.all((c >= -1.0) & (c <= 1.0))


class TestNeighborStability:
    def _pair(self):
        n = 6
        f = np.zeros((n, 2), dtype=np.float32)
        s0 = CSRSnapshot.from_edges(n, np.array([[0, 1], [0, 2], [0, 3]]), f)
        s1 = CSRSnapshot.from_edges(n, np.array([[0, 1], [0, 2], [0, 4]]), f.copy())
        return s0, s1

    def test_partial_overlap_with_all_stable(self):
        s0, s1 = self._pair()
        stable = np.ones(6, dtype=bool)
        w = neighbor_stability_weights(s0, s1, np.array([0]), stable)
        # common = {1, 2}, both stable -> weight 1
        assert w[0] == 1.0

    def test_unstable_common_neighbors_reduce_weight(self):
        s0, s1 = self._pair()
        stable = np.ones(6, dtype=bool)
        stable[1] = False
        w = neighbor_stability_weights(s0, s1, np.array([0]), stable)
        assert w[0] == 0.5  # one of two common neighbours stable

    def test_isolated_both_sides_weight_one(self):
        s0, s1 = self._pair()
        w = neighbor_stability_weights(s0, s1, np.array([5]), np.ones(6, bool))
        assert w[0] == 1.0

    def test_disjoint_neighborhoods_weight_zero(self):
        n = 4
        f = np.zeros((n, 1), dtype=np.float32)
        s0 = CSRSnapshot.from_edges(n, np.array([[0, 1]]), f)
        s1 = CSRSnapshot.from_edges(n, np.array([[0, 2]]), f.copy())
        w = neighbor_stability_weights(s0, s1, np.array([0]), np.ones(n, bool))
        assert w[0] == 0.0


class TestSimilarityScores:
    def test_identical_everything_scores_one(self, window):
        """Unaffected vertices (all common neighbours stable) with
        identical GNN outputs on an identical snapshot score exactly 1."""
        rng = np.random.default_rng(0)
        z = rng.standard_normal((window.num_vertices, 8))
        c = classify_window(window.window(0, 2))
        verts = np.flatnonzero(c.unaffected_mask & window[0].present)[:50]
        theta = similarity_scores(
            z, z, window[0], window[0], verts, c.feature_stable_mask
        )
        np.testing.assert_allclose(theta, 1.0, atol=1e-9)

    def test_range(self, window):
        rng = np.random.default_rng(0)
        z0 = rng.standard_normal((window.num_vertices, 8))
        z1 = rng.standard_normal((window.num_vertices, 8))
        stable = classify_window(window.window(0, 2)).feature_stable_mask
        verts = np.arange(0, window.num_vertices, 7)
        theta = similarity_scores(z0, z1, window[0], window[1], verts, stable)
        assert np.all((theta >= -1.0) & (theta <= 1.0))

    def test_feature_divergence_lowers_score(self, window):
        rng = np.random.default_rng(0)
        z0 = rng.standard_normal((window.num_vertices, 8))
        z1 = z0 + 0.05 * rng.standard_normal(z0.shape)
        z1_far = -z0
        stable = classify_window(window.window(0, 2)).feature_stable_mask
        verts = np.arange(0, window.num_vertices, 13)
        near = similarity_scores(z0, z1, window[0], window[1], verts, stable)
        far = similarity_scores(z0, z1_far, window[0], window[1], verts, stable)
        assert near.mean() > far.mean()
