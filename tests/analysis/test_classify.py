"""Tests for window vertex classification, including a brute-force
reference implementation on small random graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import VertexClass, classify_window
from repro.graphs import (
    CSRSnapshot,
    DynamicGraph,
    DynamicGraphSpec,
    generate_dynamic_graph,
    load_dataset,
)


def build_window(edge_lists, features_list, present_list=None, n=6, d=2):
    snaps = []
    for i, (edges, feats) in enumerate(zip(edge_lists, features_list)):
        present = None if present_list is None else present_list[i]
        snaps.append(
            CSRSnapshot.from_edges(
                n, np.array(edges).reshape(-1, 2), feats, present=present
            )
        )
    return DynamicGraph(snaps)


@pytest.fixture
def base_feats():
    return np.arange(12, dtype=np.float32).reshape(6, 2)


class TestClassifyHandCases:
    def test_identical_window_all_unaffected(self, base_feats):
        w = build_window(
            [[[0, 1], [1, 2]], [[0, 1], [1, 2]]], [base_feats, base_feats.copy()]
        )
        c = classify_window(w)
        assert c.unaffected_ratio() == 1.0

    def test_feature_change_is_affected(self, base_feats):
        f1 = base_feats.copy()
        f1[3] = 99.0
        w = build_window([[[0, 1], [3, 4]], [[0, 1], [3, 4]]], [base_feats, f1])
        c = classify_window(w)
        assert c.labels[3] == VertexClass.AFFECTED
        # 4 is topologically unchanged but its neighbour 3's feature
        # changed -> stable, not unaffected
        assert c.labels[4] == VertexClass.STABLE
        assert c.labels[0] == VertexClass.UNAFFECTED

    def test_edge_change_makes_stable(self, base_feats):
        w = build_window(
            [[[0, 1], [2, 3]], [[0, 1], [2, 4]]],
            [base_feats, base_feats.copy()],
        )
        c = classify_window(w)
        # 2's neighbours changed (3 -> 4), feature unchanged -> stable
        assert c.labels[2] == VertexClass.STABLE
        assert c.labels[3] == VertexClass.STABLE
        assert c.labels[4] == VertexClass.STABLE
        assert c.labels[0] == VertexClass.UNAFFECTED
        assert c.labels[1] == VertexClass.UNAFFECTED

    def test_departure_is_affected(self, base_feats):
        p0 = np.ones(6, dtype=bool)
        p1 = p0.copy()
        p1[5] = False
        f1 = base_feats.copy()
        f1[5] = 0.0  # canonical absent row
        w = build_window(
            [[[0, 1]], [[0, 1]]], [base_feats, f1], present_list=[p0, p1]
        )
        c = classify_window(w)
        assert c.labels[5] == VertexClass.AFFECTED

    def test_always_absent_is_unaffected(self, base_feats):
        p = np.ones(6, dtype=bool)
        p[5] = False
        f = base_feats.copy()
        f[5] = 0.0
        w = build_window([[[0, 1]], [[0, 1]]], [f, f.copy()], present_list=[p, p.copy()])
        c = classify_window(w)
        assert c.labels[5] == VertexClass.UNAFFECTED

    def test_single_snapshot_all_unaffected(self, base_feats):
        w = build_window([[[0, 1]]], [base_feats])
        assert classify_window(w).unaffected_ratio() == 1.0

    def test_paper_figure4_example(self):
        """Figure 4(b): v0..v3 unaffected, v4 stable, v5..v7 affected."""
        n, d = 8, 2
        f = np.arange(16, dtype=np.float32).reshape(8, 2)
        # v4 keeps its feature but its neighbourhood churns between
        # v5/v6; v5, v6, v7 change features.
        f_t1 = f.copy(); f_t1[5] += 1; f_t1[7] += 1
        f_t2 = f_t1.copy(); f_t2[6] += 1; f_t2[7] += 1
        base = [[0, 1], [1, 2], [2, 3], [0, 3]]
        e0 = base + [[4, 5], [4, 6], [5, 7]]
        e1 = base + [[4, 5], [5, 7]]
        e2 = base + [[4, 6], [6, 7]]
        w = build_window([e0, e1, e2], [f, f_t1, f_t2], n=n)
        c = classify_window(w)
        for v in (0, 1, 2, 3):
            assert c.labels[v] == VertexClass.UNAFFECTED, v
        assert c.labels[4] == VertexClass.STABLE
        for v in (5, 6, 7):
            assert c.labels[v] == VertexClass.AFFECTED, v

    def test_atol_tolerance(self, base_feats):
        f1 = base_feats.copy()
        f1[0] += 1e-6
        w = build_window([[[0, 1]], [[0, 1]]], [base_feats, f1])
        assert classify_window(w).labels[0] == VertexClass.AFFECTED
        assert classify_window(w, atol=1e-3).labels[0] == VertexClass.UNAFFECTED


class TestClassificationAPI:
    def test_masks_partition(self):
        g = load_dataset("GT", num_snapshots=4)
        c = classify_window(g.window(0, 4))
        total = c.unaffected_mask.sum() + c.stable_mask.sum() + c.affected_mask.sum()
        assert total == g.num_vertices

    def test_counts_consistent(self):
        g = load_dataset("GT", num_snapshots=3)
        c = classify_window(g.window(0, 3))
        counts = c.counts()
        assert counts["unaffected"] == int(c.unaffected_mask.sum())
        assert sum(counts.values()) == g.num_vertices

    def test_feature_stable_is_union(self):
        g = load_dataset("GT", num_snapshots=3)
        c = classify_window(g.window(0, 3))
        np.testing.assert_array_equal(
            c.feature_stable_mask, c.unaffected_mask | c.stable_mask
        )

    def test_recompute_vertices_sorted(self):
        g = load_dataset("GT", num_snapshots=3)
        c = classify_window(g.window(0, 3))
        rv = c.recompute_vertices()
        assert np.all(np.diff(rv) > 0)

    def test_fig3a_bands(self):
        """The generator + classifier must land in the paper's measured
        bands: 27.3-45.3% unaffected over 3 snapshots, 10.6-24.4% over 4."""
        for name in ("HP", "GT", "ML", "EP", "FK"):
            g = load_dataset(name, num_snapshots=6)
            r3 = classify_window(g.window(0, 3)).unaffected_ratio()
            r4 = classify_window(g.window(0, 4)).unaffected_ratio()
            assert 0.25 <= r3 <= 0.48, (name, r3)
            assert 0.09 <= r4 <= 0.27, (name, r4)

    def test_monotone_in_window_size(self):
        """A longer window can only shrink the unaffected set."""
        g = load_dataset("FK", num_snapshots=6)
        ratios = [
            classify_window(g.window(0, k)).unaffected_ratio() for k in (2, 3, 4, 5)
        ]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))


def brute_force_classify(window):
    """O(n * K * deg) reference implementation straight from the paper's
    definitions."""
    n = window.num_vertices
    snaps = window.snapshots
    labels = np.empty(n, dtype=np.int64)
    for v in range(n):
        present = [s.present[v] for s in snaps]
        if not any(present):
            labels[v] = VertexClass.UNAFFECTED
            continue
        if not all(present):
            labels[v] = VertexClass.AFFECTED
            continue
        feat_same = all(
            np.array_equal(snaps[0].features[v], s.features[v]) for s in snaps[1:]
        )
        if not feat_same:
            labels[v] = VertexClass.AFFECTED
            continue
        rows_same = all(
            np.array_equal(snaps[0].neighbors(v), s.neighbors(v)) for s in snaps[1:]
        )
        neigh_feat_same = rows_same and all(
            np.array_equal(snaps[0].features[u], s.features[u])
            for u in snaps[0].neighbors(v).tolist()
            for s in snaps[1:]
        )
        labels[v] = (
            VertexClass.UNAFFECTED if rows_same and neigh_feat_same
            else VertexClass.STABLE
        )
    return labels


class TestAgainstBruteForce:
    @given(seed=st.integers(min_value=0, max_value=5000),
           k=st.integers(min_value=2, max_value=4))
    @settings(max_examples=15, deadline=None)
    def test_matches_reference(self, seed, k):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="prop", num_vertices=100, num_edges=300, dim=3,
                num_snapshots=k, seed=seed,
            )
        )
        fast = classify_window(g).labels
        slow = brute_force_classify(g)
        np.testing.assert_array_equal(fast, slow)
