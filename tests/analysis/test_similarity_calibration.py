"""Tests for the similarity-score calibration (sharpness) and theta
behaviour under controlled perturbations."""

import numpy as np
import pytest

from repro.analysis.similarity import COSINE_SHARPNESS, cosine_rows, similarity_scores
from repro.graphs import CSRSnapshot


def pair_snapshots(n=6, d=4):
    f = np.zeros((n, d), dtype=np.float32)
    edges = np.array([[0, 1], [0, 2], [1, 2], [3, 4]])
    s0 = CSRSnapshot.from_edges(n, edges, f)
    s1 = CSRSnapshot.from_edges(n, edges, f.copy())
    return s0, s1


class TestSharpness:
    def test_default_constant(self):
        assert COSINE_SHARPNESS == pytest.approx(10.0 / 3.0)

    def test_sharpness_one_is_raw_cosine(self):
        s0, s1 = pair_snapshots()
        rng = np.random.default_rng(0)
        z0 = rng.standard_normal((6, 4))
        z1 = z0 + 0.1 * rng.standard_normal((6, 4))
        verts = np.array([3])  # one common neighbour (v4), all stable
        stable = np.ones(6, dtype=bool)
        theta = similarity_scores(z0, z1, s0, s1, verts, stable, sharpness=1.0)
        raw = cosine_rows(z0[verts], z1[verts])
        np.testing.assert_allclose(theta, raw, atol=1e-12)

    def test_sharpness_stretches_down(self):
        """cos = 0.9 maps to 1 - s*(0.1); with the default s it lands
        well below 0.9, spreading the packed-near-1 distribution."""
        s0, s1 = pair_snapshots()
        z0 = np.zeros((6, 4)); z0[3] = [1, 0, 0, 0]
        # construct a vector at cos ~0.9 to z0[3]
        z1 = np.zeros((6, 4)); z1[3] = [0.9, np.sqrt(1 - 0.81), 0, 0]
        verts = np.array([3])
        stable = np.ones(6, dtype=bool)
        theta_raw = similarity_scores(z0, z1, s0, s1, verts, stable, sharpness=1.0)
        theta_cal = similarity_scores(z0, z1, s0, s1, verts, stable)
        assert theta_raw[0] == pytest.approx(0.9, abs=1e-6)
        assert theta_cal[0] == pytest.approx(1 - COSINE_SHARPNESS * 0.1, abs=1e-6)
        assert theta_cal[0] < theta_raw[0]

    def test_perfect_similarity_unchanged(self):
        """cos = 1 stays at 1 under any sharpness."""
        s0, s1 = pair_snapshots()
        rng = np.random.default_rng(1)
        z = rng.standard_normal((6, 4))
        verts = np.array([3])
        stable = np.ones(6, dtype=bool)
        for s in (1.0, 10 / 3, 20.0):
            theta = similarity_scores(z, z, s0, s1, verts, stable, sharpness=s)
            assert theta[0] == pytest.approx(1.0)

    def test_clipped_at_minus_one(self):
        s0, s1 = pair_snapshots()
        z0 = np.zeros((6, 4)); z0[3] = [1, 0, 0, 0]
        z1 = np.zeros((6, 4)); z1[3] = [-1, 0, 0, 0]
        verts = np.array([3])
        theta = similarity_scores(z0, z1, s0, s1, verts, np.ones(6, bool),
                                  sharpness=20.0)
        assert theta[0] >= -1.0


class TestThetaTopologyCoupling:
    def test_unstable_neighbors_suppress_high_cosine(self):
        """Even identical GNN outputs cannot earn a high theta when the
        common neighbours are feature-unstable — the topology factor the
        prior RNN-approximation methods lack."""
        s0, s1 = pair_snapshots()
        rng = np.random.default_rng(2)
        z = rng.standard_normal((6, 4))
        verts = np.array([0])  # neighbours {1, 2}
        all_stable = np.ones(6, dtype=bool)
        none_stable = np.zeros(6, dtype=bool)
        hi = similarity_scores(z, z, s0, s1, verts, all_stable)
        lo = similarity_scores(z, z, s0, s1, verts, none_stable)
        assert hi[0] == pytest.approx(1.0)
        assert lo[0] == 0.0
