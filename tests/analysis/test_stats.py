"""Tests for the temporal-statistics module."""

import numpy as np
import pytest

from repro.analysis import (
    churn_timeline,
    degree_evolution,
    edge_jaccard_matrix,
    temporal_profile,
)
from repro.graphs import load_dataset


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=6)


class TestJaccard:
    def test_shape_and_diagonal(self, graph):
        j = edge_jaccard_matrix(graph)
        assert j.shape == (6, 6)
        np.testing.assert_allclose(np.diag(j), 1.0)

    def test_symmetric(self, graph):
        j = edge_jaccard_matrix(graph)
        np.testing.assert_allclose(j, j.T)

    def test_range(self, graph):
        j = edge_jaccard_matrix(graph)
        assert np.all((j >= 0) & (j <= 1))

    def test_decays_with_distance(self, graph):
        """Adjacent snapshots overlap more than distant ones."""
        j = edge_jaccard_matrix(graph)
        assert j[0, 1] > j[0, 5]

    def test_adjacent_overlap_high(self, graph):
        """The paper's premise: consecutive snapshots are mostly shared."""
        j = edge_jaccard_matrix(graph)
        adj = [j[i, i + 1] for i in range(5)]
        assert min(adj) > 0.7


class TestChurnAndDegrees:
    def test_timeline_lengths(self, graph):
        c = churn_timeline(graph)
        for k, v in c.items():
            assert len(v) == 5, k

    def test_churn_nonzero(self, graph):
        c = churn_timeline(graph)
        assert (c["edges_added"] + c["edges_removed"]).min() > 0

    def test_degree_evolution(self, graph):
        d = degree_evolution(graph)
        assert len(d["mean"]) == 6
        assert np.all(d["max"] >= d["p99"])
        assert np.all(d["p99"] >= d["p50"])


class TestProfile:
    def test_profile_keys(self, graph):
        p = temporal_profile(graph)
        assert p["num_snapshots"] == 6
        assert 0 < p["adjacent_edge_jaccard_mean"] <= 1
        assert set(p["unaffected_ratio_by_window"]) == {2, 3, 4}
        assert p["unaffected_ratio_by_window"][2] > (
            p["unaffected_ratio_by_window"][4]
        )

    def test_single_snapshot_profile(self):
        g = load_dataset("GT", num_snapshots=1)
        p = temporal_profile(g, window=1)
        assert p["adjacent_edge_jaccard_mean"] == 1.0
        assert p["edges_changed_per_step_mean"] == 0.0
