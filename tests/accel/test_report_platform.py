"""Tests for SimulationReport and the generic PlatformModel contract."""

import pytest

from repro.accel import PlatformModel, SimulationReport
from repro.bench import get_graph, get_model, get_reference, get_workload
from repro.hardware import FPGA_U280


def make_report(seconds=1.0, joules=2.0, **kw):
    return SimulationReport(
        platform="X", model="m", dataset="d",
        cycles=seconds * 1e6, seconds=seconds, joules=joules, **kw
    )


class TestSimulationReport:
    def test_watts(self):
        assert make_report(seconds=2.0, joules=10.0).watts == 5.0
        assert make_report(seconds=0.0).watts == 0.0

    def test_speedup_and_energy(self):
        fast = make_report(seconds=1.0, joules=1.0)
        slow = make_report(seconds=10.0, joules=5.0)
        assert fast.speedup_over(slow) == 10.0
        assert fast.energy_saving_over(slow) == 5.0

    def test_zero_division_guards(self):
        zero = make_report(seconds=0.0, joules=0.0)
        other = make_report(seconds=1.0, joules=1.0)
        assert zero.speedup_over(other) == float("inf")
        assert zero.energy_saving_over(other) == float("inf")

    def test_breakdown_fractions(self):
        r = make_report(breakdown={"a": 3.0, "b": 1.0})
        f = r.breakdown_fractions()
        assert f["a"] == pytest.approx(0.75)
        assert sum(f.values()) == pytest.approx(1.0)
        assert make_report(breakdown={"a": 0.0}).breakdown_fractions() == {"a": 0.0}


class TestPlatformModelValidation:
    def _base(self, **kw):
        defaults = dict(
            name="p", frequency_mhz=100.0, macs=64, mac_efficiency=0.9,
            bandwidth_gbs=10.0, outstanding_requests=4.0, phase_overlap=0.5,
            energy=FPGA_U280,
        )
        defaults.update(kw)
        return PlatformModel(**defaults)

    def test_valid(self):
        assert self._base().name == "p"

    def test_phase_overlap_range(self):
        with pytest.raises(ValueError):
            self._base(phase_overlap=1.5)

    def test_redundancy_range(self):
        with pytest.raises(ValueError):
            self._base(redundancy_elimination=-0.1)

    def test_utilization_range(self):
        with pytest.raises(ValueError):
            self._base(compute_utilization=0.0)


class TestPlatformSimulation:
    def test_redundancy_elimination_reduces_time_and_energy(self):
        g = get_graph("GT")
        m = get_model("T-GCN", "GT")
        metrics = get_reference("T-GCN", "GT").metrics
        wl = get_workload("T-GCN", "GT")
        base = dict(
            name="x", frequency_mhz=1000.0, macs=4096, mac_efficiency=0.8,
            bandwidth_gbs=256.0, outstanding_requests=8.0, phase_overlap=0.5,
            energy=FPGA_U280,
        )
        plain = PlatformModel(**base).simulate(m, g, "GT", metrics=metrics, workload=wl)
        dedup = PlatformModel(**base, redundancy_elimination=0.5).simulate(
            m, g, "GT", metrics=metrics, workload=wl
        )
        assert dedup.seconds < plain.seconds
        assert dedup.joules < plain.joules
        assert dedup.extra["words"] < plain.extra["words"]

    def test_overhead_adds_linear_time(self):
        g = get_graph("GT")
        m = get_model("T-GCN", "GT")
        metrics = get_reference("T-GCN", "GT").metrics
        wl = get_workload("T-GCN", "GT")
        base = dict(
            name="x", frequency_mhz=1000.0, macs=4096, mac_efficiency=0.8,
            bandwidth_gbs=256.0, outstanding_requests=8.0, phase_overlap=0.5,
            energy=FPGA_U280,
        )
        no_ovh = PlatformModel(**base).simulate(m, g, "GT", metrics=metrics, workload=wl)
        with_ovh = PlatformModel(**base, snapshot_overhead_us=100.0).simulate(
            m, g, "GT", metrics=metrics, workload=wl
        )
        expected = 100e-6 * metrics.snapshots_processed
        assert with_ovh.seconds - no_ovh.seconds == pytest.approx(expected)

    def test_full_overlap_takes_max(self):
        g = get_graph("GT")
        m = get_model("T-GCN", "GT")
        metrics = get_reference("T-GCN", "GT").metrics
        wl = get_workload("T-GCN", "GT")
        base = dict(
            name="x", frequency_mhz=1000.0, macs=4096, mac_efficiency=0.8,
            bandwidth_gbs=256.0, outstanding_requests=8.0, energy=FPGA_U280,
        )
        serial = PlatformModel(**base, phase_overlap=0.0).simulate(
            m, g, "GT", metrics=metrics, workload=wl
        )
        overlapped = PlatformModel(**base, phase_overlap=1.0).simulate(
            m, g, "GT", metrics=metrics, workload=wl
        )
        bd = serial.breakdown
        assert serial.seconds == pytest.approx(bd["memory_s"] + bd["compute_s"])
        assert overlapped.seconds == pytest.approx(
            max(bd["memory_s"], bd["compute_s"])
        )


class TestEnergyBreakdown:
    def test_platform_energy_components_sum(self):
        g = get_graph("GT")
        m = get_model("T-GCN", "GT")
        metrics = get_reference("T-GCN", "GT").metrics
        wl = get_workload("T-GCN", "GT")
        from repro.accel import DGL_CPU

        r = DGL_CPU.simulate(m, g, "GT", metrics=metrics, workload=wl)
        bd = r.extra["energy_breakdown"]
        assert set(bd) == {"compute_j", "sram_j", "dram_j", "static_j"}
        assert sum(bd.values()) == pytest.approx(r.joules)
        # a CPU run is dominated by static/package power
        assert bd["static_j"] > 0.5 * r.joules

    def test_tagnn_energy_components_sum(self):
        from repro.bench import get_tagnn_report

        r = get_tagnn_report("T-GCN", "GT")
        bd = r.extra["energy_breakdown"]
        assert sum(bd.values()) == pytest.approx(r.joules)
        assert all(v >= 0 for v in bd.values())
