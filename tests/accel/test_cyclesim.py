"""Tests for the event-driven cycle simulator and its agreement with the
analytic model."""

import pytest

from repro.accel import (
    CycleSimulator,
    TaGNNConfig,
    TaGNNSimulator,
    Task,
    tasks_from_workload,
)
from repro.bench import get_concurrent, get_graph, get_model, get_workload


def uniform_tasks(n=200, gnn=1000.0, rnn=100.0, load=10.0):
    return [Task(vertex=i, gnn_macs=gnn, rnn_macs=rnn, load_words=load)
            for i in range(n)]


class TestCycleSimulatorCore:
    def test_empty(self):
        r = CycleSimulator().run([])
        assert r.total_cycles == 0.0 and r.tasks == 0

    def test_deterministic(self):
        tasks = uniform_tasks()
        a = CycleSimulator().run(tasks)
        b = CycleSimulator().run(tasks)
        assert a.total_cycles == b.total_cycles
        assert a.summary() == b.summary()

    def test_more_work_more_cycles(self):
        small = CycleSimulator().run(uniform_tasks(n=100))
        big = CycleSimulator().run(uniform_tasks(n=1000))
        assert big.total_cycles > small.total_cycles

    def test_utilizations_bounded(self):
        r = CycleSimulator().run(uniform_tasks(n=500))
        assert 0.0 < r.dcu_utilization <= 1.0
        assert 0.0 <= r.aru_utilization <= 1.0

    def test_tiny_fifo_causes_backpressure(self):
        """A compute-bound stream with a 1-slot FIFO must stall the
        loader; a large FIFO must not."""
        tasks = uniform_tasks(n=400, gnn=50_000.0, load=1.0)
        tight = CycleSimulator(fifo_capacity=1).run(tasks)
        roomy = CycleSimulator(fifo_capacity=100_000).run(tasks)
        assert tight.loader_stall_cycles > 0
        assert roomy.loader_stall_cycles == 0.0
        assert tight.total_cycles >= roomy.total_cycles

    def test_loader_bound_stream(self):
        """Huge load words, trivial compute: total time tracks the
        loader's serialisation."""
        tasks = uniform_tasks(n=100, gnn=1.0, rnn=0.0, load=3200.0)
        sim = CycleSimulator(loader_words_per_cycle=32.0)
        r = sim.run(tasks)
        assert r.total_cycles == pytest.approx(100 * 100.0, rel=0.05)
        assert r.dcu_utilization < 0.05

    def test_invalid_fifo(self):
        with pytest.raises(ValueError):
            CycleSimulator(fifo_capacity=0)

    def test_more_dcus_faster_when_compute_bound(self):
        tasks = uniform_tasks(n=800, gnn=20_000.0, load=1.0)
        few = CycleSimulator(TaGNNConfig().with_dcus(4)).run(tasks)
        many = CycleSimulator(TaGNNConfig().with_dcus(16)).run(tasks)
        assert many.total_cycles < few.total_cycles


class TestWorkloadTasks:
    def test_task_counts(self):
        wl = get_workload("T-GCN", "GT")
        tasks = tasks_from_workload(wl)
        expected = sum(w.subgraph_vertices + w.unaffected for w in wl.windows)
        assert len(tasks) == expected

    def test_skip_ratio_reduces_rnn_work(self):
        wl = get_workload("T-GCN", "GT")
        full = tasks_from_workload(wl, skip_ratio=0.0)
        skipped = tasks_from_workload(wl, skip_ratio=0.8)
        assert sum(t.rnn_macs for t in skipped) < sum(t.rnn_macs for t in full)

    def test_skip_ratio_validated(self):
        wl = get_workload("T-GCN", "GT")
        with pytest.raises(ValueError):
            tasks_from_workload(wl, skip_ratio=1.5)

    def test_unaffected_tasks_have_no_rnn(self):
        wl = get_workload("T-GCN", "GT")
        tasks = tasks_from_workload(wl)
        assert any(t.rnn_macs == 0.0 for t in tasks)


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("cell", [("T-GCN", "GT"), ("GC-LSTM", "ML")])
    def test_within_band(self, cell):
        """The two independent models must agree on total cycles within a
        factor of 2.5 in both directions."""
        m, d = cell
        wl = get_workload(m, d)
        skip = get_concurrent(m, d).metrics.skip_ratio()
        ev = CycleSimulator().run_workload(wl, skip_ratio=skip)
        analytic = TaGNNSimulator().simulate(
            get_model(m, d), get_graph(d), d, workload=wl
        )
        ratio = ev.total_cycles / analytic.cycles
        assert 0.4 < ratio < 2.5, ratio

    def test_skipping_speeds_up_event_model(self):
        """ADSC's effect must be visible in the event model too."""
        wl = get_workload("T-GCN", "GT")
        with_skip = CycleSimulator().run_workload(wl, skip_ratio=0.7)
        without = CycleSimulator().run_workload(wl, skip_ratio=0.0)
        assert with_skip.total_cycles < without.total_cycles
