"""Tests for the TaGNN-S software platform model (Fig. 8's subject)."""

import pytest

from repro.accel import TAGNN_S, PIPAD, TaGNNSoftware
from repro.bench import (
    get_concurrent,
    get_graph,
    get_model,
    get_reference,
    get_workload,
)


@pytest.fixture(scope="module")
def reports():
    g = get_graph("GT")
    m = get_model("T-GCN", "GT")
    wl = get_workload("T-GCN", "GT")
    ts = TAGNN_S.simulate(
        m, g, "GT", engine_result=get_concurrent("T-GCN", "GT"), workload=wl
    )
    pipad = PIPAD.simulate(
        m, g, "GT", metrics=get_reference("T-GCN", "GT").metrics, workload=wl
    )
    return ts, pipad


class TestTaGNNSoftware:
    def test_report_shape(self, reports):
        ts, _ = reports
        assert ts.platform == "TaGNN-S"
        assert set(ts.breakdown) == {"memory_s", "compute_s", "overhead_s"}
        assert ts.seconds > 0 and ts.joules > 0

    def test_overhead_dominant_or_large(self, reports):
        """Section 3.2: the topology analysis is expensive on general-
        purpose hardware — 40-62% of TaGNN-S's runtime in the paper."""
        ts, _ = reports
        frac = ts.breakdown["overhead_s"] / ts.seconds
        assert frac > 0.25

    def test_memory_time_beats_pipad(self, reports):
        """Fig. 8(a): PiPAD's memory-access time is a multiple of
        TaGNN-S's (paper: 2.7-4.1x)."""
        ts, pipad = reports
        ratio = pipad.breakdown["memory_s"] / ts.breakdown["memory_s"]
        assert ratio > 1.5

    def test_runs_engine_when_not_given(self):
        g = get_graph("GT")
        m = get_model("T-GCN", "GT")
        rep = TaGNNSoftware().simulate(m, g, "GT")
        assert rep.seconds > 0
        assert rep.metrics is not None

    def test_custom_parameters(self):
        g = get_graph("GT")
        m = get_model("T-GCN", "GT")
        slow_scalar = TaGNNSoftware(scalar_gops=0.05)
        fast_scalar = TaGNNSoftware(scalar_gops=50.0)
        r_slow = slow_scalar.simulate(
            m, g, "GT", engine_result=get_concurrent("T-GCN", "GT"),
            workload=get_workload("T-GCN", "GT"),
        )
        r_fast = fast_scalar.simulate(
            m, g, "GT", engine_result=get_concurrent("T-GCN", "GT"),
            workload=get_workload("T-GCN", "GT"),
        )
        assert r_slow.breakdown["overhead_s"] > r_fast.breakdown["overhead_s"]
        assert r_slow.seconds > r_fast.seconds
