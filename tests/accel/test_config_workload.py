"""Tests for the accelerator configuration and workload analysis."""

import numpy as np
import pytest

from repro.accel import TaGNNConfig, WorkloadStats
from repro.graphs import load_dataset
from repro.models import make_model


class TestConfig:
    def test_table4_defaults(self):
        cfg = TaGNNConfig()
        assert cfg.total_macs == 4096  # 16 DCUs x 256 CPEs
        assert cfg.total_apes == 16 * 128
        assert cfg.frequency_mhz == 225.0
        assert cfg.window_size == 4

    def test_memory_subsystem_sizes(self):
        ms = TaGNNConfig().memory_subsystem()
        assert ms.buffers["feature_memory"].capacity_bytes == 2 * 1024 * 1024

    def test_with_dcus(self):
        cfg = TaGNNConfig().with_dcus(8)
        assert cfg.num_dcus == 8
        assert cfg.total_macs == 8 * 256

    def test_with_macs(self):
        cfg = TaGNNConfig().with_macs(8192)
        assert cfg.total_macs == 8192
        with pytest.raises(ValueError):
            TaGNNConfig().with_macs(1000)  # not divisible by 16

    def test_with_window(self):
        assert TaGNNConfig().with_window(6).window_size == 6

    def test_ablated(self):
        cfg = TaGNNConfig().ablated(oadl=False)
        assert not cfg.enable_oadl and cfg.enable_adsc
        cfg2 = TaGNNConfig().ablated(adsc=False, dispatcher=False)
        assert cfg2.enable_oadl and not cfg2.enable_adsc
        assert not cfg2.enable_dispatcher

    def test_validation(self):
        with pytest.raises(ValueError):
            TaGNNConfig(num_dcus=0)
        with pytest.raises(ValueError):
            TaGNNConfig(window_size=0)
        with pytest.raises(ValueError):
            TaGNNConfig(frequency_mhz=-1)


class TestWorkloadStats:
    @pytest.fixture(scope="class")
    def workload(self):
        g = load_dataset("GT", num_snapshots=8)
        model = make_model("T-GCN", g.dim, 32, seed=3)
        return WorkloadStats.analyze(g, model, 4)

    def test_window_count(self, workload):
        assert len(workload.windows) == 2

    def test_window_stats_consistent(self, workload):
        for w in workload.windows:
            assert w.unaffected + w.stable + w.affected == workload.graph.num_vertices
            assert w.subgraph_vertices <= w.stable + w.affected
            assert w.subgraph_edges <= w.edges_total

    def test_random_access_orders(self, workload):
        """O-CSR's contiguous layout must need far fewer latency-bound
        accesses than per-edge CSR gathering."""
        assert workload.random_accesses_ocsr() < workload.random_accesses_csr() / 5

    def test_scored_vertices_positive(self, workload):
        assert 0 < workload.scored_vertices()

    def test_avg_degree(self, workload):
        assert 5 < workload.avg_degree() < 100

    def test_load_imbalance_balanced_better(self, workload):
        bal = workload.load_imbalance(16, balanced=True)
        unbal = workload.load_imbalance(16, balanced=False)
        assert 1.0 <= bal < unbal

    def test_load_imbalance_single_unit(self, workload):
        assert workload.load_imbalance(1, balanced=True) == 1.0
