"""Tests for the GSPM snapshot-partition module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel import GSPM, PartitionStrategy, TaGNNConfig, TaGNNSimulator
from repro.analysis import extract_affected_subgraph
from repro.bench import get_graph, get_model, get_workload
from repro.graphs import DynamicGraphSpec, generate_dynamic_graph, load_dataset


@pytest.fixture(scope="module")
def window():
    return load_dataset("GT", num_snapshots=4).window(0, 4)


@pytest.fixture(scope="module")
def gspm(window):
    # budget small enough to force several partitions
    return GSPM(window, budget_words=200 * (window.dim + 2))


class TestGSPMBasics:
    def test_budget_validation(self, window):
        with pytest.raises(ValueError):
            GSPM(window, budget_words=0)

    @pytest.mark.parametrize("strategy", list(PartitionStrategy))
    def test_plan_covers_and_respects_budget(self, gspm, window, strategy):
        plan = gspm.plan(strategy)
        present = np.zeros(window.num_vertices, dtype=bool)
        for s in window:
            present |= s.present
        assert plan.covers(np.flatnonzero(present))
        assert plan.respects_budget()
        assert plan.num_partitions >= 2  # budget forces splitting

    def test_single_partition_when_budget_large(self, window):
        g = GSPM(window, budget_words=10**9)
        plan = g.plan(PartitionStrategy.RANGE)
        assert plan.num_partitions == 1
        assert plan.total_cut_edges == 0
        assert plan.cut_fraction() == 0.0

    def test_partitions_disjoint(self, gspm):
        plan = gspm.plan(PartitionStrategy.LOCALITY)
        seen = np.concatenate([p.vertices for p in plan.partitions])
        assert len(np.unique(seen)) == len(seen)

    def test_cut_plus_internal_equals_union_edges(self, gspm, window):
        plan = gspm.plan(PartitionStrategy.RANGE)
        from repro.analysis import union_adjacency

        indptr, _ = union_adjacency(window)
        assert plan.total_cut_edges + plan.total_internal_edges == indptr[-1]

    def test_extra_words_scale_with_dim(self, gspm, window):
        plan = gspm.plan(PartitionStrategy.RANGE)
        assert plan.extra_words(window.dim) == plan.total_cut_edges * window.dim


class TestStrategies:
    def test_locality_beats_range_on_shuffled_ids(self, window):
        """The DFS-order strategy must produce a smaller cut than naive
        vertex-range blocks when vertex ids carry no locality.  (On the
        raw Chung-Lu graphs, ids correlate with degree, so id-ranges are
        accidentally well-clustered; real graph ids are arbitrary, which
        the shuffle restores.)"""
        from repro.graphs import CSRSnapshot, DynamicGraph

        rng = np.random.default_rng(0)
        perm = rng.permutation(window.num_vertices)
        snaps = []
        for s in window:
            edges = perm[s.edge_array()]
            feats = np.zeros_like(s.features)
            feats[perm] = s.features
            present = np.zeros_like(s.present)
            present[perm] = s.present
            snaps.append(
                CSRSnapshot.from_edges(
                    window.num_vertices, edges, feats,
                    present=present, undirected=False,
                )
            )
        shuffled = DynamicGraph(snaps)
        gspm = GSPM(shuffled, budget_words=200 * (shuffled.dim + 2))
        plans = gspm.compare_strategies()
        assert plans["locality"].cut_fraction() < plans["range"].cut_fraction()

    def test_balanced_has_even_sizes(self, gspm):
        plan = gspm.plan(PartitionStrategy.BALANCED)
        sizes = [p.num_vertices for p in plan.partitions]
        assert max(sizes) - min(sizes) <= max(2, 0.2 * max(sizes))

    def test_subgraph_seeded_locality(self, window, gspm):
        sg = extract_affected_subgraph(window)
        plan = gspm.plan(PartitionStrategy.LOCALITY, subgraph=sg)
        assert plan.respects_budget()
        assert plan.covers(
            np.flatnonzero(
                np.logical_or.reduce([s.present for s in window])
            )
        )

    @given(budget_vertices=st.integers(min_value=20, max_value=150),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_coverage_property(self, budget_vertices, seed):
        g = generate_dynamic_graph(
            DynamicGraphSpec(
                name="prop", num_vertices=120, num_edges=400, dim=4,
                num_snapshots=3, seed=seed,
            )
        )
        w = g.window(0, 3)
        gspm = GSPM(w, budget_words=budget_vertices * (w.dim + 2))
        for s in PartitionStrategy:
            plan = gspm.plan(s)
            assert plan.respects_budget()
            present = np.logical_or.reduce([snap.present for snap in w])
            assert plan.covers(np.flatnonzero(present))


class TestSimulatorIntegration:
    def test_default_working_sets_fit(self):
        """At default scale the window working set fits the 2 MB Feature
        Memory: GSPM must not engage."""
        m = get_model("T-GCN", "FK")
        g = get_graph("FK")
        wl = get_workload("T-GCN", "FK")
        rep = TaGNNSimulator(TaGNNConfig()).simulate(m, g, "FK", workload=wl)
        assert rep.extra["gspm_windows"] == 0

    def test_large_working_set_triggers_partitioning(self):
        """A scaled-up graph overflows the Feature Memory: GSPM engages
        and cut re-fetches appear as extra off-chip words."""
        big = load_dataset("GT", scale=8.0, num_snapshots=4)
        m = get_model("T-GCN", "GT")
        rep = TaGNNSimulator(TaGNNConfig()).simulate(m, big, "GT-big")
        assert rep.extra["gspm_windows"] > 0
        # and the cut re-fetches show up as extra off-chip traffic vs a
        # run where partitioning is impossible to need (half the scale)
        small = load_dataset("GT", scale=4.0, num_snapshots=4)
        rep_small = TaGNNSimulator(TaGNNConfig()).simulate(m, small, "GT-4x")
        assert rep_small.extra["gspm_windows"] == 0
        assert rep.extra["words"] > 2 * rep_small.extra["words"]
