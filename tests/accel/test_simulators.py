"""Tests for the TaGNN simulator and every comparison platform.

These encode the paper's qualitative claims as invariants: the ordering
of platforms, the effect of each architectural feature, and the rough
magnitude bands of the headline ratios (exact numbers live in the
benches; here we assert the *shape* cannot silently regress).
"""

import numpy as np
import pytest

from repro.accel import (
    ACCELERATOR_BASELINES,
    CAMBRICON_DG,
    DGL_CPU,
    DGNN_BOOSTER,
    E_DGCN,
    PIPAD,
    TAGNN_S,
    TaGNNConfig,
    TaGNNSimulator,
    WorkloadStats,
    estimate_resources,
)
from repro.engine import ReferenceEngine
from repro.graphs import load_dataset
from repro.models import make_model


@pytest.fixture(scope="module")
def setup():
    g = load_dataset("GT", num_snapshots=8)
    model = make_model("T-GCN", g.dim, 32, seed=3)
    ref = ReferenceEngine(model, window_size=4).run(g)
    wl = WorkloadStats.analyze(g, model, 4)
    return g, model, ref, wl


@pytest.fixture(scope="module")
def tagnn_report(setup):
    g, model, _, wl = setup
    return TaGNNSimulator().simulate(model, g, "GT", workload=wl)


class TestTaGNNSimulator:
    def test_report_fields(self, tagnn_report):
        r = tagnn_report
        assert r.platform == "TaGNN"
        assert r.seconds > 0 and r.cycles > 0 and r.joules > 0
        assert set(r.breakdown) == {"memory", "msdl", "dcu", "aru", "fill"}

    def test_cycles_seconds_consistent(self, tagnn_report):
        r = tagnn_report
        assert r.seconds == pytest.approx(r.cycles / 225e6)

    def test_oadl_ablation_slower(self, setup):
        """WO/OADL must be substantially slower (paper: 4.41x average)."""
        g, model, _, wl = setup
        full = TaGNNSimulator().simulate(model, g, "GT", workload=wl)
        wo = TaGNNSimulator(TaGNNConfig().ablated(oadl=False)).simulate(
            model, g, "GT", workload=wl
        )
        assert wo.seconds > 2.0 * full.seconds

    def test_adsc_ablation_slower(self, setup):
        """WO/ADSC must be slower (paper: 2.48x average)."""
        g, model, _, wl = setup
        full = TaGNNSimulator().simulate(model, g, "GT", workload=wl)
        wo = TaGNNSimulator(TaGNNConfig().ablated(adsc=False)).simulate(
            model, g, "GT", workload=wl
        )
        assert wo.seconds > 1.2 * full.seconds

    def test_dispatcher_ablation_slower(self, setup):
        g, model, _, wl = setup
        full = TaGNNSimulator().simulate(model, g, "GT", workload=wl)
        wo = TaGNNSimulator(TaGNNConfig().ablated(dispatcher=False)).simulate(
            model, g, "GT", workload=wl
        )
        assert wo.seconds > full.seconds

    def test_pipeline_overlap_ablation(self, setup):
        g, model, _, wl = setup
        full = TaGNNSimulator().simulate(model, g, "GT", workload=wl)
        wo = TaGNNSimulator(
            TaGNNConfig().ablated(pipeline_overlap=False)
        ).simulate(model, g, "GT", workload=wl)
        assert wo.seconds > full.seconds

    def test_more_dcus_not_slower_compute(self, setup):
        g, model, _, wl = setup
        few = TaGNNSimulator(TaGNNConfig().with_dcus(4)).simulate(
            model, g, "GT", workload=wl
        )
        many = TaGNNSimulator(TaGNNConfig().with_dcus(16)).simulate(
            model, g, "GT", workload=wl
        )
        assert many.breakdown["dcu"] < few.breakdown["dcu"]

    def test_offchip_words_far_below_event_words(self, setup, tagnn_report):
        """OADL: off-chip traffic is the distinct working set, far below
        the per-event traffic the baselines move."""
        _, _, ref, _ = setup
        assert tagnn_report.extra["words"] < 0.5 * ref.metrics.total_words


class TestPlatformOrdering:
    @pytest.fixture(scope="class")
    def reports(self, setup, tagnn_report):
        g, model, ref, wl = setup
        out = {"TaGNN": tagnn_report}
        for name, p in ACCELERATOR_BASELINES.items():
            out[name] = p.simulate(model, g, "GT", metrics=ref.metrics, workload=wl)
        out["DGL-CPU"] = DGL_CPU.simulate(model, g, "GT", metrics=ref.metrics, workload=wl)
        out["PiPAD"] = PIPAD.simulate(model, g, "GT", metrics=ref.metrics, workload=wl)
        out["TaGNN-S"] = TAGNN_S.simulate(model, g, "GT", workload=wl)
        return out

    def test_latency_ordering(self, reports):
        """Paper ordering: TaGNN < Cambricon-DG < E-DGCN < DGNN-Booster
        < PiPAD-era software < DGL-CPU."""
        t = {k: v.seconds for k, v in reports.items()}
        assert t["TaGNN"] < t["Cambricon-DG"] < t["E-DGCN"] < t["DGNN-Booster"]
        assert t["DGNN-Booster"] < t["DGL-CPU"]
        assert t["TaGNN"] < t["TaGNN-S"]

    def test_headline_speedup_bands(self, reports):
        """Rough bands around the paper's averages (wide, since this is
        one dataset/model cell, not the 15-cell average)."""
        tagnn = reports["TaGNN"]
        assert 2.5 < tagnn.speedup_over(reports["Cambricon-DG"]) < 20
        assert 4 < tagnn.speedup_over(reports["E-DGCN"]) < 35
        assert 5 < tagnn.speedup_over(reports["DGNN-Booster"]) < 45
        assert 100 < tagnn.speedup_over(reports["DGL-CPU"]) < 2000
        assert 20 < tagnn.speedup_over(reports["PiPAD"]) < 400

    def test_energy_ordering(self, reports):
        e = {k: v.joules for k, v in reports.items()}
        assert e["TaGNN"] < e["Cambricon-DG"] < e["E-DGCN"]
        assert e["TaGNN"] < e["PiPAD"] < e["DGL-CPU"]

    def test_tagnn_s_close_to_pipad(self, reports):
        """Fig. 8: TaGNN-S only modestly outperforms PiPAD because of its
        software runtime overhead."""
        ratio = reports["TaGNN-S"].speedup_over(reports["PiPAD"])
        assert 0.7 < ratio < 3.0

    def test_tagnn_s_overhead_fraction(self, reports):
        r = reports["TaGNN-S"]
        frac = r.breakdown["overhead_s"] / r.seconds
        assert 0.3 < frac < 0.9  # paper band: 40-62%

    def test_pipad_memory_bound(self, reports):
        """Fig. 2(d): memory access dominates PiPAD's time (~70%)."""
        r = reports["PiPAD"]
        assert r.breakdown["memory_s"] / r.seconds > 0.5

    def test_watts_plausible(self, reports):
        for name, r in reports.items():
            assert 5 < r.watts < 300, (name, r.watts)


class TestResources:
    @pytest.mark.parametrize(
        "model_name,expected",
        [
            ("CD-GCN", {"DSP": 0.772, "LUT": 0.426, "FF": 0.349, "BRAM": 0.624, "UltraRAM": 0.824}),
            ("GC-LSTM", {"DSP": 0.802, "LUT": 0.495, "FF": 0.352, "BRAM": 0.697, "UltraRAM": 0.897}),
            ("T-GCN", {"DSP": 0.736, "LUT": 0.401, "FF": 0.304, "BRAM": 0.593, "UltraRAM": 0.803}),
        ],
    )
    def test_table3_within_tolerance(self, model_name, expected):
        """Estimated utilisation within 7 points of Table 3."""
        model = make_model(model_name, 32, 32)
        util = estimate_resources(model).utilization()
        for k, v in expected.items():
            assert abs(util[k] - v) < 0.07, (model_name, k, util[k], v)

    def test_fits_device(self):
        for name in ("CD-GCN", "GC-LSTM", "T-GCN"):
            assert estimate_resources(make_model(name, 32, 32)).fits()

    def test_more_macs_more_dsp(self):
        model = make_model("T-GCN", 32, 32)
        small = estimate_resources(model, TaGNNConfig().with_macs(2048))
        big = estimate_resources(model, TaGNNConfig().with_macs(8192))
        assert big.dsp > small.dsp
