"""Tests for the RNN approximation baselines (Table 5 comparators)."""

import numpy as np
import pytest

from repro.models import GRUCell, LSTMCell, sigmoid, tanh
from repro.skipping import (
    APPROXIMATORS,
    ALSTMApprox,
    ATLASApprox,
    DeltaRNNApprox,
    ExactRNN,
    generic_cell_step,
    hard_sigmoid,
    hard_tanh,
    quantize,
    truncate_mantissa,
)


class TestPrimitives:
    def test_hard_sigmoid_shape(self):
        x = np.array([-10.0, -2.0, 0.0, 2.0, 10.0])
        np.testing.assert_allclose(hard_sigmoid(x), [0.0, 0.0, 0.5, 1.0, 1.0])

    def test_hard_tanh(self):
        x = np.array([-5.0, -0.5, 0.5, 5.0])
        np.testing.assert_allclose(hard_tanh(x), [-1.0, -0.5, 0.5, 1.0])

    def test_hard_variants_close_to_exact_near_zero(self):
        x = np.linspace(-0.2, 0.2, 11)
        assert np.max(np.abs(hard_sigmoid(x) - sigmoid(x))) < 0.01
        assert np.max(np.abs(hard_tanh(x) - tanh(x))) < 0.01

    def test_truncate_mantissa_identity_at_23_bits(self):
        x = np.random.default_rng(0).standard_normal(100).astype(np.float32)
        np.testing.assert_array_equal(truncate_mantissa(x, 23), x)

    def test_truncate_mantissa_error_bounded(self):
        x = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
        for bits in (3, 6, 10):
            y = truncate_mantissa(x, bits)
            rel = np.abs((y - x) / x)
            assert rel.max() <= 2.0 ** (-bits)  # truncation error bound

    def test_truncate_mantissa_validates(self):
        with pytest.raises(ValueError):
            truncate_mantissa(np.zeros(1, np.float32), 24)

    def test_quantize(self):
        x = np.array([0.1, 0.26, -0.4])
        np.testing.assert_allclose(quantize(x, 0.25), [0.0, 0.25, -0.5])
        with pytest.raises(ValueError):
            quantize(x, 0.0)


@pytest.mark.parametrize("cell_cls", [LSTMCell, GRUCell])
class TestGenericStep:
    def test_defaults_match_exact_cell(self, cell_cls):
        cell = cell_cls(5, 4, seed=0)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((7, 5)).astype(np.float32)
        state = cell.init_state(7)
        # warm the state
        _, state = cell.step(x, state)
        h_exact, _ = cell.step(x, state)
        h_generic, _ = generic_cell_step(cell, x, state)
        np.testing.assert_allclose(h_generic, h_exact, rtol=1e-6, atol=1e-7)

    def test_unsupported_cell(self, cell_cls):
        with pytest.raises(TypeError):
            generic_cell_step(object(), np.zeros((1, 1)), None)


@pytest.mark.parametrize("cell_cls", [LSTMCell, GRUCell])
class TestApproximators:
    def _run(self, approx, cell, xs):
        approx.start(cell, xs[0].shape[0])
        state = cell.init_state(xs[0].shape[0])
        outs = []
        for x in xs:
            h, state = approx.cell_step(cell, x, state)
            outs.append(h)
        return outs

    def _inputs(self, n=10, d=6, t=5, seed=0):
        rng = np.random.default_rng(seed)
        base = rng.standard_normal((n, d)).astype(np.float32)
        return [base + 0.1 * k for k in range(t)]

    def test_exact_baseline_is_identity(self, cell_cls):
        cell = cell_cls(6, 4, seed=0)
        xs = self._inputs()
        ref = self._run(ExactRNN(), cell, xs)
        state = cell.init_state(10)
        for x, h_ref in zip(xs, ref):
            h, state = cell.step(x, state)
            np.testing.assert_array_equal(h, h_ref)

    @pytest.mark.parametrize("name", ["TaGNN-DR", "TaGNN-AM", "TaGNN-AS"])
    def test_approximations_close_but_not_exact(self, cell_cls, name):
        cell = cell_cls(6, 4, seed=0)
        xs = self._inputs()
        ref = self._run(ExactRNN(), cell, xs)
        out = self._run(APPROXIMATORS[name](), cell, xs)
        err = max(np.abs(a - b).max() for a, b in zip(out, ref))
        assert 0 < err < 1.0  # perturbed, but not garbage

    def test_deltarnn_zero_threshold_is_exact(self, cell_cls):
        """With Θ = 0 DeltaRNN degenerates to exact inference."""
        cell = cell_cls(6, 4, seed=0)
        xs = self._inputs()
        ref = self._run(ExactRNN(), cell, xs)
        out = self._run(DeltaRNNApprox(threshold=0.0), cell, xs)
        for a, b in zip(out, ref):
            np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-5)

    def test_deltarnn_error_grows_with_threshold(self, cell_cls):
        cell = cell_cls(6, 4, seed=0)
        xs = self._inputs()
        ref = self._run(ExactRNN(), cell, xs)

        def final_err(th):
            out = self._run(DeltaRNNApprox(threshold=th), cell, xs)
            return np.abs(out[-1] - ref[-1]).mean()

        assert final_err(0.3) > final_err(0.05)

    def test_atlas_error_shrinks_with_bits(self, cell_cls):
        cell = cell_cls(6, 4, seed=0)
        xs = self._inputs()
        ref = self._run(ExactRNN(), cell, xs)

        def final_err(bits):
            out = self._run(ATLASApprox(mantissa_bits=bits), cell, xs)
            return np.abs(out[-1] - ref[-1]).mean()

        assert final_err(2) > final_err(10)

    def test_alstm_determinism(self, cell_cls):
        cell = cell_cls(6, 4, seed=0)
        xs = self._inputs()
        a = self._run(ALSTMApprox(), cell, xs)
        b = self._run(ALSTMApprox(), cell, xs)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_registry(self, cell_cls):
        assert set(APPROXIMATORS) == {"Baseline", "TaGNN-DR", "TaGNN-AM", "TaGNN-AS"}

    def test_deltarnn_negative_threshold_rejected(self, cell_cls):
        with pytest.raises(ValueError):
            DeltaRNNApprox(threshold=-1)
