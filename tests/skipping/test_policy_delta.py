"""Tests for the skipping policy and the delta/condense path."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GRUCell, LSTMCell
from repro.skipping import (
    CellUpdateMode,
    DeltaCellCache,
    ModeDecision,
    SkippingPolicy,
    SkipThresholds,
    condense,
    generate_delta,
)


class TestThresholds:
    def test_defaults_match_fig14a_optimum(self):
        t = SkipThresholds()
        assert t.theta_s == -0.5 and t.theta_e == 0.5

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            SkipThresholds(0.5, -0.5)
        with pytest.raises(ValueError):
            SkipThresholds(-2.0, 0.5)

    def test_never_skip_flag(self):
        assert SkipThresholds(1.0, 1.0).never_skip
        assert not SkipThresholds().never_skip


class TestPolicy:
    def test_three_way_split(self):
        p = SkippingPolicy(SkipThresholds(-0.5, 0.5))
        v = np.arange(5)
        theta = np.array([-0.9, -0.5, 0.0, 0.5, 0.9])
        d = p.decide(v, theta)
        assert d.modes.tolist() == [
            CellUpdateMode.FULL,
            CellUpdateMode.DELTA,
            CellUpdateMode.DELTA,
            CellUpdateMode.DELTA,
            CellUpdateMode.SKIP,
        ]

    def test_rows_by_mode(self):
        p = SkippingPolicy()
        d = p.decide(np.array([10, 20, 30]), np.array([-0.9, 0.0, 0.9]))
        assert d.rows(CellUpdateMode.FULL).tolist() == [10]
        assert d.rows(CellUpdateMode.DELTA).tolist() == [20]
        assert d.rows(CellUpdateMode.SKIP).tolist() == [30]

    def test_counts_and_skip_fraction(self):
        p = SkippingPolicy()
        d = p.decide(np.arange(4), np.array([0.9, 0.9, 0.0, -0.9]))
        assert d.counts() == {"full": 1, "delta": 1, "skip": 2}
        assert d.skip_fraction() == 0.5

    def test_empty_decision(self):
        d = SkippingPolicy().decide(np.array([]), np.array([]))
        assert d.skip_fraction() == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            SkippingPolicy().decide(np.arange(3), np.zeros(2))

    @given(
        theta=st.lists(
            st.floats(min_value=-1, max_value=1), min_size=1, max_size=50
        ),
        ts=st.floats(min_value=-1, max_value=0.9),
        width=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, theta, ts, width):
        te = min(1.0, ts + width)
        p = SkippingPolicy(SkipThresholds(ts, te))
        theta = np.array(theta)
        d = p.decide(np.arange(len(theta)), theta)
        # every vertex gets exactly one mode, consistent with thresholds
        assert np.all(
            (d.modes == CellUpdateMode.SKIP) == (theta > te)
        )
        assert np.all(
            (d.modes == CellUpdateMode.FULL) == (theta < ts)
        )


class TestDeltaGeneration:
    def test_thresholding(self):
        z0 = np.zeros((2, 4), dtype=np.float32)
        z1 = np.array(
            [[0.0005, 0.5, -0.0005, -0.5], [0.0, 0.0, 0.0, 2.0]], dtype=np.float32
        )
        d = generate_delta(z1, z0, epsilon=1e-3)
        assert d[0].tolist() == [0.0, 0.5, 0.0, -0.5]
        assert d[1, 3] == 2.0

    def test_condense_roundtrip(self):
        rng = np.random.default_rng(0)
        delta = rng.standard_normal((6, 8)).astype(np.float32)
        delta[np.abs(delta) < 0.8] = 0.0
        packed = condense(delta)
        np.testing.assert_array_equal(packed.expand(), delta)
        assert packed.nnz == int((delta != 0).sum())

    def test_condense_density(self):
        delta = np.zeros((4, 5), dtype=np.float32)
        delta[0, 0] = 1.0
        packed = condense(delta)
        assert packed.density() == pytest.approx(1 / 20)
        assert packed.rows.tolist() == [0]

    def test_condense_all_zero(self):
        packed = condense(np.zeros((3, 3), dtype=np.float32))
        assert packed.nnz == 0
        assert len(packed.rows) == 0

    @pytest.mark.parametrize("shape", [(0, 5), (5, 0), (0, 0)])
    def test_condense_degenerate_shapes(self, shape):
        """Zero-row / zero-column deltas (an empty changed set) must not
        divide by zero or trip numpy's empty-concatenate path."""
        packed = condense(np.zeros(shape, dtype=np.float32))
        assert packed.nnz == 0
        assert packed.density() == 0.0
        expanded = packed.expand()
        assert expanded.shape == shape
        assert expanded.size == 0

    def test_expand_with_empty_address_lists(self):
        """A packing whose rows all carry empty address lists expands to
        the all-zero matrix."""
        from repro.skipping.delta import CondensedDelta

        packed = CondensedDelta(
            rows=np.array([1], dtype=np.int64),
            addresses=[np.array([], dtype=np.int64)],
            values=[np.array([], dtype=np.float32)],
            dense_shape=(3, 4),
        )
        assert packed.nnz == 0
        assert packed.density() == 0.0
        np.testing.assert_array_equal(
            packed.expand(), np.zeros((3, 4), dtype=np.float32)
        )


@pytest.mark.parametrize("cell_cls", [LSTMCell, GRUCell])
class TestDeltaCellCache:
    def _setup(self, cell_cls, n=6, din=5, dh=4):
        cell = cell_cls(din, dh, seed=0)
        cache = DeltaCellCache(cell, n)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((n, din)).astype(np.float32)
        state = cell.init_state(n)
        return cell, cache, x, state

    def test_partial_step_with_zero_delta_matches_full(self, cell_cls):
        """If the input did not change at all, the partial update must
        reproduce the full cell update exactly (recurrent path frozen at
        the cached value, which is also unchanged)."""
        cell, cache, x, state = self._setup(cell_cls)
        h_full, st_full = cell.step(x, state)
        cache.refresh(np.arange(6), x, state.h)
        h_part, st_part, packed = cache.partial_step(np.arange(6), x, state)
        np.testing.assert_allclose(h_part, h_full, rtol=1e-5, atol=1e-6)
        assert packed.nnz == 0

    def test_partial_step_tracks_small_changes(self, cell_cls):
        """Small input deltas above epsilon are applied through the
        cached path with first-order exactness in the input."""
        cell, cache, x, state = self._setup(cell_cls)
        cache.refresh(np.arange(6), x, state.h)
        x2 = x.copy()
        x2[:, 0] += 0.5  # one changed column
        h_ref, _ = cell.step(x2, state)
        h_part, _, packed = cache.partial_step(np.arange(6), x2, state, epsilon=1e-4)
        # input path is exact (recurrent path unchanged from cache):
        np.testing.assert_allclose(h_part, h_ref, rtol=1e-4, atol=1e-5)
        assert packed.nnz == 6  # one column per row survived

    def test_partial_step_empty_rows_raises(self, cell_cls):
        cell, cache, x, state = self._setup(cell_cls)
        with pytest.raises(ValueError):
            cache.partial_step(np.array([], dtype=np.int64), x, state)

    def test_refresh_subset_only(self, cell_cls):
        cell, cache, x, state = self._setup(cell_cls)
        cache.refresh(np.array([0, 2]), x, state.h)
        assert np.all(cache.z_input[1] == 0)
        assert np.any(cache.z_input[0] != 0)

    def test_sequential_deltas_accumulate(self, cell_cls):
        """Two consecutive partial updates equal one partial update with
        the combined delta (cache consistency)."""
        cell, cache, x, state = self._setup(cell_cls)
        cache.refresh(np.arange(6), x, state.h)
        xa = x.copy(); xa[:, 1] += 0.3
        xb = xa.copy(); xb[:, 2] -= 0.4
        cache.partial_step(np.arange(6), xa, state, epsilon=1e-5)
        h_two, _, _ = cache.partial_step(np.arange(6), xb, state, epsilon=1e-5)

        cache2 = DeltaCellCache(cell, 6)
        cache2.refresh(np.arange(6), x, state.h)
        h_one, _, _ = cache2.partial_step(np.arange(6), xb, state, epsilon=1e-5)
        np.testing.assert_allclose(h_two, h_one, rtol=1e-4, atol=1e-5)

    def test_unsupported_cell_rejected(self, cell_cls):
        class Fake:
            input_dim = 3
            hidden_dim = 3

        with pytest.raises(TypeError):
            DeltaCellCache(Fake(), 4)
