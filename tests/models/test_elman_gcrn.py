"""Tests for the Elman cell and the GCRN model across the whole stack."""

import numpy as np
import pytest

from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_dataset
from repro.models import ElmanCell, make_model
from repro.skipping import APPROXIMATORS, DeltaCellCache


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=8)


class TestElmanCell:
    def test_step_shapes_and_bounds(self):
        cell = ElmanCell(5, 3, seed=0)
        x = np.random.default_rng(0).standard_normal((7, 5)).astype(np.float32)
        h, state = cell.step(x, cell.init_state(7))
        assert h.shape == (7, 3)
        assert np.all(np.abs(h) <= 1.0)  # tanh-bounded
        np.testing.assert_array_equal(state.h, h)

    def test_flops(self):
        assert ElmanCell(5, 3).flops_per_vertex() == 2 * (5 + 3) * 3

    def test_contractive_default(self):
        damped = ElmanCell(4, 4, seed=0)
        plain = ElmanCell(4, 4, seed=0, recurrent_scale=1.0)
        np.testing.assert_allclose(plain.w_h, damped.w_h * 2.0, rtol=1e-6)

    def test_delta_cache_support(self):
        cell = ElmanCell(5, 4, seed=0)
        cache = DeltaCellCache(cell, 6)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((6, 5)).astype(np.float32)
        state = cell.init_state(6)
        h_full, _ = cell.step(x, state)
        cache.refresh(np.arange(6), x, state.h)
        h_part, _, packed = cache.partial_step(np.arange(6), x, state)
        np.testing.assert_allclose(h_part, h_full, rtol=1e-5, atol=1e-6)
        assert packed.nnz == 0

    @pytest.mark.parametrize("name", ["TaGNN-DR", "TaGNN-AM", "TaGNN-AS"])
    def test_approximators_support_elman(self, name):
        cell = ElmanCell(5, 4, seed=0)
        approx = APPROXIMATORS[name]()
        approx.start(cell, 6)
        x = np.random.default_rng(0).standard_normal((6, 5)).astype(np.float32)
        h, state = approx.cell_step(cell, x, cell.init_state(6))
        assert h.shape == (6, 4)
        assert np.isfinite(h).all()


class TestGCRN:
    def test_two_layers(self):
        m = make_model("GCRN", 8, 16)
        assert m.num_layers == 2
        assert isinstance(m.cell, ElmanCell)

    def test_engine_bit_exact(self, graph):
        ref = ReferenceEngine(
            make_model("GCRN", graph.dim, 16, seed=1), window_size=4
        ).run(graph)
        conc = ConcurrentEngine(
            make_model("GCRN", graph.dim, 16, seed=1),
            window_size=4,
            enable_skipping=False,
        ).run(graph)
        for a, b in zip(ref.outputs, conc.outputs):
            np.testing.assert_array_equal(a, b)

    def test_skipping_bounded(self, graph):
        ref = ReferenceEngine(
            make_model("GCRN", graph.dim, 16, seed=1), window_size=4
        ).run(graph)
        skip = ConcurrentEngine(
            make_model("GCRN", graph.dim, 16, seed=1), window_size=4
        ).run(graph)
        assert skip.metrics.cells_skipped > 0
        err = np.mean(
            [np.abs(a - b).mean() for a, b in zip(skip.outputs, ref.outputs)]
        )
        assert err < 0.1

    def test_simulator_accepts_gcrn(self, graph):
        from repro.accel import TaGNNSimulator

        rep = TaGNNSimulator().simulate(
            make_model("GCRN", graph.dim, 16, seed=1), graph, "GT"
        )
        assert rep.seconds > 0 and rep.joules > 0
