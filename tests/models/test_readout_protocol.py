"""Additional tests for the readout protocol (fixed vs self-trained)."""

import numpy as np
import pytest

from repro.bench import get_graph, get_labels, get_reference
from repro.models import evaluate_accuracy, fit_readout
from repro.models import test_vertex_accuracy as held_out_accuracy


@pytest.fixture(scope="module")
def setup():
    g = get_graph("GT")
    labels = get_labels("GT")
    outs = get_reference("T-GCN", "GT").outputs
    return g, labels, outs


class TestFixedReadoutProtocol:
    def test_fixed_readout_equals_self_trained_on_same_embeddings(self, setup):
        """For the embeddings the readout was trained on, the fixed- and
        self-trained protocols coincide by construction."""
        g, labels, outs = setup
        r = fit_readout(outs, labels, g)
        a1 = evaluate_accuracy(outs, labels, g, readout=r)
        a2 = evaluate_accuracy(outs, labels, g)
        assert a1 == pytest.approx(a2)

    def test_fixed_readout_punishes_distribution_shift(self, setup):
        """Scaling the embeddings (a systematic approximation artefact)
        hurts more under the fixed readout than under retraining —
        the very reason Table 5 uses the deployment protocol."""
        g, labels, outs = setup
        r = fit_readout(outs, labels, g)
        shifted = [h * 0.2 + 1.5 for h in outs]
        fixed = evaluate_accuracy(shifted, labels, g, readout=r)
        retrained = evaluate_accuracy(shifted, labels, g)
        assert retrained >= fixed

    def test_test_vertex_accuracy_excludes_training_vertices(self, setup):
        """Evaluation must use held-out vertices only: corrupting the
        training vertices' embeddings must not change the score."""
        g, labels, outs = setup
        r = fit_readout(outs, labels, g)
        base = held_out_accuracy(outs, labels, g, r)
        from repro.models import split_vertices

        train_v, _ = split_vertices(g.num_vertices, 0.6, seed=7)
        corrupted = [h.copy() for h in outs]
        for h in corrupted:
            h[train_v] = 999.0
        assert held_out_accuracy(corrupted, labels, g, r) == pytest.approx(base)

    def test_length_mismatch(self, setup):
        g, labels, outs = setup
        r = fit_readout(outs, labels, g)
        with pytest.raises(ValueError):
            held_out_accuracy(outs[:2], labels, g, r)
        with pytest.raises(ValueError):
            fit_readout(outs[:2], labels, g)
