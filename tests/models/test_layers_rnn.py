"""Tests for GCN layers and recurrent cells."""

import numpy as np
import pytest

from repro.graphs import CSRSnapshot
from repro.models import GCNLayer, GCNStack, GRUCell, LSTMCell


@pytest.fixture
def snap():
    edges = np.array([[0, 1], [1, 2], [2, 3], [3, 0], [0, 2]])
    feats = np.random.default_rng(0).standard_normal((4, 6)).astype(np.float32)
    return CSRSnapshot.from_edges(4, edges, feats)


class TestGCNLayer:
    def test_seeded_determinism(self):
        a = GCNLayer.create(6, 4, seed=3)
        b = GCNLayer.create(6, 4, seed=3)
        np.testing.assert_array_equal(a.weight, b.weight)
        c = GCNLayer.create(6, 4, seed=4)
        assert not np.array_equal(a.weight, c.weight)

    def test_forward_shape_and_dtype(self, snap):
        layer = GCNLayer.create(6, 4, seed=0)
        out = layer.forward(snap, snap.features)
        assert out.shape == (4, 4)
        assert out.dtype == np.float32

    def test_relu_nonnegative(self, snap):
        layer = GCNLayer.create(6, 4, activation="relu", seed=0)
        assert np.all(layer.forward(snap, snap.features) >= 0)

    def test_wrong_width_raises(self, snap):
        layer = GCNLayer.create(5, 4, seed=0)
        with pytest.raises(ValueError, match="in_dim"):
            layer.forward(snap, snap.features)

    def test_combine_before_aggregate_when_shrinking(self, snap):
        """When out_dim < in_dim the two operation orders are numerically
        identical (linear ops commute), so the FLOP-saving order must give
        the same result as the naive order."""
        layer = GCNLayer.create(6, 2, activation="tanh", seed=0)
        out = layer.forward(snap, snap.features)
        naive = np.tanh(layer.combine(snap.aggregate(snap.features)))
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-5)

    def test_flops_positive_and_monotone(self):
        small = GCNLayer.create(6, 4).flops(100, 500)
        big = GCNLayer.create(6, 4).flops(200, 1000)
        assert 0 < small < big


class TestGCNStack:
    def test_requires_two_dims(self):
        with pytest.raises(ValueError):
            GCNStack([8])

    def test_depth_and_io(self, snap):
        stack = GCNStack([6, 8, 4], seed=0)
        assert len(stack.layers) == 2
        assert stack.in_dim == 6 and stack.out_dim == 4
        assert stack.forward(snap, snap.features).shape == (4, 4)

    def test_flops_sum(self):
        stack = GCNStack([6, 8, 4], seed=0)
        assert stack.flops(10, 20) == sum(
            l.flops(10, 20) for l in stack.layers
        )


class TestLSTMCell:
    def test_shapes(self):
        cell = LSTMCell(5, 3, seed=0)
        state = cell.init_state(7)
        x = np.random.default_rng(0).standard_normal((7, 5)).astype(np.float32)
        h, new_state = cell.step(x, state)
        assert h.shape == (7, 3)
        assert new_state.h.shape == (7, 3)
        assert new_state.c.shape == (7, 3)

    def test_step_does_not_mutate_state(self):
        cell = LSTMCell(5, 3, seed=0)
        state = cell.init_state(4)
        before = state.h.copy()
        x = np.ones((4, 5), dtype=np.float32)
        cell.step(x, state)
        np.testing.assert_array_equal(state.h, before)

    def test_output_bounded(self):
        """h = o * tanh(c) with o in (0,1): |h| < 1 after one step from
        zero state is guaranteed since |c| < 1 too."""
        cell = LSTMCell(5, 3, seed=0)
        x = 100 * np.ones((2, 5), dtype=np.float32)
        h, _ = cell.step(x, cell.init_state(2))
        assert np.all(np.abs(h) < 1.0)

    def test_forget_bias_initialised(self):
        """Default init is contractive (negative forget bias, damped
        recurrent weights) per the paper's Insight-Two stability."""
        cell = LSTMCell(5, 3, seed=0)
        np.testing.assert_array_equal(cell.bias[3:6], -1.0)
        np.testing.assert_array_equal(cell.bias[:3], 0.0)
        conventional = LSTMCell(5, 3, seed=0, recurrent_scale=1.0, state_bias=1.0)
        np.testing.assert_array_equal(conventional.bias[3:6], 1.0)
        np.testing.assert_allclose(conventional.w_h, cell.w_h * 2.0, rtol=1e-6)

    def test_contractive_state_converges_fast(self):
        """Under constant input the state must approach its fixed point
        within a few steps — the stability property cell skipping needs."""
        cell = LSTMCell(4, 4, seed=0)
        x = np.random.default_rng(0).standard_normal((3, 4)).astype(np.float32)
        state = cell.init_state(3)
        hs = []
        for _ in range(8):
            h, state = cell.step(x, state)
            hs.append(h)
        late_move = np.abs(hs[-1] - hs[-2]).max()
        early_move = np.abs(hs[1] - hs[0]).max()
        assert late_move < 0.05 * max(early_move, 1e-6) or late_move < 1e-3

    def test_state_select_rows(self):
        cell = LSTMCell(2, 2, seed=0)
        a = cell.init_state(3)
        b = cell.init_state(3)
        b.h += 5.0
        b.c += 7.0
        a.select_rows(np.array([1]), b)
        assert a.h[1, 0] == 5.0 and a.c[1, 0] == 7.0
        assert a.h[0, 0] == 0.0

    def test_temporal_dependence(self):
        """Same input, different histories -> different outputs (the
        inter-snapshot dependency the paper's Section 2.2 describes)."""
        cell = LSTMCell(3, 3, seed=0)
        x = np.ones((1, 3), dtype=np.float32)
        h1, s1 = cell.step(x, cell.init_state(1))
        h2, _ = cell.step(x, s1)
        assert not np.allclose(h1, h2)

    def test_flops_per_vertex(self):
        cell = LSTMCell(5, 3)
        assert cell.flops_per_vertex() == 2 * (5 + 3) * 4 * 3


class TestGRUCell:
    def test_shapes(self):
        cell = GRUCell(5, 3, seed=0)
        x = np.zeros((4, 5), dtype=np.float32)
        h, state = cell.step(x, cell.init_state(4))
        assert h.shape == (4, 3)
        assert state.h.shape == (4, 3)

    def test_zero_input_zero_state_stays_bounded(self):
        cell = GRUCell(5, 3, seed=0)
        state = cell.init_state(2)
        x = np.zeros((2, 5), dtype=np.float32)
        for _ in range(10):
            h, state = cell.step(x, state)
        assert np.all(np.abs(h) <= 1.0)

    def test_interpolation_property(self):
        """GRU output is a convex combination of candidate and previous
        hidden state, so it stays within [-1, 1] when h_prev does."""
        cell = GRUCell(4, 4, seed=1)
        rng = np.random.default_rng(0)
        state = cell.init_state(6)
        for _ in range(5):
            x = rng.standard_normal((6, 4)).astype(np.float32) * 10
            h, state = cell.step(x, state)
            assert np.all(np.abs(h) <= 1.0 + 1e-6)

    def test_flops_per_vertex(self):
        cell = GRUCell(5, 3)
        assert cell.flops_per_vertex() == 2 * (5 + 3) * 3 * 3

    def test_determinism(self):
        a = GRUCell(4, 4, seed=9)
        b = GRUCell(4, 4, seed=9)
        np.testing.assert_array_equal(a.w_x, b.w_x)
