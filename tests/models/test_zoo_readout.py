"""Tests for the model zoo and the accuracy-evaluation protocol."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.models import (
    CDGCN,
    GCLSTM,
    MODEL_ZOO,
    TGCN,
    RidgeReadout,
    evaluate_accuracy,
    make_model,
    make_teacher_labels,
    split_vertices,
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=5)


class TestZoo:
    def test_layer_counts_match_paper(self):
        """Paper Section 5.1: CD-GCN four layers, GC-LSTM three, T-GCN two."""
        assert CDGCN(8).num_layers == 4
        assert GCLSTM(8).num_layers == 3
        assert TGCN(8).num_layers == 2

    def test_make_model(self):
        m = make_model("T-GCN", 8, 16)
        assert m.name == "T-GCN"
        assert m.in_dim == 8 and m.out_dim == 16
        with pytest.raises(KeyError, match="unknown model"):
            make_model("GPT", 8)

    def test_zoo_registry(self):
        assert set(MODEL_ZOO) == {"CD-GCN", "GC-LSTM", "T-GCN", "EvolveGCN", "GCRN"}

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_forward_window_shapes(self, graph, name):
        m = make_model(name, graph.dim, 16, seed=0)
        outs, state = m.forward_window(graph)
        assert len(outs) == graph.num_snapshots
        for h in outs:
            assert h.shape == (graph.num_vertices, 16)
            assert np.isfinite(h).all()

    @pytest.mark.parametrize("name", sorted(MODEL_ZOO))
    def test_deterministic(self, graph, name):
        a, _ = make_model(name, graph.dim, 16, seed=0).forward_window(graph)
        b, _ = make_model(name, graph.dim, 16, seed=0).forward_window(graph)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_gclstm_uses_graph_in_cell(self, graph):
        """GC-LSTM's recurrent convolution must make its cell output
        depend on the snapshot topology."""
        m = make_model("GC-LSTM", graph.dim, 16, seed=0)
        z = m.gnn_forward(graph[1])
        state = m.init_state(graph.num_vertices)
        # warm the state so the recurrent path is non-trivial
        _, state = m.cell_step(m.gnn_forward(graph[0]), state, graph[0])
        h_with_g1, _ = m.cell_step(z, state, graph[1])
        h_with_g2, _ = m.cell_step(z, state, graph[3])
        assert not np.allclose(h_with_g1, h_with_g2)

    def test_dim_mismatch_rejected(self):
        from repro.models import GCNStack, LSTMCell
        from repro.models.base import DGNNModel

        class Bad(DGNNModel):
            name = "bad"

        with pytest.raises(ValueError, match="input_dim"):
            Bad(GCNStack([4, 8]), LSTMCell(16, 16))


class TestRidgeReadout:
    def test_separable_data_perfect(self):
        rng = np.random.default_rng(0)
        x = np.concatenate([rng.normal(-3, 0.1, (50, 4)), rng.normal(3, 0.1, (50, 4))])
        y = np.array([0] * 50 + [1] * 50)
        r = RidgeReadout().fit(x, y)
        assert r.accuracy(x, y) == 1.0

    def test_unfit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeReadout().decision(np.zeros((1, 3)))

    def test_classes_preserved(self):
        x = np.random.default_rng(0).standard_normal((30, 4))
        y = np.array([3, 7, 9] * 10)
        r = RidgeReadout().fit(x, y)
        assert set(r.predict(x)) <= {3, 7, 9}

    def test_regularisation_effect(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((20, 30))  # underdetermined
        y = rng.integers(0, 2, 20)
        r_hi = RidgeReadout(reg=100.0).fit(x, y)
        r_lo = RidgeReadout(reg=1e-6).fit(x, y)
        # low reg overfits (train acc >= high-reg train acc)
        assert r_lo.accuracy(x, y) >= r_hi.accuracy(x, y)


class TestAccuracyProtocol:
    def test_split_disjoint_and_complete(self):
        tr, te = split_vertices(100, 0.6, seed=1)
        assert len(tr) == 60 and len(te) == 40
        assert len(np.intersect1d(tr, te)) == 0

    def test_labels_shape_and_absent(self, graph):
        labels = make_teacher_labels(graph, 4)
        assert labels.shape == (graph.num_snapshots, graph.num_vertices)
        for t, snap in enumerate(graph):
            assert np.all(labels[t][~snap.present] == -1)
            assert np.all(labels[t][snap.present] >= 0)
            assert labels[t].max() < 4

    def test_labels_deterministic(self, graph):
        a = make_teacher_labels(graph, 4, seed=2)
        b = make_teacher_labels(graph, 4, seed=2)
        np.testing.assert_array_equal(a, b)

    def test_exact_embeddings_beat_noise(self, graph):
        """The protocol must rank exact inference above heavily-corrupted
        inference — otherwise Table 5 would be meaningless."""
        m = make_model("T-GCN", graph.dim, 48, seed=0)
        outs, _ = m.forward_window(graph)
        labels = make_teacher_labels(graph, 4)
        acc_exact = evaluate_accuracy(outs, labels, graph)
        rng = np.random.default_rng(0)
        noisy = [h + rng.standard_normal(h.shape).astype(np.float32) * 2 for h in outs]
        acc_noisy = evaluate_accuracy(noisy, labels, graph)
        assert acc_exact > acc_noisy + 0.05
        assert acc_exact > 0.4  # well above 4-class chance

    def test_mismatched_lengths_raise(self, graph):
        labels = make_teacher_labels(graph, 4)
        with pytest.raises(ValueError):
            evaluate_accuracy([np.zeros((graph.num_vertices, 4))], labels, graph)
