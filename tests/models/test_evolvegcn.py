"""Tests for RNN-free DGNN support (EvolveGCN + IdentityCell)."""

import numpy as np
import pytest

from repro.engine import ConcurrentEngine, ReferenceEngine
from repro.graphs import load_dataset
from repro.models import EvolveGCN, IdentityCell, make_model


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=8)


class TestIdentityCell:
    def test_passthrough(self):
        cell = IdentityCell(4)
        x = np.random.default_rng(0).standard_normal((5, 4)).astype(np.float32)
        h, state = cell.step(x, cell.init_state(5))
        np.testing.assert_array_equal(h, x)
        np.testing.assert_array_equal(state.h, x)

    def test_zero_cost(self):
        assert IdentityCell(8).flops_per_vertex() == 0
        assert IdentityCell(8).w_x.size == 0

    def test_dims(self):
        cell = IdentityCell(6)
        assert cell.input_dim == cell.hidden_dim == 6


class TestEvolveGCN:
    def test_registered(self, graph):
        m = make_model("EvolveGCN", graph.dim, 32)
        assert isinstance(m, EvolveGCN)
        assert isinstance(m.cell, IdentityCell)

    def test_weights_evolve_and_are_idempotent(self, graph):
        m = make_model("EvolveGCN", graph.dim, 32, seed=1)
        w0 = m.gnn.layers[0].weight.copy()
        m.advance_window(2)
        w2 = m.gnn.layers[0].weight.copy()
        assert not np.allclose(w0, w2)
        m.advance_window(0)
        np.testing.assert_allclose(m.gnn.layers[0].weight, w0)
        m.advance_window(2)
        np.testing.assert_allclose(m.gnn.layers[0].weight, w2)

    def test_negative_window_rejected(self, graph):
        with pytest.raises(ValueError):
            make_model("EvolveGCN", graph.dim, 32).advance_window(-1)

    def test_evolution_changes_outputs_across_windows(self, graph):
        m = make_model("EvolveGCN", graph.dim, 32, seed=1)
        res = ReferenceEngine(m, window_size=4).run(graph)
        # same snapshot features could repeat, but evolved weights make
        # window-1 outputs differ from what window-0 weights would give
        m.advance_window(0)
        z0 = m.gnn_forward(graph[4])
        m.advance_window(1)
        z1 = m.gnn_forward(graph[4])
        assert not np.allclose(z0, z1)
        assert len(res.outputs) == 8

    def test_concurrent_engine_bit_exact(self, graph):
        ref = ReferenceEngine(
            make_model("EvolveGCN", graph.dim, 32, seed=3), window_size=4
        ).run(graph)
        conc = ConcurrentEngine(
            make_model("EvolveGCN", graph.dim, 32, seed=3),
            window_size=4,
            enable_skipping=False,
        ).run(graph)
        for a, b in zip(ref.outputs, conc.outputs):
            np.testing.assert_array_equal(a, b)

    def test_skipping_is_cheap_and_bounded(self, graph):
        ref = ReferenceEngine(
            make_model("EvolveGCN", graph.dim, 32, seed=3), window_size=4
        ).run(graph)
        conc = ConcurrentEngine(
            make_model("EvolveGCN", graph.dim, 32, seed=3), window_size=4
        ).run(graph)
        # identity cell -> no cell MACs at all, skipped or not
        assert conc.metrics.cell_macs == 0
        err = np.mean(
            [np.abs(a - b).mean() for a, b in zip(conc.outputs, ref.outputs)]
        )
        assert err < 0.05

    def test_no_delta_mode_for_identity_cell(self, graph):
        conc = ConcurrentEngine(
            make_model("EvolveGCN", graph.dim, 32, seed=3), window_size=4
        ).run(graph)
        assert conc.metrics.cells_delta == 0
        assert conc.metrics.cells_skipped > 0
