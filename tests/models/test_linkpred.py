"""Tests for dynamic link prediction."""

import numpy as np
import pytest

from repro.bench import get_concurrent, get_graph, get_reference
from repro.graphs import CSRSnapshot
from repro.models import (
    auc_score,
    fit_link_decoder,
    link_prediction_auc,
    sample_negative_edges,
    temporal_link_prediction_auc,
)


class TestAUC:
    def test_perfect_separation(self):
        assert auc_score(np.array([2.0, 3.0]), np.array([0.0, 1.0])) == 1.0

    def test_perfect_inversion(self):
        assert auc_score(np.array([0.0]), np.array([1.0])) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(5000)
        b = rng.standard_normal(5000)
        assert abs(auc_score(a, b) - 0.5) < 0.02

    def test_ties_count_half(self):
        assert auc_score(np.array([1.0]), np.array([1.0])) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auc_score(np.array([]), np.array([1.0]))


class TestNegativeSampling:
    def test_samples_are_non_edges(self):
        snap = get_graph("GT")[0]
        rng = np.random.default_rng(0)
        neg = sample_negative_edges(snap, 200, rng=rng)
        assert len(neg) == 200
        for u, v in neg.tolist():
            assert u != v
            assert not snap.has_edge(u, v)
            assert snap.present[u] and snap.present[v]

    def test_dense_graph_raises(self):
        # complete graph on 4 vertices: no non-edges exist
        edges = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        snap = CSRSnapshot.from_edges(4, np.array(edges), dim=2)
        with pytest.raises(ValueError, match="non-edges"):
            sample_negative_edges(snap, 10, rng=np.random.default_rng(0))

    def test_too_few_vertices(self):
        snap = CSRSnapshot.from_edges(1, np.empty((0, 2), dtype=int), dim=2)
        with pytest.raises(ValueError, match="two present"):
            sample_negative_edges(snap, 1, rng=np.random.default_rng(0))


class TestLinkPrediction:
    @pytest.fixture(scope="class")
    def setup(self):
        g = get_graph("GT")
        ref = get_reference("GC-LSTM", "GT")
        return g, ref.outputs

    def test_trained_decoder_beats_chance(self, setup):
        g, outs = setup
        auc = temporal_link_prediction_auc(outs, g, num_samples=600)
        assert auc > 0.55

    def test_trained_decoder_beats_raw_inner_product(self, setup):
        g, outs = setup
        w = fit_link_decoder(outs[3], g[3], num_samples=600)
        trained = link_prediction_auc(outs[3], g[4], decoder=w, num_samples=600)
        raw = link_prediction_auc(outs[3], g[4], num_samples=600)
        assert trained > raw

    def test_shuffled_embeddings_are_chance(self, setup):
        """Destroying the vertex-embedding correspondence must collapse
        AUC to ~0.5 — the decoder cannot cheat."""
        g, outs = setup
        rng = np.random.default_rng(0)
        shuffled = [h[rng.permutation(len(h))] for h in outs]
        auc = temporal_link_prediction_auc(shuffled, g, num_samples=600)
        assert abs(auc - 0.5) < 0.08

    def test_skipping_preserves_auc(self, setup):
        """Cell skipping must not cost more than ~2 AUC points under the
        exact model's decoder (the structural analogue of Table 5)."""
        g, outs = setup
        skip = get_concurrent("GC-LSTM", "GT")
        auc_ref = temporal_link_prediction_auc(outs, g, num_samples=600)
        auc_skip = temporal_link_prediction_auc(
            skip.outputs, g, num_samples=600, decoder_outputs=outs
        )
        assert auc_ref - auc_skip < 0.02

    def test_validation(self, setup):
        g, outs = setup
        with pytest.raises(ValueError, match="mismatch"):
            temporal_link_prediction_auc(outs[:2], g)
        with pytest.raises(ValueError, match="no transitions"):
            temporal_link_prediction_auc(
                outs, g, warmup=g.num_snapshots
            )
