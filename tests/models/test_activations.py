"""Tests for activation functions."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.models import ACTIVATIONS, relu, sigmoid, softmax, tanh

FLOATS = hnp.arrays(
    np.float64,
    st.integers(min_value=1, max_value=50),
    elements=st.floats(min_value=-500, max_value=500),
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == 0.5

    def test_extremes_saturate_without_overflow(self):
        x = np.array([-1000.0, 1000.0])
        with np.errstate(over="raise"):
            out = sigmoid(x)
        np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)

    @given(FLOATS)
    @settings(max_examples=50, deadline=None)
    def test_range_and_monotone(self, x):
        out = sigmoid(np.sort(x))
        assert np.all((out >= 0) & (out <= 1))
        assert np.all(np.diff(out) >= -1e-12)

    def test_preserves_float32(self):
        out = sigmoid(np.zeros(3, dtype=np.float32))
        assert out.dtype == np.float32


class TestOthers:
    def test_relu(self):
        np.testing.assert_array_equal(
            relu(np.array([-2.0, 0.0, 3.0])), [0.0, 0.0, 3.0]
        )

    def test_tanh_odd(self):
        x = np.linspace(-3, 3, 11)
        np.testing.assert_allclose(tanh(-x), -tanh(x))

    @given(FLOATS)
    @settings(max_examples=50, deadline=None)
    def test_softmax_rows_sum_to_one(self, x):
        out = softmax(x.reshape(1, -1))
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-9)
        assert np.all(out >= 0)

    def test_softmax_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_registry_complete(self):
        assert set(ACTIVATIONS) == {"sigmoid", "tanh", "relu", "softmax"}
