"""Bit-identity of the batched multi-snapshot GNN forward.

``gnn_forward_window`` hoists the per-snapshot per-layer loop: the
elementwise activation runs once on the stacked ``(K*n, d)`` block while
the gemm-backed combine deliberately stays at per-snapshot shape (BLAS
rounding depends on the row count).  The contract is *exact* equality
with the per-snapshot oracle — engine outputs must be invariant to how
the stream is partitioned into windows, so any drift here would surface
as window-size-dependent results.
"""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.models import make_model
from repro.models.zoo import MODEL_ZOO

SEED = 3
HIDDEN = 32


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", scale=0.3, num_snapshots=8, seed=SEED)


@pytest.mark.parametrize("model_name", sorted(MODEL_ZOO))
@pytest.mark.parametrize("window", [1, 2, 3, 4])
def test_forward_window_matches_per_snapshot(graph, model_name, window):
    model = make_model(model_name, graph.dim, HIDDEN, seed=SEED)
    snaps = graph.snapshots[:window]
    batched = model.gnn_forward_window(snaps)
    assert len(batched) == window
    for snap, z in zip(snaps, batched):
        expected = model.gnn_forward(snap)
        assert z.dtype == expected.dtype
        assert z.shape == expected.shape
        np.testing.assert_array_equal(z, expected)


@pytest.mark.parametrize("model_name", sorted(MODEL_ZOO))
def test_forward_window_invariant_to_partitioning(graph, model_name):
    """Stacking [s0..s3] as one window, two pairs, or four singletons
    must produce the same bits for every snapshot."""
    model = make_model(model_name, graph.dim, HIDDEN, seed=SEED)
    snaps = graph.snapshots[:4]
    whole = model.gnn_forward_window(snaps)
    pairs = model.gnn_forward_window(snaps[:2]) + model.gnn_forward_window(
        snaps[2:]
    )
    singles = [z for s in snaps for z in model.gnn_forward_window([s])]
    for a, b, c in zip(whole, pairs, singles):
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(a, c)


def test_forward_window_rejects_width_mismatch(graph):
    model = make_model("T-GCN", graph.dim, HIDDEN, seed=SEED)
    snaps = graph.snapshots[:2]
    bad = [s.features for s in snaps]
    bad[1] = np.zeros((snaps[1].num_vertices, graph.dim + 1), dtype=np.float32)
    with pytest.raises(ValueError, match="in_dim"):
        model.gnn.forward_window(snaps, bad)
