"""Tests for DGNNModel base methods: row-restricted cell updates,
recurrent drives, and stateful window chaining."""

import numpy as np
import pytest

from repro.graphs import load_dataset
from repro.models import make_model


@pytest.fixture(scope="module")
def graph():
    return load_dataset("GT", num_snapshots=6)


class TestCellStepRows:
    @pytest.mark.parametrize("name", ["T-GCN", "CD-GCN"])
    def test_rows_match_full_step(self, graph, name):
        """Updating a row subset must agree exactly with the same rows of
        a full-batch update (plain cells are row-independent)."""
        model = make_model(name, graph.dim, 16, seed=2)
        z = model.gnn_forward(graph[0])
        state = model.init_state(graph.num_vertices)
        _, state = model.cell_step(z, state, graph[0])  # warm
        z1 = model.gnn_forward(graph[1])
        h_full, _ = model.cell_step(z1, state, graph[1])
        rows = np.array([3, 17, 250, 800])
        h_rows, st_rows = model.cell_step_rows(z1, state, rows, graph[1])
        np.testing.assert_allclose(h_rows, h_full[rows], rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(st_rows.h, h_full[rows], rtol=1e-5, atol=1e-6)

    def test_gclstm_rows_match_full_step(self, graph):
        """GC-LSTM's recurrent convolution uses the *whole* state, so the
        row-restricted path must still see it."""
        model = make_model("GC-LSTM", graph.dim, 16, seed=2)
        z = model.gnn_forward(graph[0])
        state = model.init_state(graph.num_vertices)
        _, state = model.cell_step(z, state, graph[0])
        z1 = model.gnn_forward(graph[1])
        h_full, _ = model.cell_step(z1, state, graph[1])
        rows = np.array([3, 17, 250, 800])
        h_rows, _ = model.cell_step_rows(z1, state, rows, graph[1])
        np.testing.assert_allclose(h_rows, h_full[rows], rtol=1e-5, atol=1e-6)

    def test_gclstm_rows_without_snap_falls_back(self, graph):
        model = make_model("GC-LSTM", graph.dim, 16, seed=2)
        z = model.gnn_forward(graph[0])
        state = model.init_state(graph.num_vertices)
        rows = np.arange(10)
        h_rows, _ = model.cell_step_rows(z, state, rows, None)
        h_plain, _ = model.cell.step(z[rows], type(state)(
            h=state.h[rows], c=state.c[rows]
        ))
        np.testing.assert_allclose(h_rows, h_plain, rtol=1e-6)


class TestRecurrentDrive:
    def test_plain_cells_return_state(self, graph):
        model = make_model("T-GCN", graph.dim, 16, seed=2)
        state = model.init_state(graph.num_vertices)
        assert model.recurrent_drive(state, graph[0]) is state.h

    def test_gclstm_aggregates(self, graph):
        model = make_model("GC-LSTM", graph.dim, 16, seed=2)
        state = model.init_state(graph.num_vertices)
        state.h += 1.0
        drive = model.recurrent_drive(state, graph[0])
        assert drive is not state.h
        # aggregation of a constant field is the constant (mean norm)
        present = graph[0].present
        np.testing.assert_allclose(drive[present], 1.0, rtol=1e-5)

    def test_gclstm_without_snap(self, graph):
        model = make_model("GC-LSTM", graph.dim, 16, seed=2)
        state = model.init_state(graph.num_vertices)
        assert model.recurrent_drive(state, None) is state.h


class TestForwardWindow:
    def test_state_chaining(self, graph):
        """forward_window with an explicit state must continue exactly
        where a previous window stopped."""
        model = make_model("T-GCN", graph.dim, 16, seed=2)
        full, _ = model.forward_window(graph)
        first, state = model.forward_window(graph.window(0, 3))
        second, _ = model.forward_window(graph.window(3, 3), state=state)
        for a, b in zip(full, first + second):
            np.testing.assert_allclose(a, b, rtol=1e-6)

    def test_flop_helpers(self, graph):
        model = make_model("T-GCN", graph.dim, 16, seed=2)
        assert model.gnn_flops(100, 500) > 0
        assert model.cell_flops(100) == 100 * model.cell.flops_per_vertex()
