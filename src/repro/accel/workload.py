"""Workload characterisation shared by every platform simulator.

Platform models need structural quantities the functional engines do not
track — how many latency-bound (random) accesses a storage layout incurs,
how large the affected subgraph is per window, how imbalanced the degree
distribution is.  :class:`WorkloadStats` derives them once per
(graph, model, window) so all platforms price the *same* workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.classify import classify_window
from ..analysis.subgraph import extract_affected_subgraph
from ..graphs.dynamic import DynamicGraph
from ..models.base import DGNNModel

__all__ = ["WindowStats", "WorkloadStats"]


@dataclass(frozen=True)
class WindowStats:
    """Per-window structural quantities."""

    num_snapshots: int
    present_total: int  # sum of present vertices over snapshots
    edges_total: int  # sum of directed edges over snapshots
    unaffected: int
    stable: int
    affected: int
    subgraph_vertices: int
    subgraph_edges: int  # edges of the affected subgraph across snapshots


@dataclass
class WorkloadStats:
    """Whole-run workload characterisation."""

    graph: DynamicGraph
    model: DGNNModel
    window_size: int
    windows: list[WindowStats] = field(default_factory=list)

    @classmethod
    def analyze(
        cls, graph: DynamicGraph, model: DGNNModel, window_size: int = 4
    ) -> "WorkloadStats":
        ws = cls(graph, model, window_size)
        for start in range(0, graph.num_snapshots, window_size):
            size = min(window_size, graph.num_snapshots - start)
            window = graph.window(start, size)
            c = classify_window(window)
            sg = extract_affected_subgraph(window, c)
            counts = c.counts()
            sub_edges = 0
            if sg.num_vertices:
                mask = np.zeros(graph.num_vertices, dtype=bool)
                mask[sg.vertices] = True
                for snap in window:
                    src = np.repeat(
                        np.arange(snap.num_vertices, dtype=np.int64), snap.degrees
                    )
                    sub_edges += int(mask[src].sum())
            ws.windows.append(
                WindowStats(
                    num_snapshots=size,
                    present_total=sum(s.num_present for s in window),
                    edges_total=sum(s.num_edges for s in window),
                    unaffected=counts["unaffected"],
                    stable=counts["stable"],
                    affected=counts["affected"],
                    subgraph_vertices=sg.num_vertices,
                    subgraph_edges=sub_edges,
                )
            )
        return ws

    # ------------------------------------------------------------------
    @property
    def total_edges(self) -> int:
        return sum(w.edges_total for w in self.windows)

    @property
    def total_present(self) -> int:
        return sum(w.present_total for w in self.windows)

    @property
    def num_gnn_layers(self) -> int:
        return len(self.model.gnn.layers)

    def random_accesses_csr(self) -> int:
        """Latency-bound accesses of a per-snapshot CSR execution: one
        per neighbour feature gather per GCN layer, plus one row lookup
        per vertex per snapshot."""
        return self.total_edges * self.num_gnn_layers + self.total_present

    def random_accesses_ocsr(self) -> int:
        """Latency-bound accesses under O-CSR: one per affected-subgraph
        run per window (contiguous runs) plus one per subgraph vertex for
        the feature-table region."""
        return sum(2 * w.subgraph_vertices for w in self.windows) + len(self.windows)

    def scored_vertices(self) -> int:
        """Vertices the SCU scores over the run (stable + affected per
        consecutive pair)."""
        return sum(
            (w.stable + w.affected) * max(0, w.num_snapshots - 1)
            for w in self.windows
        )

    def avg_degree(self) -> float:
        if self.total_present == 0:
            return 0.0
        return self.total_edges / self.total_present

    def load_imbalance(self, num_units: int, *, balanced: bool) -> float:
        """Max/mean load across compute units when tasks (vertices
        weighted by degree) are assigned greedily by descending weight
        (balanced — the Task Dispatcher's policy) or by contiguous
        vertex-id chunks (unbalanced baseline).

        Uses the first snapshot's degree distribution as representative.
        """
        degrees = self.graph[0].degrees.astype(np.int64) + 1
        if num_units <= 1 or degrees.sum() == 0:
            return 1.0
        if balanced:
            loads = np.zeros(num_units, dtype=np.int64)
            for d in -np.sort(-degrees):
                loads[np.argmin(loads)] += d
            mean = loads.mean()
            return float(loads.max() / mean) if mean else 1.0

        # Baseline dispatchers chunk vertices in arrival order.  Arrival
        # order carries *mild* degree correlation (older vertices have
        # accumulated more edges) but is far from degree-sorted — model it
        # as a log-blend of the fully-correlated (contiguous chunk on the
        # degree-sorted synthetic ids) and fully-decorrelated (random-
        # permutation chunk) imbalances, weighted 0.3 / 0.7.
        def chunk_imbalance(vals: np.ndarray) -> float:
            chunks = np.array_split(vals, num_units)
            loads = np.array([c.sum() for c in chunks])
            mean = loads.mean()
            return float(loads.max() / mean) if mean else 1.0

        rng = np.random.default_rng(12345)
        correlated = chunk_imbalance(degrees)
        decorrelated = chunk_imbalance(degrees[rng.permutation(len(degrees))])
        return float(correlated**0.3 * decorrelated**0.7)
