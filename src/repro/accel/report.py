"""The common result type every platform simulator returns."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine.metrics import ExecutionMetrics

__all__ = ["SimulationReport"]


@dataclass
class SimulationReport:
    """Latency/energy outcome of one (platform, model, dataset) run.

    ``breakdown`` maps component/phase names to cycles (platform-specific
    keys); ``metrics`` carries the functional counters the numbers were
    derived from, so benches can recompute ratios without re-running.
    """

    platform: str
    model: str
    dataset: str
    cycles: float
    seconds: float
    joules: float
    breakdown: dict[str, float] = field(default_factory=dict)
    metrics: ExecutionMetrics | None = None
    extra: dict = field(default_factory=dict)

    @property
    def watts(self) -> float:
        """Average power over the run."""
        return self.joules / self.seconds if self.seconds else 0.0

    def speedup_over(self, other: "SimulationReport") -> float:
        """How much faster *self* is than *other*."""
        if self.seconds == 0:
            return float("inf")
        return other.seconds / self.seconds

    def energy_saving_over(self, other: "SimulationReport") -> float:
        """Energy ratio other/self (>1 means self is more efficient)."""
        if self.joules == 0:
            return float("inf")
        return other.joules / self.joules

    def breakdown_fractions(self) -> dict[str, float]:
        total = sum(self.breakdown.values())
        if total == 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / total for k, v in self.breakdown.items()}
