"""FPGA resource model — reproduces Table 3 as a capacity check.

Table 3 reports post-implementation utilisation of the XCU280 for the
three model bitstreams.  We reproduce it with an area model: each unit of
the configured architecture contributes DSPs/LUTs/FFs/BRAM/URAM per the
usual Vivado costs (a DSP48 pair per MAC, control logic per pipeline,
ping-pong feature storage in URAM), with model-dependent terms for the
GNN depth and the cell type (an LSTM datapath is four gates, a GRU three,
GC-LSTM adds the recurrent-convolution datapath).  Constants are
calibrated once against the paper's reported utilisation at the paper's
configuration (4,096 MACs, real-dataset feature widths) — the *model*
then predicts how utilisation moves when the config changes, which is
what the sensitivity benches exercise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.base import DGNNModel
from ..models.rnn import GRUCell
from ..models.zoo import GraphLSTMCell
from .config import TaGNNConfig

__all__ = ["XCU280", "FPGAResources", "estimate_resources"]

#: XCU280 device totals (Section 5.1: 1.08 M LUTs, 4.5 MB BRAM, 30 MB
#: UltraRAM, 9,024 DSP slices; FFs are 2x LUTs on UltraScale+).
XCU280 = {
    "DSP": 9024,
    "LUT": 1_080_000,
    "FF": 2_160_000,
    "BRAM_bytes": int(4.5 * 1024 * 1024),
    "URAM_bytes": 30 * 1024 * 1024,
}


@dataclass(frozen=True)
class FPGAResources:
    """Absolute usage plus utilisation fractions against the XCU280."""

    dsp: int
    lut: int
    ff: int
    bram_bytes: int
    uram_bytes: int

    def utilization(self) -> dict[str, float]:
        return {
            "DSP": self.dsp / XCU280["DSP"],
            "LUT": self.lut / XCU280["LUT"],
            "FF": self.ff / XCU280["FF"],
            "BRAM": self.bram_bytes / XCU280["BRAM_bytes"],
            "UltraRAM": self.uram_bytes / XCU280["URAM_bytes"],
        }

    def fits(self) -> bool:
        return all(v <= 1.0 for v in self.utilization().values())


def _cell_kind(model: DGNNModel) -> str:
    if isinstance(model.cell, GraphLSTMCell):
        return "graph-lstm"
    if isinstance(model.cell, GRUCell):
        return "gru"
    return "lstm"


def estimate_resources(
    model: DGNNModel, config: TaGNNConfig | None = None
) -> FPGAResources:
    """Area estimate for one model bitstream at a configuration."""
    cfg = config or TaGNNConfig()
    layers = len(model.gnn.layers)
    kind = _cell_kind(model)
    gates = {"lstm": 4, "graph-lstm": 4, "gru": 3}[kind]

    # --- DSP: ~1.5 DSP48 per MAC, plus SCU lanes, activation gates,
    # delta/condense datapath, and the recurrent convolution for GC-LSTM.
    dsp = int(
        cfg.total_macs * 1.5
        + cfg.scu_count * cfg.scu_lanes * 2
        + gates * 64
        + 128  # condense / delta generation
        + (384 if kind == "graph-lstm" else 0)
    )

    # --- LUT: control + per-DCU logic + MSDL/TFSM + ARU + per-layer
    # sequencing, plus the recurrent-convolution address generation.
    lut = int(
        200_000
        + cfg.num_dcus * 8_000
        + 40_000  # MSDL + TFSM
        + 30_000  # Adaptive RNN Unit control
        + layers * 25_000
        + (60_000 if kind == "graph-lstm" else 0)
    )

    # --- FF: pipeline registers track LUT fabric usage.
    ff = int(lut * 1.6 if kind != "graph-lstm" else lut * 1.5)

    # --- BRAM: the Table 4 small buffers + per-layer ping-pong staging
    # + cell-state banks.
    cell_bram = {"lstm": 0.40, "graph-lstm": 1.20, "gru": 1.20}[kind]
    bram = int((1.00 + 0.45 * layers + cell_bram) * 1024 * 1024)

    # --- URAM: multi-snapshot feature storage dominates (window x
    # real-dataset feature widths), plus per-layer intermediate tiles.
    cell_uram = {"lstm": 0.20, "graph-lstm": 3.00, "gru": 0.85}[kind]
    uram = int((22.5 + 0.75 * layers + cell_uram) * 1024 * 1024)

    return FPGAResources(dsp, lut, ff, bram_bytes=bram, uram_bytes=uram)
