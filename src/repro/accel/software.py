"""Software platform models: CPU and GPU DGNN frameworks.

Parameterised from the paper's own measurements and the platforms'
public specifications:

* **DGL-CPU** on the Xeon 6151: sparse DGNN kernels achieve a few percent
  of peak FLOPs, DRAM gathers have little memory-level parallelism, and
  the framework adds per-snapshot graph-construction overhead.
* **PiPAD** on the A100: the best GPU framework — its pipelining overlaps
  transfer and compute and its caching removes part of the redundant
  traffic, but the paper measures <= 22.3 % SM utilisation and ~70 %
  memory time, plus per-snapshot kernel-launch overhead.
* **PyGT / CacheG / ESDG**: the Fig. 2 motivation frameworks, derived
  from PiPAD's platform with progressively weaker caching/overlap
  (matching the orderings measured in Fig. 2(b) and 2(c)).
"""

from __future__ import annotations

from ..hardware.energy import CPU_XEON, GPU_A100
from .platform import PlatformModel

__all__ = [
    "DGL_CPU",
    "TAGNN_S",
    "TaGNNSoftware",
    "PIPAD",
    "PYGT",
    "CACHEG",
    "ESDG",
    "SOFTWARE_PLATFORMS",
    "MOTIVATION_FRAMEWORKS",
]

DGL_CPU = PlatformModel(
    name="DGL-CPU",
    frequency_mhz=3000.0,
    macs=1024,  # 64 cores x 2 FMA ports x 8 lanes, as MAC slots
    mac_efficiency=0.5,
    bandwidth_gbs=60.0,
    outstanding_requests=0.45,
    phase_overlap=0.1,
    energy=CPU_XEON,
    snapshot_overhead_us=600.0,
    compute_utilization=0.02,  # sparse kernels on CPU
)

PIPAD = PlatformModel(
    name="PiPAD",
    frequency_mhz=1410.0,
    macs=13824,  # A100 FP32 CUDA-core MACs
    mac_efficiency=1.0,
    bandwidth_gbs=1555.0,
    outstanding_requests=2.4,
    phase_overlap=0.6,  # pipelined transfer/compute
    energy=GPU_A100,
    snapshot_overhead_us=150.0,
    compute_utilization=0.22,  # the paper's measured SM utilisation
    redundancy_elimination=0.15,  # its dimension-caching
)

PYGT = PlatformModel(
    name="PyGT",
    frequency_mhz=1410.0,
    macs=13824,
    mac_efficiency=1.0,
    bandwidth_gbs=1555.0,
    outstanding_requests=1.1,
    phase_overlap=0.1,
    energy=GPU_A100,
    snapshot_overhead_us=320.0,
    compute_utilization=0.12,
)

CACHEG = PlatformModel(
    name="CacheG",
    frequency_mhz=1410.0,
    macs=13824,
    mac_efficiency=1.0,
    bandwidth_gbs=1555.0,
    outstanding_requests=1.5,
    phase_overlap=0.3,
    energy=GPU_A100,
    snapshot_overhead_us=260.0,
    compute_utilization=0.15,
    redundancy_elimination=0.08,
)

ESDG = PlatformModel(
    name="ESDG",
    frequency_mhz=1410.0,
    macs=13824,
    mac_efficiency=1.0,
    bandwidth_gbs=1555.0,
    outstanding_requests=1.8,
    phase_overlap=0.4,
    energy=GPU_A100,
    snapshot_overhead_us=220.0,
    compute_utilization=0.17,
    redundancy_elimination=0.10,
)

SOFTWARE_PLATFORMS = {p.name: p for p in (DGL_CPU, PIPAD)}
MOTIVATION_FRAMEWORKS = {p.name: p for p in (PYGT, CACHEG, ESDG, PIPAD)}


# ----------------------------------------------------------------------
# TaGNN-S: the paper's software implementation of the topology-aware
# concurrent execution approach (modified DGL running on the same A100).
# ----------------------------------------------------------------------
from dataclasses import dataclass as _dataclass

from ..engine.concurrent import ConcurrentEngine as _ConcurrentEngine
from .report import SimulationReport as _SimulationReport
from .workload import WorkloadStats as _WorkloadStats

_RANDOM_NS = 45.0


@_dataclass(frozen=True)
class TaGNNSoftware:
    """TaGNN-S priced on the A100.

    It executes the ConcurrentEngine workload — fewer words, fewer
    gathers (only the affected subgraph is re-gathered, in DFS order, so
    memory-level parallelism is better than PiPAD's), far fewer cell
    updates — but pays a large *runtime overhead* for the topology
    analysis, which general-purpose hardware executes as irregular
    scalar code (Section 3.2).  The paper measures that overhead at
    40–62 % of TaGNN-S's total time, which is why TaGNN-S only slightly
    outperforms PiPAD and why the bespoke accelerator is justified.
    """

    name: str = "TaGNN-S"
    bandwidth_gbs: float = 1555.0
    outstanding_requests: float = 7.5  # DFS-ordered gathers coalesce better
    macs: int = 13824
    compute_utilization: float = 0.25
    frequency_mhz: float = 1410.0
    scalar_gops: float = 0.35  # topology analysis on GPU scalar paths
    window_overhead_us: float = 200.0  # classification/DFS kernel chains
    snapshot_overhead_us: float = 30.0

    def simulate(
        self,
        model,
        graph,
        dataset="?",
        *,
        engine_result=None,
        workload=None,
        window_size: int = 4,
    ) -> _SimulationReport:
        if engine_result is None:
            engine_result = _ConcurrentEngine(model, window_size=window_size).run(graph)
        if workload is None:
            workload = _WorkloadStats.analyze(graph, model, window_size)
        metrics = engine_result.metrics

        layers = len(model.gnn.layers)
        randoms = sum(w.subgraph_edges for w in workload.windows) * layers
        mem_s = (
            metrics.total_words * 4 / (self.bandwidth_gbs * 1e9)
            + randoms * _RANDOM_NS * 1e-9 / self.outstanding_requests
        )
        comp_s = metrics.total_macs / (
            self.macs * self.compute_utilization * self.frequency_mhz * 1e6
        )
        overhead_s = (
            metrics.overhead_ops / (self.scalar_gops * 1e9)
            + metrics.windows_processed * self.window_overhead_us * 1e-6
            + metrics.snapshots_processed * self.snapshot_overhead_us * 1e-6
        )
        seconds = max(mem_s, comp_s) + 0.5 * min(mem_s, comp_s) + overhead_s
        cycles = seconds * self.frequency_mhz * 1e6
        joules = GPU_A100.total_joules(
            macs=metrics.total_macs + metrics.overhead_ops,
            sram_words=2.0 * metrics.total_words,
            dram_words=metrics.total_words,
            cycles=cycles,
        )
        return _SimulationReport(
            platform=self.name,
            model=model.name,
            dataset=dataset,
            cycles=cycles,
            seconds=seconds,
            joules=joules,
            breakdown={
                "memory_s": mem_s,
                "compute_s": comp_s,
                "overhead_s": overhead_s,
            },
            metrics=metrics,
            extra={"randoms": randoms},
        )


TAGNN_S = TaGNNSoftware()
