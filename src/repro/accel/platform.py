"""Generic platform cost model for snapshot-by-snapshot executors.

Every baseline — the software frameworks (DGL-CPU, PyGT, CacheG, ESDG,
PiPAD) and the accelerator comparators (DGNN-Booster, E-DGCN,
Cambricon-DG) — executes the conventional pattern whose functional
counters the :class:`ReferenceEngine` produces.  What distinguishes the
platforms is how they *price* that pattern:

* achievable compute rate (``macs_per_cycle`` × ``mac_efficiency`` ×
  clock, derated by measured utilisation for the software platforms);
* memory behaviour: streamed bandwidth, plus latency-bound random
  accesses amortised over ``outstanding_requests`` in-flight misses;
* how much of the memory time overlaps compute (``phase_overlap``: the
  paper's temporal-dependency stalls mean baselines overlap poorly);
* optional ``redundancy_elimination``: the fraction of *redundant*
  traffic the platform's own mechanism removes (Cambricon-DG's nonlinear
  isolation; the caching of CacheG/PiPAD);
* fixed per-snapshot framework overhead (kernel launches, graph
  bookkeeping — dominant for DGL/PyG-family software).

A note on regime: Section 2.2 stresses that real DGNN feature volumes
(512–1024 dims over millions of vertices) exceed on-chip capacity, so
every feature access event is off-chip traffic.  The models below price
access *events* to stay in that regime even though the scaled-down
synthetic graphs would physically fit in a few megabytes — see DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.metrics import ExecutionMetrics
from ..engine.reference import ReferenceEngine
from ..graphs.dynamic import DynamicGraph
from ..hardware.energy import EnergyModel
from ..models.base import DGNNModel
from .report import SimulationReport
from .workload import WorkloadStats

__all__ = ["PlatformModel"]

_RANDOM_NS = 45.0  # DRAM row-activation latency all platforms share


@dataclass(frozen=True)
class PlatformModel:
    """A priced snapshot-by-snapshot platform."""

    name: str
    frequency_mhz: float
    macs: int
    mac_efficiency: float
    bandwidth_gbs: float
    outstanding_requests: float
    phase_overlap: float  # 0 = fully serial phases, 1 = fully overlapped
    energy: EnergyModel
    redundancy_elimination: float = 0.0
    snapshot_overhead_us: float = 0.0
    compute_utilization: float = 1.0  # measured util. (software platforms)

    def __post_init__(self) -> None:
        if not 0 <= self.phase_overlap <= 1:
            raise ValueError("phase_overlap in [0, 1]")
        if not 0 <= self.redundancy_elimination <= 1:
            raise ValueError("redundancy_elimination in [0, 1]")
        if not 0 < self.compute_utilization <= 1:
            raise ValueError("compute_utilization in (0, 1]")

    # ------------------------------------------------------------------
    def simulate(
        self,
        model: DGNNModel,
        graph: DynamicGraph,
        dataset: str = "?",
        *,
        window_size: int = 4,
        metrics: ExecutionMetrics | None = None,
        workload: WorkloadStats | None = None,
    ) -> SimulationReport:
        """Price the conventional execution of ``model`` over ``graph``."""
        if metrics is None:
            metrics = ReferenceEngine(model, window_size=window_size).run(graph).metrics
        if workload is None:
            workload = WorkloadStats.analyze(graph, model, window_size)

        words = float(metrics.total_words)
        words -= self.redundancy_elimination * metrics.redundant_words
        randoms = workload.random_accesses_csr() * (
            1.0 - self.redundancy_elimination
        )

        mem_s = (
            words * 4 / (self.bandwidth_gbs * 1e9)
            + randoms * _RANDOM_NS * 1e-9 / self.outstanding_requests
        )
        comp_rate = (
            self.macs
            * self.mac_efficiency
            * self.compute_utilization
            * self.frequency_mhz
            * 1e6
        )
        comp_s = metrics.total_macs / comp_rate
        overhead_s = self.snapshot_overhead_us * 1e-6 * metrics.snapshots_processed

        hi, lo = max(mem_s, comp_s), min(mem_s, comp_s)
        seconds = hi + (1.0 - self.phase_overlap) * lo + overhead_s
        cycles = seconds * self.frequency_mhz * 1e6

        e_macs = self.energy.dynamic_joules(macs=metrics.total_macs)
        e_sram = self.energy.dynamic_joules(
            # deliberate cross-unit heuristic: SRAM traffic estimated as
            # 2 words/feature-word moved + 0.5 words/MAC operand reuse
            sram_words=2.0 * words + 0.5 * metrics.total_macs  # repro: noqa R003
        )
        e_dram = self.energy.dynamic_joules(dram_words=words)
        e_static = self.energy.static_joules(cycles)
        joules = e_macs + e_sram + e_dram + e_static
        return SimulationReport(
            platform=self.name,
            model=model.name,
            dataset=dataset,
            cycles=cycles,
            seconds=seconds,
            joules=joules,
            breakdown={
                "memory_s": mem_s,
                "compute_s": comp_s,
                "overhead_s": overhead_s,
            },
            metrics=metrics,
            extra={
                "words": words,
                "randoms": randoms,
                "utilization": min(1.0, comp_s / seconds) if seconds else 0.0,
                "energy_breakdown": {
                    "compute_j": e_macs,
                    "sram_j": e_sram,
                    "dram_j": e_dram,
                    "static_j": e_static,
                },
            },
        )
