"""The DGNN accelerator baselines of Table 4.

All three execute snapshot-by-snapshot with the Table 4 fabric (4,096
MACs, 256 GB/s HBM 2.0) and are priced on the shared
:class:`PlatformModel`; what differs is their published mechanism:

* **DGNN-Booster** (FPGA, 280 MHz, 5 MB on-chip): generic multi-level
  parallelism, no redundancy elimination, GNN/RNN phases largely serial
  (its two dataflows hand off through off-chip buffers), modest
  memory-level parallelism — the weakest comparator.
* **E-DGCN** (ASIC, 1 GHz, 12 MB): reconfigurable PEs give high compute
  efficiency and better phase overlap, but traffic is unreduced, so it
  stays bandwidth/latency-bound.
* **Cambricon-DG** (ASIC, 1 GHz): its nonlinear-isolation mechanism
  removes a large share of *redundant aggregation* work and traffic
  (modelled as ``redundancy_elimination``), plus strong memory-level
  parallelism — the strongest comparator, as in the paper.

Calibration targets (paper Section 5.2): TaGNN beats Booster / E-DGCN /
Cambricon-DG by ~13.5x / 10.2x / 6.5x on average, with energy ratios
15.9x / 11.7x / 7.8x.
"""

from __future__ import annotations

from ..hardware.energy import ASIC_1GHZ, FPGA_U280
from .platform import PlatformModel

__all__ = ["DGNN_BOOSTER", "E_DGCN", "CAMBRICON_DG", "ACCELERATOR_BASELINES"]

DGNN_BOOSTER = PlatformModel(
    name="DGNN-Booster",
    frequency_mhz=280.0,
    macs=4096,
    mac_efficiency=0.70,
    bandwidth_gbs=256.0,
    outstanding_requests=20.0,
    phase_overlap=0.5,
    energy=FPGA_U280,
)

E_DGCN = PlatformModel(
    name="E-DGCN",
    frequency_mhz=1000.0,
    macs=4096,
    mac_efficiency=0.85,
    bandwidth_gbs=256.0,
    outstanding_requests=28.0,
    phase_overlap=0.7,
    energy=ASIC_1GHZ,
)

CAMBRICON_DG = PlatformModel(
    name="Cambricon-DG",
    frequency_mhz=1000.0,
    macs=4096,
    mac_efficiency=0.85,
    bandwidth_gbs=256.0,
    outstanding_requests=24.0,
    phase_overlap=0.7,
    energy=ASIC_1GHZ,
    redundancy_elimination=0.48,
)

ACCELERATOR_BASELINES = {
    p.name: p for p in (DGNN_BOOSTER, E_DGCN, CAMBRICON_DG)
}
