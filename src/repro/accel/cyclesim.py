"""Event-driven (per-task) cycle simulation of the TaGNN dataflow.

The top-level :class:`~repro.accel.tagnn.TaGNNSimulator` prices workloads
*analytically* (busy-cycle formulas composed with overlap rules).  This
module provides the cross-check: a deterministic queueing-network
simulation at task granularity —

    MSDL loader ──> bounded Task FIFO ──> Dispatcher ──> DCU servers
                                                          │
                                                          ▼
                                              Adaptive RNN Unit servers

— with real backpressure (the loader stalls when the Task FIFO is full)
and real per-task service times.  The validation tests require the two
models to agree on total cycles within a constant factor, and the bench
suite uses the event model to expose queueing effects the analytic model
cannot see (FIFO sizing, transient imbalance).

The simulation is deterministic: same tasks, same result.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass

import numpy as np

from ..check.sanitizer import (
    check_cyclesim_result,
    require,
    sanitizer_enabled,
)
from .config import TaGNNConfig
from .workload import WorkloadStats

__all__ = ["Task", "CycleSimResult", "CycleSimulator", "tasks_from_workload"]


@dataclass(frozen=True)
class Task:
    """One vertex-level computation task.

    ``gnn_macs`` runs on a DCU; ``rnn_macs`` (cell update + similarity
    work) runs on the Adaptive RNN Unit afterwards.  ``load_words`` is
    the loader effort to assemble the task entry (paper: Vertex Type,
    Source ID, Target IDs, features, timestamps).
    """

    vertex: int
    gnn_macs: float
    rnn_macs: float
    load_words: float


@dataclass
class CycleSimResult:
    """Outcome of one event-driven run."""

    total_cycles: float
    loader_stall_cycles: float
    dcu_utilization: float
    aru_utilization: float
    max_fifo_occupancy: int
    tasks: int

    def summary(self) -> dict:
        return {
            "total_cycles": round(self.total_cycles, 1),
            "loader_stall_cycles": round(self.loader_stall_cycles, 1),
            "dcu_utilization": round(self.dcu_utilization, 3),
            "aru_utilization": round(self.aru_utilization, 3),
            "max_fifo_occupancy": self.max_fifo_occupancy,
            "tasks": self.tasks,
        }


def tasks_from_workload(
    workload: WorkloadStats,
    *,
    hidden_dim: int | None = None,
    skip_ratio: float = 0.0,
) -> list[Task]:
    """Derive the per-vertex task list of one run from workload stats.

    Unaffected vertices produce one task for the whole window (computed
    once); subgraph vertices produce one task per snapshot.  Service
    demands use the model's real dimensions and the vertex's degree.
    ``skip_ratio`` scales the cell-update work down by the fraction the
    similarity gate removes (pass the engine's measured
    ``metrics.skip_ratio()`` to model ADSC; 0 models WO/ADSC).
    """
    if not 0.0 <= skip_ratio <= 1.0:
        raise ValueError("skip_ratio in [0, 1]")
    model = workload.model
    graph = workload.graph
    dim = graph.dim
    hid = hidden_dim or model.out_dim
    degrees = graph[0].degrees
    cell_macs = model.cell.flops_per_vertex() / 2.0

    tasks: list[Task] = []
    rng = np.random.default_rng(0)
    for w in workload.windows:
        n_sub = w.subgraph_vertices
        sub_deg = (
            rng.choice(degrees, size=n_sub) if n_sub else np.empty(0, np.int64)
        )
        # subgraph vertices: per-snapshot GNN work + scored RNN work
        for d in sub_deg.tolist():
            gnn = model.gnn_flops(1, int(d)) / 2.0 * w.num_snapshots
            tasks.append(
                Task(
                    vertex=-1,
                    gnn_macs=float(gnn),
                    # cell update (scaled by the skip fraction) + scoring
                    rnn_macs=float(cell_macs * (1.0 - skip_ratio) + hid),
                    load_words=float((d + 1) * w.num_snapshots + dim),
                )
            )
        # unaffected vertices: once per window, skip the RNN
        n_un = w.unaffected
        un_deg = (
            rng.choice(degrees, size=n_un) if n_un else np.empty(0, np.int64)
        )
        for d in un_deg.tolist():
            tasks.append(
                Task(
                    vertex=-1,
                    gnn_macs=float(model.gnn_flops(1, int(d))) / 2.0,
                    rnn_macs=0.0,
                    load_words=float(d + 1 + dim),
                )
            )
    return tasks


class CycleSimulator:
    """Deterministic per-task queueing simulation of the TaGNN pipeline."""

    def __init__(
        self,
        config: TaGNNConfig | None = None,
        *,
        fifo_capacity: int | None = None,
        loader_words_per_cycle: float = 32.0,
    ):
        self.config = config or TaGNNConfig()
        if fifo_capacity is None:
            # Task FIFO capacity from Table 4 (256 KB); one entry is
            # roughly 64 bytes of descriptors
            fifo_capacity = 256 * 1024 // 64
        if fifo_capacity < 1:
            raise ValueError("fifo_capacity must be >= 1")
        self.fifo_capacity = fifo_capacity
        self.loader_words_per_cycle = loader_words_per_cycle

    # ------------------------------------------------------------------
    def run(self, tasks: list[Task]) -> CycleSimResult:
        cfg = self.config
        if not tasks:
            return CycleSimResult(0.0, 0.0, 0.0, 0.0, 0, 0)

        dcu_rate = cfg.cpes_per_dcu * cfg.mac_efficiency  # MACs/cycle/DCU
        n_dcu = cfg.num_dcus
        aru_rate = cfg.scu_lanes * 4.0  # MACs/cycle per ARU lane group
        n_aru = cfg.scu_count

        # min-heaps of server free times
        dcu_free = [0.0] * n_dcu
        aru_free = [0.0] * n_aru
        heapq.heapify(dcu_free)
        heapq.heapify(aru_free)

        sanitize = sanitizer_enabled()
        loader_t = 0.0
        stall = 0.0
        dcu_busy = 0.0
        aru_busy = 0.0
        max_occ = 0
        # dispatch time of each task (when it leaves the FIFO = its DCU
        # service start); used for the bounded-FIFO backpressure rule
        dispatch_times: list[float] = []

        for i, task in enumerate(tasks):
            # --- loader: serialise task assembly, block on FIFO space ---
            emit_ready = loader_t + task.load_words / self.loader_words_per_cycle
            if i >= self.fifo_capacity:
                # the slot of task (i - capacity) frees when it dispatches
                slot_free = dispatch_times[i - self.fifo_capacity]
                if slot_free > emit_ready:
                    stall += slot_free - emit_ready
                    emit_ready = slot_free
            loader_t = emit_ready

            # --- dispatcher -> earliest-free DCU ---------------------
            free = heapq.heappop(dcu_free)
            start = max(loader_t, free)
            service = task.gnn_macs / dcu_rate
            finish = start + service
            dcu_busy += service
            heapq.heappush(dcu_free, finish)
            dispatch_times.append(start)

            # FIFO occupancy: tasks emitted but not yet dispatched.
            # dispatch times are non-decreasing (the loader timeline and
            # the min server-free time both are), so bisect applies.
            occ = len(dispatch_times) - bisect.bisect_right(
                dispatch_times, loader_t
            )
            if sanitize:
                # raw (unclamped) occupancy must respect the backpressure
                # rule; clamping below would otherwise hide a violation
                require(
                    occ <= self.fifo_capacity,
                    "cyclesim-fifo-bound", "tasks", occ,
                    f"<= capacity = {self.fifo_capacity}",
                    f"CycleSimulator.run task {i}",
                )
            max_occ = max(max_occ, min(occ, self.fifo_capacity))

            # --- ARU stage -------------------------------------------
            if task.rnn_macs > 0:
                a_free = heapq.heappop(aru_free)
                a_start = max(finish, a_free)
                a_service = task.rnn_macs / aru_rate
                aru_busy += a_service
                heapq.heappush(aru_free, a_start + a_service)

        total = max(max(dcu_free), max(aru_free), loader_t)
        result = CycleSimResult(
            total_cycles=total,
            loader_stall_cycles=stall,
            dcu_utilization=dcu_busy / (total * n_dcu) if total else 0.0,
            aru_utilization=aru_busy / (total * n_aru) if total else 0.0,
            max_fifo_occupancy=max_occ,
            tasks=len(tasks),
        )
        if sanitize:
            check_cyclesim_result(
                result,
                n_dcu=n_dcu,
                n_aru=n_aru,
                fifo_capacity=self.fifo_capacity,
                dcu_busy=dcu_busy,
                aru_busy=aru_busy,
            )
        return result

    # ------------------------------------------------------------------
    def run_workload(
        self, workload: WorkloadStats, *, skip_ratio: float = 0.0
    ) -> CycleSimResult:
        return self.run(tasks_from_workload(workload, skip_ratio=skip_ratio))
