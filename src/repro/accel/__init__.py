"""The TaGNN accelerator simulator and every comparison platform."""

from .baselines import ACCELERATOR_BASELINES, CAMBRICON_DG, DGNN_BOOSTER, E_DGCN
from .config import TaGNNConfig
from .cyclesim import CycleSimResult, CycleSimulator, Task, tasks_from_workload
from .partition import GSPM, Partition, PartitionPlan, PartitionStrategy
from .platform import PlatformModel
from .report import SimulationReport
from .resources import FPGAResources, estimate_resources
from .software import (
    CACHEG,
    DGL_CPU,
    ESDG,
    MOTIVATION_FRAMEWORKS,
    PIPAD,
    PYGT,
    SOFTWARE_PLATFORMS,
    TAGNN_S,
    TaGNNSoftware,
)
from .tagnn import TaGNNSimulator
from .workload import WindowStats, WorkloadStats

__all__ = [
    "ACCELERATOR_BASELINES",
    "CAMBRICON_DG",
    "DGNN_BOOSTER",
    "E_DGCN",
    "TaGNNConfig",
    "CycleSimResult",
    "CycleSimulator",
    "Task",
    "tasks_from_workload",
    "GSPM",
    "Partition",
    "PartitionPlan",
    "PartitionStrategy",
    "PlatformModel",
    "SimulationReport",
    "FPGAResources",
    "estimate_resources",
    "CACHEG",
    "DGL_CPU",
    "ESDG",
    "MOTIVATION_FRAMEWORKS",
    "PIPAD",
    "PYGT",
    "SOFTWARE_PLATFORMS",
    "TAGNN_S",
    "TaGNNSoftware",
    "TaGNNSimulator",
    "WindowStats",
    "WorkloadStats",
]
