"""TaGNN accelerator configuration (paper Table 4 + Section 5.1).

Table 4 lists the compute fabric — 4,096 MACs organised as 16 DCUs of
256 CPEs + 128 APEs — and the on-chip buffer inventory.  Section 5.1
fixes the conservative operating frequency at 225 MHz on the Alveo U280
(Table 4's header quotes the 280 MHz synthesis target; we follow the
experimental setting).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hardware.memory import HBMModel, MemorySubsystem

__all__ = ["TaGNNConfig"]


@dataclass(frozen=True)
class TaGNNConfig:
    """All sizing knobs of the TaGNN simulator.

    The defaults reproduce the paper's evaluated configuration; the
    sensitivity benches (Fig. 14) sweep ``num_dcus``, ``total_macs``,
    and ``window_size``.
    """

    frequency_mhz: float = 225.0
    num_dcus: int = 16
    cpes_per_dcu: int = 256
    apes_per_dcu: int = 128
    window_size: int = 4
    hbm_bandwidth_gbs: float = 256.0
    scu_count: int = 8
    scu_lanes: int = 16
    #: achieved MAC-array utilisation on sparse, irregular DGNN tiles
    mac_efficiency: float = 0.42

    # architecture feature flags (ablations: Figs. 12, 13(a))
    enable_oadl: bool = True  # overlap-aware data loading
    enable_adsc: bool = True  # adaptive data similarity computation
    enable_dispatcher: bool = True  # degree-balanced task dispatch
    enable_pipeline_overlap: bool = True  # MSDL/DCU/ARU dataflow overlap

    #: GSPM strategy when a window exceeds the Feature Memory
    #: ("range" | "balanced" | "locality")
    partition_strategy: str = "locality"

    def __post_init__(self) -> None:
        if self.num_dcus < 1 or self.cpes_per_dcu < 1 or self.apes_per_dcu < 1:
            raise ValueError("unit counts must be >= 1")
        if self.window_size < 1:
            raise ValueError("window_size must be >= 1")
        if self.frequency_mhz <= 0 or self.hbm_bandwidth_gbs <= 0:
            raise ValueError("frequency and bandwidth must be positive")
        if self.scu_count < 1 or self.scu_lanes < 1:
            raise ValueError("SCU counts must be >= 1")
        if not 0.0 < self.mac_efficiency <= 1.0:
            raise ValueError("mac_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    @property
    def total_macs(self) -> int:
        """Total MAC units across CPEs (Table 4: 16 x 256 = 4,096)."""
        return self.num_dcus * self.cpes_per_dcu

    @property
    def total_apes(self) -> int:
        return self.num_dcus * self.apes_per_dcu

    def hbm(self) -> HBMModel:
        return HBMModel(
            bandwidth_gbs=self.hbm_bandwidth_gbs,
            frequency_mhz=self.frequency_mhz,
        )

    def memory_subsystem(self) -> MemorySubsystem:
        return MemorySubsystem.tagnn_default(self.hbm())

    def with_dcus(self, num_dcus: int) -> "TaGNNConfig":
        """Sensitivity helper: scale the DCU count (Fig. 14(b))."""
        return replace(self, num_dcus=num_dcus)

    def with_macs(self, total_macs: int) -> "TaGNNConfig":
        """Sensitivity helper: scale total MACs at fixed DCU count by
        resizing the per-DCU CPE array (Fig. 14(d))."""
        if total_macs % self.num_dcus:
            raise ValueError("total_macs must divide evenly across DCUs")
        return replace(self, cpes_per_dcu=total_macs // self.num_dcus)

    def with_window(self, window_size: int) -> "TaGNNConfig":
        """Sensitivity helper: snapshot batch size (Fig. 14(c))."""
        return replace(self, window_size=window_size)

    def ablated(
        self,
        *,
        oadl: bool | None = None,
        adsc: bool | None = None,
        dispatcher: bool | None = None,
        pipeline_overlap: bool | None = None,
    ) -> "TaGNNConfig":
        """Feature-flag ablations for Figs. 12 and 13(a)."""
        changes = {}
        if oadl is not None:
            changes["enable_oadl"] = oadl
        if adsc is not None:
            changes["enable_adsc"] = adsc
        if dispatcher is not None:
            changes["enable_dispatcher"] = dispatcher
        if pipeline_overlap is not None:
            changes["enable_pipeline_overlap"] = pipeline_overlap
        return replace(self, **changes)
