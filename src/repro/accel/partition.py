"""GSPM — the Graph Snapshot Partition Module (paper Section 4).

"DGNN inference begins with the Graph Snapshot Partition Module (GSPM),
which retrieves a partition from the current batch.  Note that GSPM can
support various partitioning strategies."

When a window's working set (distinct feature versions + structure)
exceeds the on-chip Feature Memory, the MSDL streams it partition by
partition.  Edges whose endpoints land in different partitions force the
remote endpoint's feature to be re-fetched when the owning partition is
processed — so the partitioning strategy's *cut* directly controls the
extra off-chip traffic.  Three strategies are provided:

* ``range`` — contiguous vertex-id blocks (the trivial baseline);
* ``balanced`` — degree-balanced blocks (equalises per-partition work,
  ignores locality);
* ``locality`` — blocks cut from the affected subgraph's DFS discovery
  order, the strategy TaGNN's topology-aware traversal enables (DFS
  neighbours are co-located, minimising the cut).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..analysis.subgraph import AffectedSubgraph, union_adjacency
from ..graphs.dynamic import DynamicGraph

__all__ = ["PartitionStrategy", "Partition", "PartitionPlan", "GSPM"]


class PartitionStrategy(enum.Enum):
    RANGE = "range"
    BALANCED = "balanced"
    LOCALITY = "locality"


@dataclass(frozen=True)
class Partition:
    """One vertex block of a window partition."""

    index: int
    vertices: np.ndarray  # sorted global ids
    feature_words: int  # working-set words this block stages on-chip
    internal_edges: int
    cut_edges: int  # edges to vertices in other partitions

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)


@dataclass
class PartitionPlan:
    """The full partitioning of one window."""

    strategy: PartitionStrategy
    partitions: list[Partition]
    budget_words: int

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    @property
    def total_cut_edges(self) -> int:
        return sum(p.cut_edges for p in self.partitions)

    @property
    def total_internal_edges(self) -> int:
        return sum(p.internal_edges for p in self.partitions)

    def cut_fraction(self) -> float:
        """Fraction of edges crossing partitions — each costs a remote
        feature re-fetch."""
        total = self.total_cut_edges + self.total_internal_edges
        return self.total_cut_edges / total if total else 0.0

    def extra_words(self, dim: int) -> int:
        """Off-chip words added by cross-partition re-fetches."""
        return self.total_cut_edges * dim

    def respects_budget(self) -> bool:
        return all(p.feature_words <= self.budget_words for p in self.partitions)

    def covers(self, vertices: np.ndarray) -> bool:
        got = np.sort(np.concatenate([p.vertices for p in self.partitions])) if (
            self.partitions
        ) else np.empty(0, dtype=np.int64)
        return np.array_equal(got, np.sort(np.asarray(vertices, dtype=np.int64)))


class GSPM:
    """Partition a window's vertex set under an on-chip word budget."""

    def __init__(self, window: DynamicGraph, *, budget_words: int):
        if budget_words < 1:
            raise ValueError("budget_words must be positive")
        self.window = window
        self.budget_words = budget_words
        self._indptr, self._indices = union_adjacency(window)
        self._degrees = np.diff(self._indptr)

    # ------------------------------------------------------------------
    def _words_per_vertex(self) -> int:
        """Staged words per vertex: its feature row (one version — extra
        versions stream) plus its structure entries."""
        return self.window.dim + 2

    def _capacity(self) -> int:
        return max(1, self.budget_words // self._words_per_vertex())

    def _blocks_to_partitions(
        self, blocks: list[np.ndarray], strategy: PartitionStrategy
    ) -> PartitionPlan:
        n = self.window.num_vertices
        owner = np.full(n, -1, dtype=np.int64)
        for i, block in enumerate(blocks):
            owner[block] = i
        partitions = []
        for i, block in enumerate(blocks):
            block = np.sort(np.asarray(block, dtype=np.int64))
            internal = cut = 0
            for v in block.tolist():
                row = self._indices[self._indptr[v] : self._indptr[v + 1]]
                same = owner[row] == i
                internal += int(same.sum())
                cut += int(len(row) - same.sum())
            partitions.append(
                Partition(
                    index=i,
                    vertices=block,
                    feature_words=len(block) * self._words_per_vertex(),
                    internal_edges=internal,
                    cut_edges=cut,
                )
            )
        return PartitionPlan(strategy, partitions, self.budget_words)

    # ------------------------------------------------------------------
    def plan(
        self,
        strategy: PartitionStrategy = PartitionStrategy.LOCALITY,
        *,
        vertices: np.ndarray | None = None,
        subgraph: AffectedSubgraph | None = None,
    ) -> PartitionPlan:
        """Produce a partition plan for ``vertices`` (default: all
        vertices present anywhere in the window)."""
        if vertices is None:
            present = np.zeros(self.window.num_vertices, dtype=bool)
            for s in self.window:
                present |= s.present
            vertices = np.flatnonzero(present)
        vertices = np.asarray(vertices, dtype=np.int64)
        cap = self._capacity()

        if strategy is PartitionStrategy.RANGE:
            blocks = [vertices[i : i + cap] for i in range(0, len(vertices), cap)]
        elif strategy is PartitionStrategy.BALANCED:
            # greedy fill by descending degree with round-robin spill
            order = vertices[np.argsort(-self._degrees[vertices], kind="stable")]
            k = max(1, int(np.ceil(len(vertices) / cap)))
            blocks = [order[i::k] for i in range(k)]
        elif strategy is PartitionStrategy.LOCALITY:
            order = self._locality_order(vertices, subgraph)
            blocks = [order[i : i + cap] for i in range(0, len(order), cap)]
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown strategy {strategy}")
        blocks = [b for b in blocks if len(b)]
        return self._blocks_to_partitions(blocks, strategy)

    def _locality_order(
        self, vertices: np.ndarray, subgraph: AffectedSubgraph | None
    ) -> np.ndarray:
        """DFS discovery order over the union adjacency, seeded by the
        affected subgraph's traversal when available."""
        allowed = np.zeros(self.window.num_vertices, dtype=bool)
        allowed[vertices] = True
        visited = np.zeros(self.window.num_vertices, dtype=bool)
        order: list[int] = []
        seeds = (
            subgraph.dfs_order.tolist() if subgraph is not None else []
        ) + vertices.tolist()
        for seed in seeds:
            if not allowed[seed] or visited[seed]:
                continue
            stack = [int(seed)]
            visited[seed] = True
            while stack:
                v = stack.pop()
                order.append(v)
                row = self._indices[self._indptr[v] : self._indptr[v + 1]]
                for u in row[::-1].tolist():
                    if allowed[u] and not visited[u]:
                        visited[u] = True
                        stack.append(u)
        return np.asarray(order, dtype=np.int64)

    # ------------------------------------------------------------------
    def compare_strategies(
        self, vertices: np.ndarray | None = None
    ) -> dict[str, PartitionPlan]:
        """Plans for every strategy (the GSPM flexibility the paper
        notes), keyed by strategy value."""
        return {
            s.value: self.plan(s, vertices=vertices) for s in PartitionStrategy
        }
