"""The TaGNN accelerator simulator (paper Section 4).

The simulator executes the workload *functionally* through the TaGNN-S
engine (so skipping decisions, delta densities, and MAC counts are real,
not estimated) and then prices it on the hardware model:

* **MSDL** — the 6-stage classification/loading pipeline plus the 5-stage
  TFSM traversal, with the replicated fetch stages of Fig. 6;
* **Task Dispatcher** — degree-balanced task assignment across DCUs
  (disabling it exposes the contiguous-chunk imbalance);
* **DCU array** — CPE MAC arrays for combination + cell updates, APE
  adder trees for aggregation;
* **Adaptive RNN Unit** — SCU similarity scoring, Condense Unit packing,
  activation pipeline;
* **memory** — off-chip HBM traffic under overlap-aware loading: each
  distinct (vertex, version) feature crosses the pins once per window in
  O-CSR's contiguous runs, weights once per window, outputs once per
  changed row.  With OADL disabled the loader degenerates to per-event
  traffic with per-gather random accesses, like the baselines.

All units run in dataflow style (paper Fig. 5): with pipeline overlap
enabled the window's span is the slowest of {load, compute, RNN} plus
pipeline fill; disabling overlap serialises them.
"""

from __future__ import annotations

from ..check.sanitizer import check_energy_composition, sanitizer_enabled
from ..engine.concurrent import ConcurrentEngine
from ..engine.reference import EngineResult
from ..graphs.dynamic import DynamicGraph
from ..hardware.energy import FPGA_U280
from ..hardware.memory import HBMModel
from ..hardware.pipeline import Pipeline, PipelineStage
from ..hardware.units import AdderTree, MACArray, SimilarityCore
from ..models.base import DGNNModel
from .config import TaGNNConfig
from .report import SimulationReport
from .workload import WorkloadStats

__all__ = ["TaGNNSimulator"]

_RANDOM_NS = 45.0


class TaGNNSimulator:
    """Cycle/energy simulator for the TaGNN accelerator."""

    def __init__(self, config: TaGNNConfig | None = None):
        self.config = config or TaGNNConfig()

    # ------------------------------------------------------------------
    def run_engine(self, model: DGNNModel, graph: DynamicGraph) -> EngineResult:
        """The functional half: TaGNN-S with this config's feature flags."""
        cfg = self.config
        return ConcurrentEngine(
            model,
            window_size=cfg.window_size,
            enable_overlap=cfg.enable_oadl,
            enable_skipping=cfg.enable_adsc,
        ).run(graph)

    # ------------------------------------------------------------------
    def simulate(
        self,
        model: DGNNModel,
        graph: DynamicGraph,
        dataset: str = "?",
        *,
        engine_result: EngineResult | None = None,
        workload: WorkloadStats | None = None,
        hbm: HBMModel | None = None,
        plan=None,
    ) -> SimulationReport:
        # ``hbm`` overrides the config's memory model; the resilience
        # fault injector passes a wrapper that raises transient storage
        # errors on selected requests.  ``plan`` is an optional adaptive
        # :class:`~repro.adaptive.plan.ExecutionPlan` whose dataflow hint
        # overrides the configured GSPM partition strategy.
        cfg = self.config
        if engine_result is None:
            engine_result = self.run_engine(model, graph)
        if workload is None:
            workload = WorkloadStats.analyze(graph, model, cfg.window_size)
        metrics = engine_result.metrics
        if hbm is None:
            hbm = cfg.hbm()

        # --- off-chip traffic -------------------------------------------
        words, randoms, gspm_windows = self._offchip_traffic(
            model,
            graph,
            workload,
            metrics,
            partition_strategy=(
                plan.partition_strategy if plan is not None else None
            ),
        )
        hbm_cycles = hbm.cycles(words=words) + (
            randoms * _RANDOM_NS * 1e-9 * cfg.frequency_mhz * 1e6
        ) / 32.0  # deep MSDL pipelining keeps ~32 requests in flight

        # --- MSDL pipelines ----------------------------------------------
        msdl_cycles = self._msdl_cycles(graph, workload)

        # --- DCU compute ----------------------------------------------
        imbalance = workload.load_imbalance(
            cfg.num_dcus, balanced=cfg.enable_dispatcher
        )
        mac_array = MACArray(cfg.total_macs, efficiency=cfg.mac_efficiency)
        adders = AdderTree(width=8, count=max(1, cfg.total_apes // 8))
        comb_cycles = mac_array.cycles(metrics.combination_macs)
        agg_cycles = adders.cycles(metrics.aggregation_macs)
        cell_cycles = mac_array.cycles(metrics.cell_macs) * imbalance
        gnn_cycles = (comb_cycles + agg_cycles) * imbalance

        # --- Adaptive RNN Unit ------------------------------------------
        scu = SimilarityCore(lanes=cfg.scu_lanes, count=cfg.scu_count)
        scored = workload.scored_vertices() if cfg.enable_adsc else 0
        scu_cycles = scu.cycles(scored, model.gnn.out_dim, workload.avg_degree())
        condense_cycles = metrics.cells_delta * model.gnn.out_dim / 16.0
        act_rows = metrics.cells_full + metrics.cells_delta
        act_cycles = act_rows * model.out_dim / 64.0
        # the dispatcher also feeds the ARU's SCUs, so imbalance stalls
        # them the same way it stalls the DCUs
        aru_cycles = (scu_cycles + condense_cycles + act_cycles) * imbalance
        rnn_cycles = cell_cycles + aru_cycles
        dcu_cycles = gnn_cycles + cell_cycles  # reported breakdown

        # --- composition ------------------------------------------------
        # ADSC is what relaxes the inter-snapshot and GNN->RNN temporal
        # dependencies (most cell updates are skipped or reduced to
        # independent delta patches, so the RNN phase streams in dataflow
        # with the rest).  Without it, the full cell updates serialise
        # behind the GNN phase, exactly the dependency stall of Section 2.2.
        fill = 64.0 * metrics.windows_processed  # pipeline fill/drain
        if not cfg.enable_pipeline_overlap:
            total = hbm_cycles + msdl_cycles + gnn_cycles + rnn_cycles + fill
        elif cfg.enable_adsc:
            total = max(hbm_cycles, msdl_cycles, gnn_cycles, rnn_cycles) + fill
        else:
            total = max(hbm_cycles, msdl_cycles, gnn_cycles) + rnn_cycles + fill

        seconds = total / (cfg.frequency_mhz * 1e6)

        # --- energy ------------------------------------------------------
        # event-level words are on-chip (SRAM) traffic; off-chip is `words`
        e_macs = FPGA_U280.dynamic_joules(
            macs=metrics.total_macs + metrics.overhead_ops
        )
        e_sram = FPGA_U280.dynamic_joules(
            # deliberate cross-unit heuristic: SRAM traffic estimated as
            # 2 words/feature-word moved + 0.5 words/MAC operand reuse
            sram_words=2.0 * metrics.total_words + 0.5 * metrics.total_macs  # repro: noqa R003
        )
        e_dram = FPGA_U280.dynamic_joules(dram_words=words)
        e_static = FPGA_U280.static_joules(total)
        joules = e_macs + e_sram + e_dram + e_static
        energy_breakdown = {
            "compute_j": e_macs,
            "sram_j": e_sram,
            "dram_j": e_dram,
            "static_j": e_static,
        }
        if sanitizer_enabled():
            check_energy_composition(joules, energy_breakdown)

        return SimulationReport(
            platform="TaGNN",
            model=model.name,
            dataset=dataset,
            cycles=total,
            seconds=seconds,
            joules=joules,
            breakdown={
                "memory": hbm_cycles,
                "msdl": msdl_cycles,
                "dcu": dcu_cycles,
                "aru": aru_cycles,
                "fill": fill,
            },
            metrics=metrics,
            extra={
                "words": words,
                "randoms": randoms,
                "gspm_windows": gspm_windows,
                "energy_breakdown": energy_breakdown,
                "imbalance": imbalance,
                "utilization": min(1.0, dcu_cycles / total) if total else 0.0,
                "skip_ratio": metrics.skip_ratio(),
                "partition_strategy": (
                    plan.partition_strategy
                    if plan is not None
                    else cfg.partition_strategy
                ),
            },
        )

    # ------------------------------------------------------------------
    def _offchip_traffic(
        self,
        model,
        graph,
        workload: WorkloadStats,
        metrics,
        partition_strategy: str | None = None,
    ) -> tuple[float, float, int]:
        """Off-chip (words, random accesses, windows that needed GSPM
        partitioning) under the configured loader.  ``partition_strategy``
        overrides the config's GSPM strategy (adaptive plans feed their
        dataflow hint through here)."""
        cfg = self.config
        strategy = partition_strategy or cfg.partition_strategy
        dim = graph.dim
        weight_words = sum(
            l.weight.size + l.bias.size for l in model.gnn.layers
        ) + model.cell.w_x.size + model.cell.w_h.size

        if not cfg.enable_oadl:
            # WO/OADL ablation: event-level loading with per-gather
            # randoms.  The ablated design keeps its Feature Memory, which
            # captures intra-snapshot reuse of much of the gather traffic.
            return (
                float(metrics.total_words),
                float(0.4 * workload.random_accesses_csr()),
                0,
            )

        words = 0.0
        gspm_windows = 0
        budget = (
            cfg.memory_subsystem().buffers["feature_memory"].usable_bytes // 4
        )
        for wi, w in enumerate(workload.windows):
            base = w.unaffected + w.stable + w.affected
            versions = w.affected * (w.num_snapshots - 1)
            window_words = (base + versions) * dim  # each version once
            words += window_words
            # O-CSR structure: tindex + timestamp(byte) + sindex/enum
            words += w.subgraph_edges * 1.25 + 2 * w.subgraph_vertices
            # union structure scanned once for classification
            words += w.edges_total / w.num_snapshots + graph.num_vertices
            words += weight_words  # weights once per window
            # GSPM: working sets beyond the Feature Memory are streamed
            # partition by partition; cross-partition edges re-fetch the
            # remote endpoint's feature (see repro.accel.partition)
            if window_words > budget:
                from .partition import GSPM, PartitionStrategy

                gspm_windows += 1
                start = wi * cfg.window_size
                win = graph.window(
                    start, min(cfg.window_size, graph.num_snapshots - start)
                )
                plan = GSPM(win, budget_words=budget).plan(
                    PartitionStrategy(strategy)
                )
                words += plan.extra_words(dim)
        words += metrics.output_words
        return words, float(workload.random_accesses_ocsr()), gspm_windows

    def _msdl_cycles(self, graph, workload: WorkloadStats) -> float:
        """The 6-stage loader + 5-stage TFSM + O-CSR fill, per window."""
        cfg = self.config
        avg_deg = workload.avg_degree()
        total = 0.0
        for w in workload.windows:
            loader = Pipeline(
                "msdl-loader",
                [
                    PipelineStage("fetch_vertex", 1),
                    PipelineStage("fetch_snapshot", 1),
                    PipelineStage("fetch_offsets", 1),
                    PipelineStage(
                        "fetch_neighbors",
                        max(1.0, avg_deg * w.num_snapshots / 32.0),
                        replication=2,
                    ),
                    PipelineStage("fetch_features", 1, replication=2),
                    PipelineStage("identify_vertices", 1),
                ],
            )
            tfsm = Pipeline(
                "tfsm",
                [
                    PipelineStage("fetch_root", 1),
                    PipelineStage("fetch_neighbors", max(1.0, avg_deg / 16.0)),
                    PipelineStage("type_detection", 1),
                    PipelineStage("offsets_fetching", 1),
                    PipelineStage("neighbors_selection", 1),
                ],
            )
            total += loader.cycles(graph.num_vertices)
            total += tfsm.cycles(w.subgraph_vertices)
            total += w.subgraph_edges / 64.0  # O-CSR fill (4 banks x 16 w/cyc)
        return total
