r"""The similarity-aware cell-skipping policy (paper Section 3.1).

For every stable/affected vertex the policy maps its similarity score
:math:`\theta` to one of three cell-update modes:

* :math:`\theta > \theta_e` → **SKIP**: reuse the previous snapshot's
  final feature and recurrent state unchanged;
* :math:`\theta_s \le \theta \le \theta_e` → **DELTA**: partial update —
  thresholded output-feature deltas pass through the Condense Unit and a
  first-order cell update (see :mod:`repro.skipping.delta`);
* :math:`\theta < \theta_s` → **FULL**: the normal RNN cell update.

Unaffected vertices are implicitly SKIP (they are not even scored — the
engine never regenerates their tasks).  The paper's Fig. 14(a) finds
:math:`[\theta_s, \theta_e] = [-0.5, 0.5]` optimal; those are the
defaults.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = ["CellUpdateMode", "SkipThresholds", "SkippingPolicy", "ModeDecision"]


class CellUpdateMode(enum.IntEnum):
    """The three cell-update modes of the Adaptive RNN Unit."""

    FULL = 0
    DELTA = 1
    SKIP = 2


@dataclass(frozen=True)
class SkipThresholds:
    r"""The :math:`(\theta_s, \theta_e)` pair; must satisfy
    ``-1 <= theta_s <= theta_e <= 1``."""

    theta_s: float = -0.5
    theta_e: float = 0.5

    def __post_init__(self) -> None:
        if not -1.0 <= self.theta_s <= self.theta_e <= 1.0:
            raise ValueError(
                f"need -1 <= theta_s <= theta_e <= 1, got "
                f"({self.theta_s}, {self.theta_e})"
            )

    @property
    def never_skip(self) -> bool:
        """True when the window is degenerate at the top (theta_e = 1
        and theta_s = 1): every vertex takes the FULL path."""
        return self.theta_s >= 1.0


@dataclass
class ModeDecision:
    """Per-vertex decisions for one snapshot transition."""

    vertices: np.ndarray  # scored vertex ids
    theta: np.ndarray  # their similarity scores
    modes: np.ndarray  # CellUpdateMode values, aligned with vertices

    def rows(self, mode: CellUpdateMode) -> np.ndarray:
        """Vertex ids assigned the given mode."""
        return self.vertices[self.modes == mode]

    def counts(self) -> dict[str, int]:
        return {
            "full": int((self.modes == CellUpdateMode.FULL).sum()),
            "delta": int((self.modes == CellUpdateMode.DELTA).sum()),
            "skip": int((self.modes == CellUpdateMode.SKIP).sum()),
        }

    def skip_fraction(self) -> float:
        """Fraction of scored vertices whose cell update was avoided
        entirely."""
        if len(self.modes) == 0:
            return 0.0
        return float((self.modes == CellUpdateMode.SKIP).mean())


class SkippingPolicy:
    """Maps similarity scores to cell-update modes."""

    def __init__(self, thresholds: SkipThresholds | None = None):
        self.thresholds = thresholds or SkipThresholds()

    def decide(self, vertices: np.ndarray, theta: np.ndarray) -> ModeDecision:
        """Vectorised mode assignment for a batch of scored vertices."""
        vertices = np.asarray(vertices, dtype=np.int64)
        theta = np.asarray(theta, dtype=np.float64)
        if vertices.shape != theta.shape:
            raise ValueError("vertices/theta shape mismatch")
        modes = np.full(len(vertices), CellUpdateMode.FULL, dtype=np.int64)
        t = self.thresholds
        modes[theta > t.theta_e] = CellUpdateMode.SKIP
        modes[(theta >= t.theta_s) & (theta <= t.theta_e)] = CellUpdateMode.DELTA
        return ModeDecision(vertices, theta, modes)
