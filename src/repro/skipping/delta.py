r"""Delta generation, condensing, and the partial cell update.

DELTA-mode vertices (paper Section 4.2) do not re-run the whole RNN cell.
Instead:

1. the **Delta Generation** module computes
   :math:`\Delta = Z^t - Z^{t-1}` and zeroes near-zero components (the
   similarity gate guarantees most components are near zero);
2. the **Condense Unit** packs the surviving non-zeros into a dense
   buffer with a mask + address list (modelled by :func:`condense`);
3. the DCU applies only the non-zero columns to the cached input
   pre-activations, the gates are re-evaluated, and the result is merged
   with the previous snapshot's state.

The partial update is therefore first-order exact in the input path and
freezes the recurrent contribution (whose drift is bounded by the
similarity gate).  :class:`DeltaCellCache` owns the cached
pre-activations for LSTM and GRU cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..check.shapes import contract
from ..models.activations import sigmoid, tanh
from ..models.rnn import (
    ElmanCell,
    GRUCell,
    GRUState,
    LSTMCell,
    LSTMState,
    RecurrentCell,
)

__all__ = ["generate_delta", "CondensedDelta", "condense", "DeltaCellCache"]


@contract("(n,f) f, (n,f) f -> (n,f) f32")
def generate_delta(
    z_curr: np.ndarray, z_prev: np.ndarray, *, epsilon: float = 1e-3
) -> np.ndarray:
    """Thresholded output-feature delta: components with
    ``|delta| <= epsilon`` are zeroed (they reflect unchanged inputs)."""
    delta = z_curr.astype(np.float32) - z_prev.astype(np.float32)
    delta[np.abs(delta) <= epsilon] = 0.0
    return delta


@dataclass
class CondensedDelta:
    """Dense packing of a sparse delta matrix (the Condense Unit output).

    ``values[i]`` holds the non-zero entries of row ``rows[i]`` and
    ``addresses[i]`` their column indices — exactly the (Dense Buffer,
    Address Register) pair of paper Fig. 7(b).
    """

    rows: np.ndarray  # (r,) row ids with at least one non-zero
    addresses: list[np.ndarray]  # per row: column indices
    values: list[np.ndarray]  # per row: packed non-zero values
    dense_shape: tuple[int, int]

    @property
    def nnz(self) -> int:
        """Surviving non-zeros — the planner's delta-sparsity probe."""
        return int(sum(len(v) for v in self.values))

    def density(self) -> float:
        """``nnz / (rows * cols)``; 0.0 for degenerate (zero-row or
        zero-column) shapes instead of a division by zero."""
        total = int(self.dense_shape[0]) * int(self.dense_shape[1])
        if total <= 0:
            return 0.0
        return self.nnz / total

    def expand(self) -> np.ndarray:
        """Reconstruct the sparse delta matrix (tests / verification).

        Degenerate packings — zero-row ``dense_shape``, or row entries
        whose address lists are all empty — expand to the all-zero
        matrix without tripping numpy's empty-concatenate path.
        """
        out = np.zeros(self.dense_shape, dtype=np.float32)
        if len(self.rows) and self.addresses and self.nnz:
            counts = [len(a) for a in self.addresses]
            rr = np.repeat(self.rows, counts)
            out[rr, np.concatenate(self.addresses)] = np.concatenate(self.values)
        return out


@contract("(n,f) f -> _")
def condense(delta: np.ndarray) -> CondensedDelta:
    """Multi-level zero-value filtering: mask generation + packing.

    One ``nonzero`` pass packs every row at once; row-major order means
    the flattened columns/values split cleanly into per-row arrays.
    """
    mask = delta != 0.0
    rows = np.flatnonzero(mask.any(axis=1))
    if rows.size == 0:
        return CondensedDelta(rows, [], [], delta.shape)
    sub = mask[rows]
    r_nz, c_nz = np.nonzero(sub)
    splits = np.cumsum(np.bincount(r_nz, minlength=rows.size))[:-1]
    addresses = np.split(c_nz.astype(np.int64), splits)
    values = np.split(delta[rows][sub], splits)
    return CondensedDelta(rows, addresses, values, delta.shape)


class DeltaCellCache:
    """Cached pre-activations enabling partial (delta-mode) cell updates.

    After every FULL update of a vertex row the engine refreshes the
    cache with :meth:`refresh`; DELTA updates then adjust only the input
    pre-activation by the condensed delta columns and re-evaluate the
    gates (:meth:`partial_step`).
    """

    def __init__(self, cell: RecurrentCell, num_vertices: int):
        self.cell = cell
        n = num_vertices
        if isinstance(cell, LSTMCell):
            width = 4 * cell.hidden_dim
        elif isinstance(cell, GRUCell):
            width = 3 * cell.hidden_dim
        elif isinstance(cell, ElmanCell):
            width = cell.hidden_dim
        else:  # pragma: no cover - guarded by engine construction
            raise TypeError(f"unsupported cell type {type(cell).__name__}")
        self.zx = np.zeros((n, width), dtype=np.float32)  # cached x @ w_x
        self.zh = np.zeros((n, width), dtype=np.float32)  # cached h @ w_h
        self.z_input = np.zeros((n, cell.input_dim), dtype=np.float32)

    # ------------------------------------------------------------------
    def refresh(self, rows: np.ndarray, x: np.ndarray, h_prev: np.ndarray) -> None:
        """Record the pre-activations of a FULL update for ``rows``.

        ``x``/``h_prev`` are full (n, d) matrices; only ``rows`` are read.
        """
        if len(rows) == 0:
            return
        self.zx[rows] = x[rows] @ self.cell.w_x
        self.zh[rows] = h_prev[rows] @ self.cell.w_h
        self.z_input[rows] = x[rows]

    def partial_step(
        self,
        rows: np.ndarray,
        z_curr: np.ndarray,
        state_prev,
        *,
        epsilon: float = 1e-3,
    ):
        """DELTA-mode update for ``rows``.

        Returns ``(h_rows, state_rows, condensed)`` where ``h_rows`` /
        ``state_rows`` cover only ``rows`` and ``condensed`` is the
        Condense-Unit packing actually applied (its ``nnz`` drives the
        compute-savings accounting).
        """
        if len(rows) == 0:
            raise ValueError("partial_step needs at least one row")
        delta = generate_delta(z_curr[rows], self.z_input[rows], epsilon=epsilon)
        packed = condense(delta)
        # apply only the surviving delta columns to the cached input path
        self.zx[rows] += delta @ self.cell.w_x
        self.z_input[rows] += delta
        pre = self.zx[rows] + self.zh[rows] + self.cell.bias
        if isinstance(self.cell, LSTMCell):
            d = self.cell.hidden_dim
            i = sigmoid(pre[:, :d])
            f = sigmoid(pre[:, d : 2 * d])
            g = tanh(pre[:, 2 * d : 3 * d])
            o = sigmoid(pre[:, 3 * d :])
            c = (f * state_prev.c[rows] + i * g).astype(np.float32)
            h = (o * tanh(c)).astype(np.float32)
            return h, LSTMState(h, c), packed
        if isinstance(self.cell, ElmanCell):
            h = np.tanh(pre).astype(np.float32)
            return h, GRUState(h), packed
        # GRU
        d = self.cell.hidden_dim
        zh = self.zh[rows]
        r = sigmoid(pre[:, :d])
        z = sigmoid(pre[:, d : 2 * d])
        # candidate uses r * recurrent part; pre already contains zh added,
        # so reconstruct the x-only part for the candidate gate
        zx_n = self.zx[rows][:, 2 * d :] + self.cell.bias[2 * d :]
        n_gate = tanh(zx_n + r * zh[:, 2 * d :])
        h = ((1.0 - z) * n_gate + z * state_prev.h[rows]).astype(np.float32)
        return h, GRUState(h), packed
