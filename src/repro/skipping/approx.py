"""Prior RNN-approximation baselines compared in Table 5.

The paper grafts three published approximation schemes onto TaGNN in
place of its similarity-aware skipping and measures the accuracy damage:

* **TaGNN-DR — DeltaRNN** (Gao et al., FPGA'18): delta-threshold inference.
  Every step, input and hidden deltas below a threshold Θ are zeroed and
  only the survivors update cached pre-activations.  Topology-blind: it
  thresholds every vertex every step, so graph-structural change leaks
  into the state unnoticed and the error accumulates.
* **TaGNN-AM — ALSTM** (Jo et al.): approximate LSTM computing — hard
  (piecewise-linear) sigmoid/tanh plus coarse fixed-point quantisation of
  the gate pre-activations.
* **TaGNN-AS — ATLAS** (Kreß et al.): approximate multipliers — modelled
  as mantissa-truncated operands in the cell's matrix multiplies (the
  truncated-multiplier family ATLAS builds on).

All three apply to the RNN module only (the GNN module stays exact), per
the papers they come from.  Each implements the same
:class:`RNNApproximator` interface the accuracy benches drive.
"""

from __future__ import annotations

import abc

import numpy as np

from ..check.shapes import contract
from ..models.activations import sigmoid, tanh
from ..models.rnn import (
    ElmanCell,
    GRUCell,
    GRUState,
    LSTMCell,
    LSTMState,
    RecurrentCell,
)

__all__ = [
    "hard_sigmoid",
    "hard_tanh",
    "truncate_mantissa",
    "quantize",
    "generic_cell_step",
    "RNNApproximator",
    "ExactRNN",
    "DeltaRNNApprox",
    "ALSTMApprox",
    "ATLASApprox",
    "APPROXIMATORS",
]


# ----------------------------------------------------------------------
# approximation primitives
# ----------------------------------------------------------------------
@contract("(...) f -> (...) f")
def hard_sigmoid(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear sigmoid: ``clip(0.25 x + 0.5, 0, 1)``."""
    return np.clip(0.25 * x + 0.5, 0.0, 1.0).astype(x.dtype, copy=False)


@contract("(...) f -> (...) f")
def hard_tanh(x: np.ndarray) -> np.ndarray:
    """Piecewise-linear tanh: ``clip(x, -1, 1)``."""
    return np.clip(x, -1.0, 1.0).astype(x.dtype, copy=False)


@contract("(...) f, int -> (...) f32")
def truncate_mantissa(x: np.ndarray, bits: int) -> np.ndarray:
    """Keep only the top ``bits`` mantissa bits of float32 values —
    the operand rounding of a truncated hardware multiplier."""
    if not 0 <= bits <= 23:
        raise ValueError("bits must be in [0, 23]")
    x32 = np.ascontiguousarray(x, dtype=np.float32)
    raw = x32.view(np.uint32)
    mask = np.uint32(0xFFFFFFFF) << np.uint32(23 - bits)
    return (raw & mask).view(np.float32)


@contract("(...) f, float -> (...) f32")
def quantize(x: np.ndarray, step: float) -> np.ndarray:
    """Uniform fixed-point quantisation with the given step size."""
    if step <= 0:
        raise ValueError("step must be positive")
    return (np.round(x / step) * step).astype(np.float32, copy=False)


@contract("_, (n,*) f, _ -> (n,*) f32, _")
def generic_cell_step(
    cell: RecurrentCell,
    x: np.ndarray,
    state,
    *,
    matmul=np.matmul,
    sig=sigmoid,
    th=tanh,
    pre_transform=None,
):
    """LSTM/GRU step parameterised by the arithmetic primitives.

    The exact cells in :mod:`repro.models.rnn` are the special case
    ``matmul=np.matmul, sig=sigmoid, th=tanh`` — a test invariant.
    """
    if isinstance(cell, LSTMCell):
        d = cell.hidden_dim
        pre = matmul(x, cell.w_x) + matmul(state.h, cell.w_h) + cell.bias
        if pre_transform is not None:
            pre = pre_transform(pre)
        i = sig(pre[:, :d])
        f = sig(pre[:, d : 2 * d])
        g = th(pre[:, 2 * d : 3 * d])
        o = sig(pre[:, 3 * d :])
        c = (f * state.c + i * g).astype(np.float32, copy=False)
        h = (o * th(c)).astype(np.float32, copy=False)
        return h, LSTMState(h, c)
    if isinstance(cell, GRUCell):
        d = cell.hidden_dim
        zx = matmul(x, cell.w_x) + cell.bias
        zh = matmul(state.h, cell.w_h)
        if pre_transform is not None:
            zx, zh = pre_transform(zx), pre_transform(zh)
        r = sig(zx[:, :d] + zh[:, :d])
        z = sig(zx[:, d : 2 * d] + zh[:, d : 2 * d])
        n = th(zx[:, 2 * d :] + r * zh[:, 2 * d :])
        h = ((1.0 - z) * n + z * state.h).astype(np.float32, copy=False)
        return h, GRUState(h)
    if isinstance(cell, ElmanCell):
        pre = matmul(x, cell.w_x) + matmul(state.h, cell.w_h) + cell.bias
        if pre_transform is not None:
            pre = pre_transform(pre)
        h = th(pre).astype(np.float32, copy=False)
        return h, GRUState(h)
    raise TypeError(f"unsupported cell type {type(cell).__name__}")


# ----------------------------------------------------------------------
# the approximator interface + implementations
# ----------------------------------------------------------------------
class RNNApproximator(abc.ABC):
    """A drop-in replacement for the exact cell update across a window."""

    name: str = "abstract"

    def start(self, cell: RecurrentCell, num_vertices: int) -> None:
        """Reset any per-window caches (called once per window)."""

    @abc.abstractmethod
    def cell_step(self, cell: RecurrentCell, x: np.ndarray, state):
        """One approximate cell update; same signature as the exact step."""


class ExactRNN(RNNApproximator):
    """The identity baseline (Table 5's 'Baseline' rows)."""

    name = "Baseline"

    def cell_step(self, cell: RecurrentCell, x: np.ndarray, state):
        return cell.step(x, state)


class DeltaRNNApprox(RNNApproximator):
    """DeltaRNN delta-threshold inference (topology-blind)."""

    name = "TaGNN-DR"

    def __init__(self, threshold: float = 0.30):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold
        self._zx = self._zh = self._x = self._h = None

    def start(self, cell: RecurrentCell, num_vertices: int) -> None:
        width = cell.w_x.shape[1]
        self._zx = np.zeros((num_vertices, width), dtype=np.float32)
        self._zh = np.zeros((num_vertices, width), dtype=np.float32)
        self._x = np.zeros((num_vertices, cell.input_dim), dtype=np.float32)
        self._h = np.zeros((num_vertices, cell.hidden_dim), dtype=np.float32)

    def cell_step(self, cell: RecurrentCell, x: np.ndarray, state):
        if self._zx is None or len(x) != len(self._zx):
            self.start(cell, len(x))
        dx = x - self._x
        dx[np.abs(dx) <= self.threshold] = 0.0
        h_prev = state.h
        dh = h_prev - self._h
        dh[np.abs(dh) <= self.threshold] = 0.0
        self._zx += dx @ cell.w_x
        self._zh += dh @ cell.w_h
        self._x += dx
        self._h += dh

        if isinstance(cell, LSTMCell):
            d = cell.hidden_dim
            pre = self._zx + self._zh + cell.bias
            i, f = sigmoid(pre[:, :d]), sigmoid(pre[:, d : 2 * d])
            g, o = tanh(pre[:, 2 * d : 3 * d]), sigmoid(pre[:, 3 * d :])
            c = (f * state.c + i * g).astype(np.float32)
            h = (o * tanh(c)).astype(np.float32)
            return h, LSTMState(h, c)
        if isinstance(cell, GRUCell):
            d = cell.hidden_dim
            zx = self._zx + cell.bias
            zh = self._zh
            r = sigmoid(zx[:, :d] + zh[:, :d])
            z = sigmoid(zx[:, d : 2 * d] + zh[:, d : 2 * d])
            n = tanh(zx[:, 2 * d :] + r * zh[:, 2 * d :])
            h = ((1.0 - z) * n + z * state.h).astype(np.float32)
            return h, GRUState(h)
        if isinstance(cell, ElmanCell):
            h = tanh(self._zx + self._zh + cell.bias).astype(np.float32)
            return h, GRUState(h)
        raise TypeError(f"unsupported cell type {type(cell).__name__}")


class ALSTMApprox(RNNApproximator):
    """ALSTM: hard activations + fixed-point pre-activation quantisation."""

    name = "TaGNN-AM"

    def __init__(self, quant_step: float = 0.30):
        self.quant_step = quant_step

    def cell_step(self, cell: RecurrentCell, x: np.ndarray, state):
        return generic_cell_step(
            cell,
            x,
            state,
            sig=hard_sigmoid,
            th=hard_tanh,
            pre_transform=lambda p: quantize(p, self.quant_step),
        )


class ATLASApprox(RNNApproximator):
    """ATLAS: approximate (truncated-operand) multipliers in the cell.

    *Every* multiplier in the unit is approximate — the gate matmuls and
    the element-wise state products (``f*c``, ``i*g``, ``o*tanh``, …).
    The element-wise ones matter most: their error re-enters the
    recurrent state and compounds across snapshots, which is exactly the
    accumulation the paper's accuracy comparison penalises.
    """

    name = "TaGNN-AS"

    def __init__(self, mantissa_bits: int = 1):
        if not 0 <= mantissa_bits <= 23:
            raise ValueError("mantissa_bits in [0, 23]")
        self.mantissa_bits = mantissa_bits

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return truncate_mantissa(a, self.mantissa_bits) @ truncate_mantissa(
            b, self.mantissa_bits
        )

    def _mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return truncate_mantissa(
            np.asarray(a, dtype=np.float32), self.mantissa_bits
        ) * truncate_mantissa(np.asarray(b, dtype=np.float32), self.mantissa_bits)

    def cell_step(self, cell: RecurrentCell, x: np.ndarray, state):
        mul = self._mul
        if isinstance(cell, LSTMCell):
            d = cell.hidden_dim
            pre = self._matmul(x, cell.w_x) + self._matmul(state.h, cell.w_h) + cell.bias
            i, f = sigmoid(pre[:, :d]), sigmoid(pre[:, d : 2 * d])
            g, o = tanh(pre[:, 2 * d : 3 * d]), sigmoid(pre[:, 3 * d :])
            c = (mul(f, state.c) + mul(i, g)).astype(np.float32)
            h = mul(o, tanh(c)).astype(np.float32)
            return h, LSTMState(h, c)
        if isinstance(cell, GRUCell):
            d = cell.hidden_dim
            zx = self._matmul(x, cell.w_x) + cell.bias
            zh = self._matmul(state.h, cell.w_h)
            r = sigmoid(zx[:, :d] + zh[:, :d])
            z = sigmoid(zx[:, d : 2 * d] + zh[:, d : 2 * d])
            n = tanh(zx[:, 2 * d :] + mul(r, zh[:, 2 * d :]))
            h = (mul(1.0 - z, n) + mul(z, state.h)).astype(np.float32)
            return h, GRUState(h)
        if isinstance(cell, ElmanCell):
            pre = self._matmul(x, cell.w_x) + self._matmul(state.h, cell.w_h)
            h = tanh(pre + cell.bias).astype(np.float32)
            return h, GRUState(h)
        raise TypeError(f"unsupported cell type {type(cell).__name__}")


APPROXIMATORS: dict[str, type[RNNApproximator]] = {
    "Baseline": ExactRNN,
    "TaGNN-DR": DeltaRNNApprox,
    "TaGNN-AM": ALSTMApprox,
    "TaGNN-AS": ATLASApprox,
}
