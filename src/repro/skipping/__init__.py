"""Similarity-aware cell skipping: policy, delta/condense path, and the
prior-work approximation baselines of Table 5."""

from .approx import (
    APPROXIMATORS,
    ALSTMApprox,
    ATLASApprox,
    DeltaRNNApprox,
    ExactRNN,
    RNNApproximator,
    generic_cell_step,
    hard_sigmoid,
    hard_tanh,
    quantize,
    truncate_mantissa,
)
from .delta import CondensedDelta, DeltaCellCache, condense, generate_delta
from .policy import CellUpdateMode, ModeDecision, SkippingPolicy, SkipThresholds

__all__ = [
    "APPROXIMATORS",
    "ALSTMApprox",
    "ATLASApprox",
    "DeltaRNNApprox",
    "ExactRNN",
    "RNNApproximator",
    "generic_cell_step",
    "hard_sigmoid",
    "hard_tanh",
    "quantize",
    "truncate_mantissa",
    "CondensedDelta",
    "DeltaCellCache",
    "condense",
    "generate_delta",
    "CellUpdateMode",
    "ModeDecision",
    "SkippingPolicy",
    "SkipThresholds",
]
