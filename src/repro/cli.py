"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``datasets``
    Print the Table-2 registry (paper stats + synthetic stand-ins).
``classify``
    Vertex classification / affected-subgraph statistics for a window.
``simulate``
    Run the TaGNN simulator on one (model, dataset) cell and print the
    latency/energy report with the component breakdown.
``compare``
    Simulate every platform on one cell and print the speedup/energy
    table (one row of Figs. 9-11).
``accuracy``
    Exact vs cell-skipping accuracy on one cell (one cell of Table 5).
``stats``
    Temporal profile of a dataset (overlap, churn, unaffected ratios).
``generate``
    Generate a synthetic dataset and save it as a ``.npz`` archive.
``check``
    Run the repo's static-analysis pass (rules R001-R008, see
    docs/static_analysis.md); exits non-zero on any finding.
``perf``
    Run the hot-path performance suite (event-application throughput,
    streaming window latency, peak RSS; ``--adaptive`` adds the
    static-vs-planner streaming comparison) and archive a
    schema-versioned ``BENCH_<timestamp>.json`` (see
    docs/performance.md).
``plan``
    Run one streaming cell under the adaptive planner and print the
    per-window decision audit (``--explain`` adds the latest plan's full
    rationale and the cost-model state).
``chaos``
    Run a seeded fault-injection campaign through the resilient serving
    path and print the incident report (see docs/resilience.md).
    ``--cluster`` runs the campaign against the sharded serving layer
    instead (shard crashes / stalls / slow shards / torn checkpoints,
    see docs/serving.md) and verifies bit-identity against the
    unsharded engine.
``dlq``
    Inspect a ``DeadLetterQueue`` capture (written by ``--dlq-out`` or
    :meth:`DeadLetterQueue.save`) and optionally re-drain it back
    through guarded ingestion against a dataset's snapshots.

All commands are deterministic for fixed arguments.
"""

from __future__ import annotations

import argparse
import sys

__all__ = [
    "COMMANDS",
    "build_parser",
    "cmd_accuracy",
    "cmd_chaos",
    "cmd_check",
    "cmd_classify",
    "cmd_compare",
    "cmd_datasets",
    "cmd_dlq",
    "cmd_generate",
    "cmd_perf",
    "cmd_plan",
    "cmd_simulate",
    "cmd_stats",
    "main",
]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="TaGNN reproduction command-line interface",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="print the dataset registry")

    c = sub.add_parser("classify", help="window classification statistics")
    _common(c)
    c.add_argument("--window", type=int, default=4)

    s = sub.add_parser("simulate", help="run the TaGNN simulator")
    _common(s)
    s.add_argument("--model", default="T-GCN")
    s.add_argument("--window", type=int, default=4)
    s.add_argument("--dcus", type=int, default=16)
    s.add_argument("--macs", type=int, default=4096)
    s.add_argument("--no-oadl", action="store_true")
    s.add_argument("--no-adsc", action="store_true")

    cmp_ = sub.add_parser("compare", help="compare all platforms on one cell")
    _common(cmp_)
    cmp_.add_argument("--model", default="T-GCN")

    a = sub.add_parser("accuracy", help="accuracy cost of cell skipping")
    _common(a)
    a.add_argument("--model", default="T-GCN")
    a.add_argument("--classes", type=int, default=4)

    st_ = sub.add_parser("stats", help="temporal profile of a dataset")
    _common(st_)
    st_.add_argument("--window", type=int, default=4)

    gen = sub.add_parser("generate", help="generate a dataset and save it")
    _common(gen)
    gen.add_argument("--scale", type=float, default=1.0)
    gen.add_argument("--out", required=True, help="output .npz path")

    ch = sub.add_parser("chaos", help="seeded fault-injection campaign")
    _common(ch)
    ch.add_argument("--model", default="T-GCN")
    ch.add_argument("--window", type=int, default=4)
    ch.add_argument("--faults-per-kind", type=int, default=1)
    ch.add_argument("--fault-seed", type=int, default=7)
    ch.add_argument("--cluster", action="store_true",
                    help="run the campaign against the sharded serving"
                         " layer (worker crash/stall/slow/torn-checkpoint"
                         " faults, bit-identity verified)")
    ch.add_argument("--shards", type=int, default=4,
                    help="shard count for --cluster (default 4)")
    ch.add_argument("--tenants", type=int, default=1,
                    help="tenant count for --cluster (default 1)")
    ch.add_argument("--smoke", action="store_true",
                    help="short CI-sized campaign (small model, few"
                         " snapshots)")
    ch.add_argument("--report-out", metavar="JSON",
                    help="write the campaign report as a JSON artefact")
    ch.add_argument("--dlq-out", metavar="NPZ",
                    help="write the dead-letter queue as an .npz capture")

    dlq = sub.add_parser("dlq", help="inspect / re-drain a dead-letter"
                                     " capture")
    dlq.add_argument("capture", help="path to a DeadLetterQueue .npz"
                                     " capture")
    _common(dlq)
    dlq.add_argument("--redrain", action="store_true",
                     help="re-validate event letters against the"
                          " dataset's snapshots through guarded ingestion")
    dlq.add_argument("--out", metavar="NPZ",
                     help="with --redrain: write the still-poison"
                          " remainder to this capture")

    perf = sub.add_parser("perf", help="run the hot-path performance suite")
    perf.add_argument("--smoke", action="store_true",
                      help="30-second CI subset (smaller cells, 3 repeats)")
    perf.add_argument("--repeats", type=int, default=7,
                      help="timed passes per cell (best/pooled, default 7)")
    perf.add_argument("--out", default=".",
                      help="directory for BENCH_<timestamp>.json (default .)")
    perf.add_argument("--no-write", action="store_true",
                      help="print tables only, skip the JSON artefact")
    perf.add_argument("--baseline", metavar="JSON",
                      help="prior BENCH_*.json to diff against (report-only)")
    perf.add_argument("--adaptive", action="store_true",
                      help="also run the static-vs-adaptive streaming "
                           "comparison (calibrates the cost model first)")

    pl = sub.add_parser("plan", help="adaptive planner decision audit")
    _common(pl)
    pl.add_argument("--model", default="T-GCN")
    pl.add_argument("--window", type=int, default=4)
    pl.add_argument("--repeats", type=int, default=2,
                    help="stream passes sharing one planner (default 2)")
    pl.add_argument("--calibrate", action="store_true",
                    help="micro-benchmark the cost model on this machine "
                         "instead of using the baked defaults")
    pl.add_argument("--explain", action="store_true",
                    help="print the per-window audit and the latest plan's "
                         "full rationale")

    chk = sub.add_parser("check", help="run the static-analysis pass")
    chk.add_argument("paths", nargs="*", default=["src"],
                     help="files or directories to scan (default: src)")
    chk.add_argument("--select", action="append", metavar="CODE",
                     help="run only these rule codes (repeatable)")
    chk.add_argument("--root", default=".",
                     help="repo root for relative paths and config lookup")
    chk.add_argument("--list-rules", action="store_true",
                     help="print the registered rules and exit")
    chk.add_argument("--format", choices=("text", "json", "sarif"),
                     default="text", dest="output_format",
                     help="output format (json/sarif for tooling; the"
                     " exit-code gate is identical)")
    chk.add_argument("--statistics", action="store_true",
                     help="print per-rule finding counts and wall time"
                     " to stderr")

    return p


def _common(sp: argparse.ArgumentParser) -> None:
    sp.add_argument("--dataset", default="GT", help="HP|GT|ML|EP|FK")
    sp.add_argument("--snapshots", type=int, default=8)
    sp.add_argument("--hidden", type=int, default=32)
    sp.add_argument("--seed", type=int, default=3)


# ----------------------------------------------------------------------
def cmd_datasets(args) -> int:
    from .bench.report import render_table
    from .graphs import DATASET_NAMES, dataset_spec, paper_stats

    rows = []
    for name in DATASET_NAMES:
        ps = paper_stats(name)
        spec = dataset_spec(name)
        rows.append(
            [ps.abbrev, ps.name, f"{ps.num_vertices:,}", f"{ps.num_edges:,}",
             ps.dim, ps.num_snapshots, spec.num_vertices, spec.num_edges,
             spec.dim]
        )
    print(
        render_table(
            "Datasets (paper | synthetic stand-in)",
            ["key", "name", "#V", "#E", "dim", "#snaps",
             "synth #V", "synth #E", "synth dim"],
            rows,
        )
    )
    return 0


def cmd_classify(args) -> int:
    from .analysis import classify_window, extract_affected_subgraph
    from .graphs import load_dataset

    g = load_dataset(args.dataset, num_snapshots=args.snapshots, seed=args.seed)
    window = g.window(0, min(args.window, g.num_snapshots))
    c = classify_window(window)
    sg = extract_affected_subgraph(window, c)
    print(f"dataset {args.dataset}: {g.num_vertices} vertices, "
          f"window of {window.num_snapshots} snapshots")
    for k, v in c.counts().items():
        print(f"  {k:>10}: {v:6d}  ({100 * v / g.num_vertices:.1f}%)")
    st = sg.stats()
    print(f"  affected subgraph: {st['subgraph_vertices']} vertices "
          f"({100 * st['subgraph_fraction']:.1f}%), {st['roots']} stable roots")
    return 0


def _make(args):
    from .graphs import load_dataset
    from .models import make_model

    g = load_dataset(args.dataset, num_snapshots=args.snapshots, seed=args.seed)
    m = make_model(args.model, g.dim, args.hidden, seed=args.seed)
    return g, m


def cmd_simulate(args) -> int:
    from .accel import TaGNNConfig, TaGNNSimulator

    g, m = _make(args)
    cfg = TaGNNConfig(
        num_dcus=args.dcus,
        cpes_per_dcu=max(1, args.macs // args.dcus),
        window_size=args.window,
        enable_oadl=not args.no_oadl,
        enable_adsc=not args.no_adsc,
    )
    rep = TaGNNSimulator(cfg).simulate(m, g, args.dataset)
    print(f"TaGNN ({cfg.total_macs} MACs, {cfg.num_dcus} DCUs, "
          f"window {cfg.window_size}) on {args.model}/{args.dataset}:")
    print(f"  latency : {rep.seconds * 1e6:10.1f} us  ({rep.cycles:,.0f} cycles)")
    print(f"  energy  : {rep.joules * 1e3:10.3f} mJ  (avg {rep.watts:.1f} W)")
    print(f"  off-chip: {rep.extra['words']:,.0f} words, "
          f"{rep.extra['randoms']:,.0f} random accesses")
    print("  breakdown (cycles):")
    for k, v in rep.breakdown.items():
        print(f"    {k:>8}: {v:12,.0f}")
    print(f"  skip ratio {rep.extra['skip_ratio']:.2f}, "
          f"imbalance {rep.extra['imbalance']:.2f}")
    return 0


def cmd_compare(args) -> int:
    from .accel import (
        ACCELERATOR_BASELINES,
        DGL_CPU,
        PIPAD,
        TAGNN_S,
        TaGNNSimulator,
        WorkloadStats,
    )
    from .bench.report import render_table
    from .engine import ReferenceEngine

    g, m = _make(args)
    ref = ReferenceEngine(m, window_size=4).run(g)
    wl = WorkloadStats.analyze(g, m, 4)
    tagnn = TaGNNSimulator().simulate(m, g, args.dataset, workload=wl)
    rows = []
    platforms = {
        **ACCELERATOR_BASELINES, "DGL-CPU": DGL_CPU, "PiPAD": PIPAD,
    }
    for name, p in platforms.items():
        r = p.simulate(m, g, args.dataset, metrics=ref.metrics, workload=wl)
        rows.append([name, r.seconds * 1e6, tagnn.speedup_over(r),
                     r.joules * 1e3, tagnn.energy_saving_over(r)])
    r = TAGNN_S.simulate(m, g, args.dataset, workload=wl)
    rows.append(["TaGNN-S", r.seconds * 1e6, tagnn.speedup_over(r),
                 r.joules * 1e3, tagnn.energy_saving_over(r)])
    rows.append(["TaGNN", tagnn.seconds * 1e6, 1.0, tagnn.joules * 1e3, 1.0])
    print(
        render_table(
            f"All platforms — {args.model} on {args.dataset}",
            ["platform", "time (us)", "TaGNN speedup", "energy (mJ)",
             "TaGNN saving"],
            rows,
        )
    )
    return 0


def cmd_accuracy(args) -> int:
    from .engine import ConcurrentEngine, ReferenceEngine
    from .models import evaluate_accuracy, fit_readout, make_teacher_labels

    g, m = _make(args)
    ref = ReferenceEngine(m, window_size=4).run(g)
    skip = ConcurrentEngine(m, window_size=4).run(g)
    labels = make_teacher_labels(g, args.classes)
    readout = fit_readout(ref.outputs, labels, g)
    a_ref = evaluate_accuracy(ref.outputs, labels, g, readout=readout)
    a_skip = evaluate_accuracy(skip.outputs, labels, g, readout=readout)
    print(f"{args.model} on {args.dataset} ({args.classes}-class teacher task):")
    print(f"  exact inference : {a_ref:.1%}")
    print(f"  with skipping   : {a_skip:.1%}  "
          f"(loss {100 * (a_ref - a_skip):+.2f} points, "
          f"skip ratio {skip.metrics.skip_ratio():.2f})")
    return 0


def cmd_stats(args) -> int:
    from .analysis import temporal_profile
    from .graphs import load_dataset

    g = load_dataset(args.dataset, num_snapshots=args.snapshots, seed=args.seed)
    profile = temporal_profile(g, window=args.window)
    print(f"temporal profile of {args.dataset}:")
    for k, v in profile.items():
        if k == "unaffected_ratio_by_window":
            for w, r in v.items():
                print(f"  unaffected ratio (window {w}): {r:.1%}")
        else:
            print(f"  {k}: {v}")
    return 0


def cmd_generate(args) -> int:
    from .graphs import load_dataset, save_dynamic_graph

    g = load_dataset(
        args.dataset,
        scale=args.scale,
        num_snapshots=args.snapshots,
        seed=args.seed,
    )
    save_dynamic_graph(g, args.out)
    print(f"wrote {args.out}: {g.stats()}")
    return 0


def cmd_chaos(args) -> int:
    from .resilience import FaultPlan, run_chaos_campaign

    if args.cluster:
        return _chaos_cluster(args)
    g, m = _make(args)
    plan = FaultPlan.generate(
        seed=args.fault_seed,
        num_steps=g.num_snapshots,
        per_kind=args.faults_per_kind,
    )
    report = run_chaos_campaign(m, g, plan, window_size=args.window)
    print(f"{args.model} on {args.dataset}: {len(plan)} faults injected"
          f" across {g.num_snapshots} steps (fault seed {args.fault_seed})")
    print(report.summary())
    complete = len(report.outputs) == g.num_snapshots
    print(f"  stream complete     : {complete}")
    return 0 if complete else 1


def _chaos_cluster(args) -> int:
    import json

    from .graphs import load_dataset
    from .models import make_model
    from .resilience import DeadLetterQueue, FaultPlan
    from .serving import run_cluster_campaign

    snapshots = 6 if args.smoke else args.snapshots
    hidden = 8 if args.smoke else args.hidden
    graphs = {
        f"tenant-{i}": load_dataset(
            args.dataset, num_snapshots=snapshots, seed=args.seed + i
        )
        for i in range(max(1, args.tenants))
    }
    dim = next(iter(graphs.values())).dim

    def factory():
        return make_model(args.model, dim, hidden, seed=args.seed)

    plan = FaultPlan.generate_cluster(
        seed=args.fault_seed,
        num_steps=snapshots,
        num_shards=args.shards,
        per_shard=args.faults_per_kind,
    )
    report = run_cluster_campaign(
        factory,
        graphs,
        plan,
        num_shards=args.shards,
        window_size=args.window,
        seed=args.seed,
    )
    print(f"{args.model} on {args.dataset} x{len(graphs)} tenants:"
          f" {len(plan)} shard faults across {args.shards} shards"
          f" (fault seed {args.fault_seed})")
    print(report.summary())
    if args.report_out:
        with open(args.report_out, "w") as fh:
            json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        print(f"wrote {args.report_out}")
    if args.dlq_out:
        capture = DeadLetterQueue()
        capture.letters = list(report.dead_letters)
        capture.save(args.dlq_out)
        print(f"wrote {args.dlq_out}: {len(capture)} dead letters")
    return 0 if report.identical else 1


def cmd_dlq(args) -> int:
    from .graphs import load_dataset
    from .resilience import DeadLetterQueue, redrain_dead_letters

    queue = DeadLetterQueue.load(args.capture)
    print(f"{args.capture}: {len(queue)} dead letters")
    tally = queue.by_reason()
    for reason in sorted(tally):
        print(f"  {reason:<24}: {tally[reason]}")
    for letter in queue.letters:
        print(f"  step {letter.step:>4}: {letter.reason}"
              f" ({type(letter.payload).__name__})")
    if not args.redrain:
        return 0
    g = load_dataset(args.dataset, num_snapshots=args.snapshots,
                     seed=args.seed)
    readmitted, still_poison = redrain_dead_letters(queue, g)
    print(f"re-drain against {args.dataset}: {len(readmitted)} readmitted,"
          f" {len(still_poison)} still poison")
    if args.out:
        remainder = DeadLetterQueue()
        remainder.letters = list(still_poison)
        remainder.save(args.out)
        print(f"wrote {args.out}: {len(remainder)} still-poison letters")
    return 0


def cmd_plan(args) -> int:
    from .adaptive import AdaptivePlanner, CostModel, calibrate_cost_model
    from .engine.streaming import StreamingInference

    g, m = _make(args)
    table = calibrate_cost_model(seed=args.seed) if args.calibrate else None
    planner = AdaptivePlanner(cost_model=CostModel(table))
    for _ in range(args.repeats):
        stream = StreamingInference(
            m, window_size=args.window, planner=planner
        )
        for snap in g:
            stream.push(snap)
        stream.flush()
    print(f"{args.model} on {args.dataset}: {len(planner.records)} windows "
          f"planned across {args.repeats} passes "
          f"(cost model: {planner.cost_model.table.source})")
    if args.explain:
        print(planner.explain())
    else:
        kernels: dict[str, int] = {}
        for rec in planner.records:
            k = rec.plan.kernel.value
            kernels[k] = kernels.get(k, 0) + 1
        thr = planner.thresholds()
        for k, v in sorted(kernels.items(), key=lambda kv: -kv[1]):
            print(f"  kernel {k:>16}: {v} windows")
        print(f"  thresholds: ({thr.theta_s:+.2f}, {thr.theta_e:+.2f})"
              f"  aggressiveness {planner.aggressiveness:.2f}")
        print(f"  probes: {planner.probes_done}, max drift "
              f"{planner.max_observed_drift:.5f} "
              f"(budget {planner.config.drift_budget})")
        print("  (use --explain for the per-window audit)")
    return 0


def cmd_perf(args) -> int:
    import json

    from .bench.perf import (
        PerfConfig,
        render_delta_table,
        render_perf_tables,
        run_perf,
        write_result,
    )

    config = PerfConfig(
        smoke=args.smoke, repeats=args.repeats, adaptive=args.adaptive
    )
    result = run_perf(config)
    print(render_perf_tables(result))
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        print(render_delta_table(result, baseline))
    if not args.no_write:
        path = write_result(result, args.out)
        print(f"wrote {path}")
    return 0


def cmd_check(args) -> int:
    from .check.runner import main as check_main

    argv = list(args.paths) + ["--root", args.root]
    for code in args.select or []:
        argv += ["--select", code]
    if args.list_rules:
        argv.append("--list-rules")
    if args.output_format != "text":
        argv += ["--format", args.output_format]
    if args.statistics:
        argv.append("--statistics")
    return check_main(argv)


COMMANDS = {
    "datasets": cmd_datasets,
    "classify": cmd_classify,
    "simulate": cmd_simulate,
    "compare": cmd_compare,
    "accuracy": cmd_accuracy,
    "generate": cmd_generate,
    "stats": cmd_stats,
    "perf": cmd_perf,
    "plan": cmd_plan,
    "check": cmd_check,
    "chaos": cmd_chaos,
    "dlq": cmd_dlq,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
