"""Vertex ownership for the sharded serving cluster.

The cluster follows a *replicated-structure, partitioned-ownership*
design: every shard runs the full deterministic engine over every
tenant's stream (structure and features are replicated, so no shard
ever needs a remote neighbour to aggregate), but each shard is
**authoritative** only for the embedding rows of the vertices it owns.
The aggregator stitches one full output matrix per timestamp from the
owned rows of every shard, so a shard that recovered incorrectly would
produce divergent rows — recovery correctness is observable, not
assumed.

Ownership comes from :class:`~repro.accel.partition.GSPM` — the same
topology-aware partitioner the accelerator uses for on-chip staging —
so locality-ordered shards co-locate DFS neighbours and minimise the
cut.  Cut edges are exactly the boundary traffic the aggregator pays
when it exchanges owned rows across shards, surfaced as the
``boundary_words`` counter of
:class:`~repro.engine.metrics.ExecutionMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..accel.partition import GSPM, PartitionStrategy
from ..graphs.dynamic import DynamicGraph

__all__ = ["ShardMap"]


@dataclass(frozen=True)
class ShardMap:
    """Authoritative vertex → shard assignment for one cluster."""

    num_shards: int
    num_vertices: int
    owner: np.ndarray  # int64[num_vertices], values in [0, num_shards)
    cut_edges: int  # edges whose endpoints live on different shards

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.num_vertices < 1:
            raise ValueError(
                f"num_vertices must be >= 1, got {self.num_vertices}"
            )
        if self.cut_edges < 0:
            raise ValueError(f"cut_edges must be >= 0, got {self.cut_edges}")
        owner = np.asarray(self.owner, dtype=np.int64)
        if owner.shape != (self.num_vertices,):
            raise ValueError(
                f"owner must have shape ({self.num_vertices},),"
                f" got {owner.shape}"
            )
        if owner.size and (owner.min() < 0 or owner.max() >= self.num_shards):
            raise ValueError(
                "owner entries must lie in"
                f" [0, {self.num_shards}), got"
                f" [{owner.min()}, {owner.max()}]"
            )
        object.__setattr__(self, "owner", owner)

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        window: DynamicGraph,
        num_shards: int,
        *,
        strategy: PartitionStrategy = PartitionStrategy.LOCALITY,
    ) -> "ShardMap":
        """Partition ``window``'s vertex set into ``num_shards`` blocks.

        The GSPM budget is sized so the chosen strategy yields at most
        ``num_shards`` blocks over all vertices; when the partitioner
        produces fewer (tiny graphs), the remaining shards simply own no
        rows and act as pure replicas.
        """
        n = window.num_vertices
        if not 1 <= num_shards <= n:
            raise ValueError(
                f"num_shards must be in [1, {n}], got {num_shards}"
            )
        per_shard = -(-n // num_shards)  # ceil
        gspm = GSPM(
            window, budget_words=per_shard * (window.dim + 2)
        )
        plan = gspm.plan(strategy, vertices=np.arange(n, dtype=np.int64))
        owner = np.full(n, -1, dtype=np.int64)
        for part in plan.partitions:
            owner[part.vertices] = part.index
        return cls(
            num_shards=num_shards,
            num_vertices=n,
            owner=owner,
            cut_edges=plan.total_cut_edges,
        )

    # ------------------------------------------------------------------
    def rows(self, shard: int) -> np.ndarray:
        """Sorted vertex ids owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(
                f"shard must be in [0, {self.num_shards}), got {shard}"
            )
        return np.flatnonzero(self.owner == shard)

    def active_shards(self) -> list[int]:
        """Shards owning at least one vertex (the aggregation quorum)."""
        return np.unique(self.owner).tolist()

    def boundary_words(self, dim: int) -> int:
        """Words exchanged across shards per stitched timestamp: one
        ``dim``-wide row per cut edge (the remote endpoint's feature)."""
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        return self.cut_edges * dim

    def stitch(self, parts: dict) -> np.ndarray:
        """Assemble one full output matrix from per-shard owned rows.

        ``parts`` maps shard index → that shard's owned-row block (in
        :meth:`rows` order).  Every active shard must contribute.
        """
        missing = [s for s in self.active_shards() if s not in parts]
        if missing:
            raise ValueError(f"missing contributions from shards {missing}")
        first = parts[self.active_shards()[0]]
        out = np.empty((self.num_vertices,) + first.shape[1:], first.dtype)
        for shard in self.active_shards():
            out[self.rows(shard)] = parts[shard]
        return out
