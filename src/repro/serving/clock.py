"""Deterministic virtual time for the serving cluster.

The cluster never reads wall-clock time (rule R001): every observable —
heartbeats, deadlines, backpressure, stall detection — is phrased in
*ticks* of a :class:`VirtualClock` that advances once per routed
request.  Two runs with the same inputs therefore see exactly the same
clock readings, which is what makes shard-failure campaigns replayable
bit-for-bit.
"""

from __future__ import annotations

__all__ = ["VirtualClock"]


class VirtualClock:
    """A monotonic tick counter standing in for wall-clock time."""

    def __init__(self, start: int = 0):
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        return self._now

    def tick(self, ticks: int = 1) -> int:
        """Advance time by ``ticks`` and return the new reading."""
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        self._now += int(ticks)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now})"
