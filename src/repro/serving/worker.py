"""One shard of the serving cluster.

A :class:`ShardWorker` runs the full deterministic engine for every
registered tenant (replicated structure — see
:mod:`repro.serving.sharding`), wrapped in
:class:`~repro.resilience.supervisor.ResilientStreamingInference` so
engine faults inside a shard degrade bit-identically to the reference
path.  On top of the streams it keeps the machinery the supervisor's
recovery protocol needs:

* a per-tenant :class:`~repro.resilience.checkpoint.CheckpointStore`
  (keep-last-K rotation) written after every completed window;
* a per-tenant **backlog** of admitted-but-unprocessed snapshots, the
  cluster-side feed buffer that makes catch-up replay possible;
* virtual-time health state: ``busy_until`` models per-item service
  time (``slow_factor`` ticks per snapshot), ``last_heartbeat`` is what
  the :class:`~repro.serving.cluster.ShardSupervisor` watches.

Fault seams mirror the shard-level
:class:`~repro.resilience.faults.FaultKind` members: :meth:`crash`
loses all in-memory stream state, :meth:`stall` stops processing *and*
heartbeating, :meth:`slow` stretches per-item service time, and
:meth:`tear_checkpoints` / :meth:`flake_storage` sabotage the recovery
path itself.  :meth:`recover` is the other half: restore each tenant
from the newest loadable checkpoint (riding
:func:`~repro.resilience.ingest.with_retry`, falling back across torn
checkpoints, cold-starting when nothing survives) and replay the
admitted history — which reproduces the lost windows bit-identically.
"""

from __future__ import annotations

from ..engine.metrics import ExecutionMetrics
from ..engine.streaming import StreamResult
from ..resilience.checkpoint import CheckpointStore, CorruptCheckpointError
from ..resilience.ingest import RetryExhaustedError, RetryPolicy, with_retry
from ..resilience.supervisor import ResilientStreamingInference

__all__ = ["ShardWorker"]


class ShardWorker:
    """One supervised shard: per-tenant streams, checkpoints, backlog."""

    def __init__(
        self,
        index: int,
        model_factory,
        *,
        window_size: int = 4,
        enable_skipping: bool = True,
        keep_last: int = 3,
    ):
        if index < 0:
            raise ValueError(f"index must be >= 0, got {index}")
        if not callable(model_factory):
            raise ValueError("model_factory must be callable")
        self.index = index
        self.model_factory = model_factory
        self.window_size = window_size
        self.enable_skipping = enable_skipping
        self.keep_last = keep_last
        self.streams: dict[str, ResilientStreamingInference] = {}
        self.stores: dict[str, CheckpointStore] = {}
        self._backlog: dict[str, list] = {}
        # virtual-time health state
        self.alive = True
        self.stalled = False
        self.slow_factor = 1
        self.slow_reported = False  # supervisor's one-shot slow incident
        self.busy_until = 0
        self.last_heartbeat = 0

    # ------------------------------------------------------------------
    def _fresh_stream(self) -> ResilientStreamingInference:
        return ResilientStreamingInference(
            self.model_factory(),
            window_size=self.window_size,
            enable_skipping=self.enable_skipping,
            failure_threshold=0,  # the cluster runs per-tenant breakers
        )

    def register(self, tenant: str) -> None:
        if tenant in self.stores:
            raise ValueError(f"tenant {tenant!r} already registered")
        self.streams[tenant] = self._fresh_stream()
        self.stores[tenant] = CheckpointStore(keep_last=self.keep_last)
        self._backlog[tenant] = []

    # ------------------------------------------------------------------
    # feed and drain (virtual time)
    # ------------------------------------------------------------------
    def enqueue(self, tenant: str, snapshot) -> None:
        # each shard owns its copy: shards share no mutable state
        self._backlog[tenant].append(snapshot.copy())

    def depth(self, tenant: str) -> int:
        """Admitted-but-unprocessed snapshots queued for ``tenant``."""
        return len(self._backlog[tenant])

    def total_depth(self) -> int:
        return sum(len(q) for q in self._backlog.values())

    def heartbeat(self, now: int) -> None:
        """Record liveness — crashed and stalled workers stay silent."""
        if self.alive and not self.stalled:
            self.last_heartbeat = now

    def drain(self, now: int) -> dict[str, list[StreamResult]]:
        """Process backlog items the worker has capacity for by ``now``.

        Each item costs ``slow_factor`` ticks of service time; a healthy
        worker keeps pace with one arrival per tick, a slowed worker
        falls behind and its backlog (and the cluster's backpressure)
        grows.  Completed windows are checkpointed to the tenant's
        rotating store before the results leave the worker.
        """
        out: dict[str, list[StreamResult]] = {}
        if not self.alive or self.stalled:
            return out
        for name in sorted(self._backlog):
            queue = self._backlog[name]
            while queue and self.busy_until <= now:
                snap = queue.pop(0)
                result = self.streams[name].push(snap)
                self.busy_until += self.slow_factor
                if result is not None:
                    out.setdefault(name, []).append(result)
                    self.stores[name].save(self.streams[name].stream)
        return out

    def flush(self, tenant: str) -> StreamResult | None:
        """End-of-stream: process the trailing partial window."""
        result = self.streams[tenant].flush()
        if result is not None:
            self.stores[tenant].save(self.streams[tenant].stream)
        return result

    # ------------------------------------------------------------------
    # fault seams (repro.resilience.faults.SHARD_FAULTS)
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the worker: every in-memory stream state is lost.

        Checkpoints and the cluster-side backlog survive — exactly the
        state a process crash leaves behind."""
        self.alive = False
        self.stalled = False
        self.streams = {}

    def stall(self) -> None:
        """Wedge the worker: it stops processing and heartbeating but
        keeps its memory (a deadlock, not a death)."""
        self.stalled = True

    def slow(self, factor: int) -> None:
        """Stretch per-item service time to ``factor`` ticks."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        self.slow_factor = factor
        self.slow_reported = False

    def tear_checkpoints(self) -> None:
        """Truncate the newest checkpoint of every tenant store."""
        for name in sorted(self.stores):
            self.stores[name].corrupt_latest()

    def flake_storage(self, count: int = 1) -> None:
        """Make the next ``count`` checkpoint loads per tenant fail
        transiently (retryable under ``with_retry``)."""
        for name in sorted(self.stores):
            self.stores[name].fail_next_loads(count)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(
        self,
        now: int,
        history: dict[str, list],
        *,
        policy: RetryPolicy,
        metrics: ExecutionMetrics,
    ) -> tuple[dict[str, list[StreamResult]], list[dict]]:
        """Restart the worker and re-establish every tenant's stream.

        For each tenant, walk the checkpoint store newest-first: load
        under ``with_retry`` (transient storage flakes are retried with
        seeded backoff into ``metrics``), skip torn checkpoints
        (:class:`CorruptCheckpointError`) and exhausted keys, restore
        the first usable carry, then replay the admitted ``history``
        from the checkpoint boundary.  When no checkpoint is usable the
        stream cold-starts and the full history replays.  Either way
        the recovered stream is bit-identical to one that never failed.

        Returns the window results produced during replay plus one
        recovery note per tenant (outcome, torn count, replay length,
        retry delays) for the supervisor's incident log.
        """
        self.alive = True
        self.stalled = False
        self.slow_factor = 1
        self.slow_reported = False
        self.busy_until = now
        self.last_heartbeat = now
        results: dict[str, list[StreamResult]] = {}
        notes: list[dict] = []
        for name in sorted(self.stores):
            sup = self._fresh_stream()
            self.streams[name] = sup
            store = self.stores[name]
            start = 0
            torn = 0
            exhausted = 0
            outcome = "cold-start"
            delays: list[float] = []
            stored = store.keys()
            for key in reversed(stored):
                try:
                    carry, delays = with_retry(
                        lambda k=key: store.load(k),
                        policy=policy,
                        metrics=metrics,
                    )
                except CorruptCheckpointError:
                    torn += 1
                    continue
                except RetryExhaustedError:
                    exhausted += 1
                    continue
                sup.stream.restore_carry(carry)
                start = carry["timestamp"] + len(carry["pending"])
                outcome = key
                break
            replayed = history.get(name, [])[start:]
            for snap in replayed:
                result = sup.push(snap.copy())
                if result is not None:
                    results.setdefault(name, []).append(result)
            if replayed:
                store.save(sup.stream)
            self._backlog[name] = []
            notes.append(
                {
                    "tenant": name,
                    "outcome": outcome,
                    "torn": torn,
                    "exhausted": exhausted,
                    "replayed": len(replayed),
                    "retry_delays": delays,
                }
            )
        return results, notes

    # ------------------------------------------------------------------
    @property
    def metrics(self) -> ExecutionMetrics:
        """This shard's counters merged across its tenant streams."""
        out = ExecutionMetrics()
        for name in sorted(self.streams):
            out = out.merge(self.streams[name].metrics)
        return out
