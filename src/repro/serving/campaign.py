"""Seeded shard-failure campaigns — the cluster's chaos proof.

:func:`run_cluster_campaign` drives one or more tenants' dynamic graphs
through a :class:`~repro.serving.cluster.ShardCluster` while a
:class:`~repro.resilience.faults.FaultPlan` injects shard-level faults
(worker crash / stall / slow shard / torn checkpoint — typically from
:meth:`~repro.resilience.faults.FaultPlan.generate_cluster`, which hits
every shard with every kind) plus any scheduled stream-level faults.
The report reconciles three guarantees:

* **bit-identity** — after the campaign, each tenant's released outputs
  are compared element-for-element against an unsharded
  :class:`~repro.engine.streaming.StreamingInference` fed the same
  admitted snapshots.  Crash recovery replays from checkpoints, torn
  checkpoints roll back to older ones, engine faults degrade to the
  reference engine — all of it must be invisible in the outputs;
* **zero loss** — every admitted snapshot's output is released; the
  only events missing are the dead-lettered ones, and they are in the
  queue, not gone;
* **structured incidents** — every recovery action appears as an
  :class:`~repro.resilience.supervisor.Incident` naming its shard.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.metrics import ExecutionMetrics
from ..engine.streaming import StreamingInference
from ..graphs.dynamic import DynamicGraph
from ..graphs.updates import event_stream
from ..resilience.faults import STORAGE_FAULTS, FaultKind, FaultPlan
from .cluster import ShardCluster

__all__ = ["ClusterChaosReport", "run_cluster_campaign"]


@dataclass
class ClusterChaosReport:
    """Everything one cluster campaign observed and verified."""

    tenants: list = field(default_factory=list)
    outputs: dict = field(default_factory=dict)  # tenant -> [ndarray, ...]
    admitted: dict = field(default_factory=dict)  # tenant -> count
    identical: bool = False
    lost: int = 0  # admitted outputs never released (must be 0)
    restarts: int = 0
    restarted_shards: list = field(default_factory=list)
    incidents: list = field(default_factory=list)
    dead_letters: list = field(default_factory=list)
    metrics: ExecutionMetrics = field(default_factory=ExecutionMetrics)
    plan_counts: dict = field(default_factory=dict)
    shard_summaries: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.lost < 0:
            raise ValueError(f"lost must be >= 0, got {self.lost}")
        if self.restarts < 0:
            raise ValueError(f"restarts must be >= 0, got {self.restarts}")

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Operator-readable report (the ``repro chaos --cluster``
        output)."""
        m = self.metrics
        lines = [
            "cluster chaos campaign report",
            f"  tenants             : {len(self.tenants)}"
            f" ({', '.join(self.tenants)})",
            f"  planned faults      : {sum(self.plan_counts.values())}",
        ]
        for kind in sorted(self.plan_counts):
            lines.append(f"    {kind:<20}: {self.plan_counts[kind]}")
        lines += [
            f"  shard restarts      : {self.restarts}"
            f" (shards {self.restarted_shards})",
            f"  incidents absorbed  : {m.incidents}",
            f"  dead-lettered       : {m.dead_letter_events}"
            f" (queue depth {len(self.dead_letters)})",
            f"  degraded windows    : {m.fallback_windows}",
            f"  storage retries     : {m.retries}",
            f"  checkpoint restores : {m.restores}",
            f"  boundary words      : {m.boundary_words}",
            f"  outputs released    : "
            + ", ".join(
                f"{name}={len(self.outputs[name])}/{self.admitted[name]}"
                for name in self.tenants
            ),
            f"  lost (non-DLQ)      : {self.lost}",
            f"  bit-identical       : {'yes' if self.identical else 'NO'}",
        ]
        if self.incidents:
            lines.append("  incident log:")
            for inc in self.incidents:
                where = f" shard {inc.shard}" if inc.shard >= 0 else ""
                who = f" [{inc.tenant}]" if inc.tenant else ""
                lines.append(
                    f"    tick {inc.step:>4}{where}{who}:"
                    f" {inc.kind} -> {inc.action}"
                )
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-serialisable artefact for the CI campaign report."""
        return {
            "tenants": list(self.tenants),
            "plan_counts": dict(self.plan_counts),
            "admitted": dict(self.admitted),
            "released": {
                name: len(self.outputs[name]) for name in self.tenants
            },
            "identical": bool(self.identical),
            "lost": int(self.lost),
            "restarts": int(self.restarts),
            "restarted_shards": list(self.restarted_shards),
            "incidents": [
                {
                    "step": inc.step,
                    "kind": inc.kind,
                    "action": inc.action,
                    "shard": inc.shard,
                    "tenant": inc.tenant,
                    "detail": inc.detail,
                }
                for inc in self.incidents
            ],
            "dead_letters": len(self.dead_letters),
            "metrics": {
                "incidents": self.metrics.incidents,
                "dead_letter_events": self.metrics.dead_letter_events,
                "fallback_windows": self.metrics.fallback_windows,
                "retries": self.metrics.retries,
                "retry_attempts": self.metrics.retry_attempts,
                "restores": self.metrics.restores,
                "shard_restarts": self.metrics.shard_restarts,
                "shed_events": self.metrics.shed_events,
                "stale_serves": self.metrics.stale_serves,
                "boundary_words": self.metrics.boundary_words,
            },
            "shards": list(self.shard_summaries),
        }


def _inject_shard_fault(cluster: ShardCluster, spec) -> None:
    """Apply one scheduled shard-level fault to its target worker."""
    worker = cluster.workers[spec.shard % len(cluster.workers)]
    if spec.kind is FaultKind.WORKER_CRASH:
        worker.crash()
    elif spec.kind is FaultKind.WORKER_STALL:
        worker.stall()
    elif spec.kind is FaultKind.SLOW_SHARD:
        worker.slow(3)
    elif spec.kind is FaultKind.TORN_CHECKPOINT:
        # tear the newest checkpoint, then kill the worker so the next
        # recovery is forced through (and past) the torn file
        worker.tear_checkpoints()
        worker.crash()
    else:  # pragma: no cover - exhaustive over SHARD_FAULTS
        raise ValueError(f"not a shard-level fault: {spec.kind}")


def run_cluster_campaign(
    model_factory,
    graphs,
    plan: FaultPlan,
    *,
    num_shards: int = 4,
    window_size: int = 4,
    enable_skipping: bool = True,
    heartbeat_timeout: int = 2,
    keep_last: int = 3,
    seed: int = 0,
    compare_reference: bool = True,
) -> ClusterChaosReport:
    """Serve ``graphs`` through a shard cluster under ``plan``'s faults.

    ``graphs`` is one :class:`DynamicGraph` (a single tenant) or a
    mapping ``{tenant_name: DynamicGraph}``; all graphs must share
    vertex count and feature width (the shard map is cluster-wide).
    Tenants' feeds interleave round-robin, one snapshot per tenant per
    step, delivered as event batches through the cluster's guarded
    ingest.  Shard faults fire at the virtual step the plan pins them
    to; stream faults ride along (poison events / torn snapshots /
    engine faults / storage flakes) on the first tenant's feed.

    The campaign never sheds (admission is unbounded here) so the
    zero-loss and bit-identity reconciliation is exact; bounded-queue
    behaviour is the demo's and the unit tests' job.
    """
    if isinstance(graphs, DynamicGraph):
        graphs = {"tenant-0": graphs}
    if not graphs:
        raise ValueError("need at least one tenant graph")
    names = sorted(graphs)
    cluster = ShardCluster(
        model_factory,
        num_shards=num_shards,
        window_size=window_size,
        enable_skipping=enable_skipping,
        max_backlog=None,  # campaigns must not shed: zero-loss is checked
        heartbeat_timeout=heartbeat_timeout,
        keep_last=keep_last,
        seed=seed,
    )
    for name in names:
        cluster.register_tenant(name)
    feeds = {name: event_stream(graphs[name]) for name in names}
    first = names[0]
    max_steps = max(g.num_snapshots for g in graphs.values())
    for t in range(max_steps):
        for spec in plan.shard_specs(t):
            _inject_shard_fault(cluster, spec)
        for _spec in plan.at(t, STORAGE_FAULTS):
            cluster.workers[t % num_shards].flake_storage(1)
        for spec in plan.engine_specs(t):
            worker = cluster.workers[spec.step % num_shards]
            if worker.alive and first in worker.streams:
                worker.streams[first].inject_fault(plan.violation(spec))
        for name in names:
            graph = graphs[name]
            if t >= graph.num_snapshots:
                continue
            if name == first:
                for spec in plan.snapshot_specs(t):
                    torn = plan.corrupt_snapshot(spec, graph[t])
                    cluster.push(name, torn)  # dead-lettered at admission
            if t == 0:
                cluster.push(name, graph[0].copy())
                continue
            batch = list(feeds[name][t - 1])
            if name == first:
                batch += [
                    plan.poison_event(spec, graph[t])
                    for spec in plan.event_specs(t)
                ]
            cluster.ingest(name, batch, step=t)
    for name in names:
        cluster.flush(name)

    report = ClusterChaosReport(
        tenants=names,
        plan_counts=plan.counts(),
        restarts=cluster.supervisor.restarts,
    )
    report.outputs = {name: cluster.released(name) for name in names}
    report.admitted = {name: len(cluster.history(name)) for name in names}
    report.lost = sum(
        report.admitted[name] - len(report.outputs[name]) for name in names
    )
    report.restarted_shards = sorted(
        {inc.shard for inc in cluster.incidents if inc.action == "restarted"}
    )
    report.incidents = list(cluster.incidents)
    report.dead_letters = list(cluster.dlq.letters)
    report.metrics = cluster.metrics
    report.shard_summaries = [
        {
            "shard": worker.index,
            "owned_vertices": int(cluster.shard_map.rows(worker.index).size)
            if cluster.shard_map is not None
            else 0,
            "windows_processed": m.windows_processed,
            "snapshots_processed": m.snapshots_processed,
            "fallback_windows": m.fallback_windows,
            "restores": m.restores,
        }
        for worker, m in zip(cluster.workers, cluster.shard_metrics())
    ]

    identical = True
    if compare_reference:
        for name in names:
            reference = StreamingInference(
                model_factory(),
                window_size=window_size,
                enable_skipping=enable_skipping,
            )
            expected: list[np.ndarray] = []
            for snap in cluster.history(name):
                result = reference.push(snap.copy())
                if result is not None:
                    expected.extend(result.outputs)
            result = reference.flush()
            if result is not None:
                expected.extend(result.outputs)
            got = report.outputs[name]
            if len(got) != len(expected) or not all(
                np.array_equal(a, b) for a, b in zip(got, expected)
            ):
                identical = False
    report.identical = identical and report.lost == 0
    return report
