"""Fault-tolerant sharded multi-tenant serving layer (docs/serving.md).

A :class:`ShardCluster` partitions vertex ownership across N supervised
:class:`ShardWorker`\\ s via the accelerator's GSPM partitioner, routes
per-tenant snapshot/event streams to every shard, and stitches the
owned rows back into full outputs — surviving worker crashes, stalls,
slow shards and torn checkpoints with bit-identical recovery.
"""

from .campaign import ClusterChaosReport, run_cluster_campaign
from .clock import VirtualClock
from .cluster import PushReceipt, ShardCluster, ShardSupervisor
from .sharding import ShardMap
from .tenants import TenantGate
from .worker import ShardWorker

__all__ = [
    "ClusterChaosReport",
    "PushReceipt",
    "ShardCluster",
    "ShardMap",
    "ShardSupervisor",
    "ShardWorker",
    "TenantGate",
    "VirtualClock",
    "run_cluster_campaign",
]
