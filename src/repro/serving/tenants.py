"""Per-tenant admission control: bounded queues and circuit breakers.

The cluster serves many tenants from shared shard workers, so one
tenant's burst must not consume every worker's queue.  The
:class:`TenantGate` enforces, per tenant:

* a **bounded backlog** — when any shard's queued depth for the tenant
  reaches ``max_backlog``, the push is *shed*: the caller gets an
  explicit backpressure response carrying a structured
  :class:`~repro.resilience.supervisor.Incident`, and the rejected
  snapshot lands in the cluster's
  :class:`~repro.resilience.ingest.DeadLetterQueue` (nothing is dropped
  silently);
* a **circuit breaker** — ``breaker_threshold`` consecutive sheds open
  the tenant's breaker, after which pushes are refused immediately
  (reason ``"circuit-open"``) until the backlog drains or an operator
  calls :meth:`TenantGate.reset`.  The breaker half-closes on the first
  admit attempt that finds headroom again.

Everything is pure bookkeeping over virtual time — no wall clock, no
entropy — so shedding behaviour replays deterministically.
"""

from __future__ import annotations

__all__ = ["TenantGate"]


class _TenantState:
    """Mutable breaker bookkeeping for one tenant."""

    __slots__ = ("name", "consecutive_sheds", "open", "admitted", "shed")

    def __init__(self, name: str):
        self.name = name
        self.consecutive_sheds = 0
        self.open = False
        self.admitted = 0
        self.shed = 0


class TenantGate:
    """Admission control shared by every shard of one cluster."""

    def __init__(
        self,
        *,
        max_backlog: int | None = None,
        breaker_threshold: int = 8,
    ):
        if max_backlog is not None and max_backlog < 1:
            raise ValueError(
                f"max_backlog must be >= 1 or None, got {max_backlog}"
            )
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        self.max_backlog = max_backlog
        self.breaker_threshold = breaker_threshold
        self._tenants: dict[str, _TenantState] = {}

    # ------------------------------------------------------------------
    def register(self, tenant: str) -> None:
        if not tenant:
            raise ValueError("tenant name must be non-empty")
        if tenant in self._tenants:
            raise ValueError(f"tenant {tenant!r} already registered")
        self._tenants[tenant] = _TenantState(tenant)

    def known(self, tenant: str) -> bool:
        return tenant in self._tenants

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    # ------------------------------------------------------------------
    def admit(self, tenant: str, depth: int) -> str:
        """Decide one push given the tenant's deepest shard backlog.

        Returns ``""`` to admit, or a structured shed reason
        (``"backlog-full"`` / ``"circuit-open"``).
        """
        state = self._state(tenant)
        overfull = self.max_backlog is not None and depth >= self.max_backlog
        if state.open:
            if overfull:
                state.shed += 1
                return "circuit-open"
            # headroom returned: half-close and fall through to admit
            state.open = False
            state.consecutive_sheds = 0
        if overfull:
            state.consecutive_sheds += 1
            state.shed += 1
            if state.consecutive_sheds >= self.breaker_threshold:
                state.open = True
            return "backlog-full"
        state.consecutive_sheds = 0
        state.admitted += 1
        return ""

    def breaker_open(self, tenant: str) -> bool:
        return self._state(tenant).open

    def reset(self, tenant: str) -> None:
        """Operator action: close the breaker and forget the streak."""
        state = self._state(tenant)
        state.open = False
        state.consecutive_sheds = 0

    def stats(self, tenant: str) -> dict[str, int]:
        state = self._state(tenant)
        return {
            "admitted": state.admitted,
            "shed": state.shed,
            "breaker_open": int(state.open),
        }

    # ------------------------------------------------------------------
    def _state(self, tenant: str) -> _TenantState:
        try:
            return self._tenants[tenant]
        except KeyError:
            raise ValueError(
                f"tenant {tenant!r} is not registered"
            ) from None
