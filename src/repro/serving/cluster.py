"""The supervised shard cluster: routing, aggregation, recovery.

:class:`ShardCluster` is the serving front door.  Per admitted push it:

1. ticks the :class:`~repro.serving.clock.VirtualClock` (one tick per
   request — the only notion of time anywhere in the layer);
2. validates the snapshot at the boundary
   (:func:`~repro.resilience.ingest.snapshot_violation`; poison is
   dead-lettered once, cluster-wide);
3. runs per-tenant admission control
   (:class:`~repro.serving.tenants.TenantGate`): a full backlog sheds
   the push with a structured
   :class:`~repro.resilience.supervisor.Incident` and the snapshot goes
   to the :class:`~repro.resilience.ingest.DeadLetterQueue` — explicit
   backpressure, never silent loss;
4. appends the snapshot to the tenant's **history** (the replay log
   recovery depends on) and every shard's backlog;
5. lets the :class:`ShardSupervisor` health-check the workers —
   restarting any shard whose heartbeat went stale from its newest
   loadable checkpoint plus bit-identical catch-up replay — then drains
   whatever each healthy worker has capacity for;
6. stitches per-shard owned rows
   (:class:`~repro.serving.sharding.ShardMap`) into full output
   matrices, releasing a timestamp only once **every** active shard has
   contributed its rows for it.

Degradation modes: :meth:`ShardCluster.query` serves the latest known
rows per shard, counting ``stale_serves`` for shards lagging the
newest contribution (serve-stale-embeddings); engine faults inside a
shard degrade that window to the reference engine via ``adopt_window``
(the shard streams are
:class:`~repro.resilience.supervisor.ResilientStreamingInference`), so
every degradation stays bit-identical to the unsharded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accel.partition import PartitionStrategy
from ..engine.metrics import ExecutionMetrics
from ..engine.streaming import StreamResult
from ..graphs.dynamic import DynamicGraph
from ..resilience.ingest import (
    DeadLetterQueue,
    GuardedIngest,
    RetryPolicy,
    snapshot_violation,
)
from ..resilience.supervisor import Incident
from .clock import VirtualClock
from .sharding import ShardMap
from .tenants import TenantGate
from .worker import ShardWorker

__all__ = ["PushReceipt", "ShardCluster", "ShardSupervisor"]


@dataclass
class PushReceipt:
    """Outcome of one cluster push: admission decision + releases."""

    tenant: str
    step: int  # virtual tick at which the decision was made
    accepted: bool
    shed_reason: str = ""  # "" | "poison-snapshot" | "backlog-full" | ...
    released: list = field(default_factory=list)  # (timestamp, ndarray)
    incident: Incident | None = None

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")


class ShardSupervisor:
    """Virtual-time health checking and per-shard restart."""

    def __init__(
        self,
        workers: list[ShardWorker],
        *,
        heartbeat_timeout: int = 4,
        retry_policy: RetryPolicy | None = None,
    ):
        if not workers:
            raise ValueError("supervisor needs at least one worker")
        if heartbeat_timeout < 1:
            raise ValueError(
                f"heartbeat_timeout must be >= 1, got {heartbeat_timeout}"
            )
        self.workers = list(workers)
        self.heartbeat_timeout = heartbeat_timeout
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.restarts = 0

    # ------------------------------------------------------------------
    def monitor(
        self,
        now: int,
        history: dict[str, list],
        metrics: ExecutionMetrics,
    ) -> tuple[dict[str, list], list[Incident]]:
        """One health-check pass: collect heartbeats, restart the dead.

        A worker whose heartbeat is older than ``heartbeat_timeout``
        ticks — because it crashed or stalled — is restarted via
        :meth:`ShardWorker.recover`.  Returns the window results the
        restarted shards produced during catch-up replay (keyed by
        tenant, as ``(shard, result)`` pairs) and one structured
        :class:`Incident` per recovery action.
        """
        results: dict[str, list] = {}
        incidents: list[Incident] = []
        for worker in self.workers:
            worker.heartbeat(now)
            if (
                worker.alive
                and not worker.stalled
                and worker.slow_factor > 1
                and not worker.slow_reported
            ):
                worker.slow_reported = True
                incidents.append(
                    Incident(
                        window_index=0,
                        step=now,
                        kind="slow-shard",
                        action="degraded",
                        detail=(
                            f"service time x{worker.slow_factor};"
                            " queries serve stale rows until it catches up"
                        ),
                        component=f"serving.shard{worker.index}",
                        shard=worker.index,
                    )
                )
            stale = now - worker.last_heartbeat
            if worker.alive and stale <= self.heartbeat_timeout:
                continue
            kind = "worker-crash" if not worker.alive else "worker-stall"
            recovered, notes = worker.recover(
                now, history, policy=self.retry_policy, metrics=metrics
            )
            self.restarts += 1
            metrics.shard_restarts += 1
            for note in notes:
                if note["outcome"] != "cold-start":
                    metrics.restores += 1
                if note["torn"]:
                    incidents.append(
                        Incident(
                            window_index=0,
                            step=now,
                            kind="torn-checkpoint",
                            action=(
                                "cold-start"
                                if note["outcome"] == "cold-start"
                                else "rolled-back"
                            ),
                            detail=(
                                f"{note['torn']} torn checkpoint(s) skipped;"
                                f" resumed from {note['outcome']}"
                            ),
                            component=f"serving.shard{worker.index}",
                            shard=worker.index,
                            tenant=note["tenant"],
                        )
                    )
                incidents.append(
                    Incident(
                        window_index=0,
                        step=now,
                        kind=kind,
                        action="restarted",
                        detail=(
                            f"heartbeat stale by {stale} ticks; resumed"
                            f" from {note['outcome']}, replayed"
                            f" {note['replayed']} snapshot(s)"
                        ),
                        component=f"serving.shard{worker.index}",
                        shard=worker.index,
                        tenant=note["tenant"],
                    )
                )
            for name in sorted(recovered):
                results.setdefault(name, []).extend(
                    (worker.index, result) for result in recovered[name]
                )
        return results, incidents


class ShardCluster:
    """Fault-tolerant sharded multi-tenant serving layer.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh (deterministically
        seeded) model — each shard×tenant stream gets its own instance
        so weight-evolution state never aliases across shards.
    num_shards, window_size, enable_skipping, strategy:
        Cluster shape; ``strategy`` picks the
        :class:`~repro.serving.sharding.ShardMap` partitioning.
    max_backlog, breaker_threshold:
        Per-tenant admission control (see
        :class:`~repro.serving.tenants.TenantGate`).
    heartbeat_timeout, keep_last, seed:
        Supervision: staleness bound (virtual ticks), checkpoint
        retention depth, and the seed of the recovery
        :class:`~repro.resilience.ingest.RetryPolicy` jitter.
    """

    def __init__(
        self,
        model_factory,
        *,
        num_shards: int = 4,
        window_size: int = 4,
        enable_skipping: bool = True,
        strategy: PartitionStrategy = PartitionStrategy.LOCALITY,
        max_backlog: int | None = None,
        breaker_threshold: int = 8,
        heartbeat_timeout: int = 4,
        keep_last: int = 3,
        seed: int = 0,
        dlq: DeadLetterQueue | None = None,
    ):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.model_factory = model_factory
        self.num_shards = num_shards
        self.window_size = window_size
        self.strategy = strategy
        self.clock = VirtualClock()
        self.workers = [
            ShardWorker(
                i,
                model_factory,
                window_size=window_size,
                enable_skipping=enable_skipping,
                keep_last=keep_last,
            )
            for i in range(num_shards)
        ]
        self.supervisor = ShardSupervisor(
            self.workers,
            heartbeat_timeout=heartbeat_timeout,
            retry_policy=RetryPolicy(max_attempts=4, seed=seed),
        )
        self.gate = TenantGate(
            max_backlog=max_backlog, breaker_threshold=breaker_threshold
        )
        self.dlq = dlq if dlq is not None else DeadLetterQueue()
        self.guard = GuardedIngest(dlq=self.dlq)
        self.shard_map: ShardMap | None = None
        self.incidents: list[Incident] = []
        self._own = ExecutionMetrics()
        self._history: dict[str, list] = {}
        self._parts: dict[str, dict] = {}  # tenant -> ts -> shard -> rows
        self._latest: dict[str, dict] = {}  # tenant -> shard -> (ts, rows)
        self._next_release: dict[str, int] = {}
        self._released: dict[str, list] = {}  # tenant -> stitched, ts order
        self._num_vertices: int | None = None
        self._dim: int | None = None

    # ------------------------------------------------------------------
    # tenant lifecycle
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str) -> None:
        self.gate.register(tenant)
        for worker in self.workers:
            worker.register(tenant)
        self._history[tenant] = []
        self._parts[tenant] = {}
        self._latest[tenant] = {}
        self._next_release[tenant] = 0
        self._released[tenant] = []

    def tenants(self) -> list[str]:
        return self.gate.tenants()

    def history(self, tenant: str) -> list:
        """Admitted snapshots, in order — the replay log."""
        return list(self._history[tenant])

    def released(self, tenant: str) -> list:
        """Stitched output matrices released so far, in timestamp order."""
        return list(self._released[tenant])

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def push(self, tenant: str, snapshot) -> PushReceipt:
        """Route one snapshot; returns admission outcome + any releases."""
        now = self.clock.tick()
        if not self.gate.known(tenant):
            raise ValueError(f"tenant {tenant!r} is not registered")
        reason = snapshot_violation(
            snapshot, num_vertices=self._num_vertices, dim=self._dim
        )
        if reason is not None:
            return self._reject(tenant, now, "poison-snapshot", reason,
                                snapshot)
        depth = max(w.depth(tenant) for w in self.workers)
        shed = self.gate.admit(tenant, depth)
        if shed:
            self._own.shed_events += 1
            receipt = self._reject(
                tenant, now, shed,
                f"backlog depth {depth} at max_backlog"
                f" {self.gate.max_backlog}", snapshot,
            )
            # the world still turns on a shed request: stalled shards
            # get health-checked and healthy ones keep draining
            receipt.released = self._advance(now).get(tenant, [])
            return receipt
        if self.shard_map is None:
            self._pin(snapshot)
        self._history[tenant].append(snapshot)
        for worker in self.workers:
            worker.enqueue(tenant, snapshot)
        released = self._advance(now)
        return PushReceipt(
            tenant, now, accepted=True, released=released.get(tenant, [])
        )

    def ingest(self, tenant: str, batch, *, step: int | None = None):
        """Evolve the tenant's latest snapshot by an event batch, then
        push the result.  Poison events are quarantined by
        :class:`~repro.resilience.ingest.GuardedIngest` (shared DLQ) and
        the snapshot is rebuilt from the clean remainder."""
        log = self._history[tenant]
        if not log:
            raise ValueError(
                f"tenant {tenant!r} has no admitted snapshot to evolve;"
                " push an initial snapshot first"
            )
        at = len(log) if step is None else step
        snapshot = self.guard.apply(log[-1], batch, step=at)
        return self.push(tenant, snapshot)

    def query(self, tenant: str) -> tuple[np.ndarray, int]:
        """Current embeddings for ``tenant``, stitched from each shard's
        latest contribution.

        Shards lagging the newest contribution serve their last known
        (stale) rows — the serve-stale degradation mode — counted in
        ``stale_serves``.  Returns ``(matrix, num_stale_shards)``.
        """
        latest = self._latest[tenant]
        if self.shard_map is None or not latest:
            raise ValueError(f"tenant {tenant!r} has no released rows yet")
        active = self.shard_map.active_shards()
        absent = [s for s in active if s not in latest]
        if absent:
            raise ValueError(
                f"shards {absent} have not produced rows for"
                f" {tenant!r} yet"
            )
        newest = max(latest[s][0] for s in active)
        lagging = [s for s in active if latest[s][0] < newest]
        self._own.stale_serves += len(lagging)
        return (
            self.shard_map.stitch({s: latest[s][1] for s in active}),
            len(lagging),
        )

    def flush(self, tenant: str) -> list:
        """End of stream: drain every backlog, process the trailing
        partial window on every shard, release what completes."""
        self.drain_backlogs()
        for worker in self.workers:
            result = worker.flush(tenant)
            if result is not None:
                self._collect(tenant, worker.index, result)
        return self._release(tenant)

    def drain_backlogs(self, *, max_ticks: int = 100_000) -> dict:
        """Advance virtual time until every shard is healthy and every
        backlog is empty (stalled/crashed shards recover via the
        supervisor on the way).  Returns releases by tenant."""
        collected: dict[str, list] = {}
        for _ in range(max_ticks):
            healthy = all(
                w.alive and not w.stalled for w in self.workers
            )
            backlog = sum(w.total_depth() for w in self.workers)
            if healthy and backlog == 0:
                return collected
            got = self._advance(self.clock.tick())
            for name in sorted(got):
                collected.setdefault(name, []).extend(got[name])
        raise RuntimeError(
            f"cluster failed to drain within {max_ticks} ticks"
        )

    def reset_tenant(self, tenant: str) -> None:
        """Operator action: close the tenant's circuit breaker."""
        self.gate.reset(tenant)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def metrics(self) -> ExecutionMetrics:
        """Cluster-wide aggregate: the cluster's own counters (shed /
        stale / restarts / boundary words) merged with every shard's
        engine counters (replication makes compute N×, and the metrics
        say so) and the ingest guard's quarantine counters."""
        out = ExecutionMetrics(**self._own.as_dict())
        out = out.merge(self.guard.metrics)
        for worker in self.workers:
            out = out.merge(worker.metrics)
        return out

    def shard_metrics(self) -> list[ExecutionMetrics]:
        """Per-shard counter trajectories, by shard index."""
        return [worker.metrics for worker in self.workers]

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pin(self, snapshot) -> None:
        self._num_vertices = snapshot.num_vertices
        self._dim = snapshot.dim
        self.shard_map = ShardMap.build(
            DynamicGraph([snapshot.copy()], name="shard-map-seed"),
            self.num_shards,
            strategy=self.strategy,
        )

    def _reject(
        self, tenant: str, now: int, kind: str, detail: str, snapshot
    ) -> PushReceipt:
        incident = Incident(
            window_index=0,
            step=now,
            kind="backpressure" if kind not in ("poison-snapshot",) else kind,
            action="shed" if kind != "poison-snapshot" else "dead-lettered",
            detail=f"{kind}: {detail}" if kind != "poison-snapshot" else detail,
            component="serving.cluster",
            tenant=tenant,
        )
        self.dlq.record(now, f"{kind}: {detail}", payload=snapshot)
        self._own.dead_letter_events += 1
        self._own.incidents += 1
        self.incidents.append(incident)
        return PushReceipt(
            tenant, now, accepted=False, shed_reason=kind, incident=incident
        )

    def _advance(self, now: int) -> dict[str, list]:
        recovered, incidents = self.supervisor.monitor(
            now, self._history, self._own
        )
        self.incidents.extend(incidents)
        self._own.incidents += len(incidents)
        for name in sorted(recovered):
            for shard, result in recovered[name]:
                self._collect(name, shard, result)
        for worker in self.workers:
            drained = worker.drain(now)
            for name in sorted(drained):
                for result in drained[name]:
                    self._collect(name, worker.index, result)
        out: dict[str, list] = {}
        for name in self.gate.tenants():
            got = self._release(name)
            if got:
                out[name] = got
        return out

    def _collect(self, tenant: str, shard: int, result: StreamResult) -> None:
        """File one shard's window results into the stitch buffers."""
        owned = self.shard_map.rows(shard)
        if not owned.size:
            return
        newest = self._latest[tenant].get(shard)
        for ts, full in zip(result.timestamps, result.outputs):
            block = full[owned].copy()
            if newest is None or ts > newest[0]:
                newest = (ts, block)
            if ts >= self._next_release[tenant]:
                self._parts[tenant].setdefault(ts, {})[shard] = block
        self._latest[tenant][shard] = newest

    def _release(self, tenant: str) -> list:
        """Release every timestamp all active shards have contributed."""
        if self.shard_map is None:
            return []
        active = self.shard_map.active_shards()
        out = []
        nxt = self._next_release[tenant]
        while True:
            got = self._parts[tenant].get(nxt)
            if got is None or any(s not in got for s in active):
                break
            stitched = self.shard_map.stitch(got)
            self._own.boundary_words += self.shard_map.boundary_words(
                stitched.shape[1]
            )
            self._released[tenant].append(stitched)
            out.append((nxt, stitched))
            del self._parts[tenant][nxt]
            nxt += 1
        self._next_release[tenant] = nxt
        return out
