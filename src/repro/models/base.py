"""The DGNN model interface shared by engines, accelerator, and benches.

A DGNN model (paper Fig. 1) is a GNN module producing per-snapshot output
features :math:`Z^t`, followed by an RNN module whose cell update produces
the final features :math:`H^t` from :math:`Z^t` and the previous state.
The engines drive the two halves separately because everything TaGNN does
— multi-snapshot GNN batching, similarity-gated cell skipping — happens at
exactly that seam.
"""

from __future__ import annotations

import abc

import numpy as np

from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot
from .layers import GCNStack
from .rnn import RecurrentCell

__all__ = ["DGNNModel"]


class DGNNModel(abc.ABC):
    """Abstract DGNN: a :class:`GCNStack` plus a :class:`RecurrentCell`.

    Concrete models (CD-GCN, GC-LSTM, T-GCN) differ in layer counts and in
    whether the recurrent cell itself consults the graph (GC-LSTM).
    """

    #: model name as used in the paper's figures
    name: str = "abstract"

    def __init__(self, gnn: GCNStack, cell: RecurrentCell):
        self.gnn = gnn
        self.cell = cell
        if gnn.out_dim != cell.input_dim:
            raise ValueError(
                f"GNN out_dim {gnn.out_dim} != cell input_dim {cell.input_dim}"
            )

    # ------------------------------------------------------------------
    @property
    def in_dim(self) -> int:
        """Expected input feature width."""
        return self.gnn.in_dim

    @property
    def out_dim(self) -> int:
        """Final feature width (the RNN hidden size)."""
        return self.cell.hidden_dim

    @property
    def num_layers(self) -> int:
        """Layer count as the paper counts it: GCN layers + 1 RNN module."""
        return len(self.gnn.layers) + 1

    # ------------------------------------------------------------------
    def gnn_forward(self, snap: CSRSnapshot, x: np.ndarray | None = None) -> np.ndarray:
        """GNN module on one snapshot: returns :math:`Z^t` (n, gnn.out_dim)."""
        if x is None:
            x = snap.features
        return self.gnn.forward(snap, x)

    def gnn_forward_window(
        self,
        snaps: list[CSRSnapshot],
        xs: list[np.ndarray] | None = None,
    ) -> list[np.ndarray]:
        """GNN module over a window of snapshots at once.

        Returns ``[Z^t for each snapshot]``, bit-identical to calling
        :meth:`gnn_forward` per snapshot (see
        :meth:`GCNStack.forward_window` for what is and is not batched).
        """
        if xs is None:
            xs = [s.features for s in snaps]
        if len(snaps) == 1:
            return [self.gnn_forward(snaps[0], xs[0])]
        return self.gnn.forward_window(snaps, xs)

    def cell_step(self, z: np.ndarray, state, snap: CSRSnapshot | None = None):
        """RNN module cell update: returns ``(H^t, new_state)``.

        ``snap`` is consulted only by graph-aware cells (GC-LSTM); plain
        cells ignore it.
        """
        return self.cell.step(z, state)

    def init_state(self, num_vertices: int):
        return self.cell.init_state(num_vertices)

    def cell_step_rows(
        self,
        z: np.ndarray,
        state,
        rows: np.ndarray,
        snap: CSRSnapshot | None = None,
    ):
        """Cell update restricted to ``rows``.

        Returns ``(h_rows, state_rows)`` covering only ``rows`` — the
        engines splice them into the global state.  ``z``/``state`` are
        full-size.  Graph-aware cells override this (they need the whole
        state for the recurrent convolution).
        """
        sub = type(state)(**{
            k: getattr(state, k)[rows] for k in vars(state) if not k.startswith("_")
        })
        return self.cell.step(z[rows], sub)

    def recurrent_drive(self, state, snap: CSRSnapshot | None = None) -> np.ndarray:
        """The tensor actually multiplied by ``w_h`` in the cell — plain
        ``state.h`` for standard cells; graph-aware cells override."""
        return state.h

    # ------------------------------------------------------------------
    def forward_window(self, window: DynamicGraph, state=None):
        """Exact snapshot-by-snapshot inference over a window.

        Returns ``(outputs, final_state)`` where ``outputs[t]`` is
        :math:`H^t` for every vertex.  This is the semantic ground truth
        the approximate engines are compared against.
        """
        if state is None:
            state = self.init_state(window.num_vertices)
        outputs: list[np.ndarray] = []
        for snap in window:
            z = self.gnn_forward(snap)
            h, state = self.cell_step(z, state, snap)
            outputs.append(h)
        return outputs, state

    # ------------------------------------------------------------------
    def gnn_flops(self, num_vertices: int, num_edges: int) -> int:
        """MACs of the GNN module on one snapshot."""
        return self.gnn.flops(num_vertices, num_edges)

    def cell_flops(self, num_vertices: int) -> int:
        """MACs of the RNN module cell update on one snapshot."""
        return num_vertices * self.cell.flops_per_vertex()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(in={self.in_dim}, out={self.out_dim}, "
            f"layers={self.num_layers})"
        )
