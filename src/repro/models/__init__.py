"""DGNN models: GCN layers, recurrent cells, the paper's model zoo, and
the readout protocol for accuracy experiments."""

from .activations import ACTIVATIONS, relu, sigmoid, softmax, tanh
from .base import DGNNModel
from .layers import GCNLayer, GCNStack, glorot
from .linkpred import (
    auc_score,
    fit_link_decoder,
    link_prediction_auc,
    sample_negative_edges,
    temporal_link_prediction_auc,
)
from .readout import (
    RidgeReadout,
    evaluate_accuracy,
    fit_readout,
    make_teacher_labels,
    split_vertices,
    test_vertex_accuracy,
)
from .rnn import (
    ElmanCell,
    GRUCell,
    GRUState,
    IdentityCell,
    LSTMCell,
    LSTMState,
    RecurrentCell,
)
from .zoo import CDGCN, GCLSTM, GCRN, MODEL_ZOO, TGCN, EvolveGCN, GraphLSTMCell, make_model

__all__ = [
    "ACTIVATIONS",
    "relu",
    "sigmoid",
    "softmax",
    "tanh",
    "DGNNModel",
    "GCNLayer",
    "GCNStack",
    "glorot",
    "auc_score",
    "fit_link_decoder",
    "link_prediction_auc",
    "sample_negative_edges",
    "temporal_link_prediction_auc",
    "RidgeReadout",
    "evaluate_accuracy",
    "fit_readout",
    "test_vertex_accuracy",
    "make_teacher_labels",
    "split_vertices",
    "ElmanCell",
    "GRUCell",
    "IdentityCell",
    "GRUState",
    "LSTMCell",
    "LSTMState",
    "RecurrentCell",
    "CDGCN",
    "EvolveGCN",
    "GCRN",
    "GCLSTM",
    "TGCN",
    "GraphLSTMCell",
    "MODEL_ZOO",
    "make_model",
]
