"""Dynamic link prediction — the paper's second motivating application.

Given embeddings :math:`H^t`, predict which vertex pairs will be
connected at :math:`t+1`.  As with the node-classification readout
(`repro.models.readout`), the frozen reservoir embeddings need a trained
decoder: a ridge model over the Hadamard product
:math:`h_u \\odot h_v` is fitted on the *current* snapshot's edges (the
deployed decoder), then evaluates true next-snapshot edges against
sampled non-edges by ROC-AUC.

This provides a second, structural accuracy axis for the approximation
studies: cell skipping must preserve not only class labels (Table 5's
node classification) but also the *relative geometry* of embeddings that
link prediction depends on.
"""

from __future__ import annotations

import numpy as np

from ..check.shapes import contract
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import CSRSnapshot

__all__ = [
    "sample_negative_edges",
    "auc_score",
    "fit_link_decoder",
    "link_prediction_auc",
    "temporal_link_prediction_auc",
]


@contract("(n,f) f, _, int, float, int -> (f+1,) f64")
def fit_link_decoder(
    embeddings: np.ndarray,
    snap: CSRSnapshot,
    *,
    num_samples: int = 2000,
    reg: float = 1e-2,
    seed: int = 0,
) -> np.ndarray:
    """Fit a ridge decoder ``w`` over Hadamard pair-features on the
    current snapshot's edges (+1) vs sampled non-edges (-1)."""
    rng = np.random.default_rng(seed)
    edges = snap.edge_array()
    if len(edges) == 0:
        raise ValueError("snapshot has no edges to fit on")
    take = min(num_samples, len(edges))
    pos = edges[rng.choice(len(edges), size=take, replace=False)]
    neg = sample_negative_edges(snap, take, rng=rng)
    h = embeddings.astype(np.float64)
    x = np.concatenate(
        [h[pos[:, 0]] * h[pos[:, 1]], h[neg[:, 0]] * h[neg[:, 1]]]
    )
    xb = np.concatenate([x, np.ones((len(x), 1))], axis=1)
    y = np.concatenate([np.ones(take), -np.ones(take)])
    gram = xb.T @ xb
    gram[np.diag_indices_from(gram)] += reg
    return np.linalg.solve(gram, xb.T @ y)


@contract("_, m, _ -> (m, 2) i64")
def sample_negative_edges(
    snap: CSRSnapshot, num: int, *, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``num`` vertex pairs that are *not* edges of ``snap``
    (both endpoints present, no self-loops).  Rejection sampling with a
    bounded number of rounds; raises if the graph is too dense to find
    enough non-edges."""
    present = np.flatnonzero(snap.present)
    if len(present) < 2:
        raise ValueError("need at least two present vertices")
    out: list[np.ndarray] = []
    needed = num
    for _ in range(20):
        if needed <= 0:
            break
        u = rng.choice(present, size=2 * needed)
        v = rng.choice(present, size=2 * needed)
        ok = u != v
        u, v = u[ok], v[ok]
        is_edge = np.fromiter(
            (snap.has_edge(int(a), int(b)) for a, b in zip(u, v)),
            dtype=bool,
            count=len(u),
        )
        good = np.stack([u[~is_edge], v[~is_edge]], axis=1)
        out.append(good[:needed])
        needed -= len(good[:needed])
    if needed > 0:
        raise ValueError("could not sample enough non-edges (graph too dense)")
    return np.concatenate(out)[:num]


@contract("(p,) ?, (q,) ? -> float")
def auc_score(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """ROC-AUC via the Mann-Whitney U statistic (ties counted half)."""
    if len(pos_scores) == 0 or len(neg_scores) == 0:
        raise ValueError("need both positive and negative scores")
    all_scores = np.concatenate([pos_scores, neg_scores])
    order = np.argsort(all_scores, kind="stable")
    ranks = np.empty(len(all_scores), dtype=np.float64)
    ranks[order] = np.arange(1, len(all_scores) + 1)
    # average ranks for ties
    sorted_scores = all_scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + 1 + j + 1) / 2.0
        i = j + 1
    n_pos, n_neg = len(pos_scores), len(neg_scores)
    u = ranks[:n_pos].sum() - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


@contract("(n,f) f, _, ?(f+1,) f64, int, int -> float")
def link_prediction_auc(
    embeddings: np.ndarray,
    next_snap: CSRSnapshot,
    *,
    decoder: np.ndarray | None = None,
    num_samples: int = 2000,
    seed: int = 0,
) -> float:
    """AUC of predicting ``next_snap``'s edges from embeddings at ``t``.

    Positives are sampled from the next snapshot's edges; negatives are
    sampled non-edges of the same snapshot.  ``decoder`` is the trained
    ridge weight from :func:`fit_link_decoder` (falls back to the raw
    inner product when None).
    """
    rng = np.random.default_rng(seed)
    edges = next_snap.edge_array()
    if len(edges) == 0:
        raise ValueError("next snapshot has no edges")
    take = min(num_samples, len(edges))
    pos = edges[rng.choice(len(edges), size=take, replace=False)]
    neg = sample_negative_edges(next_snap, take, rng=rng)
    h = embeddings.astype(np.float64)

    def score(pairs: np.ndarray) -> np.ndarray:
        feats = h[pairs[:, 0]] * h[pairs[:, 1]]
        if decoder is None:
            return feats.sum(axis=1)
        fb = np.concatenate([feats, np.ones((len(feats), 1))], axis=1)
        return fb @ decoder

    return auc_score(score(pos), score(neg))


@contract("_, _, _, int, int, int -> float")
def temporal_link_prediction_auc(
    outputs: list[np.ndarray],
    graph: DynamicGraph,
    *,
    decoder_outputs: list[np.ndarray] | None = None,
    num_samples: int = 2000,
    seed: int = 0,
    warmup: int = 1,
) -> float:
    """Mean AUC over all (t -> t+1) transitions after ``warmup``.

    The decoder is fitted per transition on the *current* snapshot using
    ``decoder_outputs`` (default: ``outputs`` — pass the exact model's
    embeddings here to hold the decoder fixed across approximation
    variants, the deployment protocol)."""
    if len(outputs) != graph.num_snapshots:
        raise ValueError("outputs/snapshot count mismatch")
    fit_on = decoder_outputs if decoder_outputs is not None else outputs
    aucs = []
    for t in range(warmup, graph.num_snapshots - 1):
        w = fit_link_decoder(
            fit_on[t], graph[t], num_samples=num_samples, seed=seed + t
        )
        aucs.append(
            link_prediction_auc(
                outputs[t], graph[t + 1],
                decoder=w, num_samples=num_samples, seed=seed + t,
            )
        )
    if not aucs:
        raise ValueError("no transitions to evaluate (graph too short)")
    return float(np.mean(aucs))
