"""GCN layers — the GNN module of every paper model.

One GCN layer performs the two operations the accelerator's DCU splits
between its processing elements (paper Section 4):

* **aggregation** (APE, adder trees): :math:`\\hat A X` with symmetric
  normalisation, executed by :meth:`CSRSnapshot.aggregate`;
* **combination** (CPE, MAC arrays): the dense projection :math:`(\\cdot) W`.

Weights are created once from a seed and then frozen (reservoir-style, see
DESIGN.md): the accuracy experiments measure degradation of approximate
execution relative to exact execution of the *same* frozen model, which
does not require trained weights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..check.shapes import contract
from ..graphs.snapshot import CSRSnapshot
from .activations import ACTIVATIONS

__all__ = ["GCNLayer", "GCNStack", "glorot"]


@contract("_, fin, fout -> (fin, fout) f32")
def glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier-uniform initialisation (float32)."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(np.float32)


@dataclass
class GCNLayer:
    """One graph-convolution layer ``act(Â X W + b)``."""

    weight: np.ndarray
    bias: np.ndarray
    activation: str = "relu"

    def __post_init__(self) -> None:
        # bind the activation callable once; forward paths are hot
        self.act = ACTIVATIONS[self.activation]

    @classmethod
    def create(
        cls,
        in_dim: int,
        out_dim: int,
        *,
        activation: str = "relu",
        seed: int = 0,
    ) -> "GCNLayer":
        """Seeded construction; same seed -> identical weights."""
        rng = np.random.default_rng(seed)
        return cls(
            weight=glorot(rng, in_dim, out_dim),
            bias=np.zeros(out_dim, dtype=np.float32),
            activation=activation,
        )

    @property
    def in_dim(self) -> int:
        return self.weight.shape[0]

    @property
    def out_dim(self) -> int:
        return self.weight.shape[1]

    @contract("(n, *) f -> (n, *) f")
    def combine(self, x: np.ndarray) -> np.ndarray:
        """The dense half (CPE): ``x @ W + b`` without the activation."""
        return x @ self.weight + self.bias

    @contract("_, (n, *) f -> (n, *) f")
    def forward(self, snap: CSRSnapshot, x: np.ndarray) -> np.ndarray:
        """Full layer: aggregate over ``snap``, combine, activate.

        Combination runs *before* aggregation when it shrinks the width
        (``out_dim < in_dim``) — the standard FLOP-minimising order that
        both the software engines and the accelerator use.
        """
        if x.shape[1] != self.in_dim:
            raise ValueError(f"input width {x.shape[1]} != layer in_dim {self.in_dim}")
        if self.out_dim < self.in_dim:
            h = snap.aggregate(self.combine(x))
        else:
            h = self.combine(snap.aggregate(x))
        return self.act(h)

    def flops(self, num_vertices: int, num_edges: int) -> int:
        """MAC count of one forward pass (aggregation + combination)."""
        combine = 2 * num_vertices * self.in_dim * self.out_dim
        agg_dim = min(self.in_dim, self.out_dim)
        aggregate = 2 * num_edges * agg_dim
        return combine + aggregate


class GCNStack:
    """A stack of GCN layers — the full GNN module of one model."""

    def __init__(self, dims: list[int], *, activation: str = "relu", seed: int = 0):
        if len(dims) < 2:
            raise ValueError("need at least [in_dim, out_dim]")
        self.layers = [
            GCNLayer.create(
                dims[i], dims[i + 1], activation=activation, seed=seed + i
            )
            for i in range(len(dims) - 1)
        ]

    @property
    def in_dim(self) -> int:
        return self.layers[0].in_dim

    @property
    def out_dim(self) -> int:
        return self.layers[-1].out_dim

    def forward(self, snap: CSRSnapshot, x: np.ndarray) -> np.ndarray:
        """Run every layer on one snapshot, producing :math:`Z^t`."""
        h = x
        for layer in self.layers:
            h = layer.forward(snap, h)
        return h

    def forward_window(
        self, snaps: list[CSRSnapshot], xs: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Run every layer over a whole window of snapshots at once.

        The elementwise activation runs once per layer on the stacked
        ``(K*n, d)`` block — ufuncs are row-independent, so this is
        bit-identical to K per-snapshot calls.  The combine deliberately
        stays at per-snapshot shape: BLAS gemm rounding depends on the
        row count, so a stacked ``(K*n, d) @ W`` would *not* reproduce
        the per-snapshot bits and engine outputs must not depend on how
        snapshots are windowed.
        """
        K = len(snaps)
        hs = list(xs)
        for layer in self.layers:
            if any(h.shape[1] != layer.in_dim for h in hs):
                raise ValueError(
                    f"input width does not match layer in_dim {layer.in_dim}"
                )
            if layer.out_dim < layer.in_dim:
                outs = [
                    s.aggregate(layer.combine(h)) for s, h in zip(snaps, hs)
                ]
            else:
                outs = [
                    layer.combine(s.aggregate(h)) for s, h in zip(snaps, hs)
                ]
            hs = np.split(layer.act(np.concatenate(outs, axis=0)), K)
        return [np.ascontiguousarray(h) for h in hs]

    def flops(self, num_vertices: int, num_edges: int) -> int:
        return sum(l.flops(num_vertices, num_edges) for l in self.layers)
