"""The three DGNN models the paper evaluates (Section 5.1).

* **CD-GCN** (Manessi et al.) — a deep GCN stack whose per-snapshot
  outputs feed a vertex-wise LSTM; configured with four layers
  (3 GCN + LSTM), as in the paper.
* **GC-LSTM** (Chen et al.) — an LSTM whose recurrent path is a graph
  convolution of the hidden state, so the cell itself is topology-aware;
  configured with three layers (2 GCN + GC-LSTM cell).
* **T-GCN** (Zhao et al.) — a GCN feeding a GRU; configured with two
  layers (1 GCN + GRU).

All weights are seeded and frozen (see DESIGN.md): accuracy experiments
measure approximation degradation against exact inference of the same
frozen model, with a trained ridge readout on top.
"""

from __future__ import annotations

import numpy as np

from ..graphs.snapshot import CSRSnapshot
from .base import DGNNModel
from .layers import GCNStack, glorot
from .rnn import ElmanCell, GRUCell, IdentityCell, LSTMCell, LSTMState
from .activations import sigmoid, tanh

__all__ = [
    "CDGCN",
    "GCRN",
    "GCLSTM",
    "TGCN",
    "EvolveGCN",
    "GraphLSTMCell",
    "MODEL_ZOO",
    "make_model",
]


class CDGCN(DGNNModel):
    """CD-GCN: 3 GCN layers + LSTM (four layers total)."""

    name = "CD-GCN"

    def __init__(self, in_dim: int, hidden_dim: int = 32, *, seed: int = 0):
        gnn = GCNStack([in_dim, hidden_dim, hidden_dim, hidden_dim], seed=seed)
        cell = LSTMCell(hidden_dim, hidden_dim, seed=seed + 100)
        super().__init__(gnn, cell)


class GraphLSTMCell(LSTMCell):
    """LSTM whose recurrent term convolves the hidden state over the
    current snapshot's adjacency (the "GC" in GC-LSTM)."""

    def step_on_graph(
        self, x: np.ndarray, state: LSTMState, snap: CSRSnapshot
    ) -> tuple[np.ndarray, LSTMState]:
        d = self.hidden_dim
        h_conv = snap.aggregate(state.h)
        z = x @ self.w_x + h_conv @ self.w_h + self.bias
        i = sigmoid(z[:, :d])
        f = sigmoid(z[:, d : 2 * d])
        g = tanh(z[:, 2 * d : 3 * d])
        o = sigmoid(z[:, 3 * d :])
        c = (f * state.c + i * g).astype(np.float32, copy=False)
        h = (o * tanh(c)).astype(np.float32, copy=False)
        return h, LSTMState(h, c)


class GCLSTM(DGNNModel):
    """GC-LSTM: 2 GCN layers + graph-convolutional LSTM (three layers)."""

    name = "GC-LSTM"

    def __init__(self, in_dim: int, hidden_dim: int = 32, *, seed: int = 0):
        gnn = GCNStack([in_dim, hidden_dim, hidden_dim], seed=seed)
        cell = GraphLSTMCell(hidden_dim, hidden_dim, seed=seed + 100)
        super().__init__(gnn, cell)

    def cell_step(self, z, state, snap: CSRSnapshot | None = None):
        if snap is None:
            # graph-free fallback (used by approximation baselines that
            # cannot express the recurrent convolution)
            return self.cell.step(z, state)
        return self.cell.step_on_graph(z, state, snap)  # type: ignore[attr-defined]

    def cell_step_rows(self, z, state, rows, snap: CSRSnapshot | None = None):
        """Row-restricted GC-LSTM update: the recurrent convolution needs
        the full hidden state, the gates only the selected rows."""
        if snap is None:
            return super().cell_step_rows(z, state, rows)
        h_conv = snap.aggregate(state.h)
        cell = self.cell
        d = cell.hidden_dim
        pre = z[rows] @ cell.w_x + h_conv[rows] @ cell.w_h + cell.bias
        i = sigmoid(pre[:, :d])
        f = sigmoid(pre[:, d : 2 * d])
        g = tanh(pre[:, 2 * d : 3 * d])
        o = sigmoid(pre[:, 3 * d :])
        c = (f * state.c[rows] + i * g).astype(np.float32, copy=False)
        h = (o * tanh(c)).astype(np.float32, copy=False)
        from .rnn import LSTMState

        return h, LSTMState(h, c)

    def recurrent_drive(self, state, snap: CSRSnapshot | None = None):
        if snap is None:
            return state.h
        return snap.aggregate(state.h)


class TGCN(DGNNModel):
    """T-GCN: 1 GCN layer + GRU (two layers)."""

    name = "T-GCN"

    def __init__(self, in_dim: int, hidden_dim: int = 32, *, seed: int = 0):
        gnn = GCNStack([in_dim, hidden_dim], seed=seed)
        cell = GRUCell(hidden_dim, hidden_dim, seed=seed + 100)
        super().__init__(gnn, cell)


class GCRN(DGNNModel):
    """GCN + vanilla (Elman) RNN — the simplest gated-free DGNN shape,
    included to demonstrate the paper's claim that the approach adapts to
    "a broad range of DGNN models": the engines, skipping machinery, and
    simulator all accept it unchanged."""

    name = "GCRN"

    def __init__(self, in_dim: int, hidden_dim: int = 32, *, seed: int = 0):
        gnn = GCNStack([in_dim, hidden_dim], seed=seed)
        cell = ElmanCell(hidden_dim, hidden_dim, seed=seed + 100)
        super().__init__(gnn, cell)


class EvolveGCN(DGNNModel):
    """An RNN-free DGNN: temporal semantics live in *evolving weights*.

    EvolveGCN-style models update the GCN weights over time instead of
    keeping per-vertex recurrent state.  Here the weights evolve once per
    processing batch (window) through a seeded contraction
    ``W <- (1 - rho) W + rho tanh(W R)`` — evolution at window
    granularity keeps the within-window weights static, so the
    topology-aware concurrent GNN (OADL) stays an exact identity, while
    the cell-update phase disappears entirely (IdentityCell).

    Engines call :meth:`advance_window` at each batch boundary;
    ``advance_window(k)`` is idempotent (it always derives the weights
    for window ``k`` from the initial weights).
    """

    name = "EvolveGCN"

    def __init__(
        self,
        in_dim: int,
        hidden_dim: int = 32,
        *,
        seed: int = 0,
        rho: float = 0.3,
    ):
        gnn = GCNStack([in_dim, hidden_dim, hidden_dim], seed=seed)
        super().__init__(gnn, IdentityCell(hidden_dim))
        self.rho = rho
        rng = np.random.default_rng(seed + 500)
        self._initial = [l.weight.copy() for l in gnn.layers]
        self._recur = [
            glorot(rng, l.out_dim, l.out_dim) for l in gnn.layers
        ]
        self._window = 0

    def advance_window(self, window_index: int) -> None:
        """Set the GCN weights to their state at batch ``window_index``."""
        if window_index < 0:
            raise ValueError("window_index must be >= 0")
        for layer, w0, r in zip(self.gnn.layers, self._initial, self._recur):
            w = w0.copy()
            for _ in range(window_index):
                w = (1.0 - self.rho) * w + self.rho * np.tanh(w @ r)
            layer.weight = w.astype(np.float32)
        self._window = window_index


MODEL_ZOO = {
    "CD-GCN": CDGCN,
    "GC-LSTM": GCLSTM,
    "T-GCN": TGCN,
    "EvolveGCN": EvolveGCN,
    "GCRN": GCRN,
}


def make_model(
    name: str, in_dim: int, hidden_dim: int = 32, *, seed: int = 0
) -> DGNNModel:
    """Instantiate a paper model by name with seeded frozen weights."""
    try:
        cls = MODEL_ZOO[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; choose from {sorted(MODEL_ZOO)}"
        ) from None
    return cls(in_dim, hidden_dim, seed=seed)
