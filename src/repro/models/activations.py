"""Numerically-safe activation functions shared by all model code.

Kept tiny and dependency-free so the hardware Activation Unit model can
reference the exact same functions the software engines execute (bit-for-
bit agreement between `repro.engine` and `repro.accel` outputs is a test
invariant).
"""

from __future__ import annotations

import numpy as np

from ..check.shapes import contract

__all__ = ["sigmoid", "tanh", "relu", "softmax", "ACTIVATIONS"]


@contract("(...) f -> (...) f")
def sigmoid(x: np.ndarray) -> np.ndarray:
    """Logistic sigmoid, computed stably for large |x|."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


@contract("(...) f -> (...) f")
def tanh(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent (NumPy's is already stable)."""
    return np.tanh(x)


@contract("(...) f -> (...) f")
def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


@contract("(...) f, int -> (...) f")
def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Row-stable softmax."""
    z = x - x.max(axis=axis, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=axis, keepdims=True)


ACTIVATIONS = {"sigmoid": sigmoid, "tanh": tanh, "relu": relu, "softmax": softmax}
