"""Recurrent cells — the RNN module capturing temporal semantics.

The paper's models use LSTM (CD-GCN, GC-LSTM) and GRU (T-GCN) cells
applied *per vertex* across snapshots.  Cells here are vectorised over the
vertex axis: one ``step`` processes an ``(n, d)`` batch of vertex features
against an ``(n, h)`` recurrent state.  The cell-update operation is the
"update" cost in the paper's Fig. 2(a) breakdown and the target of the
similarity-aware skipping strategy.

States are plain dataclasses so skipping policies can splice per-vertex
rows (reuse row ``v`` of the previous state when vertex ``v`` is skipped).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .activations import sigmoid, tanh
from .layers import glorot

__all__ = [
    "LSTMState",
    "GRUState",
    "LSTMCell",
    "GRUCell",
    "ElmanCell",
    "IdentityCell",
    "RecurrentCell",
]


@dataclass
class LSTMState:
    """Per-vertex LSTM state: hidden ``h`` and cell ``c``, both (n, d)."""

    h: np.ndarray
    c: np.ndarray

    def copy(self) -> "LSTMState":
        return LSTMState(self.h.copy(), self.c.copy())

    def select_rows(self, rows: np.ndarray, other: "LSTMState") -> None:
        """Overwrite ``rows`` of this state with the same rows of
        ``other`` (used to re-inject skipped vertices' previous state)."""
        self.h[rows] = other.h[rows]
        self.c[rows] = other.c[rows]


@dataclass
class GRUState:
    """Per-vertex GRU state: hidden ``h`` (n, d)."""

    h: np.ndarray

    def copy(self) -> "GRUState":
        return GRUState(self.h.copy())

    def select_rows(self, rows: np.ndarray, other: "GRUState") -> None:
        self.h[rows] = other.h[rows]


class RecurrentCell:
    """Common interface of LSTM/GRU cells."""

    hidden_dim: int
    input_dim: int

    def init_state(self, num_vertices: int):  # pragma: no cover - interface
        raise NotImplementedError

    def step(self, x: np.ndarray, state):  # pragma: no cover - interface
        """One cell update for a batch of vertices; returns
        ``(output, new_state)`` without mutating ``state``."""
        raise NotImplementedError

    def flops_per_vertex(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class LSTMCell(RecurrentCell):
    """Standard LSTM: gates ``i, f, g, o`` fused into one projection.

    The default initialisation is *contractive*: the recurrent weights are
    damped (``recurrent_scale``) and the forget-gate bias is negative, so
    the state converges to its input-driven fixed point within a couple of
    steps.  This reproduces the stability the paper measures in trained
    DGNNs (Insight Two, Fig. 3(b)) — the property that makes reusing a
    previous snapshot's final feature nearly lossless.  Pass
    ``recurrent_scale=1.0, state_bias=1.0`` for a conventional
    slow-forgetting initialisation.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        *,
        seed: int = 0,
        recurrent_scale: float = 0.5,
        state_bias: float = -1.0,
    ):
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = glorot(rng, input_dim, 4 * hidden_dim)
        self.w_h = glorot(rng, hidden_dim, 4 * hidden_dim) * np.float32(
            recurrent_scale
        )
        self.bias = np.zeros(4 * hidden_dim, dtype=np.float32)
        # forget-gate bias: negative -> fast-converging (stable) dynamics
        self.bias[hidden_dim : 2 * hidden_dim] = state_bias

    def init_state(self, num_vertices: int) -> LSTMState:
        z = np.zeros((num_vertices, self.hidden_dim), dtype=np.float32)
        return LSTMState(z.copy(), z.copy())

    def step(self, x: np.ndarray, state: LSTMState) -> tuple[np.ndarray, LSTMState]:
        d = self.hidden_dim
        z = x @ self.w_x + state.h @ self.w_h + self.bias
        i = sigmoid(z[:, :d])
        f = sigmoid(z[:, d : 2 * d])
        g = tanh(z[:, 2 * d : 3 * d])
        o = sigmoid(z[:, 3 * d :])
        c = f * state.c + i * g
        h = o * tanh(c)
        return h, LSTMState(h, c)

    def flops_per_vertex(self) -> int:
        return 2 * (self.input_dim + self.hidden_dim) * 4 * self.hidden_dim


class ElmanCell(RecurrentCell):
    """A vanilla (Elman) RNN cell: ``h' = tanh(x W_x + h W_h + b)``.

    The simplest temporal module some DGNN variants use; like the gated
    cells it defaults to contractive dynamics (damped recurrent weights)
    per the paper's Insight-Two stability.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        *,
        seed: int = 0,
        recurrent_scale: float = 0.5,
    ):
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = glorot(rng, input_dim, hidden_dim)
        self.w_h = glorot(rng, hidden_dim, hidden_dim) * np.float32(
            recurrent_scale
        )
        self.bias = np.zeros(hidden_dim, dtype=np.float32)

    def init_state(self, num_vertices: int) -> GRUState:
        return GRUState(np.zeros((num_vertices, self.hidden_dim), dtype=np.float32))

    def step(self, x: np.ndarray, state: GRUState) -> tuple[np.ndarray, GRUState]:
        h = np.tanh(x @ self.w_x + state.h @ self.w_h + self.bias)
        return h, GRUState(h)

    def flops_per_vertex(self) -> int:
        return 2 * (self.input_dim + self.hidden_dim) * self.hidden_dim


class IdentityCell(RecurrentCell):
    """A stateless pass-through "cell" for RNN-free DGNNs.

    Models like EvolveGCN carry temporal semantics in their *weights*
    rather than per-vertex recurrent state (paper Section 2.1: TaGNN "is
    highly versatile and adaptable to a broad range of DGNN models,
    including those that do not rely on RNNs").  The identity cell lets
    such models flow through the same engine/accelerator interfaces: the
    final feature is the GNN output and the cell-update phase is free.
    """

    def __init__(self, dim: int):
        self.input_dim = dim
        self.hidden_dim = dim
        # zero-size weight tensors keep the accounting code uniform
        self.w_x = np.zeros((dim, 0), dtype=np.float32)
        self.w_h = np.zeros((dim, 0), dtype=np.float32)
        self.bias = np.zeros(0, dtype=np.float32)

    def init_state(self, num_vertices: int) -> GRUState:
        return GRUState(np.zeros((num_vertices, self.hidden_dim), dtype=np.float32))

    def step(self, x: np.ndarray, state: GRUState) -> tuple[np.ndarray, GRUState]:
        h = x.astype(np.float32, copy=False)
        return h, GRUState(h.copy())

    def flops_per_vertex(self) -> int:
        return 0


class GRUCell(RecurrentCell):
    """Standard GRU: gates ``r, z`` plus candidate ``n``.

    Like :class:`LSTMCell`, defaults to contractive dynamics (damped
    recurrent weights, negative update-gate bias) matching the stability
    of trained DGNNs per the paper's Insight Two.
    """

    def __init__(
        self,
        input_dim: int,
        hidden_dim: int,
        *,
        seed: int = 0,
        recurrent_scale: float = 0.5,
        state_bias: float = -1.0,
    ):
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_x = glorot(rng, input_dim, 3 * hidden_dim)
        self.w_h = glorot(rng, hidden_dim, 3 * hidden_dim) * np.float32(
            recurrent_scale
        )
        self.bias = np.zeros(3 * hidden_dim, dtype=np.float32)
        # update-gate bias: negative -> the state tracks the candidate
        # quickly instead of holding stale history
        self.bias[hidden_dim : 2 * hidden_dim] = state_bias

    def init_state(self, num_vertices: int) -> GRUState:
        return GRUState(np.zeros((num_vertices, self.hidden_dim), dtype=np.float32))

    def step(self, x: np.ndarray, state: GRUState) -> tuple[np.ndarray, GRUState]:
        d = self.hidden_dim
        zx = x @ self.w_x + self.bias
        zh = state.h @ self.w_h
        r = sigmoid(zx[:, :d] + zh[:, :d])
        z = sigmoid(zx[:, d : 2 * d] + zh[:, d : 2 * d])
        n = tanh(zx[:, 2 * d :] + r * zh[:, 2 * d :])
        h = (1.0 - z) * n + z * state.h
        return h, GRUState(h)

    def flops_per_vertex(self) -> int:
        return 2 * (self.input_dim + self.hidden_dim) * 3 * self.hidden_dim
