"""Readout training and the synthetic prediction task for accuracy studies.

The paper's Table 5 measures *model accuracy* of TaGNN's cell skipping
against exact inference and against prior RNN-approximation schemes.  Per
DESIGN.md, we reproduce that with a reservoir protocol:

1. a hidden **teacher** network (seeded GCN over the evolving graph, with a
   temporally-smoothed state) assigns each present vertex a class label per
   snapshot — labels thus depend on topology, features, *and* history, like
   the dynamic node-classification tasks the real datasets are used for;
2. a model variant (exact, or any approximation) produces embeddings
   :math:`H^t`;
3. a closed-form **ridge readout** is trained on the variant's own
   embeddings over training vertices and evaluated on held-out vertices.

Degrading the embeddings degrades exactly the quantity Table 5 reports,
without requiring end-to-end backprop (scipy's solvers keep this fast).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..check.shapes import contract
from ..graphs.dynamic import DynamicGraph
from .layers import GCNStack

__all__ = [
    "RidgeReadout",
    "evaluate_accuracy",
    "fit_readout",
    "make_teacher_labels",
    "split_vertices",
    "test_vertex_accuracy",
]


@dataclass
class RidgeReadout:
    """Closed-form multiclass ridge classifier (one-vs-all on one-hot)."""

    reg: float = 1e-2
    weight: np.ndarray | None = None
    classes_: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeReadout":
        """Solve ``(XᵀX + reg I) W = Xᵀ Y`` with a bias column."""
        x = np.asarray(x, dtype=np.float64)
        xb = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        self.classes_ = np.unique(y)
        onehot = (y[:, None] == self.classes_[None, :]).astype(np.float64)
        gram = xb.T @ xb
        gram[np.diag_indices_from(gram)] += self.reg
        self.weight = np.linalg.solve(gram, xb.T @ onehot)
        return self

    def decision(self, x: np.ndarray) -> np.ndarray:
        if self.weight is None:
            raise RuntimeError("fit() first")
        xb = np.concatenate(
            [np.asarray(x, dtype=np.float64), np.ones((len(x), 1))], axis=1
        )
        return xb @ self.weight

    def predict(self, x: np.ndarray) -> np.ndarray:
        assert self.classes_ is not None
        return self.classes_[np.argmax(self.decision(x), axis=1)]

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == y))


@contract("_, int, int -> (t, n) i64")
def make_teacher_labels(
    window: DynamicGraph, num_classes: int = 4, *, seed: int = 1234
) -> np.ndarray:
    """Per-snapshot class labels from a hidden teacher network.

    The teacher is a seeded 2-layer GCN whose per-snapshot logits are
    blended with an exponential moving average over time (so labels carry
    temporal information an RNN can exploit).  Returns an ``(T, n)`` int
    array; absent vertices get label -1.
    """
    teacher = GCNStack([window.dim, num_classes], activation="tanh", seed=seed)
    labels = np.full((window.num_snapshots, window.num_vertices), -1, dtype=np.int64)
    ema: np.ndarray | None = None
    for t, snap in enumerate(window):
        logits = teacher.forward(snap, snap.features).astype(np.float64)
        ema = logits if ema is None else 0.6 * ema + 0.4 * logits
        labels[t, snap.present] = np.argmax(ema[snap.present], axis=1)
    return labels


@contract("n, float, int -> (*,) i64, (*,) i64")
def split_vertices(
    num_vertices: int, train_frac: float = 0.6, *, seed: int = 7
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic train/test vertex split."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(num_vertices)
    k = int(round(train_frac * num_vertices))
    return np.sort(perm[:k]), np.sort(perm[k:])


def _gather_samples(embeddings, labels, window, mask):
    xs, ys = [], []
    for t, snap in enumerate(window):
        valid = snap.present & (labels[t] >= 0) & mask
        xs.append(embeddings[t][valid])
        ys.append(labels[t][valid])
    return np.concatenate(xs), np.concatenate(ys)


@contract("_, (t, n) i, _, float, float, int -> _")
def fit_readout(
    embeddings: list[np.ndarray],
    labels: np.ndarray,
    window: DynamicGraph,
    *,
    train_frac: float = 0.6,
    reg: float = 1e-2,
    seed: int = 7,
) -> RidgeReadout:
    """Train the readout on training-vertex samples of these embeddings."""
    if len(embeddings) != labels.shape[0]:
        raise ValueError("embeddings/labels snapshot count mismatch")
    train_v, _ = split_vertices(window.num_vertices, train_frac, seed=seed)
    train_mask = np.zeros(window.num_vertices, dtype=bool)
    train_mask[train_v] = True
    x_tr, y_tr = _gather_samples(embeddings, labels, window, train_mask)
    return RidgeReadout(reg=reg).fit(x_tr, y_tr)


@contract("_, (t, n) i, _, _, float, int -> float")
def test_vertex_accuracy(
    embeddings: list[np.ndarray],
    labels: np.ndarray,
    window: DynamicGraph,
    readout: RidgeReadout,
    *,
    train_frac: float = 0.6,
    seed: int = 7,
) -> float:
    """Held-out-vertex accuracy of ``embeddings`` under a given readout.

    This is Table 5's deployment protocol: the readout is trained once on
    the *exact* model's embeddings (the trained network), then each
    approximation scheme is evaluated under that fixed readout — an
    approximation that shifts the embedding distribution pays for it, as
    it would in a deployed model.
    """
    if len(embeddings) != labels.shape[0]:
        raise ValueError("embeddings/labels snapshot count mismatch")
    train_v, _ = split_vertices(window.num_vertices, train_frac, seed=seed)
    train_mask = np.zeros(window.num_vertices, dtype=bool)
    train_mask[train_v] = True
    x_te, y_te = _gather_samples(embeddings, labels, window, ~train_mask)
    return readout.accuracy(x_te, y_te)


@contract("_, (t, n) i, _, float, float, int, _ -> float")
def evaluate_accuracy(
    embeddings: list[np.ndarray],
    labels: np.ndarray,
    window: DynamicGraph,
    *,
    train_frac: float = 0.6,
    reg: float = 1e-2,
    seed: int = 7,
    readout: RidgeReadout | None = None,
) -> float:
    """Held-out accuracy of a variant's embeddings.

    Without ``readout``, trains on the variant's own embeddings (the
    self-trained protocol); with ``readout``, evaluates under the given
    fixed readout (the deployment protocol used for Table 5).
    """
    if readout is None:
        readout = fit_readout(
            embeddings, labels, window, train_frac=train_frac, reg=reg, seed=seed
        )
    return test_vertex_accuracy(
        embeddings, labels, window, readout, train_frac=train_frac, seed=seed
    )
