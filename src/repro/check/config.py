"""Checker configuration from ``[tool.repro.check]`` in pyproject.toml.

The block supports rule enable/disable and per-path excludes::

    [tool.repro.check]
    disable = ["R003"]                  # turn rules off
    enable = []                         # or allow-list (overrides disable)
    exclude = ["tests/check/fixtures/*"]  # fnmatch on posix relpaths
    determinism-paths = ["accel", "hardware", "engine", "formats"]
    validation-paths = ["hardware", "accel/config.py"]
    hot-paths = ["formats", "graphs/updates.py", "engine", "skipping"]

``determinism-paths`` names the simulator-core directories rule R001
polices; ``validation-paths`` names where R005 requires range-checked
dataclass fields; ``hot-paths`` names the vectorised kernels rule R006
keeps free of per-element Python loops; ``contract-paths`` names the
packages whose public array kernels rules R007/R008 hold to declared
shape/dtype contracts.  All of them match path *parts* of the module's
repo-relative path, so ``"hardware"`` covers every file under any
``hardware/`` directory (entries containing ``/`` match as path
suffixes instead).
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["CheckConfig", "load_config", "DEFAULT_DETERMINISM_PATHS",
           "DEFAULT_VALIDATION_PATHS", "DEFAULT_HOT_PATHS",
           "DEFAULT_CONTRACT_PATHS"]

DEFAULT_DETERMINISM_PATHS = ("accel", "hardware", "engine", "formats")
DEFAULT_VALIDATION_PATHS = ("hardware", "accel/config.py")
DEFAULT_HOT_PATHS = ("formats", "graphs/updates.py", "engine", "skipping")
DEFAULT_CONTRACT_PATHS = (
    "formats", "graphs", "engine", "skipping", "adaptive", "models",
    "analysis/similarity.py",
)


@dataclass(frozen=True)
class CheckConfig:
    """Resolved checker configuration."""

    enable: tuple[str, ...] = ()
    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    determinism_paths: tuple[str, ...] = DEFAULT_DETERMINISM_PATHS
    validation_paths: tuple[str, ...] = DEFAULT_VALIDATION_PATHS
    hot_paths: tuple[str, ...] = DEFAULT_HOT_PATHS
    contract_paths: tuple[str, ...] = DEFAULT_CONTRACT_PATHS

    def rule_enabled(self, code: str) -> bool:
        """Whether rule ``code`` runs under this configuration.  A
        non-empty ``enable`` is an allow-list; otherwise everything not
        in ``disable`` runs."""
        if self.enable:
            return code in self.enable
        return code not in self.disable

    def path_excluded(self, relpath: str) -> bool:
        """Whether a posix-style repo-relative path is excluded."""
        return any(fnmatch(relpath, pat) for pat in self.exclude)

    def path_covered(self, relpath: str, selectors: tuple[str, ...]) -> bool:
        """Whether ``relpath`` falls under one of the path ``selectors``
        (a directory-part name like ``"hardware"`` or a path suffix like
        ``"accel/config.py"``)."""
        parts = Path(relpath).parts
        for sel in selectors:
            if "/" in sel:
                if relpath.endswith(sel):
                    return True
            elif sel in parts:
                return True
        return False


def load_config(start: Path | str) -> CheckConfig:
    """Load ``[tool.repro.check]`` from the nearest pyproject.toml at or
    above ``start``; defaults when no file or block exists."""
    p = Path(start).resolve()
    if p.is_file():
        p = p.parent
    for directory in (p, *p.parents):
        pyproject = directory / "pyproject.toml"
        if pyproject.is_file():
            with open(pyproject, "rb") as fh:
                data = tomllib.load(fh)
            block = data.get("tool", {}).get("repro", {}).get("check", {})
            return _from_mapping(block)
    return CheckConfig()


def _from_mapping(block: dict) -> CheckConfig:
    def strings(key: str, default: tuple[str, ...] = ()) -> tuple[str, ...]:
        value = block.get(key, block.get(key.replace("-", "_"), default))
        if not isinstance(value, (list, tuple)) or not all(
            isinstance(v, str) for v in value
        ):
            raise ValueError(f"[tool.repro.check] {key} must be a string list")
        return tuple(value)

    return CheckConfig(
        enable=strings("enable"),
        disable=strings("disable"),
        exclude=strings("exclude"),
        determinism_paths=strings(
            "determinism-paths", DEFAULT_DETERMINISM_PATHS
        ),
        validation_paths=strings("validation-paths", DEFAULT_VALIDATION_PATHS),
        hot_paths=strings("hot-paths", DEFAULT_HOT_PATHS),
        contract_paths=strings("contract-paths", DEFAULT_CONTRACT_PATHS),
    )
