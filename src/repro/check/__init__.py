"""repro.check — simulator-invariant static analysis + runtime sanitizer.

Two halves (see docs/static_analysis.md):

* **Static pass** — ``python -m repro.check src/`` runs the repo-specific
  AST rules R001 (determinism), R002 (frozen-model mutation), R003 (unit
  discipline), R004 (API hygiene), R005 (validation coverage), R006
  (hot-path loops), R007 (contract consistency), and R008 (contract
  coverage), and exits non-zero on any finding.
* **Runtime sanitizer** — ``REPRO_SANITIZE=1`` (or the
  :func:`sanitized` context manager) turns on conservation checks inside
  the cycle simulator, the memory models, O-CSR, and the energy
  composition, plus per-call :func:`~repro.check.shapes.contract`
  validation on annotated kernels; violations raise
  :class:`SanitizerViolation`.
"""

from __future__ import annotations

from .config import CheckConfig, load_config
from .findings import Finding
from .registry import RULES, ModuleContext, ProjectContext, Rule, rule
from .runner import main, scan_paths
from .shapes import contract, get_contract, parse_contract
from .sanitizer import (
    SanitizerStats,
    SanitizerViolation,
    check_buffer,
    check_cyclesim_result,
    check_energy_composition,
    check_hbm_request,
    check_ocsr,
    require,
    reset_sanitizer_stats,
    sanitized,
    sanitizer_enabled,
    sanitizer_stats,
)

__all__ = [
    "CheckConfig",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "RULES",
    "Rule",
    "SanitizerStats",
    "SanitizerViolation",
    "check_buffer",
    "check_cyclesim_result",
    "check_energy_composition",
    "check_hbm_request",
    "check_ocsr",
    "contract",
    "get_contract",
    "load_config",
    "main",
    "parse_contract",
    "require",
    "reset_sanitizer_stats",
    "rule",
    "sanitized",
    "sanitizer_enabled",
    "sanitizer_stats",
    "scan_paths",
]
