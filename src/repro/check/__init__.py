"""repro.check — simulator-invariant static analysis + runtime sanitizer.

Two halves (see docs/static_analysis.md):

* **Static pass** — ``python -m repro.check src/`` runs the repo-specific
  AST rules R001 (determinism), R002 (frozen-model mutation), R003 (unit
  discipline), R004 (API hygiene), and R005 (validation coverage), and
  exits non-zero on any finding.
* **Runtime sanitizer** — ``REPRO_SANITIZE=1`` (or the
  :func:`sanitized` context manager) turns on conservation checks inside
  the cycle simulator, the memory models, O-CSR, and the energy
  composition; violations raise :class:`SanitizerViolation`.
"""

from __future__ import annotations

from .config import CheckConfig, load_config
from .findings import Finding
from .registry import RULES, ModuleContext, ProjectContext, Rule, rule
from .runner import main, scan_paths
from .sanitizer import (
    SanitizerStats,
    SanitizerViolation,
    check_buffer,
    check_cyclesim_result,
    check_energy_composition,
    check_hbm_request,
    check_ocsr,
    require,
    reset_sanitizer_stats,
    sanitized,
    sanitizer_enabled,
    sanitizer_stats,
)

__all__ = [
    "CheckConfig",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "RULES",
    "Rule",
    "SanitizerStats",
    "SanitizerViolation",
    "check_buffer",
    "check_cyclesim_result",
    "check_energy_composition",
    "check_hbm_request",
    "check_ocsr",
    "load_config",
    "main",
    "require",
    "reset_sanitizer_stats",
    "rule",
    "sanitized",
    "sanitizer_enabled",
    "sanitizer_stats",
    "scan_paths",
]
