"""The pass driver: walk files, run rules, filter noqa, report.

``python -m repro.check src/`` (or ``repro check src/``) runs every
registered rule over every ``*.py`` file under the given paths, prints
one ``file:line code message`` line per finding, and exits non-zero when
anything is found — the CI gate for the simulator invariants.

Suppression: a finding is dropped when its physical line carries
``# repro: noqa`` (all codes) or ``# repro: noqa R003`` /
``# repro: noqa R001,R003`` (listed codes only).
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
import time
from pathlib import Path
from typing import Iterable, Sequence

from . import rules as _rules  # noqa: F401  (imports register the rules)
from .config import CheckConfig, load_config
from .findings import Finding
from .registry import RULES, ModuleContext, ProjectContext
from .reporting import RunStatistics, render_json, render_sarif
from .rules.frozen import collect_frozen_classes
from .shapes.index import collect_contracts

__all__ = ["scan_paths", "iter_python_files", "filter_noqa", "main",
           "build_parser", "NOQA_PATTERN"]

#: The suppression comment: a bare ``repro: noqa`` hash-comment drops
#: every code on its line; ``repro: noqa R001, R003`` drops only the
#: listed codes.  The ``\b`` keeps ``noqaR006``-style typos from
#: silently suppressing every rule on the line.  (Spelled without the
#: leading hash here so this very comment stays out of the audited
#: suppression inventory.)
NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\b(?:\s+(?P<codes>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*))?"
)


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """All ``*.py`` files under ``paths`` (files pass through), sorted."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.update(p.rglob("*.py"))
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise FileNotFoundError(f"not a python file or directory: {p}")
    return sorted(out)


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def filter_noqa(
    findings: Iterable[Finding], lines_by_path: dict[str, list[str]]
) -> list[Finding]:
    """Drop findings whose source line carries a matching noqa comment."""
    kept = []
    for f in findings:
        lines = lines_by_path.get(f.path, [])
        line = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        m = NOQA_PATTERN.search(line)
        if m:
            codes = m.group("codes")
            if codes is None or f.code in {
                c.strip() for c in codes.split(",")
            }:
                continue
        kept.append(f)
    return kept


def scan_paths(
    paths: Sequence[Path | str],
    *,
    config: CheckConfig | None = None,
    select: Iterable[str] | None = None,
    root: Path | str | None = None,
    stats: RunStatistics | None = None,
) -> list[Finding]:
    """Run the pass over ``paths`` and return surviving findings.

    ``select`` narrows to specific rule codes (after the config's own
    enable/disable); ``root`` anchors relative paths and the
    pyproject.toml lookup (default: the first path); ``stats``, when
    given, accumulates per-rule finding counts and wall time.
    """
    started = time.perf_counter()
    files = iter_python_files(paths)
    root = Path(root) if root is not None else Path.cwd()
    if config is None:
        config = load_config(files[0].parent if files else root)

    codes = [
        code for code in sorted(RULES)
        if config.rule_enabled(code)
        and (select is None or code in set(select))
    ]

    modules: list[ModuleContext] = []
    frozen: set[str] = set()
    lines_by_path: dict[str, list[str]] = {}
    project = ProjectContext(config=config)
    for path in files:
        relpath = _relpath(path, root)
        if config.path_excluded(relpath):
            continue
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        ctx = ModuleContext(
            path=path, relpath=relpath, tree=tree, source=source,
            project=project,
        )
        modules.append(ctx)
        frozen.update(collect_frozen_classes(tree))
        lines_by_path[relpath] = ctx.lines

    project = ProjectContext(
        config=config,
        frozen_classes=frozenset(frozen),
        contracts=collect_contracts(modules),
    )
    findings: list[Finding] = []
    seconds_by_rule: dict[str, float] = {}
    for ctx in modules:
        ctx.project = project
        for code in codes:
            t0 = time.perf_counter()
            findings.extend(RULES[code].run(ctx))
            seconds_by_rule[code] = (
                seconds_by_rule.get(code, 0.0)
                + (time.perf_counter() - t0)
            )
    kept = sorted(filter_noqa(findings, lines_by_path))
    if stats is not None:
        counts: dict[str, int] = {}
        for f in kept:
            counts[f.code] = counts.get(f.code, 0) + 1
        for code in codes:
            stats.record_rule(
                code, counts.get(code, 0), seconds_by_rule.get(code, 0.0)
            )
        stats.files_scanned += len(modules)
        stats.total_seconds += time.perf_counter() - started
    return kept


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.check",
        description="repo-specific static analysis for the TaGNN"
        " reproduction (rules R001-R008)",
    )
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to scan (default: src)")
    p.add_argument("--select", action="append", metavar="CODE",
                   help="run only these rule codes (repeatable)")
    p.add_argument("--root", default=".",
                   help="repo root for relative paths and pyproject lookup")
    p.add_argument("--list-rules", action="store_true",
                   help="print the registered rules and exit")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="output format (json/sarif for tooling; the"
                   " exit code gate is identical)")
    p.add_argument("--statistics", action="store_true",
                   help="print per-rule finding counts and wall time"
                   " to stderr")
    return p


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for code in sorted(RULES):
            r = RULES[code]
            print(f"{code} {r.name}: {r.description}")
        return 0
    unknown = set(args.select or ()) - set(RULES)
    if unknown:
        print(
            f"error: unknown rule code(s): {', '.join(sorted(unknown))}"
            f" (known: {', '.join(sorted(RULES))})",
            file=sys.stderr,
        )
        return 2
    stats = RunStatistics() if args.statistics else None
    try:
        findings = scan_paths(
            args.paths, select=args.select, root=args.root, stats=stats
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings, stats))
    elif args.format == "sarif":
        print(render_sarif(findings))
    else:
        for f in findings:
            print(f.format())
        if findings:
            print(f"{len(findings)} finding(s)", file=sys.stderr)
    if stats is not None:
        print(stats.format(), file=sys.stderr)
    return 1 if findings else 0
