"""Rule registry and the per-module context rules run against.

Rules are plain functions taking a :class:`ModuleContext` and yielding
:class:`~repro.check.findings.Finding`s, registered under a stable code
with the :func:`rule` decorator::

    @rule("R001", "determinism", "forbid nondeterminism in the simulator core")
    def check_determinism(ctx: ModuleContext) -> Iterator[Finding]:
        ...

The runner gives every rule the parsed AST plus a repo-wide
:class:`ProjectContext` (e.g. the set of frozen dataclass names collected
across all scanned files), so rules can reason beyond a single module.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator

from .config import CheckConfig
from .findings import Finding

__all__ = ["Rule", "RULES", "rule", "ModuleContext", "ProjectContext",
           "dotted_name"]


@dataclass(frozen=True)
class ProjectContext:
    """Repo-wide facts shared by every rule invocation."""

    config: CheckConfig
    #: names of ``@dataclass(frozen=True)`` classes defined anywhere in
    #: the scanned tree (plus the built-in simulator types)
    frozen_classes: frozenset[str] = frozenset()
    #: shape/dtype contracts collected across the tree (a
    #: :class:`~repro.check.shapes.index.ContractIndex`), for R007/R008
    contracts: object | None = None


@dataclass
class ModuleContext:
    """One parsed module as a rule sees it."""

    path: Path
    relpath: str
    tree: ast.Module
    source: str
    project: ProjectContext
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def finding(self, node: ast.AST | int, code: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(self.relpath, line, code, message)


@dataclass(frozen=True)
class Rule:
    """A registered static-analysis rule."""

    code: str
    name: str
    description: str
    check: Callable[[ModuleContext], Iterable[Finding]]

    def run(self, ctx: ModuleContext) -> Iterator[Finding]:
        yield from self.check(ctx)


RULES: dict[str, Rule] = {}


def rule(code: str, name: str, description: str):
    """Register a rule function under ``code`` (e.g. ``"R001"``)."""

    def decorator(fn: Callable[[ModuleContext], Iterable[Finding]]):
        if code in RULES:
            raise ValueError(f"duplicate rule code {code}")
        RULES[code] = Rule(code, name, description, fn)
        return fn

    return decorator


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
