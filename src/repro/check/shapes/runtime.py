"""Runtime half of the contract subsystem: the ``@contract`` decorator.

The contract string is parsed once, at decoration time (a typo fails the
import).  When the sanitizer is off the wrapper costs one truthiness
test; under ``REPRO_SANITIZE=1`` (or inside :func:`~repro.check.sanitized`)
every call validates the real arguments and return value against the
declared spec.  Violations raise
:class:`~repro.check.sanitizer.SanitizerViolation` naming the offending
parameter, dimension, and dtype, and every validation is counted in the
sanitizer stats under the ``contract-args`` / ``contract-return``
invariants.

Validation is pure observation: it never copies, casts, or otherwise
perturbs the arrays, so sanitized runs stay bit-identical to unsanitized
ones.
"""

from __future__ import annotations

import functools
import inspect

import numpy as np

from ..sanitizer import require, sanitizer_enabled
from .spec import (
    EXACT_DTYPES,
    KIND_DTYPES,
    AnySpec,
    ArraySpec,
    ContractSpec,
    DimScalarSpec,
    DimSpec,
    ScalarSpec,
    parse_contract,
)

__all__ = ["contract", "get_contract", "validate_value"]

_SCALAR_OK = {
    "int": lambda v: isinstance(v, (int, np.integer))
    and not isinstance(v, bool),
    "float": lambda v: isinstance(v, (int, float, np.integer, np.floating))
    and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, (bool, np.bool_)),
    "str": lambda v: isinstance(v, str),
    "none": lambda v: v is None,
}


def _dtype_ok(dtype: np.dtype, code: str) -> bool:
    if code in KIND_DTYPES:
        kinds = KIND_DTYPES[code]
        return kinds == "?" or dtype.kind in kinds
    return dtype == np.dtype(EXACT_DTYPES[code])


def _check_dims(
    shape: tuple[int, ...],
    dims: tuple[DimSpec, ...],
    bindings: dict[str, int],
) -> tuple[bool, str]:
    """Match a concrete shape against dim specs, binding symbols as we
    go.  Returns (ok, detail-for-the-error-message)."""
    if len(shape) != len(dims):
        return False, f"rank {len(shape)} != {len(dims)}"
    for axis, (size, dim) in enumerate(zip(shape, dims)):
        if dim.kind == "any":
            continue
        if dim.kind == "lit":
            if size != dim.value:
                return False, f"axis {axis} is {size}, expected {dim.value}"
            continue
        want = bindings.get(dim.name)
        base = size - dim.value
        if want is None:
            if base < 0:
                return False, (
                    f"axis {axis} is {size}, smaller than offset"
                    f" +{dim.value} of {dim.name!r}"
                )
            bindings[dim.name] = base
        elif base != want:
            return False, (
                f"axis {axis} is {size}, expected"
                f" {dim!s}={want + dim.value}"
            )
    return True, ""


def validate_value(
    value,
    spec,
    bindings: dict[str, int],
) -> tuple[bool, str]:
    """Check one value against one spec under the current symbol
    bindings (mutated in place on successful binds)."""
    if isinstance(spec, AnySpec):
        return True, ""
    if isinstance(spec, ScalarSpec):
        if not _SCALAR_OK[spec.kind](value):
            return False, f"expected {spec.kind}, got {type(value).__name__}"
        return True, ""
    if isinstance(spec, DimScalarSpec):
        if isinstance(value, bool) or not isinstance(
            value, (int, np.integer)
        ):
            return False, (
                f"expected int (dim {spec.name!r}),"
                f" got {type(value).__name__}"
            )
        want = bindings.get(spec.name)
        if want is None:
            bindings[spec.name] = int(value)
        elif int(value) != want:
            return False, f"is {int(value)}, expected {spec.name}={want}"
        return True, ""
    if isinstance(spec, ArraySpec):
        if value is None:
            if spec.optional:
                return True, ""
            return False, "is None, expected an array"
        if not isinstance(value, np.ndarray):
            return False, f"expected ndarray, got {type(value).__name__}"
        if not _dtype_ok(value.dtype, spec.dtype):
            return False, f"dtype {value.dtype} != {spec.dtype}"
        if spec.dims is None:
            return True, ""
        return _check_dims(value.shape, spec.dims, bindings)
    return True, ""


def _validate_args(
    fn_name: str, spec: ContractSpec, params, args, kwargs
) -> dict[str, int]:
    bindings: dict[str, int] = {}
    bound: dict[str, object] = dict(zip(params, args))
    for name, value in kwargs.items():
        if name in params:
            bound[name] = value
    for name, arg_spec in zip(params, spec.args):
        if name not in bound:  # defaulted parameter left unspecified
            continue
        ok, detail = validate_value(bound[name], arg_spec, bindings)
        require(
            ok,
            "contract-args",
            name,
            detail or _describe(bound[name]),
            str(arg_spec),
            fn_name,
        )
    return bindings


def _validate_return(
    fn_name: str, spec: ContractSpec, bindings: dict[str, int], result
) -> None:
    values = result if len(spec.returns) > 1 else (result,)
    if len(spec.returns) > 1 and (
        not isinstance(result, tuple) or len(result) != len(spec.returns)
    ):
        require(
            False,
            "contract-return",
            "return",
            f"expected a {len(spec.returns)}-tuple,"
            f" got {type(result).__name__}",
            str(spec),
            fn_name,
        )
    for pos, (value, ret_spec) in enumerate(zip(values, spec.returns)):
        ok, detail = validate_value(value, ret_spec, bindings)
        require(
            ok,
            "contract-return",
            f"return[{pos}]" if len(spec.returns) > 1 else "return",
            detail or _describe(value),
            str(ret_spec),
            fn_name,
        )


def _describe(value) -> str:
    if isinstance(value, np.ndarray):
        return f"ndarray{value.shape} {value.dtype}"
    return f"{type(value).__name__}({value!r})"


def contract(text: str):
    """Declare a shape/dtype contract on a kernel.

    Parses ``text`` immediately; attaches the parsed
    :class:`~repro.check.shapes.spec.ContractSpec` as
    ``__repro_contract__`` (the static pass reads the *source* decorator,
    tests and tooling read this attribute); wraps the function so that
    when the sanitizer is enabled, arguments and return values are
    validated on every call.
    """
    spec = parse_contract(text)

    def decorate(fn):
        sig = inspect.signature(fn)
        params = [
            name
            for name in sig.parameters
            if name not in ("self", "cls")
        ]
        if len(spec.args) > len(params):
            raise TypeError(
                f"contract for {fn.__qualname__} declares"
                f" {len(spec.args)} arguments but the signature has"
                f" only {len(params)}"
            )
        arg_names = params[: len(spec.args)]
        skip_first = next(iter(sig.parameters), None) in ("self", "cls")

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not sanitizer_enabled():
                return fn(*args, **kwargs)
            seen = args[1:] if skip_first else args
            bindings = _validate_args(
                fn.__qualname__, spec, arg_names, seen, kwargs
            )
            result = fn(*args, **kwargs)
            _validate_return(fn.__qualname__, spec, bindings, result)
            return result

        wrapper.__repro_contract__ = spec
        return wrapper

    return decorate


def get_contract(fn) -> ContractSpec | None:
    """The parsed contract attached to ``fn``, if any."""
    return getattr(fn, "__repro_contract__", None)
