"""Cross-module contract index and call-target resolution.

Before the rules run, the runner walks every parsed module once and
collects each ``@contract("...")`` declaration into a
:class:`ContractIndex` keyed by ``(module fullname, qualname)`` — the
same pre-pass pattern as the frozen-dataclass collection for R002.
Alongside the contracts it records every module-level dtype constant
(``VID_DTYPE = np.int32`` and friends) so ``dtype=VID_DTYPE`` stays
meaningful to the abstract interpreter across modules.

:class:`ModuleResolver` then gives the interpreter a per-module view:
one dotted call name in, and out comes "this is numpy attribute X",
"this is contracted kernel Y", or "no idea" — built from that module's
``import`` / ``from ... import`` statements (relative imports resolved
against the module's own package).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..registry import ModuleContext
from .spec import ContractError, ContractSpec, parse_contract

__all__ = [
    "ContractIndex",
    "ContractInfo",
    "ModuleResolver",
    "collect_contracts",
    "contract_decorator",
    "module_fullname",
]


def module_fullname(relpath: str) -> str:
    """``src/repro/graphs/snapshot.py`` -> ``repro.graphs.snapshot``."""
    parts = relpath.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def contract_decorator(fn: ast.FunctionDef) -> tuple[str, int] | None:
    """The contract text and line of a ``@contract("...")`` decorator,
    if the function carries one."""
    for deco in fn.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        name = None
        if isinstance(deco.func, ast.Name):
            name = deco.func.id
        elif isinstance(deco.func, ast.Attribute):
            name = deco.func.attr
        if name != "contract" or not deco.args:
            continue
        first = deco.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value, deco.lineno
    return None


@dataclass(frozen=True)
class ContractInfo:
    """One declared contract, as the static pass sees it."""

    module: str
    qualname: str
    params: tuple[str, ...]
    spec: ContractSpec
    lineno: int
    is_method: bool

    @property
    def display(self) -> str:
        return f"{self.module.rsplit('.', 1)[-1]}.{self.qualname}"


@dataclass
class ContractIndex:
    """Everything the interpreter needs to know about other modules."""

    contracts: dict[tuple[str, str], ContractInfo] = field(
        default_factory=dict
    )
    #: module-level ``NAME = np.<dtype>`` constants, per module
    dtype_constants: dict[tuple[str, str], str] = field(default_factory=dict)
    modules: set[str] = field(default_factory=set)

    def lookup(self, module: str, qualname: str) -> ContractInfo | None:
        return self.contracts.get((module, qualname))


_NP_DTYPE_NAMES = {
    "float16": "f16", "float32": "f32", "float64": "f64",
    "int8": "i8", "int16": "i16", "int32": "i32", "int64": "i64",
    "uint8": "u8", "uint16": "u16", "uint32": "u32", "uint64": "u64",
    "bool_": "b", "intp": "i64",
}


def _fn_params(fn: ast.FunctionDef) -> tuple[str, ...]:
    return tuple(
        a.arg
        for a in (fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs)
        if a.arg not in ("self", "cls")
    )


def collect_contracts(ctxs: list[ModuleContext]) -> ContractIndex:
    """Pre-pass: parse every ``@contract`` in the tree (malformed ones
    are skipped here — importing the module would raise anyway) and
    record dtype constants and known module names."""
    index = ContractIndex()
    for ctx in ctxs:
        module = module_fullname(ctx.relpath)
        index.modules.add(module)
        for node in ctx.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and isinstance(
                    node.value, ast.Attribute
                ):
                    code = _NP_DTYPE_NAMES.get(node.value.attr)
                    if code is not None:
                        index.dtype_constants[(module, target.id)] = code
            fns: list[tuple[str, ast.FunctionDef, bool]] = []
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fns.append((node.name, node, False))
            elif isinstance(node, ast.ClassDef):
                fns.extend(
                    (f"{node.name}.{sub.name}", sub, True)
                    for sub in node.body
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
                )
            for qualname, fn, is_method in fns:
                found = contract_decorator(fn)
                if found is None:
                    continue
                try:
                    spec = parse_contract(found[0])
                except ContractError:
                    continue
                index.contracts[(module, qualname)] = ContractInfo(
                    module=module,
                    qualname=qualname,
                    params=_fn_params(fn),
                    spec=spec,
                    lineno=fn.lineno,
                    is_method=is_method,
                )
    return index


class ModuleResolver:
    """Resolve dotted call names inside one module.

    ``resolve("np.zeros")`` -> ``("numpy", "zeros")``;
    ``resolve("snapshot.build_csr")`` -> ``("contract", ContractInfo)``
    when that kernel declares one; ``resolve("VID_DTYPE")`` ->
    ``("dtype", "i32")``; anything unknown -> ``None``.
    """

    def __init__(self, ctx: ModuleContext, index: ContractIndex):
        self.index = index
        self.module = module_fullname(ctx.relpath)
        #: local name -> absolute dotted path it stands for
        self.aliases: dict[str, str] = {}
        package = (
            self.module
            if ctx.relpath.endswith("__init__.py")
            else self.module.rsplit(".", 1)[0] if "." in self.module else ""
        )
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.aliases[local] = (
                        alias.name if alias.asname else
                        alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._from_base(node, package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}"

    @staticmethod
    def _from_base(node: ast.ImportFrom, package: str) -> str | None:
        if node.level == 0:
            return node.module
        parts = package.split(".") if package else []
        up = node.level - 1
        if up > len(parts):
            return None
        parts = parts[: len(parts) - up]
        if node.module:
            parts.append(node.module)
        return ".".join(parts) if parts else None

    def resolve(self, dotted: str):
        parts = dotted.split(".")
        head, rest = parts[0], parts[1:]
        base = self.aliases.get(head)
        if base is None:
            # a plain name: maybe a top-level function of this module,
            # or a module-level dtype constant
            if not rest:
                info = self.index.lookup(self.module, head)
                if info is not None:
                    return ("contract", info)
                code = self.index.dtype_constants.get((self.module, head))
                if code is not None:
                    return ("dtype", code)
            return None
        full = base.split(".") + rest
        if full[0] == "numpy":
            return ("numpy", ".".join(full[1:])) if len(full) > 1 else None
        # try every module/qualname split, longest module first
        for cut in range(len(full) - 1, 0, -1):
            module = ".".join(full[:cut])
            if module not in self.index.modules:
                continue
            qualname = ".".join(full[cut:])
            info = self.index.lookup(module, qualname)
            if info is not None:
                return ("contract", info)
            code = self.index.dtype_constants.get((module, qualname))
            if code is not None:
                return ("dtype", code)
            return None
        # the alias itself may name an imported object: "build_csr"
        if not rest and "." in base:
            module, name = base.rsplit(".", 1)
            if module in self.index.modules:
                info = self.index.lookup(module, name)
                if info is not None:
                    return ("contract", info)
                code = self.index.dtype_constants.get((module, name))
                if code is not None:
                    return ("dtype", code)
        return None
