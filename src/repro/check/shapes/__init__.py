"""Shape/dtype contracts for the array hot paths.

One declaration drives two enforcement modes::

    from repro.check.shapes import contract

    @contract("(n,f) f32, (e,) i64 -> (n,f) f32")
    def propagate(x, idx): ...

* **Static** — ``repro check`` rules R007/R008 parse the same string,
  abstractly interpret kernel bodies and call sites over symbolic
  dimensions, and fail CI on provable violations
  (:mod:`repro.check.shapes.abstract`, :mod:`repro.check.rules.contracts`).
* **Runtime** — under ``REPRO_SANITIZE=1`` the decorator validates real
  arguments and returns on every call, raising
  :class:`~repro.check.sanitizer.SanitizerViolation` with the offending
  dimension/dtype; disabled, it costs one truthiness test
  (:mod:`repro.check.shapes.runtime`).

See docs/static_analysis.md for the contract-authoring guide.
"""

from __future__ import annotations

from .runtime import contract, get_contract, validate_value
from .spec import (
    AnySpec,
    ArraySpec,
    ContractError,
    ContractSpec,
    DimScalarSpec,
    DimSpec,
    ScalarSpec,
    parse_contract,
)

__all__ = [
    "AnySpec",
    "ArraySpec",
    "ContractError",
    "ContractSpec",
    "DimScalarSpec",
    "DimSpec",
    "ScalarSpec",
    "contract",
    "get_contract",
    "parse_contract",
    "validate_value",
]
