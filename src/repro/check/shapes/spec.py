"""The shape/dtype contract DSL.

A contract is one line of text describing what flows through a kernel::

    @contract("(n,f) f32, (e,) i64 -> (n,f) f32")
    def propagate(x, idx): ...

Left of ``->`` are the argument specs (aligned, in order, to the
function's positional parameters after ``self``/``cls``); right of it
are the return specs (several means a tuple return).  Each spec is one
of:

``(dims) dtype``
    An array.  ``dims`` are symbolic names (``n``, ``f``), integer
    literals, ``*`` (any size), or a symbol plus an offset (``n+1``, the
    CSR ``indptr`` idiom).  ``(...) dtype`` accepts any rank.  A symbol
    binds on first use and every later use must match — ``(n,f), (n,)``
    says "the second argument's length equals the first's row count".
``?(dims) dtype``
    Same, but ``None`` is also accepted (optional array arguments).
``n`` (a bare lowercase name)
    An integer scalar that *binds* the dimension symbol ``n`` — e.g.
    ``build_csr(num_vertices, ...)`` declaring ``n, (e,) i, (e,) i ->
    (n+1,) i64, (e,) i32``.
``int`` / ``float`` / ``bool`` / ``str`` / ``none``
    A plain Python scalar of that type (``float`` accepts ints too,
    mirroring Python's numeric tower; ``none`` requires ``None``).
``_``
    Anything; the position is declared but unchecked.

Dtypes: exact (``f16 f32 f64 i8 i16 i32 i64 u8 u16 u32 u64 b``), a
kind class (``f`` any float, ``i`` any integer — signed or unsigned,
``u`` unsigned), or ``?`` (any dtype).

The grammar is deliberately tiny: it has to be readable at the def site,
checkable in O(rank) at runtime, and interpretable symbolically by the
static pass (rules R007/R008 — see docs/static_analysis.md).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = [
    "AnySpec",
    "ArraySpec",
    "ContractError",
    "ContractSpec",
    "DimScalarSpec",
    "DimSpec",
    "EXACT_DTYPES",
    "KIND_DTYPES",
    "SCALAR_KINDS",
    "ScalarSpec",
    "parse_contract",
]

#: exact dtype codes -> numpy dtype names
EXACT_DTYPES = {
    "f16": "float16",
    "f32": "float32",
    "f64": "float64",
    "i8": "int8",
    "i16": "int16",
    "i32": "int32",
    "i64": "int64",
    "u8": "uint8",
    "u16": "uint16",
    "u32": "uint32",
    "u64": "uint64",
    "b": "bool",
}

#: dtype kind classes -> accepted numpy ``dtype.kind`` characters
KIND_DTYPES = {"f": "f", "i": "iu", "u": "u", "?": "?"}

#: keywords naming plain Python scalar specs
SCALAR_KINDS = ("int", "float", "bool", "str", "none")


class ContractError(ValueError):
    """A malformed contract string (raised at decoration time)."""


@dataclass(frozen=True)
class DimSpec:
    """One axis: a symbol (+offset), a literal size, or ``*``."""

    kind: str  # 'sym' | 'lit' | 'any'
    name: str = ""
    value: int = 0  # literal size, or the offset of a 'sym' ("n+1")

    def __str__(self) -> str:
        if self.kind == "any":
            return "*"
        if self.kind == "lit":
            return str(self.value)
        return self.name + (f"+{self.value}" if self.value else "")


@dataclass(frozen=True)
class ArraySpec:
    """``(dims) dtype`` — ``dims is None`` means any rank."""

    dims: tuple[DimSpec, ...] | None
    dtype: str
    optional: bool = False

    def __str__(self) -> str:
        opt = "?" if self.optional else ""
        inner = "..." if self.dims is None else ",".join(map(str, self.dims))
        return f"{opt}({inner}) {self.dtype}"


@dataclass(frozen=True)
class ScalarSpec:
    """A plain Python scalar: int/float/bool/str/none."""

    kind: str

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class DimScalarSpec:
    """An integer scalar that binds a dimension symbol."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class AnySpec:
    """Unchecked position."""

    def __str__(self) -> str:
        return "_"


@dataclass(frozen=True)
class ContractSpec:
    """A parsed contract: argument specs and return specs."""

    text: str
    args: tuple
    returns: tuple

    def __str__(self) -> str:
        left = ", ".join(map(str, self.args))
        right = ", ".join(map(str, self.returns))
        return f"{left} -> {right}"


_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_]*)|(?P<int>\d+)"
    r"|(?P<arrow>->)|(?P<ellipsis>\.\.\.)|(?P<sym>[(),*?+]))"
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    out: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise ContractError(
                f"bad contract syntax at {text[pos:pos + 10]!r} in {text!r}"
            )
        pos = m.end()
        for kind in ("name", "int", "arrow", "ellipsis", "sym"):
            tok = m.group(kind)
            if tok is not None:
                out.append((kind if kind != "sym" else tok, tok))
                break
    out.append(("end", ""))
    return out


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.toks = _tokenize(text)
        self.i = 0

    def peek(self) -> tuple[str, str]:
        return self.toks[self.i]

    def take(self, kind: str | None = None) -> str:
        k, v = self.toks[self.i]
        if kind is not None and k != kind:
            raise ContractError(
                f"expected {kind!r}, got {v!r} in contract {self.text!r}"
            )
        self.i += 1
        return v

    # ------------------------------------------------------------------
    def parse(self) -> ContractSpec:
        args: list = []
        if self.peek()[0] != "arrow":
            args = self.spec_list()
        self.take("arrow")
        returns = self.spec_list()
        if self.peek()[0] != "end":
            raise ContractError(
                f"trailing junk after return specs in {self.text!r}"
            )
        if not returns:
            raise ContractError(f"contract needs a return spec: {self.text!r}")
        return ContractSpec(self.text, tuple(args), tuple(returns))

    def spec_list(self) -> list:
        specs = [self.spec()]
        while self.peek()[0] == ",":
            self.take(",")
            specs.append(self.spec())
        return specs

    def spec(self):
        kind, value = self.peek()
        if kind == "(" or (kind == "?" and self.toks[self.i + 1][0] == "("):
            optional = False
            if kind == "?":
                self.take("?")
                optional = True
            return self.array_spec(optional)
        if kind == "name":
            self.take()
            if value == "_":
                return AnySpec()
            if value in SCALAR_KINDS:
                return ScalarSpec(value)
            if value in EXACT_DTYPES or value in KIND_DTYPES:
                raise ContractError(
                    f"dtype {value!r} without dims — write ``(...) {value}``"
                    f" in {self.text!r}"
                )
            return DimScalarSpec(value)
        raise ContractError(
            f"expected a spec, got {value!r} in contract {self.text!r}"
        )

    def array_spec(self, optional: bool) -> ArraySpec:
        self.take("(")
        dims: list[DimSpec] | None = []
        if self.peek()[0] == "ellipsis":
            self.take("ellipsis")
            dims = None
        elif self.peek()[0] != ")":
            dims = [self.dim()]
            while self.peek()[0] == ",":
                self.take(",")
                if self.peek()[0] == ")":  # trailing comma: "(e,)"
                    break
                dims.append(self.dim())
        self.take(")")
        kind, value = self.peek()
        dtype = "?"
        if kind == "name":
            if value not in EXACT_DTYPES and value not in KIND_DTYPES:
                raise ContractError(
                    f"unknown dtype {value!r} in contract {self.text!r}"
                )
            dtype = self.take()
        elif kind == "?":
            self.take("?")
        else:
            raise ContractError(
                f"array spec needs a dtype after the dims in {self.text!r}"
            )
        return ArraySpec(
            dims=None if dims is None else tuple(dims),
            dtype=dtype,
            optional=optional,
        )

    def dim(self) -> DimSpec:
        kind, value = self.peek()
        if kind == "*":
            self.take()
            return DimSpec("any")
        if kind == "int":
            self.take()
            return DimSpec("lit", value=int(value))
        if kind == "name":
            name = self.take()
            offset = 0
            if self.peek()[0] == "+":
                self.take("+")
                offset = int(self.take("int"))
            return DimSpec("sym", name=name, value=offset)
        raise ContractError(
            f"expected a dimension, got {value!r} in contract {self.text!r}"
        )


def parse_contract(text: str) -> ContractSpec:
    """Parse a contract string; raises :class:`ContractError` on syntax
    errors (at decoration time, so a typo fails the import, not a run)."""
    if not isinstance(text, str):
        raise ContractError(f"contract must be a string, got {type(text).__name__}")
    return _Parser(text).parse()
