"""Abstract interpretation of kernel bodies over symbolic shapes.

The static half of the contract subsystem.  Values are abstracted to
:class:`AVal` — an array with symbolic dimensions and a contract dtype
code, a scalar (integers may carry the dimension they measure, so
``x.shape[0]`` and ``len(x)`` stay symbolic), a tuple, a shape tuple, or
"anything".  Dimensions reuse :class:`~repro.check.shapes.spec.DimSpec`:
a named symbol plus offset (``n``, ``n+1``), an integer literal, or
unknown.

The interpreter walks one function body at a time, threading an
environment of ``name -> AVal`` through assignments, branches (joined),
loops (assigned names widened to ANY first), indexing, NumPy calls
(creation, ufuncs, reductions, ``matmul``/``concatenate``/indexing
semantics), and calls into other contracted kernels (checked by
unification, then the callee's declared returns become the call's
value).

Everything uncertain widens to ANY; the pass only reports conflicts it
can *prove* (two unequal literal dims, the same symbol at different
offsets, two distinct contract symbols forced equal, disjoint dtype
kinds).  That keeps R007 quiet on correct code — the gate requires
``repro check src/`` to exit 0 on the real tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

import numpy as np

from ..registry import dotted_name
from .spec import (
    EXACT_DTYPES,
    AnySpec,
    ArraySpec,
    ContractSpec,
    DimScalarSpec,
    DimSpec,
    ScalarSpec,
)

__all__ = [
    "ANY",
    "ANY_DIM",
    "AVal",
    "FunctionInterpreter",
    "arg_symbols",
    "arr",
    "aval_from_spec",
    "broadcast_dims",
    "dtype_conflict",
    "floatize",
    "int_scalar",
    "promote",
    "promote_weak",
    "rigid_conflict",
    "scalar",
    "scalar_kind_of",
    "seed_params",
    "shift_dim",
    "sum_dtype",
    "unify_value",
]

ANY_DIM = DimSpec("any")

_NAME_TO_CODE = {v: k for k, v in EXACT_DTYPES.items()}
#: numpy attribute names -> contract dtype codes (for ``dtype=np.float32``)
_NP_NAME_TO_CODE = dict(_NAME_TO_CODE)
_NP_NAME_TO_CODE.update(
    {"bool_": "b", "intp": "i64", "int_": "i64", "float_": "f64",
     "double": "f64", "single": "f32", "half": "f16"}
)


@dataclass(frozen=True)
class AVal:
    """One abstract value.

    kind 'array': ``dims`` (None = unknown rank) and ``dtype`` (a
    contract dtype code, a kind class, or '?').
    kind 'scalar': ``scalar_kind`` in int/float/bool/str/none/'?';
    integer scalars may carry ``dim``, the dimension they measure.
    kind 'tuple': ``elems``.  kind 'shape': ``dims`` of the array whose
    ``.shape`` this is.  kind 'any': no information.
    """

    kind: str
    dims: tuple[DimSpec, ...] | None = None
    dtype: str = "?"
    scalar_kind: str = "?"
    dim: DimSpec | None = None
    elems: tuple["AVal", ...] | None = None


ANY = AVal("any")


def arr(dims, dtype: str = "?") -> AVal:
    return AVal("array", dims=dims, dtype=dtype)


def int_scalar(dim: DimSpec | None = None) -> AVal:
    return AVal("scalar", scalar_kind="int", dim=dim)


def scalar(kind: str) -> AVal:
    return AVal("scalar", scalar_kind=kind)


# ----------------------------------------------------------------------
# dtype lattice
# ----------------------------------------------------------------------
def _kindset(code: str) -> frozenset:
    if code in EXACT_DTYPES:
        return frozenset(np.dtype(EXACT_DTYPES[code]).kind)
    return {
        "f": frozenset("f"),
        "i": frozenset("iu"),
        "u": frozenset("u"),
        "?": frozenset("fiub"),
    }[code]


def promote(a: str, b: str) -> str:
    """NumPy type promotion lifted to contract codes ('?' is absorbing,
    kind classes stay classes)."""
    if a == "?" or b == "?":
        return "?"
    if a in EXACT_DTYPES and b in EXACT_DTYPES:
        name = np.promote_types(EXACT_DTYPES[a], EXACT_DTYPES[b]).name
        return _NAME_TO_CODE.get(name, "?")
    kinds = _kindset(a) | _kindset(b)
    if "f" in kinds:
        return "f"
    if kinds <= {"i", "u"}:
        return "u" if kinds == {"u"} else "i"
    if kinds == {"b"}:
        return "b"
    return "?"


def promote_weak(array_dtype: str, scalar_kind: str) -> str:
    """Array op python-scalar promotion (NEP 50 weak scalars): ints
    never widen the array; a float scalar floats an integer array."""
    if array_dtype == "?":
        return "?"
    if scalar_kind == "int":
        return "?" if _kindset(array_dtype) == {"b"} else array_dtype
    if scalar_kind == "float":
        if _kindset(array_dtype) <= {"f"}:
            return array_dtype
        return "f64" if array_dtype in EXACT_DTYPES else "f"
    return "?"


def floatize(code: str) -> str:
    """Result dtype of true division / float-valued ufuncs."""
    if code == "?":
        return "f"
    if _kindset(code) <= {"f"}:
        return code
    return "f64" if code in EXACT_DTYPES else "f"


def dtype_conflict(computed: str, declared: str) -> bool:
    """True only when every concrete dtype in ``computed`` fails
    ``declared`` — a provable mismatch."""
    if computed == "?" or declared == "?":
        return False
    if computed in EXACT_DTYPES and declared in EXACT_DTYPES:
        return computed != declared
    return not (_kindset(computed) & _kindset(declared))


# ----------------------------------------------------------------------
# dimension lattice
# ----------------------------------------------------------------------
def _is_one(d: DimSpec) -> bool:
    return d.kind == "lit" and d.value == 1


def rigid_conflict(a: DimSpec, b: DimSpec) -> bool:
    """Provably-unequal ground dims: unequal literals, the same symbol
    at different offsets, or two distinct contract symbols."""
    if a.kind == "any" or b.kind == "any":
        return False
    if a.kind == "lit" and b.kind == "lit":
        return a.value != b.value
    if a.kind == "sym" and b.kind == "sym":
        return a.name != b.name or a.value != b.value
    return False  # sym vs lit: could coincide


def shift_dim(d: DimSpec, delta: int) -> DimSpec:
    if d.kind == "lit":
        return DimSpec("lit", value=d.value + delta)
    if d.kind == "sym":
        return DimSpec("sym", name=d.name, value=d.value + delta)
    return ANY_DIM


def _merge_bcast(a: DimSpec, b: DimSpec) -> tuple[DimSpec, str | None]:
    if _is_one(a):
        return b, None
    if _is_one(b):
        return a, None
    if a.kind == "any" or b.kind == "any":
        return ANY_DIM, None
    if a.kind == "lit" and b.kind == "lit":
        if a.value != b.value:
            return ANY_DIM, f"{a.value} vs {b.value}"
        return a, None
    if a == b:
        return a, None
    return ANY_DIM, None  # sym vs lit>1 / distinct syms: not provable


def broadcast_dims(
    a: tuple[DimSpec, ...] | None, b: tuple[DimSpec, ...] | None
) -> tuple[tuple[DimSpec, ...] | None, str | None]:
    """NumPy broadcasting over symbolic dims.  Returns (result dims or
    None if unknown, conflict detail if a pair of literal axes can
    never broadcast)."""
    if a is None or b is None:
        return None, None
    rank = max(len(a), len(b))
    pa = (ANY_DIM,) * (rank - len(a)) + a
    pb = (ANY_DIM,) * (rank - len(b)) + b
    # a prepended axis broadcasts like literal 1
    pa = tuple(
        DimSpec("lit", value=1) if i < rank - len(a) else d
        for i, d in enumerate(pa)
    )
    pb = tuple(
        DimSpec("lit", value=1) if i < rank - len(b) else d
        for i, d in enumerate(pb)
    )
    out, conflict = [], None
    for da, db in zip(pa, pb):
        d, c = _merge_bcast(da, db)
        out.append(d)
        conflict = conflict or c
    return tuple(out), conflict


# ----------------------------------------------------------------------
# unification of an abstract value against a contract spec
# ----------------------------------------------------------------------
def _bind(
    bindings: dict[str, DimSpec], name: str, base: DimSpec
) -> str | None:
    have = bindings.get(name)
    if have is None:
        bindings[name] = base
        return None
    if have.kind == "any" or base.kind == "any":
        return None
    if rigid_conflict(have, base):
        return f"{name}={have} vs {name}={base}"
    if have != base:  # sym-vs-lit: unknown — widen, keep quiet
        bindings[name] = ANY_DIM
    return None


def unify_value(
    spec, aval: AVal, bindings: dict[str, DimSpec]
) -> str | None:
    """Check one abstract value against one contract spec; returns the
    conflict description, or None when compatible (binding dimension
    symbols in ``bindings`` along the way)."""
    if isinstance(spec, AnySpec) or aval.kind == "any":
        return None
    if isinstance(spec, ScalarSpec):
        if aval.kind == "array":
            return f"array where scalar {spec.kind} declared"
        if aval.kind != "scalar" or aval.scalar_kind == "?":
            return None
        ok = {
            "int": {"int"},
            "float": {"int", "float"},
            "bool": {"bool"},
            "str": {"str"},
            "none": {"none"},
        }[spec.kind]
        if aval.scalar_kind not in ok:
            return f"{aval.scalar_kind} where {spec.kind} declared"
        return None
    if isinstance(spec, DimScalarSpec):
        if aval.kind == "array":
            return f"array where dim scalar {spec.name!r} declared"
        if aval.kind != "scalar":
            return None
        if aval.scalar_kind not in ("int", "?"):
            return f"{aval.scalar_kind} where int dim {spec.name!r} declared"
        if aval.dim is not None:
            return _bind(bindings, spec.name, aval.dim)
        return None
    if isinstance(spec, ArraySpec):
        if aval.kind == "scalar":
            if spec.optional and aval.scalar_kind in ("none", "?"):
                return None
            if aval.scalar_kind == "?":
                return None
            return f"{aval.scalar_kind} scalar where array declared"
        if aval.kind != "array":
            return None
        if dtype_conflict(aval.dtype, spec.dtype):
            return f"dtype {aval.dtype} where {spec.dtype} declared"
        if spec.dims is None or aval.dims is None:
            return None
        if len(aval.dims) != len(spec.dims):
            return (
                f"rank {len(aval.dims)} where rank {len(spec.dims)}"
                " declared"
            )
        for axis, (d, sd) in enumerate(zip(aval.dims, spec.dims)):
            if sd.kind == "any" or d.kind == "any":
                continue
            if sd.kind == "lit":
                if d.kind == "lit" and d.value != sd.value:
                    return f"axis {axis} is {d}, declared {sd}"
                continue
            base = shift_dim(d, -sd.value)
            if base.kind == "lit" and base.value < 0:
                return f"axis {axis} is {d}, declared {sd}"
            conflict = _bind(bindings, sd.name, base)
            if conflict:
                return f"axis {axis}: {conflict}"
        return None
    return None


def aval_from_spec(spec, bindings: dict[str, DimSpec]) -> AVal:
    """The abstract value a spec denotes, with symbols resolved through
    ``bindings`` (unresolved symbols widen to unknown dims)."""
    if isinstance(spec, ArraySpec):
        if spec.dims is None:
            return arr(None, spec.dtype)
        dims = []
        for d in spec.dims:
            if d.kind == "sym":
                base = bindings.get(d.name, ANY_DIM)
                dims.append(
                    shift_dim(base, d.value) if base.kind != "any"
                    else ANY_DIM
                )
            else:
                dims.append(d)
        return arr(tuple(dims), spec.dtype)
    if isinstance(spec, DimScalarSpec):
        return int_scalar(bindings.get(spec.name))
    if isinstance(spec, ScalarSpec):
        return scalar(spec.kind) if spec.kind != "none" else scalar("none")
    return ANY


def seed_params(spec: ContractSpec, params: list[str]) -> dict[str, AVal]:
    """Initial environment of a contracted function: each parameter
    carries its declared dims as rigid symbols."""
    env: dict[str, AVal] = {}
    for name, item in zip(params, spec.args):
        if isinstance(item, ArraySpec):
            env[name] = arr(item.dims, item.dtype)
        elif isinstance(item, DimScalarSpec):
            env[name] = int_scalar(DimSpec("sym", name=item.name))
        elif isinstance(item, ScalarSpec):
            env[name] = scalar(item.kind)
        else:
            env[name] = ANY
    return env


def arg_symbols(spec: ContractSpec) -> set[str]:
    syms: set[str] = set()
    for item in spec.args:
        if isinstance(item, ArraySpec) and item.dims:
            syms.update(d.name for d in item.dims if d.kind == "sym")
        elif isinstance(item, DimScalarSpec):
            syms.add(item.name)
    return syms


# ----------------------------------------------------------------------
# numpy call semantics
# ----------------------------------------------------------------------
_FLOAT_UFUNCS = frozenset(
    "exp log log2 log10 expm1 log1p sqrt sin cos tan sinh cosh tanh "
    "arcsin arccos arctan arcsinh arccosh arctanh".split()
)
_SAME_UFUNCS = frozenset(
    "abs absolute negative positive floor ceil rint sign round around "
    "nan_to_num conj ascontiguousarray".split()
)
_BIN_UFUNCS = frozenset(
    "add subtract multiply maximum minimum fmax fmin power mod fmod "
    "hypot arctan2 logaddexp remainder".split()
)
_BOOL_UFUNCS = frozenset(
    "isnan isinf isfinite signbit logical_not isclose".split()
)
_BIN_BOOL_UFUNCS = frozenset(
    "logical_and logical_or logical_xor greater greater_equal less "
    "less_equal equal not_equal".split()
)
_KEEP_REDUCTIONS = frozenset("max min amax amin nanmax nanmin ptp".split())
_SUM_REDUCTIONS = frozenset("sum nansum prod nanprod".split())
_MEAN_REDUCTIONS = frozenset("mean nanmean var std nanvar nanstd".split())
_ARG_REDUCTIONS = frozenset("argmax argmin nanargmax nanargmin".split())


def sum_dtype(code: str) -> str:
    """np.sum's accumulator widening: ints below the platform int (and
    bool) widen to 64-bit."""
    if code in ("b", "i8", "i16", "i32"):
        return "i64"
    if code in ("u8", "u16", "u32"):
        return "u64"
    if code == "i":
        return "i"
    return code


def scalar_kind_of(dtype: str) -> str:
    if dtype == "?":
        return "?"
    kinds = _kindset(dtype)
    if kinds <= {"f"}:
        return "float"
    if kinds <= {"i", "u"}:
        return "int"
    if kinds == {"b"}:
        return "bool"
    return "?"


class FunctionInterpreter:
    """Interprets one function body, reporting provable contract
    conflicts through ``report(lineno, message)``.

    ``resolver`` supplies cross-module knowledge (see
    :class:`~repro.check.shapes.index.ModuleResolver`): whether a dotted
    call target is numpy, a contracted kernel, or a dtype constant.
    Body-level checks (broadcast conflicts, return-spec conflicts) fire
    only when the function itself declares a contract; call-site checks
    fire everywhere.
    """

    def __init__(self, resolver, report, contract_spec=None, params=None):
        self.resolver = resolver
        self.report = report
        self.spec = contract_spec
        self.params = params or []

    # -- driver --------------------------------------------------------
    def run(self, fn: ast.FunctionDef) -> None:
        names = [
            a.arg
            for a in (fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs)
            if a.arg not in ("self", "cls")
        ]
        if self.spec is not None:
            env = seed_params(self.spec, names)
            self._ret_seed = {
                s: DimSpec("sym", name=s) for s in arg_symbols(self.spec)
            }
        else:
            env = {n: ANY for n in names}
            self._ret_seed = {}
        self.visit_block(fn.body, env)

    # -- statements ------------------------------------------------------
    def visit_block(self, stmts, env: dict) -> None:
        for stmt in stmts:
            self.visit_stmt(stmt, env)

    def visit_stmt(self, stmt, env: dict) -> None:
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.assign(target, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self.assign(stmt.target, value, env)
        elif isinstance(stmt, ast.AugAssign):
            self.eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                have = env.get(stmt.target.id, ANY)
                # in-place on an ndarray preserves shape and dtype
                env[stmt.target.id] = have if have.kind == "array" else ANY
        elif isinstance(stmt, ast.Return):
            value = (
                scalar("none") if stmt.value is None
                else self.eval(stmt.value, env)
            )
            self.check_return(stmt, value)
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
        elif isinstance(stmt, ast.If):
            self.eval(stmt.test, env)
            left, right = dict(env), dict(env)
            self.visit_block(stmt.body, left)
            self.visit_block(stmt.orelse, right)
            env.clear()
            env.update(self.join(left, right))
        elif isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self.eval(stmt.iter, env)
                self.widen_targets(stmt.target, env)
            else:
                self.eval(stmt.test, env)
            for name in self.assigned_names(stmt.body):
                env[name] = ANY
            self.visit_block(stmt.body, dict(env))
            self.visit_block(stmt.orelse, dict(env))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.widen_targets(item.optional_vars, env)
            self.visit_block(stmt.body, env)
        elif isinstance(stmt, ast.Try):
            for name in self.assigned_names([stmt]):
                env[name] = ANY
            self.visit_block(stmt.body, dict(env))
            for handler in stmt.handlers:
                self.visit_block(handler.body, dict(env))
            self.visit_block(stmt.orelse, dict(env))
            self.visit_block(stmt.finalbody, dict(env))
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.eval(child, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # nested defs / classes / imports: skipped (driven separately)

    def assign(self, target, value: AVal, env: dict) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems = value.elems if value.kind == "tuple" else None
            for i, sub in enumerate(target.elts):
                if elems is not None and i < len(elems) and not isinstance(
                    sub, ast.Starred
                ):
                    self.assign(sub, elems[i], env)
                else:
                    self.widen_targets(sub, env)
        # subscript/attribute stores don't change the bound array's shape

    def widen_targets(self, target, env: dict) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                env[node.id] = ANY

    def assigned_names(self, stmts) -> set[str]:
        names: set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    names.add(node.id)
                elif isinstance(node, (ast.For,)) and isinstance(
                    node.target, ast.Name
                ):
                    names.add(node.target.id)
        return names

    @staticmethod
    def join(a: dict, b: dict) -> dict:
        out = {}
        for name in set(a) | set(b):
            va, vb = a.get(name), b.get(name)
            out[name] = va if va == vb and va is not None else ANY
        return out

    def check_return(self, stmt, value: AVal) -> None:
        if self.spec is None or value.kind == "any":
            return
        bindings = dict(self._ret_seed)
        returns = self.spec.returns
        if len(returns) > 1:
            if value.kind != "tuple":
                return
            if len(value.elems) != len(returns):
                self.report(
                    stmt.lineno,
                    f"returns {len(value.elems)} values where"
                    f" {len(returns)} declared",
                )
                return
            values = value.elems
        else:
            values = (value,)
        for pos, (v, rspec) in enumerate(zip(values, returns)):
            conflict = unify_value(rspec, v, bindings)
            if conflict:
                which = f"return[{pos}]" if len(returns) > 1 else "return"
                self.report(
                    stmt.lineno,
                    f"{which} {conflict} (declared '{rspec}')",
                )

    # -- expressions -----------------------------------------------------
    def eval(self, node, env: dict) -> AVal:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return scalar("bool")
            if isinstance(v, int):
                return int_scalar(DimSpec("lit", value=v))
            if isinstance(v, float):
                return scalar("float")
            if isinstance(v, str):
                return scalar("str")
            if v is None:
                return scalar("none")
            return ANY
        if isinstance(node, ast.Name):
            return env.get(node.id, ANY)
        if isinstance(node, (ast.Tuple, ast.List)):
            return AVal(
                "tuple",
                elems=tuple(self.eval(e, env) for e in node.elts),
            )
        if isinstance(node, ast.Attribute):
            return self.eval_attribute(node, env)
        if isinstance(node, ast.Subscript):
            return self.eval_subscript(node, env)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.BinOp):
            return self.eval_binop(node, env)
        if isinstance(node, ast.UnaryOp):
            operand = self.eval(node.operand, env)
            if isinstance(node.op, ast.USub) and operand.dim is not None:
                if operand.dim.kind == "lit":
                    return int_scalar(
                        DimSpec("lit", value=-operand.dim.value)
                    )
            if isinstance(node.op, ast.Not):
                return scalar("bool")
            return operand if operand.kind == "array" else ANY
        if isinstance(node, ast.Compare):
            avals = [self.eval(node.left, env)] + [
                self.eval(c, env) for c in node.comparators
            ]
            arrays = [a for a in avals if a.kind == "array"]
            if arrays:
                dims = arrays[0].dims
                for other in arrays[1:]:
                    dims, conflict = broadcast_dims(dims, other.dims)
                    self._bcast_conflict(node, conflict)
                return arr(dims, "b")
            return scalar("bool")
        if isinstance(node, ast.BoolOp):
            vals = [self.eval(v, env) for v in node.values]
            first = vals[0]
            return first if all(v == first for v in vals) else ANY
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            a = self.eval(node.body, env)
            b = self.eval(node.orelse, env)
            return a if a == b else ANY
        if isinstance(node, ast.Starred):
            self.eval(node.value, env)
            return ANY
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            inner = dict(env)
            for gen in node.generators:
                self.eval(gen.iter, inner)
                self.widen_targets(gen.target, inner)
                for cond in gen.ifs:
                    self.eval(cond, inner)
            for part in ("elt", "key", "value"):
                sub = getattr(node, part, None)
                if sub is not None:
                    self.eval(sub, inner)
            return ANY
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self.eval(v.value, env)
            return scalar("str")
        if isinstance(node, ast.Lambda):
            return ANY
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.eval(child, env)
        return ANY

    def _bcast_conflict(self, node, conflict: str | None) -> None:
        if conflict and self.spec is not None:
            self.report(
                node.lineno,
                f"broadcast can never succeed: axis sizes {conflict}",
            )

    def eval_attribute(self, node: ast.Attribute, env: dict) -> AVal:
        dotted = dotted_name(node)
        if dotted is not None:
            resolved = self.resolver.resolve(dotted)
            if resolved is not None:
                kind, payload = resolved
                if kind == "numpy":
                    if payload in ("pi", "e", "euler_gamma", "inf", "nan"):
                        return scalar("float")
                    if payload == "newaxis":
                        return scalar("none")
                    return ANY
                if kind == "dtype":
                    return ANY
                return ANY
        base = self.eval(node.value, env)
        if base.kind == "array":
            if node.attr == "T" and base.dims is not None:
                return arr(tuple(reversed(base.dims)), base.dtype)
            if node.attr == "shape":
                return AVal("shape", dims=base.dims)
            if node.attr == "size" and base.dims is not None and len(
                base.dims
            ) == 1:
                return int_scalar(base.dims[0])
            if node.attr in ("size", "ndim", "itemsize", "nbytes"):
                return int_scalar()
            if node.attr in ("real", "imag"):
                return base
        return ANY

    def eval_subscript(self, node: ast.Subscript, env: dict) -> AVal:
        base = self.eval(node.value, env)
        index = node.slice
        if base.kind == "shape":
            idx = self._const_int(index, env)
            if idx is not None and base.dims is not None:
                if -len(base.dims) <= idx < len(base.dims):
                    return int_scalar(base.dims[idx])
                return int_scalar()
            if base.dims is not None and isinstance(index, ast.Slice):
                dims = self._slice_dims(base.dims, index, env)
                if dims is not None:
                    return AVal("shape", dims=dims)
            return int_scalar() if idx is not None else ANY
        if base.kind == "tuple":
            idx = self._const_int(index, env)
            if idx is not None and -len(base.elems) <= idx < len(base.elems):
                return base.elems[idx]
            self.eval(index, env)
            return ANY
        if base.kind != "array":
            self.eval(index, env)
            return ANY
        if base.dims is None:
            self.eval(index, env)
            return arr(None, base.dtype)
        items = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        dims: list[DimSpec] | None = []
        axis = 0
        advanced = 0
        for item in items:
            if isinstance(item, ast.Slice):
                for bound in (item.lower, item.upper, item.step):
                    if bound is not None:
                        self.eval(bound, env)
                full = (
                    item.lower is None
                    and item.upper is None
                    and item.step is None
                )
                if axis < len(base.dims):
                    dims.append(base.dims[axis] if full else ANY_DIM)
                axis += 1
                continue
            if isinstance(item, ast.Constant) and item.value is None:
                dims.append(DimSpec("lit", value=1))
                continue
            if isinstance(item, ast.Constant) and item.value is Ellipsis:
                dims = None
                break
            aval = self.eval(item, env)
            if aval.kind == "scalar" or (
                aval.kind == "any" and self._const_int(item, env) is not None
            ):
                axis += 1  # integer index: drops the axis
                continue
            if aval.kind == "array":
                advanced += 1
                if advanced > 1:
                    dims = None
                    break
                if _kindset(aval.dtype) == {"b"}:
                    if aval.dims is not None and len(aval.dims) == len(
                        base.dims
                    ):
                        # full-rank boolean mask flattens
                        return arr((ANY_DIM,), base.dtype)
                    dims.append(ANY_DIM)
                    axis += 1
                elif aval.dims is not None:
                    dims.extend(aval.dims)
                    axis += 1
                else:
                    dims = None
                    break
                continue
            dims = None
            break
        if dims is None:
            return arr(None, base.dtype)
        dims.extend(base.dims[axis:])
        return arr(tuple(dims), base.dtype)

    def _const_int(self, node, env: dict) -> int | None:
        aval = self.eval(node, env)
        if (
            aval.kind == "scalar"
            and aval.dim is not None
            and aval.dim.kind == "lit"
        ):
            return aval.dim.value
        return None

    def _slice_dims(self, dims, node: ast.Slice, env):
        lo = 0 if node.lower is None else self._const_int(node.lower, env)
        hi = (
            len(dims) if node.upper is None
            else self._const_int(node.upper, env)
        )
        if lo is None or hi is None or node.step is not None:
            return None
        return dims[lo:hi]

    def eval_binop(self, node: ast.BinOp, env: dict) -> AVal:
        left = self.eval(node.left, env)
        right = self.eval(node.right, env)
        if isinstance(node.op, ast.MatMult):
            return self.eval_matmul(node, left, right)
        if left.kind == "array" or right.kind == "array":
            return self._array_binop(node, left, right)
        if left.kind == "scalar" and right.kind == "scalar":
            return self._scalar_binop(node, left, right)
        return ANY

    def _scalar_binop(self, node, left: AVal, right: AVal) -> AVal:
        kinds = {left.scalar_kind, right.scalar_kind}
        if "str" in kinds or "?" in kinds or "none" in kinds:
            return ANY
        if isinstance(node.op, ast.Div):
            return scalar("float")
        if kinds <= {"int", "bool"}:
            if (
                isinstance(node.op, (ast.Add, ast.Sub))
                and left.dim is not None
                and right.dim is not None
                and right.dim.kind == "lit"
            ):
                delta = (
                    right.dim.value
                    if isinstance(node.op, ast.Add)
                    else -right.dim.value
                )
                return int_scalar(shift_dim(left.dim, delta))
            return int_scalar()
        return scalar("float")

    def _array_binop(self, node, left: AVal, right: AVal) -> AVal:
        if left.kind == "array" and right.kind == "array":
            dims, conflict = broadcast_dims(left.dims, right.dims)
            self._bcast_conflict(node, conflict)
            dtype = promote(left.dtype, right.dtype)
        else:
            array = left if left.kind == "array" else right
            other = right if left.kind == "array" else left
            dims = array.dims
            if other.kind == "scalar" and other.scalar_kind in (
                "int", "float", "bool",
            ):
                dtype = promote_weak(array.dtype, other.scalar_kind)
            elif other.kind == "any":
                dims, dtype = None, "?"
            else:
                dtype = "?"
        if isinstance(node.op, ast.Div):
            dtype = floatize(dtype)
        elif isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
            pass  # bool/bool stays bool, int/int stays int: promote got it
        return arr(dims, dtype)

    def eval_matmul(self, node, left: AVal, right: AVal) -> AVal:
        if left.kind != "array" or right.kind != "array":
            return ANY
        dtype = promote(left.dtype, right.dtype)
        if left.dims is None or right.dims is None:
            return arr(None, dtype)
        la, ra = len(left.dims), len(right.dims)
        inner_l = left.dims[-1]
        inner_r = right.dims[-2] if ra >= 2 else right.dims[0]
        if rigid_conflict(inner_l, inner_r) and self.spec is not None:
            self.report(
                node.lineno,
                f"matmul inner dimensions can never match:"
                f" {inner_l} vs {inner_r}",
            )
        if la == 2 and ra == 2:
            return arr((left.dims[0], right.dims[1]), dtype)
        if la == 1 and ra == 1:
            return AVal("scalar", scalar_kind=scalar_kind_of(dtype))
        if la == 2 and ra == 1:
            return arr((left.dims[0],), dtype)
        if la == 1 and ra == 2:
            return arr((right.dims[1],), dtype)
        return arr(None, dtype)

    # -- calls -----------------------------------------------------------
    def eval_call(self, node: ast.Call, env: dict) -> AVal:
        has_star = any(isinstance(a, ast.Starred) for a in node.args)
        args = [self.eval(a, env) for a in node.args]
        kwargs = {}
        for kw in node.keywords:
            val = self.eval(kw.value, env)
            if kw.arg is not None:
                kwargs[kw.arg] = val
            else:
                has_star = True
        func = node.func
        dotted = (
            dotted_name(func)
            if isinstance(func, (ast.Name, ast.Attribute))
            else None
        )
        if dotted is not None:
            resolved = self.resolver.resolve(dotted)
            if resolved is not None:
                kind, payload = resolved
                if kind == "numpy":
                    return self.numpy_call(payload, node, args, kwargs, env)
                if kind == "contract":
                    return self.contract_call(
                        payload, node, args, kwargs, has_star
                    )
        if isinstance(func, ast.Name):
            return self._builtin_call(func.id, args)
        if isinstance(func, ast.Attribute):
            base = self.eval(func.value, env)
            if base.kind == "array":
                return self.array_method(
                    func.attr, base, node, args, kwargs, env
                )
            if base.kind == "tuple" and func.attr == "index":
                return int_scalar()
        return ANY

    def _builtin_call(self, name: str, args: list[AVal]) -> AVal:
        a0 = args[0] if args else ANY
        if name == "len":
            if a0.kind == "array" and a0.dims is not None and a0.dims:
                return int_scalar(a0.dims[0])
            if a0.kind == "tuple":
                return int_scalar(DimSpec("lit", value=len(a0.elems)))
            if a0.kind == "shape" and a0.dims is not None:
                return int_scalar(DimSpec("lit", value=len(a0.dims)))
            return int_scalar()
        if name == "int":
            if a0.kind == "scalar" and a0.dim is not None:
                return int_scalar(a0.dim)
            return int_scalar()
        if name == "float":
            return scalar("float")
        if name == "bool":
            return scalar("bool")
        if name == "str":
            return scalar("str")
        if name in ("min", "max") and args and all(
            a.kind == "scalar" and a.scalar_kind in ("int", "bool")
            for a in args
        ):
            return int_scalar()
        if name == "tuple" and a0.kind == "shape":
            return a0
        if name in ("abs", "round") and a0.kind == "scalar":
            return AVal("scalar", scalar_kind=a0.scalar_kind)
        if name == "sorted":
            return ANY
        return ANY

    # numpy ------------------------------------------------------------
    def _dtype_from_node(self, node, env: dict) -> str:
        if node is None:
            return "?"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _NP_NAME_TO_CODE.get(node.value, "?")
        dotted = (
            dotted_name(node)
            if isinstance(node, (ast.Name, ast.Attribute))
            else None
        )
        if dotted is None:
            return "?"
        resolved = self.resolver.resolve(dotted)
        if resolved is not None:
            kind, payload = resolved
            if kind == "numpy":
                return _NP_NAME_TO_CODE.get(payload, "?")
            if kind == "dtype":
                return payload
        if dotted == "float":
            return "f64"
        if dotted == "int":
            return "i64"
        if dotted == "bool":
            return "b"
        return "?"

    def _dtype_kw(self, node: ast.Call, env: dict, pos: int | None = None):
        for kw in node.keywords:
            if kw.arg == "dtype":
                return self._dtype_from_node(kw.value, env)
        if pos is not None and pos < len(node.args):
            return self._dtype_from_node(node.args[pos], env)
        return "?"

    def _shape_from(self, aval: AVal) -> tuple[DimSpec, ...] | None:
        if aval.kind == "shape":
            return aval.dims
        if aval.kind == "tuple":
            dims = []
            for e in aval.elems:
                if e.kind == "scalar" and e.dim is not None:
                    dims.append(
                        ANY_DIM
                        if e.dim.kind == "lit" and e.dim.value < 0
                        else e.dim
                    )
                else:
                    dims.append(ANY_DIM)
            return tuple(dims)
        if aval.kind == "scalar":
            return (aval.dim,) if aval.dim is not None else (ANY_DIM,)
        return None

    def _axis_kw(self, node: ast.Call, env: dict, pos: int | None = None):
        """(axis value or None-for-'no axis given', keepdims?)"""
        axis_node = None
        keepdims = False
        for kw in node.keywords:
            if kw.arg == "axis":
                axis_node = kw.value
            elif kw.arg == "keepdims":
                keepdims = not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                )
        if axis_node is None and pos is not None and pos < len(node.args):
            axis_node = node.args[pos]
        if axis_node is None:
            return None, keepdims
        return axis_node, keepdims

    def _reduce(self, a0: AVal, node, env, dtype: str, pos=1) -> AVal:
        axis_node, keepdims = self._axis_kw(node, env, pos)
        if axis_node is None:
            return AVal("scalar", scalar_kind=scalar_kind_of(dtype))
        if a0.dims is None:
            return arr(None, dtype)
        axis = self._const_int(axis_node, env)
        if axis is None or not -len(a0.dims) <= axis < len(a0.dims):
            return arr(None, dtype)
        axis %= len(a0.dims)
        if keepdims:
            dims = tuple(
                DimSpec("lit", value=1) if i == axis else d
                for i, d in enumerate(a0.dims)
            )
        else:
            dims = a0.dims[:axis] + a0.dims[axis + 1:]
        return arr(dims, dtype)

    def numpy_call(self, name: str, node, args, kwargs, env) -> AVal:
        a0 = args[0] if args else ANY
        a1 = args[1] if len(args) > 1 else ANY
        if name in ("zeros", "ones", "empty", "full"):
            dims = self._shape_from(a0)
            default = "f64" if name != "full" else "?"
            dtype = self._dtype_kw(node, env)
            return arr(dims, dtype if dtype != "?" else default)
        if name in ("zeros_like", "ones_like", "empty_like", "full_like"):
            dtype = self._dtype_kw(node, env)
            if dtype == "?":
                dtype = a0.dtype if a0.kind == "array" else "?"
            return arr(a0.dims if a0.kind == "array" else None, dtype)
        if name in ("asarray", "ascontiguousarray", "asfortranarray",
                    "array", "copy", "require"):
            dtype = self._dtype_kw(node, env)
            if a0.kind == "array":
                return arr(a0.dims, dtype if dtype != "?" else a0.dtype)
            if a0.kind == "tuple":
                return arr(
                    (DimSpec("lit", value=len(a0.elems)),), dtype
                )
            return arr(None, dtype)
        if name == "arange":
            dtype = self._dtype_kw(node, env)
            if dtype == "?":
                kinds = {
                    a.scalar_kind for a in args if a.kind == "scalar"
                }
                dtype = "i64" if kinds <= {"int", "bool"} and kinds else "?"
            if len(args) == 1 and a0.kind == "scalar" and a0.dim is not None:
                return arr((a0.dim,), dtype)
            return arr((ANY_DIM,), dtype)
        if name == "linspace":
            return arr((ANY_DIM,), "f64")
        if name in ("concatenate", "hstack"):
            if a0.kind != "tuple" or not a0.elems:
                return arr(None, "?")
            parts = [e for e in a0.elems if e.kind == "array"]
            if len(parts) != len(a0.elems):
                return arr(None, "?")
            dtype = self._dtype_kw(node, env)
            if dtype == "?":
                dtype = parts[0].dtype
                for p in parts[1:]:
                    dtype = promote(dtype, p.dtype)
            ranks = {
                len(p.dims) for p in parts if p.dims is not None
            }
            if len(ranks) != 1 or any(p.dims is None for p in parts):
                return arr(None, dtype)
            rank = ranks.pop()
            axis_node, _ = self._axis_kw(node, env, 1)
            axis = 0 if axis_node is None else self._const_int(
                axis_node, env
            )
            if name == "hstack":
                axis = 0 if rank == 1 else 1
            if axis is None or not -rank <= axis < rank:
                return arr(None, dtype)
            axis %= rank
            dims = []
            for i in range(rank):
                if i == axis:
                    dims.append(ANY_DIM)
                else:
                    merged = parts[0].dims[i]
                    for p in parts[1:]:
                        merged, _ = _merge_bcast(merged, p.dims[i])
                    dims.append(merged)
            return arr(tuple(dims), dtype)
        if name in ("stack", "vstack", "column_stack", "dstack"):
            if a0.kind == "tuple" and all(
                e.kind == "array" for e in a0.elems
            ) and a0.elems:
                dtype = a0.elems[0].dtype
                for e in a0.elems[1:]:
                    dtype = promote(dtype, e.dtype)
                return arr(None, dtype)
            return arr(None, "?")
        if name == "where":
            if len(args) == 3:
                dims, conflict = broadcast_dims(
                    a1.dims if a1.kind == "array" else self._shape_from(a1),
                    args[2].dims if args[2].kind == "array" else None,
                )
                if a0.kind == "array":
                    dims, c2 = broadcast_dims(dims, a0.dims)
                    conflict = conflict or c2
                self._bcast_conflict(node, conflict)
                dtype = promote(
                    a1.dtype if a1.kind == "array" else "?",
                    args[2].dtype if args[2].kind == "array" else "?",
                )
                return arr(dims, dtype)
            return ANY
        if name in _FLOAT_UFUNCS:
            if a0.kind == "array":
                return arr(a0.dims, floatize(a0.dtype))
            return scalar("float") if a0.kind == "scalar" else ANY
        if name in _SAME_UFUNCS:
            return a0 if a0.kind == "array" else a0
        if name in _BIN_UFUNCS:
            return self._np_binary(node, a0, a1, env)
        if name in _BOOL_UFUNCS:
            if a0.kind == "array":
                return arr(a0.dims, "b")
            return scalar("bool")
        if name in _BIN_BOOL_UFUNCS:
            out = self._np_binary(node, a0, a1, env)
            if out.kind == "array":
                return arr(out.dims, "b")
            return scalar("bool")
        if name == "clip":
            if a0.kind != "array":
                return ANY
            dims, dtype = a0.dims, a0.dtype
            for bound in args[1:3]:
                if bound.kind == "array":
                    dims, conflict = broadcast_dims(dims, bound.dims)
                    self._bcast_conflict(node, conflict)
                    dtype = promote(dtype, bound.dtype)
                elif bound.kind == "scalar" and bound.scalar_kind in (
                    "int", "float",
                ):
                    dtype = promote_weak(dtype, bound.scalar_kind)
            return arr(dims, dtype)
        if name in _SUM_REDUCTIONS or name == "cumsum":
            dtype = self._dtype_kw(node, env)
            if dtype == "?":
                dtype = sum_dtype(a0.dtype) if a0.kind == "array" else "?"
            if name == "cumsum":
                return arr(
                    a0.dims if a0.kind == "array" else None, dtype
                )
            return self._reduce(a0, node, env, dtype)
        if name in _MEAN_REDUCTIONS:
            dtype = a0.dtype if a0.kind == "array" else "?"
            return self._reduce(a0, node, env, floatize(dtype))
        if name in _KEEP_REDUCTIONS:
            return self._reduce(
                a0, node, env, a0.dtype if a0.kind == "array" else "?"
            )
        if name in _ARG_REDUCTIONS:
            return self._reduce(a0, node, env, "i64")
        if name in ("any", "all"):
            return self._reduce(a0, node, env, "b")
        if name == "count_nonzero":
            return self._reduce(a0, node, env, "i64")
        if name in ("dot", "matmul", "inner"):
            return self.eval_matmul(node, a0, a1)
        if name == "linalg.norm":
            dtype = floatize(a0.dtype) if a0.kind == "array" else "f64"
            return self._reduce(a0, node, env, dtype)
        if name == "diff":
            if a0.kind == "array" and a0.dims is not None and a0.dims:
                n_node = None
                for kw in node.keywords:
                    if kw.arg == "n":
                        n_node = kw.value
                steps = (
                    1 if n_node is None
                    else (self._const_int(n_node, env) or 0)
                )
                dims = a0.dims[:-1] + (
                    shift_dim(a0.dims[-1], -steps)
                    if steps else ANY_DIM,
                )
                return arr(dims, a0.dtype)
            return arr(None, a0.dtype if a0.kind == "array" else "?")
        if name == "searchsorted":
            if a1.kind == "array":
                return arr(a1.dims, "i64")
            if a1.kind == "scalar":
                return int_scalar()
            return arr(None, "i64")
        if name == "flatnonzero":
            return arr((ANY_DIM,), "i64")
        if name == "bincount":
            dtype = "f64" if "weights" in kwargs or len(args) > 1 else "i64"
            return arr((ANY_DIM,), dtype)
        if name == "unique":
            if node.keywords:  # return_counts etc. change the arity
                return ANY
            return arr(
                (ANY_DIM,), a0.dtype if a0.kind == "array" else "?"
            )
        if name == "repeat":
            dtype = a0.dtype if a0.kind == "array" else "?"
            axis_node, _ = self._axis_kw(node, env)
            if axis_node is None:
                return arr((ANY_DIM,), dtype)
            return arr(None, dtype)
        if name == "tile":
            return arr(None, a0.dtype if a0.kind == "array" else "?")
        if name == "reshape":
            dtype = a0.dtype if a0.kind == "array" else "?"
            return arr(self._shape_from(a1), dtype)
        if name == "ravel":
            return arr(
                (ANY_DIM,), a0.dtype if a0.kind == "array" else "?"
            )
        if name == "transpose":
            if a0.kind == "array" and a0.dims is not None and len(args) == 1:
                return arr(tuple(reversed(a0.dims)), a0.dtype)
            return arr(None, a0.dtype if a0.kind == "array" else "?")
        if name == "expand_dims":
            if a0.kind == "array" and a0.dims is not None:
                axis = self._const_int(node.args[1], env) if len(
                    node.args
                ) > 1 else None
                if axis is not None and 0 <= axis <= len(a0.dims):
                    dims = (
                        a0.dims[:axis]
                        + (DimSpec("lit", value=1),)
                        + a0.dims[axis:]
                    )
                    return arr(dims, a0.dtype)
            return arr(None, a0.dtype if a0.kind == "array" else "?")
        if name in ("squeeze", "atleast_1d", "atleast_2d", "take",
                    "choose", "split", "array_split", "einsum", "outer",
                    "meshgrid", "nonzero", "unravel_index", "indices"):
            return ANY
        if name in ("sort", "flip", "roll"):
            return a0 if a0.kind == "array" else ANY
        if name == "argsort":
            return arr(
                a0.dims if a0.kind == "array" else None, "i64"
            )
        if name in ("allclose", "array_equal", "array_equiv", "isscalar"):
            return scalar("bool")
        if name in ("float16", "float32", "float64", "int8", "int16",
                    "int32", "int64", "uint8", "uint16", "uint32",
                    "uint64", "bool_", "intp", "float_", "int_"):
            code = _NP_NAME_TO_CODE[name]
            if a0.kind == "array":
                return arr(a0.dims, code)
            return AVal(
                "scalar",
                scalar_kind=scalar_kind_of(code),
                dim=a0.dim if a0.kind == "scalar" else None,
            )
        if name == "frombuffer" or name == "fromiter":
            return arr((ANY_DIM,), self._dtype_kw(node, env))
        if name == "errstate" or name.startswith("random"):
            return ANY
        return ANY

    def _np_binary(self, node, a: AVal, b: AVal, env) -> AVal:
        fake = ast.BinOp(
            left=ast.Constant(value=0),
            op=ast.Add(),
            right=ast.Constant(value=0),
        )
        fake.lineno = node.lineno
        return self._array_binop(fake, a, b) if (
            a.kind == "array" or b.kind == "array"
        ) else ANY

    def array_method(
        self, name: str, base: AVal, node, args, kwargs, env
    ) -> AVal:
        a0 = args[0] if args else ANY
        if name == "astype":
            return arr(base.dims, self._dtype_kw(node, env, pos=0))
        if name == "copy" or name == "view":
            return base if name == "copy" else arr(base.dims, "?")
        if name == "reshape":
            if len(args) == 1:
                return arr(self._shape_from(a0), base.dtype)
            return arr(
                self._shape_from(AVal("tuple", elems=tuple(args))),
                base.dtype,
            )
        if name in ("ravel", "flatten"):
            return arr((ANY_DIM,), base.dtype)
        if name in _SUM_REDUCTIONS:
            return self._reduce(base, node, env, sum_dtype(base.dtype),
                                pos=0)
        if name in _MEAN_REDUCTIONS:
            return self._reduce(base, node, env, floatize(base.dtype),
                                pos=0)
        if name in _KEEP_REDUCTIONS:
            return self._reduce(base, node, env, base.dtype, pos=0)
        if name in _ARG_REDUCTIONS:
            return self._reduce(base, node, env, "i64", pos=0)
        if name in ("any", "all"):
            return self._reduce(base, node, env, "b", pos=0)
        if name == "clip":
            return arr(base.dims, base.dtype)
        if name == "item":
            return AVal(
                "scalar", scalar_kind=scalar_kind_of(base.dtype)
            )
        if name in ("tolist", "tobytes", "dump"):
            return ANY
        if name in ("fill", "sort", "partition", "setflags"):
            return scalar("none")  # in-place, returns None
        if name == "transpose":
            if base.dims is not None and not args:
                return arr(tuple(reversed(base.dims)), base.dtype)
            return arr(None, base.dtype)
        if name in ("cumsum",):
            return arr(base.dims, sum_dtype(base.dtype))
        if name in ("round",):
            return base
        if name == "searchsorted":
            if a0.kind == "array":
                return arr(a0.dims, "i64")
            return int_scalar()
        if name == "take":
            return arr(None, base.dtype)
        return ANY

    # contracted call sites ---------------------------------------------
    def contract_call(
        self, info, node, args, kwargs, has_star: bool
    ) -> AVal:
        spec: ContractSpec = info.spec
        bindings: dict[str, DimSpec] = {}
        if not has_star and len(args) <= len(info.params):
            for i, (param, aspec) in enumerate(
                zip(info.params, spec.args)
            ):
                if i < len(args):
                    aval = args[i]
                elif param in kwargs:
                    aval = kwargs[param]
                else:
                    continue  # defaulted
                conflict = unify_value(aspec, aval, bindings)
                if conflict:
                    self.report(
                        node.lineno,
                        f"call to {info.display}: argument"
                        f" {param!r} {conflict} (declared '{aspec}')",
                    )
        returns = [aval_from_spec(r, bindings) for r in spec.returns]
        if len(returns) == 1:
            return returns[0]
        return AVal("tuple", elems=tuple(returns))
