"""R004 — API hygiene: ``__all__`` exists and matches the public defs.

Every importable ``repro`` module must declare ``__all__`` as a literal
list/tuple of strings, every public top-level definition (class,
function, or constant whose name has no leading underscore) must appear
in it, every entry must resolve to something the module actually
defines or imports, and entries must be unique.  ``__init__.py``
re-exports are exempt from the must-list direction (imported names are
pass-throughs) but their ``__all__`` entries must still resolve.
``__main__.py`` entry-point scripts have no importable API and are
skipped entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, rule

__all__ = ["check_api_hygiene", "module_public_names"]


def _all_assignment(tree: ast.Module) -> tuple[ast.AST | None, list[str] | None]:
    """The ``__all__`` node and its string entries (None if absent or
    not a literal string sequence)."""
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in targets
        ):
            continue
        value = node.value
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, str)
            for e in value.elts
        ):
            return node, [e.value for e in value.elts]
        return node, None
    return None, None


def module_public_names(tree: ast.Module) -> dict[str, int]:
    """Public top-level definitions → line, excluding imports."""
    out: dict[str, int] = {}
    for node in tree.body:
        names: list[str] = []
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names = [node.name]
        elif isinstance(node, ast.Assign):
            names = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names = [node.target.id]
        for name in names:
            if not name.startswith("_"):
                out.setdefault(name, node.lineno)
    return out


def _defined_names(tree: ast.Module) -> set[str]:
    """Everything a top-level ``__all__`` entry may resolve to,
    including imported names."""
    names = set(module_public_names(tree))
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for a in node.names:
                names.add(a.asname or a.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
    return names


@rule("R004", "api-hygiene", "__all__ must exist and match public defs")
def check_api_hygiene(ctx: ModuleContext) -> Iterator[Finding]:
    if ctx.path.name == "__main__.py":
        return
    node, entries = _all_assignment(ctx.tree)
    if node is None:
        yield ctx.finding(1, "R004", "module defines no __all__")
        return
    if entries is None:
        yield ctx.finding(
            node, "R004",
            "__all__ must be a literal list/tuple of strings")
        return

    seen: set[str] = set()
    for entry in entries:
        if entry in seen:
            yield ctx.finding(node, "R004",
                              f"duplicate __all__ entry '{entry}'")
        seen.add(entry)

    defined = _defined_names(ctx.tree)
    if ctx.path.name == "__init__.py":
        # a package __all__ may name sibling submodules (imported lazily
        # by ``from pkg import *``)
        for sibling in ctx.path.parent.iterdir():
            if sibling.suffix == ".py":
                defined.add(sibling.stem)
            elif (sibling / "__init__.py").is_file():
                defined.add(sibling.name)
    star_reexport = any(
        isinstance(n, ast.ImportFrom) and any(a.name == "*" for a in n.names)
        for n in ctx.tree.body
    )
    for entry in sorted(seen):
        if entry not in defined and not star_reexport:
            yield ctx.finding(
                node, "R004",
                f"__all__ entry '{entry}' is not defined in the module")

    if ctx.path.name != "__init__.py":
        for name, line in sorted(module_public_names(ctx.tree).items()):
            if name not in seen:
                yield ctx.finding(
                    line, "R004",
                    f"public name '{name}' is missing from __all__")
