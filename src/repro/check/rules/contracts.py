"""R007/R008 — shape/dtype contracts on the array hot paths.

R007 (contract-consistency) abstractly interprets every function body
in the configured contract paths (see
:mod:`repro.check.shapes.abstract`): call sites into contracted kernels
are checked by unifying the caller's abstract argument values against
the callee's declared specs, and inside functions that themselves
declare a contract the pass also verifies return statements against the
declared returns and flags broadcasts/matmuls that can never succeed.
Only *provable* conflicts are reported — unequal literal dimensions,
the same symbol at different offsets, two distinct contract symbols
forced equal, disjoint dtype kinds — so correct-but-dynamic code stays
quiet.

R008 (contract-coverage) requires public module-level kernels in those
paths — functions exported via ``__all__`` whose signature mentions
``ndarray`` — to declare a ``@contract``.  Methods and private helpers
are exempt (the runtime half still covers any that opt in).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, rule
from ..shapes.abstract import FunctionInterpreter
from ..shapes.index import (
    ContractIndex,
    ModuleResolver,
    collect_contracts,
    contract_decorator,
    module_fullname,
)
from ..shapes.spec import ContractError, parse_contract

__all__ = ["check_contract_consistency", "check_contract_coverage",
           "module_functions", "public_array_kernels"]


def module_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef]]:
    """(qualname, node) for every top-level function and method."""
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            yield node.name, node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, ast.FunctionDef):
                    yield f"{node.name}.{sub.name}", sub


def _literal_all(tree: ast.Module) -> set[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return {
                    e.value
                    for e in node.value.elts
                    if isinstance(e, ast.Constant)
                    and isinstance(e.value, str)
                }
    return set()


def _mentions_ndarray(fn: ast.FunctionDef) -> bool:
    annotations = [
        a.annotation
        for a in fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
        if a.annotation is not None
    ]
    if fn.returns is not None:
        annotations.append(fn.returns)
    for ann in annotations:
        for sub in ast.walk(ann):
            if isinstance(sub, ast.Name) and sub.id == "ndarray":
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == "ndarray":
                return True
            if isinstance(sub, ast.Constant) and isinstance(
                sub.value, str
            ) and "ndarray" in sub.value:
                return True
    return False


def public_array_kernels(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Top-level public functions whose signature mentions ``ndarray``
    and that are exported via a literal ``__all__``."""
    exported = _literal_all(tree)
    for node in tree.body:
        if (
            isinstance(node, ast.FunctionDef)
            and not node.name.startswith("_")
            and node.name in exported
            and _mentions_ndarray(node)
        ):
            yield node


def _contract_index(ctx: ModuleContext) -> ContractIndex:
    index = ctx.project.contracts
    if isinstance(index, ContractIndex):
        return index
    # standalone rule invocation (tests): index just this module
    return collect_contracts([ctx])


@rule("R007", "contract-consistency",
      "call sites and bodies must satisfy declared shape/dtype contracts")
def check_contract_consistency(ctx: ModuleContext) -> Iterator[Finding]:
    cfg = ctx.project.config
    if not cfg.path_covered(ctx.relpath, cfg.contract_paths):
        return
    index = _contract_index(ctx)
    resolver = ModuleResolver(ctx, index)
    module = module_fullname(ctx.relpath)
    seen: set[tuple[int, str]] = set()
    findings: list[Finding] = []

    for qualname, fn in module_functions(ctx.tree):
        declared = contract_decorator(fn)
        if declared is not None:
            try:
                parse_contract(declared[0])
            except ContractError as exc:
                findings.append(
                    ctx.finding(declared[1], "R007", f"bad contract: {exc}")
                )
                continue
        info = index.lookup(module, qualname)

        def report(lineno: int, message: str, _q=qualname) -> None:
            key = (lineno, message)
            if key not in seen:
                seen.add(key)
                findings.append(
                    ctx.finding(lineno, "R007", f"in {_q}: {message}")
                )

        interp = FunctionInterpreter(
            resolver,
            report,
            contract_spec=info.spec if info is not None else None,
            params=list(info.params) if info is not None else None,
        )
        interp.run(fn)
    yield from findings


@rule("R008", "contract-coverage",
      "public array kernels in contract paths must declare a contract")
def check_contract_coverage(ctx: ModuleContext) -> Iterator[Finding]:
    cfg = ctx.project.config
    if not cfg.path_covered(ctx.relpath, cfg.contract_paths):
        return
    for fn in public_array_kernels(ctx.tree):
        if contract_decorator(fn) is None:
            yield ctx.finding(
                fn, "R008",
                f"public array kernel '{fn.name}' has no @contract"
                " (declare one, e.g. @contract(\"(n,f) f32 -> (n,f)"
                " f32\"), or mark '# repro: noqa R008' with a reason)",
            )
