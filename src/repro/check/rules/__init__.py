"""Repo-specific rules R001-R006.

Importing this package registers every rule in
:data:`repro.check.registry.RULES`.
"""

from __future__ import annotations

from . import api, determinism, frozen, hotpath, units, validation

__all__ = ["api", "determinism", "frozen", "hotpath", "units", "validation"]
