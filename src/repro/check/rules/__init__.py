"""Repo-specific rules R001-R008.

Importing this package registers every rule in
:data:`repro.check.registry.RULES`.
"""

from __future__ import annotations

from . import (
    api,
    contracts,
    determinism,
    frozen,
    hotpath,
    units,
    validation,
)

__all__ = ["api", "contracts", "determinism", "frozen", "hotpath", "units",
           "validation"]
