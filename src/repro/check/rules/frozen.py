"""R002 — frozen-model mutation: no writes to frozen dataclass instances.

``Task``, ``MACArray``, ``TaGNNConfig``, the snapshot types, and the
other ``@dataclass(frozen=True)`` records are immutable by contract —
the simulators may share them freely only because nothing mutates them.
This rule flags

* ``object.__setattr__(...)`` anywhere except a frozen class's own
  ``__init__``/``__post_init__`` (the one sanctioned loophole), and
* attribute assignment (plain or augmented) through a name that is
  provably a frozen-dataclass instance in the enclosing scope: a
  parameter or variable annotated with a frozen class, or a variable
  assigned directly from a frozen-class constructor call.

Frozen class names are collected repo-wide in a first pass, so a module
mutating ``Task`` objects is caught even though ``Task`` is defined
elsewhere.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, dotted_name, rule

__all__ = [
    "check_frozen_mutation",
    "collect_frozen_classes",
    "is_frozen_dataclass",
]


def is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """Whether a class is decorated ``@dataclass(frozen=True)``."""
    for dec in node.decorator_list:
        if not isinstance(dec, ast.Call):
            continue
        name = dotted_name(dec.func)
        if name not in ("dataclass", "dataclasses.dataclass"):
            continue
        for kw in dec.keywords:
            if (
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return True
    return False


def collect_frozen_classes(tree: ast.Module) -> set[str]:
    """Names of frozen dataclasses defined in one module."""
    return {
        node.name
        for node in ast.walk(tree)
        if isinstance(node, ast.ClassDef) and is_frozen_dataclass(node)
    }


def _annotation_name(node: ast.AST | None) -> str | None:
    """The class name of a simple annotation (``Task`` or ``x.Task``);
    unwraps ``Optional``-style ``X | None`` unions."""
    if node is None:
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_name(node.left)
        right = _annotation_name(node.right)
        return left or right
    if isinstance(node, ast.Constant) and node.value is None:
        return None
    name = dotted_name(node)
    return name.split(".")[-1] if name else None


def _frozen_locals(fn: ast.AST, frozen: frozenset[str]) -> dict[str, str]:
    """Map of local names provably bound to frozen-class instances."""
    out: dict[str, str] = {}
    args = getattr(fn, "args", None)
    if args is not None:
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        ):
            cls = _annotation_name(a.annotation)
            if cls in frozen:
                out[a.arg] = cls
    for node in ast.walk(fn):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            cls = _annotation_name(node.annotation)
            if cls in frozen:
                out[node.target.id] = cls
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            callee = dotted_name(node.value.func)
            cls = callee.split(".")[-1] if callee else None
            if cls in frozen:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out[t.id] = cls
    return out


@rule("R002", "frozen-model-mutation",
      "flag mutation of frozen dataclass instances")
def check_frozen_mutation(ctx: ModuleContext) -> Iterator[Finding]:
    frozen = ctx.project.frozen_classes
    if not frozen:
        return

    # map every function node to (enclosing class, method name) so the
    # object.__setattr__ loophole can be scoped precisely
    enclosing: dict[ast.AST, tuple[ast.ClassDef, str]] = {}
    for cls_node in ast.walk(ctx.tree):
        if isinstance(cls_node, ast.ClassDef):
            for item in cls_node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    enclosing[item] = (cls_node, item.name)

    functions = [
        n for n in ast.walk(ctx.tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]

    # module-level object.__setattr__ (outside any function)
    in_function: set[ast.AST] = set()
    for fn in functions:
        in_function.update(ast.walk(fn))
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Call)
            and node not in in_function
            and dotted_name(node.func) == "object.__setattr__"
        ):
            yield ctx.finding(
                node, "R002",
                "object.__setattr__ outside a frozen dataclass's"
                " __init__/__post_init__")

    for fn in functions:
        cls_node, method = enclosing.get(fn, (None, fn.name))
        in_frozen_init = (
            cls_node is not None
            and is_frozen_dataclass(cls_node)
            and method in ("__init__", "__post_init__")
        )
        local_frozen = _frozen_locals(fn, frozen)
        if cls_node is not None and is_frozen_dataclass(cls_node):
            local_frozen.setdefault("self", cls_node.name)

        for node in ast.walk(fn):
            if node is not fn and node in enclosing:
                continue  # nested methods get their own pass
            if isinstance(node, ast.Call):
                if dotted_name(node.func) == "object.__setattr__" and (
                    not in_frozen_init
                ):
                    yield ctx.finding(
                        node, "R002",
                        "object.__setattr__ outside a frozen dataclass's"
                        " __init__/__post_init__")
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for t in targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id in local_frozen
                    and not (t.value.id == "self" and in_frozen_init)
                ):
                    cls = local_frozen[t.value.id]
                    yield ctx.finding(
                        t, "R002",
                        f"attribute assignment on frozen dataclass"
                        f" '{cls}' instance '{t.value.id}'")
