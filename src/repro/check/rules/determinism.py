"""R001 — determinism: no hidden entropy in the simulator core.

The cycle simulators promise "same tasks, same result" (cyclesim.py) and
every archived bench number depends on it.  Inside the configured core
directories (default: ``accel/``, ``hardware/``, ``engine/``,
``formats/``) this rule forbids

* the stdlib ``random`` module (any import),
* wall-clock reads (``time.time``/``time_ns``/``perf_counter``/
  ``monotonic`` and ``datetime.now``/``utcnow``),
* ``os.urandom`` and ``uuid.uuid4``,
* the legacy numpy global RNG (``np.random.<anything>`` except
  ``default_rng``), and
* ``np.random.default_rng()`` called without an explicit seed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, dotted_name, rule

__all__ = ["check_determinism"]

_CLOCK_SUFFIXES = (
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.now",
    "datetime.utcnow",
)
_FORBIDDEN_DOTTED = ("os.urandom", "uuid.uuid4")


def _numpy_aliases(tree: ast.Module) -> set[str]:
    aliases = {"numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name == "numpy":
                    aliases.add(a.asname or "numpy")
    return aliases


@rule("R001", "determinism",
      "forbid nondeterministic sources in the simulator core")
def check_determinism(ctx: ModuleContext) -> Iterator[Finding]:
    cfg = ctx.project.config
    if not cfg.path_covered(ctx.relpath, cfg.determinism_paths):
        return
    np_aliases = _numpy_aliases(ctx.tree)
    unseeded_rng_calls: set[ast.AST] = set()

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                if a.name.split(".")[0] == "random":
                    yield ctx.finding(
                        node, "R001",
                        "stdlib 'random' is forbidden in the simulator core"
                        " (use a seeded np.random.default_rng)")
        elif isinstance(node, ast.ImportFrom):
            mod = (node.module or "").split(".")[0]
            if mod == "random":
                yield ctx.finding(
                    node, "R001",
                    "stdlib 'random' is forbidden in the simulator core")
            elif mod == "time":
                bad = [a.name for a in node.names
                       if "time." + a.name in _CLOCK_SUFFIXES]
                for name in bad:
                    yield ctx.finding(
                        node, "R001",
                        f"wall-clock 'time.{name}' is forbidden in the"
                        " simulator core")
        elif isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            if name.split(".")[0] in np_aliases and name.endswith(
                ".random.default_rng"
            ):
                if not node.args and not node.keywords:
                    unseeded_rng_calls.add(node.func)
                    yield ctx.finding(
                        node, "R001",
                        "np.random.default_rng() without an explicit seed")

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Attribute):
            continue
        name = dotted_name(node)
        if name is None or node in unseeded_rng_calls:
            continue
        if name in _FORBIDDEN_DOTTED or any(
            name == s or name.endswith("." + s) for s in _CLOCK_SUFFIXES
        ):
            yield ctx.finding(
                node, "R001",
                f"nondeterministic '{name}' is forbidden in the simulator"
                " core")
            continue
        root, *rest = name.split(".")
        if root in np_aliases and len(rest) >= 2 and rest[0] == "random":
            if rest[1] != "default_rng":
                yield ctx.finding(
                    node, "R001",
                    f"legacy global RNG '{name}' is forbidden"
                    " (use a seeded np.random.default_rng)")
