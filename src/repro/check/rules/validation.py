"""R005 — validation coverage: hardware-model fields are range-checked.

A ``MACArray`` with zero MACs or an ``HBMModel`` with negative bandwidth
silently produces infinite or negative cycle counts; the hardware models
therefore validate their numeric fields in ``__post_init__``.  Inside the
configured paths (default: everything under ``hardware/`` plus
``accel/config.py``) every dataclass with numeric (``int``/``float``)
fields must define ``__post_init__``, and every numeric field must be
referenced by it — a field never mentioned there cannot possibly be
range-checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, dotted_name, rule

__all__ = ["check_validation_coverage"]

_NUMERIC = {"int", "float"}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if dotted_name(target) in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _numeric_fields(node: ast.ClassDef) -> dict[str, int]:
    """Annotated int/float fields → line."""
    out: dict[str, int] = {}
    for item in node.body:
        if not isinstance(item, ast.AnnAssign):
            continue
        if not isinstance(item.target, ast.Name):
            continue
        ann = item.annotation
        name = dotted_name(ann) if not isinstance(ann, ast.Constant) else None
        if name in _NUMERIC:
            out[item.target.id] = item.lineno
    return out


def _post_init(node: ast.ClassDef) -> ast.FunctionDef | None:
    for item in node.body:
        if (
            isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            and item.name == "__post_init__"
        ):
            return item
    return None


def _referenced_names(fn: ast.FunctionDef) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


@rule("R005", "validation-coverage",
      "numeric dataclass fields must be range-checked in __post_init__")
def check_validation_coverage(ctx: ModuleContext) -> Iterator[Finding]:
    cfg = ctx.project.config
    if not cfg.path_covered(ctx.relpath, cfg.validation_paths):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef) or not _is_dataclass(node):
            continue
        fields = _numeric_fields(node)
        if not fields:
            continue
        post = _post_init(node)
        if post is None:
            yield ctx.finding(
                node, "R005",
                f"dataclass '{node.name}' has numeric fields"
                f" ({', '.join(sorted(fields))}) but no __post_init__"
                " validation")
            continue
        referenced = _referenced_names(post)
        for name, line in sorted(fields.items()):
            if name not in referenced:
                yield ctx.finding(
                    line, "R005",
                    f"numeric field '{name}' of dataclass '{node.name}'"
                    " is not range-checked in __post_init__")
