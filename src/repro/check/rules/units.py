"""R003 — unit discipline: never add or compare mismatched quantities.

The whole evaluation pipeline moves five currencies around — ``cycles``,
``bytes``, ``macs``, ``joules``, ``words`` — and a single silent
``cycles + bytes`` would corrupt every figure downstream.  Quantity tags
are inferred from identifier names (``hbm_cycles`` → cycles,
``storage_bytes()`` → bytes); expressions that *add*, *subtract*, or
*order-compare* two differently-tagged operands are flagged.

Inference is deliberately conservative:

* a name tokenises on underscores; exactly one unit token tags it, two
  or more (``words_per_cycle`` — a conversion rate) tag nothing;
* multiplying a tagged quantity by an untagged scalar keeps the tag;
  multiplying two tagged quantities produces a new unit (untagged);
* dividing keeps the numerator's tag only for a literal divisor —
  dividing by any named quantity is a unit conversion and clears it;
* addition/subtraction propagates a tag only alongside literals or a
  same-tagged operand;
* a call is tagged by its callee's name (``.cycles(...)`` returns
  cycles), since that is the naming convention of the hardware models.

Deliberate cross-currency arithmetic (e.g. pricing SRAM traffic from a
MAC count) is suppressed with ``# repro: noqa R003`` on the line.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, rule

__all__ = ["check_units", "infer_tag", "tag_of_name"]

_TOKEN_TAGS = {
    "cycle": "cycles", "cycles": "cycles",
    "byte": "bytes", "bytes": "bytes",
    "mac": "macs", "macs": "macs",
    "joule": "joules", "joules": "joules",
    "word": "words", "words": "words",
}


def tag_of_name(name: str) -> str | None:
    """The quantity tag an identifier carries, if unambiguous."""
    tokens = name.lower().strip("_").split("_")
    tags = {_TOKEN_TAGS[t] for t in tokens if t in _TOKEN_TAGS}
    return tags.pop() if len(tags) == 1 else None


def infer_tag(node: ast.AST) -> str | None:
    """Conservatively infer the quantity tag of an expression."""
    if isinstance(node, ast.Name):
        return tag_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return tag_of_name(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute):
            return tag_of_name(func.attr)
        if isinstance(func, ast.Name):
            return tag_of_name(func.id)
        return None
    if isinstance(node, ast.UnaryOp):
        return infer_tag(node.operand)
    if isinstance(node, ast.BinOp):
        left, right = infer_tag(node.left), infer_tag(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left == right:
                return left
            if left is None and isinstance(node.left, ast.Constant):
                return right
            if right is None and isinstance(node.right, ast.Constant):
                return left
            return None
        if isinstance(node.op, ast.Mult):
            if left is not None and right is None:
                return left
            if right is not None and left is None:
                return right
            return None  # tagged x tagged is a new (compound) unit
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is not None and isinstance(node.right, ast.Constant):
                return left
            return None
        return None
    return None


def _mismatch(a: str | None, b: str | None) -> bool:
    return a is not None and b is not None and a != b


@rule("R003", "unit-discipline",
      "flag addition/comparison of mismatched quantity tags")
def check_units(ctx: ModuleContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left, right = infer_tag(node.left), infer_tag(node.right)
            if _mismatch(left, right):
                op = "+" if isinstance(node.op, ast.Add) else "-"
                yield ctx.finding(
                    node, "R003",
                    f"mixing '{left}' and '{right}' in a '{op}' expression")
        elif isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Sub)
        ):
            left, right = infer_tag(node.target), infer_tag(node.value)
            if _mismatch(left, right):
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                yield ctx.finding(
                    node, "R003",
                    f"mixing '{left}' and '{right}' in a '{op}' statement")
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            interesting = [
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq,
                                ast.NotEq))
                for op in node.ops
            ]
            for i, keep in enumerate(interesting):
                if not keep:
                    continue
                left, right = (
                    infer_tag(operands[i]), infer_tag(operands[i + 1])
                )
                if _mismatch(left, right):
                    yield ctx.finding(
                        node, "R003",
                        f"comparing '{left}' against '{right}'")
