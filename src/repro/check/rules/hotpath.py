"""R006 — hot-path loops: vectorised kernels stay vectorised.

The perf work that batched ``apply_events`` and the format kernels is
easy to erode: one innocent ``for v in vertices.tolist():`` in a review
re-introduces the per-element Python costs the vectorisation removed,
and nothing fails — the result is still correct, just 10-100x slower.

Inside the configured hot paths (default: ``formats/``,
``graphs/updates.py``, ``engine/``, ``skipping/``) this rule flags
``for``/``while`` *statements* that iterate over per-element graph data:

* a ``for`` whose target or iterable mentions a hot noun (``vertices``,
  ``edges``, ``events``, ``neighbors``, ``sources``, ``targets``,
  ``keys``, ``entries``, ...), or whose iterable calls ``.tolist()``
  (the canonical array-to-Python-loop escape hatch);
* a ``while`` whose test mentions a hot noun.

Comprehensions and generator expressions are not flagged — they are the
idiomatic way to build small per-run lists — and loops over layers,
snapshots, or windows (bounded, coarse-grained) carry no hot noun, so
they pass untouched.  Deliberate scalar paths (reference
implementations kept for exact error semantics, amortised-shift PMA
internals) carry ``# repro: noqa R006`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from ..registry import ModuleContext, rule

__all__ = ["check_hot_path_loops", "HOT_NOUNS"]

#: Identifiers that name per-element graph data.  A loop statement whose
#: header touches one of these walks O(vertices) or O(edges) items in
#: Python — exactly what the vectorised kernels exist to avoid.
HOT_NOUNS = frozenset({
    "vertex", "vertices",
    "edge", "edges",
    "event", "events", "ev",
    "neighbor", "neighbors", "neighbour", "neighbours",
    "source", "sources",
    "target", "targets",
    "keys", "entries",
})


def _names(node: ast.AST) -> set[str]:
    """Every identifier mentioned in ``node`` (names and attributes)."""
    out: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.arg):
            out.add(sub.arg)
    return out


def _calls_tolist(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "tolist"
        ):
            return True
    return False


@rule("R006", "hot-path-loop",
      "forbid per-element Python loops in vectorised hot paths")
def check_hot_path_loops(ctx: ModuleContext) -> Iterator[Finding]:
    cfg = ctx.project.config
    if not cfg.path_covered(ctx.relpath, cfg.hot_paths):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.For):
            header = _names(node.target) | _names(node.iter)
            hot = sorted(header & HOT_NOUNS)
            if hot:
                yield ctx.finding(
                    node, "R006",
                    f"per-element loop over {', '.join(map(repr, hot))} in"
                    " a vectorised hot path (batch with array ops or mark"
                    " '# repro: noqa R006' with a reason)")
            elif _calls_tolist(node.iter):
                yield ctx.finding(
                    node, "R006",
                    "loop over '.tolist()' in a vectorised hot path"
                    " (keep the data in arrays or mark"
                    " '# repro: noqa R006' with a reason)")
        elif isinstance(node, ast.While):
            hot = sorted(_names(node.test) & HOT_NOUNS)
            if hot:
                yield ctx.finding(
                    node, "R006",
                    f"per-element while-loop over {', '.join(map(repr, hot))}"
                    " in a vectorised hot path (batch with array ops or"
                    " mark '# repro: noqa R006' with a reason)")
