"""The audited ``# repro: noqa`` inventory, rebuilt from the tree.

``docs/static_analysis.md`` carries a hand-written table of every
suppression in ``src/`` and why it is there.  Hand-written tables rot;
:func:`collect_noqa_inventory` re-derives the ground truth (via
``tokenize``, so docstrings that merely *mention* noqa don't count) and
:func:`parse_inventory_table` reads the documented table back, letting
``tests/check/test_doc_drift.py`` assert the two agree on every commit.
"""

from __future__ import annotations

import io
import re
import tokenize
from pathlib import Path

from .runner import NOQA_PATTERN

__all__ = ["collect_noqa_inventory", "parse_inventory_table"]

#: a table row like ``| `formats/pma.py` (×3) | R006 | reason |``
_ROW_PATTERN = re.compile(
    r"^\|\s*`(?P<path>[^`]+)`\s*(?:\(×(?P<count>\d+)\))?\s*"
    r"\|\s*(?P<codes>[A-Z]\d+(?:\s*,\s*[A-Z]\d+)*)\s*\|"
)


def collect_noqa_inventory(root: Path | str) -> dict[tuple[str, str], int]:
    """``{(posix relpath, code): count}`` over every real ``# repro:
    noqa`` comment under ``root`` (bare suppressions count under the
    pseudo-code ``all``)."""
    root = Path(root)
    inventory: dict[tuple[str, str], int] = {}
    for path in sorted(root.rglob("*.py")):
        relpath = path.relative_to(root).as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                tok.string
                for tok in tokens
                if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenizeError:
            continue
        for comment in comments:
            m = NOQA_PATTERN.search(comment)
            if not m:
                continue
            codes = m.group("codes")
            names = (
                ["all"] if codes is None
                else [c.strip() for c in codes.split(",")]
            )
            for code in names:
                key = (relpath, code)
                inventory[key] = inventory.get(key, 0) + 1
    return inventory


def parse_inventory_table(markdown: str) -> dict[tuple[str, str], int]:
    """Read the suppression table out of ``docs/static_analysis.md``
    into the same ``{(relpath, code): count}`` shape."""
    inventory: dict[tuple[str, str], int] = {}
    for line in markdown.splitlines():
        m = _ROW_PATTERN.match(line.strip())
        if not m:
            continue
        count = int(m.group("count") or 1)
        for code in m.group("codes").split(","):
            key = (m.group("path").strip(), code.strip())
            inventory[key] = inventory.get(key, 0) + count
    return inventory
