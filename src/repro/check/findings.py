"""The finding record every rule emits.

A finding pins one violation to a ``file:line`` location with the rule
code that produced it — the unit the runner sorts, filters through
``# repro: noqa`` comments, and prints for CI.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    code: str
    message: str

    def format(self) -> str:
        """The canonical ``file:line code message`` output line."""
        return f"{self.path}:{self.line} {self.code} {self.message}"
