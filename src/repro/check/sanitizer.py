"""Runtime sanitizer: conservation invariants checked during execution.

The static pass proves structural properties; this half watches the
numbers while they are produced.  Enable it with the ``REPRO_SANITIZE=1``
environment variable or the :func:`sanitized` context manager, and the
instrumented hot spots — :mod:`repro.accel.cyclesim`,
:mod:`repro.hardware.memory`, :mod:`repro.formats.ocsr`, and the TaGNN
energy composition — verify, per run:

* per-unit busy cycles never exceed ``total_cycles x unit count`` and
  utilisations stay in [0, 1];
* Task-FIFO occupancy stays within the configured capacity and loader
  stalls are non-negative and bounded by the span;
* O-CSR ``sindex`` is strictly increasing, offsets are monotone and
  consistent with ``enum``/``tindex``, and every target/timestamp is in
  range;
* buffer counters and HBM requests are non-negative;
* the reported energy equals the sum of its breakdown components.

Violations raise a structured :class:`SanitizerViolation` naming the
invariant, the offending quantity, its value, and the bound it broke.
When disabled the hooks cost one truthiness test.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SanitizerViolation",
    "SanitizerStats",
    "sanitized",
    "sanitizer_enabled",
    "sanitizer_stats",
    "reset_sanitizer_stats",
    "require",
    "check_cyclesim_result",
    "check_ocsr",
    "check_buffer",
    "check_hbm_request",
    "check_energy_composition",
    "REL_TOL",
]

#: relative slack for floating-point conservation comparisons
REL_TOL = 1e-9


class SanitizerViolation(RuntimeError):
    """A conservation invariant failed, with the failing quantity."""

    def __init__(
        self,
        invariant: str,
        quantity: str,
        value,
        bound,
        where: str = "",
    ):
        self.invariant = invariant
        self.quantity = quantity
        self.value = value
        self.bound = bound
        self.where = where
        msg = (
            f"[{invariant}] {quantity}={value!r} violates bound {bound!r}"
        )
        if where:
            msg += f" in {where}"
        super().__init__(msg)

    @property
    def component(self) -> str:
        """Subsystem that raised (leading segment of ``where``)."""
        return self.where.split(".")[0] if self.where else ""

    def as_dict(self) -> dict:
        """Structured incident context (what/where/how far out of bounds)
        — the resilience supervisor logs this instead of the bare
        message string."""
        return {
            "invariant": self.invariant,
            "quantity": self.quantity,
            "value": self.value,
            "bound": self.bound,
            "where": self.where,
            "component": self.component,
        }


@dataclass
class SanitizerStats:
    """How many invariant checks ran (so tests can assert coverage)."""

    checks: int = 0
    by_invariant: dict[str, int] = field(default_factory=dict)

    def record(self, invariant: str) -> None:
        self.checks += 1
        self.by_invariant[invariant] = (
            self.by_invariant.get(invariant, 0) + 1
        )


_STATS = SanitizerStats()
_DEPTH = 0


def sanitizer_enabled() -> bool:
    """Whether conservation checks are active (env flag or context)."""
    return _DEPTH > 0 or os.environ.get("REPRO_SANITIZE", "0") not in (
        "", "0"
    )


@contextmanager
def sanitized():
    """Enable the sanitizer for the duration of the block."""
    global _DEPTH
    _DEPTH += 1
    try:
        yield _STATS
    finally:
        _DEPTH -= 1


def sanitizer_stats() -> SanitizerStats:
    return _STATS


def reset_sanitizer_stats() -> None:
    _STATS.checks = 0
    _STATS.by_invariant.clear()


def require(
    condition: bool,
    invariant: str,
    quantity: str,
    value,
    bound,
    where: str = "",
) -> None:
    """Record one check; raise :class:`SanitizerViolation` on failure."""
    _STATS.record(invariant)
    if not condition:
        raise SanitizerViolation(invariant, quantity, value, bound, where)


# ----------------------------------------------------------------------
# invariant bundles for the instrumented subsystems
# ----------------------------------------------------------------------
def check_cyclesim_result(
    result,
    *,
    n_dcu: int,
    n_aru: int,
    fifo_capacity: int,
    dcu_busy: float,
    aru_busy: float,
) -> None:
    """Conservation checks over one :class:`CycleSimResult`."""
    where = "CycleSimulator.run"
    total = result.total_cycles
    require(total >= 0.0, "cyclesim-span", "cycles", total, ">= 0", where)
    require(
        0.0 <= result.loader_stall_cycles <= total * (1 + REL_TOL),
        "cyclesim-stall", "cycles", result.loader_stall_cycles,
        f"[0, {total}]", where,
    )
    span = total * (1 + REL_TOL)
    require(
        dcu_busy <= span * n_dcu,
        "cyclesim-busy-conservation", "cycles", dcu_busy,
        f"<= total*n_dcu = {total * n_dcu}", where,
    )
    require(
        aru_busy <= span * n_aru,
        "cyclesim-busy-conservation", "cycles", aru_busy,
        f"<= total*n_aru = {total * n_aru}", where,
    )
    for name in ("dcu_utilization", "aru_utilization"):
        u = getattr(result, name)
        require(
            -REL_TOL <= u <= 1.0 + REL_TOL,
            "cyclesim-utilization", name, u, "[0, 1]", where,
        )
    require(
        0 <= result.max_fifo_occupancy <= fifo_capacity,
        "cyclesim-fifo-bound", "tasks", result.max_fifo_occupancy,
        f"[0, {fifo_capacity}]", where,
    )
    require(result.tasks >= 0, "cyclesim-task-count", "tasks",
            result.tasks, ">= 0", where)


def check_ocsr(storage) -> None:
    """Structural invariants of one :class:`OCSRStorage` instance."""
    where = "OCSRStorage"
    sindex = storage.sindex
    offsets = storage.offsets
    n = storage.selection.window.num_vertices
    k = storage.selection.num_snapshots
    require(
        bool(np.all(np.diff(sindex) > 0)) if sindex.size else True,
        "ocsr-sindex-monotone", "sindex", sindex[: 16].tolist(),
        "strictly increasing", where,
    )
    require(
        sindex.size == 0
        or (0 <= int(sindex[0]) and int(sindex[-1]) < n),
        "ocsr-sindex-range", "sindex",
        [int(sindex[0]), int(sindex[-1])] if sindex.size else [],
        f"[0, {n})", where,
    )
    require(
        offsets.size == sindex.size + 1 and int(offsets[0]) == 0,
        "ocsr-offsets-shape", "offsets", offsets.size,
        f"== len(sindex)+1 = {sindex.size + 1}, starting at 0", where,
    )
    require(
        bool(np.all(np.diff(offsets) >= 0)),
        "ocsr-offsets-monotone", "offsets", offsets[: 16].tolist(),
        "non-decreasing", where,
    )
    require(
        int(offsets[-1]) == storage.tindex.size,
        "ocsr-offsets-extent", "entries", int(offsets[-1]),
        f"== len(tindex) = {storage.tindex.size}", where,
    )
    require(
        bool(np.array_equal(np.diff(offsets), storage.enum)),
        "ocsr-enum-consistency", "enum", storage.enum[: 16].tolist(),
        "== diff(offsets)", where,
    )
    require(
        storage.tindex.size == 0
        or bool(
            (storage.tindex >= 0).all() and (storage.tindex < n).all()
        ),
        "ocsr-tindex-range", "tindex",
        [int(storage.tindex.min()), int(storage.tindex.max())]
        if storage.tindex.size
        else [],
        f"[0, {n})", where,
    )
    require(
        storage.timestamp.size == 0
        or bool(
            (storage.timestamp >= 0).all()
            and (storage.timestamp < k).all()
        ),
        "ocsr-timestamp-range", "timestamp",
        [int(storage.timestamp.min()), int(storage.timestamp.max())]
        if storage.timestamp.size
        else [],
        f"[0, {k})", where,
    )
    require(
        bool(np.all(np.diff(storage.fv_vertex) >= 0)),
        "ocsr-feature-index-monotone", "fv_vertex",
        storage.fv_vertex[: 16].tolist(), "non-decreasing", where,
    )
    require(
        storage.fv_start.size == 0
        or bool(
            (storage.fv_start >= 0).all() and (storage.fv_start < k).all()
        ),
        "ocsr-feature-version-range", "fv_start",
        [int(storage.fv_start.min()), int(storage.fv_start.max())]
        if storage.fv_start.size
        else [],
        f"[0, {k})", where,
    )


def check_buffer(buf) -> None:
    """Counter sanity of one :class:`OnChipBuffer`."""
    where = f"OnChipBuffer({buf.name})"
    for quantity in ("reads", "writes", "spill_words"):
        value = getattr(buf, quantity)
        require(value >= 0, "buffer-counters",
                "words", value, ">= 0", where)
    require(buf.capacity_bytes >= 1, "buffer-capacity", "bytes",
            buf.capacity_bytes, ">= 1", where)


def check_hbm_request(words: float, randoms: float) -> None:
    require(words >= 0, "hbm-request", "words", words, ">= 0",
            "HBMModel.cycles")
    require(randoms >= 0, "hbm-request", "randoms", randoms, ">= 0",
            "HBMModel.cycles")


def check_energy_composition(total_joules: float, parts: dict) -> None:
    """The reported energy must equal the sum of its components."""
    where = "TaGNNSimulator.simulate"
    for name, value in parts.items():
        require(value >= 0.0, "energy-composition", name, value, ">= 0",
                where)
    total_parts = sum(parts.values())
    slack = REL_TOL * max(abs(total_joules), abs(total_parts), 1e-30)
    require(
        abs(total_joules - total_parts) <= slack,
        "energy-composition", "joules", total_joules,
        f"== sum(components) = {total_parts}", where,
    )
