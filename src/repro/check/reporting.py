"""Machine-readable output for ``repro check``: JSON and SARIF 2.1.0.

The text format stays the CI gate; these renderers feed tooling — the
JSON shape is stable for scripts, and the SARIF document uploads to
GitHub code scanning (see the ``static-analysis-sarif`` job in
``.github/workflows/ci.yml``), which annotates PR diffs with findings.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from .findings import Finding
from .registry import RULES

__all__ = ["render_json", "render_sarif", "RunStatistics"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


class RunStatistics:
    """Per-rule finding counts and wall time for ``--statistics``."""

    def __init__(self) -> None:
        self.findings_by_rule: dict[str, int] = {}
        self.seconds_by_rule: dict[str, float] = {}
        self.files_scanned: int = 0
        self.total_seconds: float = 0.0

    def record_rule(self, code: str, n_findings: int, seconds: float) -> None:
        self.findings_by_rule[code] = (
            self.findings_by_rule.get(code, 0) + n_findings
        )
        self.seconds_by_rule[code] = (
            self.seconds_by_rule.get(code, 0.0) + seconds
        )

    def format(self) -> str:
        lines = [
            f"{'rule':<6} {'findings':>8} {'time':>9}",
        ]
        for code in sorted(self.seconds_by_rule):
            name = RULES[code].name if code in RULES else ""
            lines.append(
                f"{code:<6} {self.findings_by_rule.get(code, 0):>8}"
                f" {self.seconds_by_rule[code] * 1e3:>7.1f}ms  {name}"
            )
        lines.append(
            f"{self.files_scanned} file(s) scanned in"
            f" {self.total_seconds * 1e3:.1f}ms"
        )
        return "\n".join(lines)


def render_json(
    findings: Iterable[Finding], stats: RunStatistics | None = None
) -> str:
    findings = list(findings)
    doc: dict = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "code": f.code,
                "message": f.message,
            }
            for f in findings
        ],
        "count": len(findings),
    }
    if stats is not None:
        doc["statistics"] = {
            "findings_by_rule": stats.findings_by_rule,
            "seconds_by_rule": stats.seconds_by_rule,
            "files_scanned": stats.files_scanned,
            "total_seconds": stats.total_seconds,
        }
    return json.dumps(doc, indent=2, sort_keys=True)


def _sarif_rules() -> list[Mapping]:
    return [
        {
            "id": code,
            "name": RULES[code].name,
            "shortDescription": {"text": RULES[code].description},
            "defaultConfiguration": {"level": "error"},
        }
        for code in sorted(RULES)
    ]


def render_sarif(findings: Iterable[Finding]) -> str:
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": f.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(f.line, 1)},
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-check",
                        "rules": _sarif_rules(),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
