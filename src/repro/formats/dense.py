"""Dense window storage — adjacency bitmaps + a dense feature block.

The fourth point of the adaptive planner's format axis (Dynasparse's
"dense" end, PAPERS.md): each snapshot of the window stores the selected
sources' full adjacency row as an ``n``-wide bitmap, and every touched
vertex's feature row is materialised per snapshot in one rectangular
block.  Nothing is pointer-chased — a scan is a single sequential stream
of ``sources * n * K`` bits plus the feature rectangle — so on *small,
dense* affected subgraphs the format beats every sparse layout, while on
large sparse windows the ``n``-proportional footprint loses badly.  The
cost model makes that trade-off explicit and the planner only chooses
DENSE when the bitmap rectangle actually fits under the sparse formats'
byte counts.

Content-wise the format is interchangeable with CSR/O-CSR/PMA (same
``gather`` contract over the same :class:`WindowSelection`; the
equivalence property tests assert all four agree edge-for-edge), so a
planner may flip a window between formats without touching results —
bit-identity by construction.
"""

from __future__ import annotations

import numpy as np

from .base import AccessCost, MultiSnapshotStorage, WindowSelection

__all__ = ["DenseWindowStorage"]

_WORD = 4  # bytes per id/feature word, matching the sibling formats


class DenseWindowStorage(MultiSnapshotStorage):
    """Per-snapshot adjacency bitmaps over the selected sources."""

    name = "DENSE"

    def __init__(self, selection: WindowSelection):
        super().__init__(selection)
        n = selection.window.num_vertices
        K = selection.num_snapshots
        srcs = selection.sources
        #: map global vertex id -> bitmap row (selected sources only)
        self._row_of = {int(v): i for i, v in enumerate(srcs.tolist())}
        self._bitmap = np.zeros((K, len(srcs), n), dtype=bool)
        e = selection.edges()
        if e.size:
            rows = np.searchsorted(srcs, e[:, 0])
            self._bitmap[e[:, 2], rows, e[:, 1]] = True
        #: vertices whose features the window touches (sources + targets)
        self._touched = np.unique(np.concatenate([srcs, e[:, 1]])) if e.size else srcs

    # ------------------------------------------------------------------
    def gather(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        row = self._row_of.get(int(source))
        if row is None:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        ts, tgt = np.nonzero(self._bitmap[:, row, :])
        return tgt.astype(np.int64), ts.astype(np.int64)

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bitmaps are charged at one *bit* per cell (hardware layout);
        features one dense row per touched vertex per snapshot."""
        K, s, n = self._bitmap.shape
        structure = (K * s * n + 7) // 8
        features = K * len(self._touched) * self.selection.window.dim * _WORD
        return structure + features

    def scan_cost(self) -> AccessCost:
        """One random access to open the block, then everything streams:
        the whole bitmap rectangle (packed 32 cells/word) plus the dense
        feature block."""
        K, s, n = self._bitmap.shape
        cost = AccessCost()
        cost.add(randoms=1, words=(K * s * n + 31) // 32)
        cost.add(
            randoms=1,
            words=K * len(self._touched) * self.selection.window.dim,
        )
        return cost
