"""Per-snapshot CSR — the conventional baseline format (TaGNN-CSR).

This is how prior systems (RACE, DiGraph, and the paper's software
baselines) store a window: one independent CSR per snapshot, with every
touched vertex's feature vector duplicated into every snapshot.  Gathering
one source's neighbourhood across a K-snapshot window therefore costs K
row lookups (K random accesses) and K separate feature reads — exactly the
redundancy O-CSR removes (paper Section 3.1 and Fig. 13(b)).
"""

from __future__ import annotations

import numpy as np

from ..check.shapes import contract
from ..graphs.snapshot import build_csr
from .base import AccessCost, MultiSnapshotStorage, WindowSelection

__all__ = ["SnapshotCSRStorage"]

_WORD = 4  # bytes per id/feature word; all formats use the same word size


class SnapshotCSRStorage(MultiSnapshotStorage):
    """One CSR per snapshot, features duplicated per snapshot."""

    name = "CSR"

    def __init__(self, selection: WindowSelection):
        super().__init__(selection)
        e = selection.edges()
        n = selection.window.num_vertices
        self._per_snapshot: list[tuple[np.ndarray, np.ndarray]] = []
        self._touched_per_snapshot: list[np.ndarray] = []
        for k in range(selection.num_snapshots):
            mask = e[:, 2] == k
            indptr, indices = build_csr(n, e[mask, 0], e[mask, 1])
            self._per_snapshot.append((indptr, indices))
            touched = np.unique(
                np.concatenate([e[mask, 0], e[mask, 1], selection.sources])
            )
            self._touched_per_snapshot.append(touched)

    # ------------------------------------------------------------------
    @contract("int -> (k,) i64, (k,) i64")
    def gather(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        tgts, tss = [], []
        for k, (indptr, indices) in enumerate(self._per_snapshot):
            row = indices[indptr[source] : indptr[source + 1]]
            if row.size:
                tgts.append(row.astype(np.int64))
                tss.append(np.full(row.size, k, dtype=np.int64))
        if not tgts:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(tgts), np.concatenate(tss)

    def storage_bytes(self) -> int:
        dim = self.selection.window.dim
        total = 0
        for (indptr, indices), touched in zip(
            self._per_snapshot, self._touched_per_snapshot
        ):
            total += indptr.nbytes + indices.nbytes
            total += len(touched) * dim * _WORD  # duplicated feature rows
        return total

    def scan_cost(self) -> AccessCost:
        """K row lookups per source (random) + row words + per-snapshot
        feature reads for source and targets (random per row, the rows are
        scattered in the per-snapshot feature tables)."""
        cost = AccessCost()
        dim = self.selection.window.dim
        for indptr, indices in self._per_snapshot:
            srcs = self.selection.sources
            deg = (indptr[srcs + 1] - indptr[srcs]).astype(np.int64)
            # one random access into the row + stream the row
            cost.add(randoms=len(srcs), words=int(deg.sum()))
            # source feature (random) + one random per neighbour feature
            cost.add(randoms=len(srcs) + int(deg.sum()))
            cost.add(words=(len(srcs) + int(deg.sum())) * dim)
        return cost
