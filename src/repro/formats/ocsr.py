"""O-CSR: Overlap-aware Compressed Sparse Row (the paper's format).

O-CSR stores the affected subgraph of a K-snapshot window in five arrays
(paper Fig. 4(c)):

* ``sindex`` — source vertex id of each run (plus the paper's extra entry
  holding the total vertex count);
* ``tindex`` — target ids, all K snapshots of a source stored contiguously;
* ``timestamp`` — snapshot offset of each target entry;
* ``enum`` — edges per source across the window (run lengths);
* feature table — one row per *distinct* ``(vertex, version)``: a vertex
  whose feature never changes in the window (stable/unaffected) is stored
  exactly once, an affected vertex once per change.

Gathering one source's whole cross-snapshot neighbourhood is one random
access plus a contiguous stream — versus K random row lookups for
per-snapshot CSR — and the deduplicated feature table removes the
per-snapshot feature copies.  Both effects are what Fig. 13(b) measures.

The structure also supports the dynamic maintenance the paper claims
(insert / delete edges, feature updates) via vectorised splice operations.
"""

from __future__ import annotations

import numpy as np

from ..check.sanitizer import check_ocsr, sanitizer_enabled
from .base import AccessCost, MultiSnapshotStorage, WindowSelection

__all__ = ["OCSRStorage"]

_WORD = 4


class OCSRStorage(MultiSnapshotStorage):
    """The Overlap-aware CSR of TaGNN."""

    name = "O-CSR"

    def __init__(self, selection: WindowSelection):
        super().__init__(selection)
        e = selection.edges()  # sorted by (source, timestamp, target)
        self.sindex = np.unique(e[:, 0]) if e.size else np.empty(0, dtype=np.int64)
        # run lengths (enum) and offsets
        if e.size:
            counts = np.bincount(
                np.searchsorted(self.sindex, e[:, 0]), minlength=len(self.sindex)
            )
        else:
            counts = np.zeros(0, dtype=np.int64)
        self.enum = counts.astype(np.int64)
        self.offsets = np.zeros(len(self.sindex) + 1, dtype=np.int64)
        np.cumsum(self.enum, out=self.offsets[1:])
        self.tindex = e[:, 1].copy()
        self.timestamp = e[:, 2].copy()
        self._build_feature_table()
        self._sanitize()

    def _sanitize(self) -> None:
        """Index-invariant check after construction and each mutation."""
        if sanitizer_enabled():
            check_ocsr(self)

    # ------------------------------------------------------------------
    def _build_feature_table(self) -> None:
        """Deduplicated feature rows: one per (vertex, distinct version)."""
        versions = self.selection.feature_versions()
        snaps = self.selection.window.snapshots
        fv_vertex, fv_start, rows = [], [], []
        for v in sorted(versions):
            for k in versions[v]:
                fv_vertex.append(v)
                fv_start.append(k)
                rows.append(snaps[k].features[v])
        self.fv_vertex = np.asarray(fv_vertex, dtype=np.int64)
        self.fv_start = np.asarray(fv_start, dtype=np.int64)
        dim = self.selection.window.dim
        self.feature_table = (
            np.stack(rows).astype(np.float32)
            if rows
            else np.empty((0, dim), dtype=np.float32)
        )
        # row pointer per vertex for O(log) version lookup
        self._fv_vertices, self._fv_ptr = np.unique(self.fv_vertex, return_index=True)

    # ------------------------------------------------------------------
    @property
    def num_sources(self) -> int:
        return len(self.sindex)

    @property
    def num_entries(self) -> int:
        return len(self.tindex)

    def run(self, source: int) -> slice:
        """The contiguous [start, stop) slice of ``source``'s run."""
        i = np.searchsorted(self.sindex, source)
        if i >= len(self.sindex) or self.sindex[i] != source:
            return slice(0, 0)
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    def gather(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        sl = self.run(source)
        return self.tindex[sl], self.timestamp[sl]

    def feature_row(self, vertex: int, snapshot: int) -> np.ndarray:
        """The feature version of ``vertex`` valid at ``snapshot`` —
        the latest version whose start <= snapshot."""
        i = np.searchsorted(self._fv_vertices, vertex)
        if i >= len(self._fv_vertices) or self._fv_vertices[i] != vertex:
            raise KeyError(f"vertex {vertex} not stored")
        start = self._fv_ptr[i]
        stop = (
            self._fv_ptr[i + 1] if i + 1 < len(self._fv_ptr) else len(self.fv_vertex)
        )
        starts = self.fv_start[start:stop]
        j = int(np.searchsorted(starts, snapshot, side="right")) - 1
        if j < 0:
            j = 0
        return self.feature_table[start + j]

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        structure = (
            (len(self.sindex) + 1) * _WORD  # sindex + total-count entry
            + len(self.enum) * _WORD
            + self.tindex.size * _WORD
            + self.timestamp.size  # timestamps fit in a byte (K <= 255)
        )
        features = self.feature_table.size * _WORD
        index = self.fv_vertex.size * 2 * _WORD  # (vertex, start) per row
        return structure + features + index

    def scan_cost(self) -> AccessCost:
        """One random access per run, then a contiguous stream of targets,
        timestamps, and the run's deduplicated feature rows."""
        cost = AccessCost()
        dim = self.selection.window.dim
        # structure: 1 random per source run + stream (tindex+timestamp)
        cost.add(randoms=self.num_sources, words=2 * self.num_entries)
        # features: one random into the table region per run, then the
        # deduplicated rows stream (each distinct (vertex, version) row is
        # read once per run it appears in).
        for i, s in enumerate(self.sindex.tolist()):
            sl = slice(int(self.offsets[i]), int(self.offsets[i + 1]))
            pairs = np.unique(
                self.tindex[sl] * np.int64(self.selection.num_snapshots)
                + self._version_of(self.tindex[sl], self.timestamp[sl])
            )
            n_src_versions = self._num_versions(s)
            cost.add(randoms=1, words=(len(pairs) + n_src_versions) * dim)
        return cost

    def _num_versions(self, vertex: int) -> int:
        i = np.searchsorted(self._fv_vertices, vertex)
        if i >= len(self._fv_vertices) or self._fv_vertices[i] != vertex:
            return 0
        stop = (
            self._fv_ptr[i + 1] if i + 1 < len(self._fv_ptr) else len(self.fv_vertex)
        )
        return int(stop - self._fv_ptr[i])

    def _version_of(self, vertices: np.ndarray, snapshots: np.ndarray) -> np.ndarray:
        """Vectorised version index (0-based within vertex) for pairs."""
        out = np.zeros(len(vertices), dtype=np.int64)
        for j, (v, k) in enumerate(zip(vertices.tolist(), snapshots.tolist())):
            i = np.searchsorted(self._fv_vertices, v)
            if i >= len(self._fv_vertices) or self._fv_vertices[i] != v:
                continue
            start = self._fv_ptr[i]
            stop = (
                self._fv_ptr[i + 1]
                if i + 1 < len(self._fv_ptr)
                else len(self.fv_vertex)
            )
            starts = self.fv_start[start:stop]
            jj = int(np.searchsorted(starts, k, side="right")) - 1
            out[j] = max(jj, 0)
        return out

    # ------------------------------------------------------------------
    # dynamic maintenance (paper: "efficiently accommodates dynamic
    # changes, such as inserting, updating, and deleting edges and
    # vertices, by adjusting the appropriate entries")
    # ------------------------------------------------------------------
    def insert_edge(self, source: int, target: int, snapshot: int) -> None:
        """Splice one edge into the right run, keeping (source,
        timestamp, target) order.  No-op if the entry already exists."""
        if not 0 <= snapshot < self.selection.num_snapshots:
            raise ValueError("snapshot out of window")
        i = int(np.searchsorted(self.sindex, source))
        new_source = i >= len(self.sindex) or self.sindex[i] != source
        if new_source:
            self.sindex = np.insert(self.sindex, i, source)
            self.enum = np.insert(self.enum, i, 0)
            self.offsets = np.insert(self.offsets, i, self.offsets[i])
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        run_ts, run_tg = self.timestamp[lo:hi], self.tindex[lo:hi]
        key = run_ts * np.int64(self.selection.window.num_vertices) + run_tg
        k = np.int64(snapshot) * self.selection.window.num_vertices + target
        pos = int(np.searchsorted(key, k))
        if pos < len(key) and key[pos] == k:
            return  # duplicate
        self.tindex = np.insert(self.tindex, lo + pos, target)
        self.timestamp = np.insert(self.timestamp, lo + pos, snapshot)
        self.enum[i] += 1
        self.offsets[i + 1 :] += 1
        self._sanitize()

    def delete_edge(self, source: int, target: int, snapshot: int) -> bool:
        """Remove one edge entry; returns whether it existed."""
        i = int(np.searchsorted(self.sindex, source))
        if i >= len(self.sindex) or self.sindex[i] != source:
            return False
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        hit = np.flatnonzero(
            (self.tindex[lo:hi] == target) & (self.timestamp[lo:hi] == snapshot)
        )
        if hit.size == 0:
            return False
        pos = lo + int(hit[0])
        self.tindex = np.delete(self.tindex, pos)
        self.timestamp = np.delete(self.timestamp, pos)
        self.enum[i] -= 1
        self.offsets[i + 1 :] -= 1
        if self.enum[i] == 0:
            self.sindex = np.delete(self.sindex, i)
            self.enum = np.delete(self.enum, i)
            self.offsets = np.delete(self.offsets, i + 1)
        self._sanitize()
        return True

    def update_feature(self, vertex: int, snapshot: int, value: np.ndarray) -> None:
        """Record a new feature version for ``vertex`` starting at
        ``snapshot`` (overwrites an existing version at that snapshot)."""
        value = np.asarray(value, dtype=np.float32)
        if value.shape != (self.selection.window.dim,):
            raise ValueError("feature dimension mismatch")
        i = int(np.searchsorted(self._fv_vertices, vertex))
        if i < len(self._fv_vertices) and self._fv_vertices[i] == vertex:
            start = int(self._fv_ptr[i])
            stop = (
                int(self._fv_ptr[i + 1])
                if i + 1 < len(self._fv_ptr)
                else len(self.fv_vertex)
            )
            starts = self.fv_start[start:stop]
            j = int(np.searchsorted(starts, snapshot))
            if j < len(starts) and starts[j] == snapshot:
                self.feature_table[start + j] = value
                return
            pos = start + j
        else:
            pos = int(np.searchsorted(self.fv_vertex, vertex))
        self.fv_vertex = np.insert(self.fv_vertex, pos, vertex)
        self.fv_start = np.insert(self.fv_start, pos, snapshot)
        self.feature_table = np.insert(self.feature_table, pos, value, axis=0)
        self._fv_vertices, self._fv_ptr = np.unique(self.fv_vertex, return_index=True)
        self._sanitize()
