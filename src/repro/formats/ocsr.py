"""O-CSR: Overlap-aware Compressed Sparse Row (the paper's format).

O-CSR stores the affected subgraph of a K-snapshot window in five arrays
(paper Fig. 4(c)):

* ``sindex`` — source vertex id of each run (plus the paper's extra entry
  holding the total vertex count);
* ``tindex`` — target ids, all K snapshots of a source stored contiguously;
* ``timestamp`` — snapshot offset of each target entry;
* ``enum`` — edges per source across the window (run lengths);
* feature table — one row per *distinct* ``(vertex, version)``: a vertex
  whose feature never changes in the window (stable/unaffected) is stored
  exactly once, an affected vertex once per change.

Gathering one source's whole cross-snapshot neighbourhood is one random
access plus a contiguous stream — versus K random row lookups for
per-snapshot CSR — and the deduplicated feature table removes the
per-snapshot feature copies.  Both effects are what Fig. 13(b) measures.

The structure also supports the dynamic maintenance the paper claims
(insert / delete edges, feature updates) via vectorised splice operations.
"""

from __future__ import annotations

import numpy as np

from ..check.sanitizer import check_ocsr, sanitizer_enabled
from ..check.shapes import contract
from .base import AccessCost, MultiSnapshotStorage, WindowSelection

__all__ = ["OCSRStorage"]

_WORD = 4


class OCSRStorage(MultiSnapshotStorage):
    """The Overlap-aware CSR of TaGNN."""

    name = "O-CSR"

    def __init__(self, selection: WindowSelection):
        super().__init__(selection)
        e = selection.edges()  # sorted by (source, timestamp, target)
        self.sindex = np.unique(e[:, 0]) if e.size else np.empty(0, dtype=np.int64)
        # run lengths (enum) and offsets
        if e.size:
            counts = np.bincount(
                np.searchsorted(self.sindex, e[:, 0]), minlength=len(self.sindex)
            )
        else:
            counts = np.zeros(0, dtype=np.int64)
        self.enum = counts.astype(np.int64)
        self.offsets = np.zeros(len(self.sindex) + 1, dtype=np.int64)
        np.cumsum(self.enum, out=self.offsets[1:])
        self.tindex = e[:, 1].copy()
        self.timestamp = e[:, 2].copy()
        #: array (re)allocations performed by mutation kernels — the bulk
        #: splice guarantee is O(1) allocations per batch, not O(batch)
        self.mutation_allocs = 0
        self._build_feature_table()
        self._sanitize()

    def _sanitize(self) -> None:
        """Index-invariant check after construction and each mutation."""
        if sanitizer_enabled():
            check_ocsr(self)

    # ------------------------------------------------------------------
    def _build_feature_table(self) -> None:
        """Deduplicated feature rows: one per (vertex, distinct version)."""
        fv_vertex, fv_start = self.selection.feature_version_arrays()
        snaps = self.selection.window.snapshots
        self.fv_vertex = fv_vertex.astype(np.int64, copy=True)
        self.fv_start = fv_start.astype(np.int64, copy=True)
        dim = self.selection.window.dim
        table = np.empty((self.fv_vertex.size, dim), dtype=np.float32)
        for k in range(len(snaps)):
            rows = self.fv_start == k
            if rows.any():
                table[rows] = snaps[k].features[self.fv_vertex[rows]]
        self.feature_table = table
        # row pointer per vertex for O(log) version lookup
        self._fv_vertices, self._fv_ptr = np.unique(self.fv_vertex, return_index=True)

    # ------------------------------------------------------------------
    @property
    def num_sources(self) -> int:
        return len(self.sindex)

    @property
    def num_entries(self) -> int:
        return len(self.tindex)

    def run(self, source: int) -> slice:
        """The contiguous [start, stop) slice of ``source``'s run."""
        i = np.searchsorted(self.sindex, source)
        if i >= len(self.sindex) or self.sindex[i] != source:
            return slice(0, 0)
        return slice(int(self.offsets[i]), int(self.offsets[i + 1]))

    @contract("int -> (k,) i, (k,) i")
    def gather(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        sl = self.run(source)
        return self.tindex[sl], self.timestamp[sl]

    @contract("int, int -> (dim,) f")
    def feature_row(self, vertex: int, snapshot: int) -> np.ndarray:
        """The feature version of ``vertex`` valid at ``snapshot`` —
        the latest version whose start <= snapshot."""
        i = np.searchsorted(self._fv_vertices, vertex)
        if i >= len(self._fv_vertices) or self._fv_vertices[i] != vertex:
            raise KeyError(f"vertex {vertex} not stored")
        start = self._fv_ptr[i]
        stop = (
            self._fv_ptr[i + 1] if i + 1 < len(self._fv_ptr) else len(self.fv_vertex)
        )
        starts = self.fv_start[start:stop]
        j = int(np.searchsorted(starts, snapshot, side="right")) - 1
        if j < 0:
            j = 0
        return self.feature_table[start + j]

    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        structure = (
            (len(self.sindex) + 1) * _WORD  # sindex + total-count entry
            + len(self.enum) * _WORD
            + self.tindex.size * _WORD
            + self.timestamp.size  # timestamps fit in a byte (K <= 255)
        )
        features = self.feature_table.size * _WORD
        index = self.fv_vertex.size * 2 * _WORD  # (vertex, start) per row
        return structure + features + index

    def scan_cost(self) -> AccessCost:
        """One random access per run, then a contiguous stream of targets,
        timestamps, and the run's deduplicated feature rows."""
        cost = AccessCost()
        dim = self.selection.window.dim
        # structure: 1 random per source run + stream (tindex+timestamp)
        cost.add(randoms=self.num_sources, words=2 * self.num_entries)
        # features: one random into the table region per run, then the
        # deduplicated rows stream (each distinct (vertex, version) row is
        # read once per run it appears in).  Distinct (target, version)
        # pairs per run fall out of one global dedup keyed by run id.
        K = np.int64(self.selection.num_snapshots)
        n = np.int64(self.selection.window.num_vertices)
        run_id = np.repeat(
            np.arange(self.num_sources, dtype=np.int64), self.enum
        )
        pair = self.tindex * K + self._version_of(self.tindex, self.timestamp)
        uniq = np.unique(run_id * (n * K) + pair)
        pairs_per_run = np.bincount(
            uniq // (n * K), minlength=self.num_sources
        )
        words = int(((pairs_per_run + self._num_versions(self.sindex)) * dim).sum())
        cost.add(randoms=self.num_sources, words=words)
        return cost

    def _num_versions(self, vertices: np.ndarray) -> np.ndarray:
        """Stored version count per vertex (0 for vertices not stored)."""
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        if len(self._fv_vertices) == 0:
            return np.zeros(vertices.size, dtype=np.int64)
        i = np.searchsorted(self._fv_vertices, vertices)
        i_c = np.minimum(i, len(self._fv_vertices) - 1)
        has = (i < len(self._fv_vertices)) & (self._fv_vertices[i_c] == vertices)
        stops = np.append(self._fv_ptr[1:], len(self.fv_vertex))
        return np.where(has, stops[i_c] - self._fv_ptr[i_c], 0)

    def _version_of(self, vertices: np.ndarray, snapshots: np.ndarray) -> np.ndarray:
        """Vectorised version index (0-based within vertex) for pairs.

        ``fv_vertex * (K + 1) + fv_start`` is strictly increasing, so the
        latest version with start <= snapshot is one global searchsorted
        minus the vertex's block base; vertices without stored versions
        land at base - 1 and clamp to 0 like the scalar lookup did.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64)
        k1 = np.int64(self.selection.num_snapshots + 1)
        g = self.fv_vertex * k1 + self.fv_start
        pos = np.searchsorted(g, vertices * k1 + snapshots, side="right") - 1
        base = np.searchsorted(self.fv_vertex, vertices, side="left")
        return np.maximum(pos - base, 0)

    # ------------------------------------------------------------------
    # dynamic maintenance (paper: "efficiently accommodates dynamic
    # changes, such as inserting, updating, and deleting edges and
    # vertices, by adjusting the appropriate entries")
    # ------------------------------------------------------------------
    def _entry_keys(self) -> np.ndarray:
        """Strictly increasing composite key of every stored entry:
        ``source * (K * n) + timestamp * n + target`` — exactly the
        storage order (source runs, (timestamp, target) within a run)."""
        K = np.int64(self.selection.num_snapshots)
        n = np.int64(self.selection.window.num_vertices)
        src = np.repeat(self.sindex, self.enum)
        return src * (K * n) + self.timestamp * n + self.tindex

    def _rebuild_runs(self, sources: np.ndarray) -> None:
        """Recompute sindex/enum/offsets from the (sorted) per-entry
        source ids — three allocations regardless of batch size."""
        self.sindex = np.unique(sources)
        counts = (
            np.bincount(
                np.searchsorted(self.sindex, sources),
                minlength=len(self.sindex),
            )
            if sources.size
            else np.zeros(0, dtype=np.int64)
        )
        self.enum = counts.astype(np.int64)
        self.offsets = np.zeros(len(self.sindex) + 1, dtype=np.int64)
        np.cumsum(self.enum, out=self.offsets[1:])
        self.mutation_allocs += 3

    def insert_edges(self, edges: np.ndarray) -> None:
        """Bulk splice ``(source, target, snapshot)`` rows into the right
        runs in one pass — a single reallocation per array per batch,
        however many edges arrive.  Duplicates (already stored or repeated
        in the batch) are no-ops, like :meth:`insert_edge`."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
        if edges.shape[0] == 0:
            return
        K = np.int64(self.selection.num_snapshots)
        n = np.int64(self.selection.window.num_vertices)
        ts = edges[:, 2]
        if int(ts.min()) < 0 or int(ts.max()) >= K:
            raise ValueError("snapshot out of window")
        new = np.unique(edges[:, 0] * (K * n) + ts * n + edges[:, 1])
        cur = self._entry_keys()
        pos = np.searchsorted(cur, new)
        if cur.size:
            dup = (pos < cur.size) & (cur[np.minimum(pos, cur.size - 1)] == new)
            new, pos = new[~dup], pos[~dup]
        if new.size == 0:
            return  # pure duplicates: no-op, like the scalar path
        rem = new % (K * n)
        self.tindex = np.insert(self.tindex, pos, rem % n)
        self.timestamp = np.insert(self.timestamp, pos, rem // n)
        self.mutation_allocs += 2
        merged_src = np.insert(np.repeat(self.sindex, self.enum), pos, new // (K * n))
        self._rebuild_runs(merged_src)
        self._sanitize()

    def insert_edge(self, source: int, target: int, snapshot: int) -> None:
        """Splice one edge into the right run, keeping (source,
        timestamp, target) order.  No-op if the entry already exists."""
        self.insert_edges(np.array([[source, target, snapshot]], dtype=np.int64))

    def delete_edges(self, edges: np.ndarray) -> int:
        """Bulk remove ``(source, target, snapshot)`` rows; returns how
        many existed.  Single compaction pass per batch."""
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 3)
        if edges.shape[0] == 0:
            return 0
        K = np.int64(self.selection.num_snapshots)
        n = np.int64(self.selection.window.num_vertices)
        req = np.unique(edges[:, 0] * (K * n) + edges[:, 2] * n + edges[:, 1])
        cur = self._entry_keys()
        if cur.size == 0:
            return 0
        pos = np.searchsorted(cur, req)
        hit = (pos < cur.size) & (cur[np.minimum(pos, cur.size - 1)] == req)
        if not bool(hit.any()):
            return 0
        keep = np.ones(cur.size, dtype=bool)
        keep[pos[hit]] = False
        kept_src = np.repeat(self.sindex, self.enum)[keep]
        self.tindex = self.tindex[keep]
        self.timestamp = self.timestamp[keep]
        self.mutation_allocs += 2
        self._rebuild_runs(kept_src)
        self._sanitize()
        return int(hit.sum())

    def delete_edge(self, source: int, target: int, snapshot: int) -> bool:
        """Remove one edge entry; returns whether it existed."""
        return (
            self.delete_edges(
                np.array([[source, target, snapshot]], dtype=np.int64)
            )
            == 1
        )

    def update_features(
        self,
        vertices: np.ndarray,
        snapshots: np.ndarray,
        values: np.ndarray,
    ) -> None:
        """Bulk feature-version upsert: overwrite existing ``(vertex,
        snapshot)`` versions in place, splice the rest in one pass.  A
        ``(vertex, snapshot)`` repeated within the batch resolves to its
        last value, matching sequential application."""
        vertices = np.atleast_1d(np.asarray(vertices, dtype=np.int64))
        snapshots = np.atleast_1d(np.asarray(snapshots, dtype=np.int64))
        values = np.asarray(values, dtype=np.float32)
        if values.shape != (vertices.size, self.selection.window.dim):
            raise ValueError("feature dimension mismatch")
        if vertices.size == 0:
            return
        k1 = np.int64(self.selection.num_snapshots + 1)
        key = vertices * k1 + snapshots
        order = np.argsort(key, kind="stable")
        skey = key[order]
        last = np.empty(skey.size, dtype=bool)
        last[-1] = True
        np.not_equal(skey[1:], skey[:-1], out=last[:-1])
        sel = order[last]  # unique keys ascending, last occurrence wins
        v_u, k_u, val_u = vertices[sel], snapshots[sel], values[sel]
        g = self.fv_vertex * k1 + self.fv_start
        pos = np.searchsorted(g, v_u * k1 + k_u)
        if g.size:
            exists = (pos < g.size) & (g[np.minimum(pos, g.size - 1)] == v_u * k1 + k_u)
        else:
            exists = np.zeros(v_u.size, dtype=bool)
        if bool(exists.any()):
            self.feature_table[pos[exists]] = val_u[exists]
        miss = ~exists
        if not bool(miss.any()):
            return  # pure overwrites: no index rebuild, like the scalar path
        ip = pos[miss]
        self.fv_vertex = np.insert(self.fv_vertex, ip, v_u[miss])
        self.fv_start = np.insert(self.fv_start, ip, k_u[miss])
        self.feature_table = np.insert(self.feature_table, ip, val_u[miss], axis=0)
        self.mutation_allocs += 3
        self._fv_vertices, self._fv_ptr = np.unique(self.fv_vertex, return_index=True)
        self._sanitize()

    def update_feature(self, vertex: int, snapshot: int, value: np.ndarray) -> None:
        """Record a new feature version for ``vertex`` starting at
        ``snapshot`` (overwrites an existing version at that snapshot)."""
        value = np.asarray(value, dtype=np.float32)
        if value.shape != (self.selection.window.dim,):
            raise ValueError("feature dimension mismatch")
        self.update_features(
            np.array([vertex], dtype=np.int64),
            np.array([snapshot], dtype=np.int64),
            value[None, :],
        )
