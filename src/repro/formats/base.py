"""Shared machinery for multi-snapshot storage formats.

The three formats compared in the paper's Fig. 13(b) — per-snapshot CSR,
PMA, and TaGNN's O-CSR — all store the same logical object: the edges and
features of a vertex subset (usually the affected subgraph) across a
window of snapshots.  This module defines that logical object
(:class:`WindowSelection`), the abstract format interface
(:class:`MultiSnapshotStorage`), and the access-cost model used to compare
formats on equal terms.

Access-cost model
-----------------
Off-chip reads are charged in two currencies, following the paper's
motivation (Section 2.2, "irregular memory access"):

* ``random_accesses`` — pointer-chasing reads that each pay full DRAM
  latency (row activation); and
* ``sequential_words`` — words streamed after a random access at full
  bandwidth.

``access_cycles(...)`` converts the two into cycles with the standard
latency/bandwidth split; the hardware simulator reuses the same constants
so format-level and accelerator-level numbers are commensurable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..graphs.dynamic import DynamicGraph

__all__ = [
    "AccessCost",
    "WindowSelection",
    "MultiSnapshotStorage",
    "RANDOM_ACCESS_CYCLES",
    "WORDS_PER_CYCLE",
]

#: Cycles charged per random (row-miss) DRAM access.  HBM2 tRC ≈ 45 ns at
#: the paper's 225 MHz fabric clock ≈ 10 cycles.
RANDOM_ACCESS_CYCLES = 10.0

#: 4-byte words streamed per fabric cycle once a burst is open
#: (256 GB/s HBM at 225 MHz ≈ 1138 B/cycle ≈ 284 words; a single loader
#: port sees a 16-words/cycle slice).
WORDS_PER_CYCLE = 16.0


@dataclass
class AccessCost:
    """Accumulated access accounting for one traversal of a format."""

    random_accesses: int = 0
    sequential_words: int = 0

    def add(self, *, randoms: int = 0, words: int = 0) -> None:
        """Charge ``randoms`` latency-bound accesses and ``words`` streamed
        words to this counter."""
        self.random_accesses += randoms
        self.sequential_words += words

    def cycles(self) -> float:
        """Convert to cycles under the shared latency/bandwidth model."""
        return (
            self.random_accesses * RANDOM_ACCESS_CYCLES
            + self.sequential_words / WORDS_PER_CYCLE
        )

    def __add__(self, other: "AccessCost") -> "AccessCost":
        return AccessCost(
            self.random_accesses + other.random_accesses,
            self.sequential_words + other.sequential_words,
        )


@dataclass
class WindowSelection:
    """The logical content every format stores: for each selected source
    vertex, its neighbour lists in each snapshot of a window.

    Attributes
    ----------
    window:
        The snapshot window (typically 2–8 snapshots).
    sources:
        Sorted array of selected source vertex ids (the affected-subgraph
        vertices; or all vertices for whole-graph storage).
    """

    window: DynamicGraph
    sources: np.ndarray
    _edges: np.ndarray | None = field(default=None, repr=False)
    _fv: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        self.sources = np.unique(np.asarray(self.sources, dtype=np.int64))
        if self.sources.size and (
            self.sources[0] < 0 or self.sources[-1] >= self.window.num_vertices
        ):
            raise ValueError("source id out of range")

    @classmethod
    def whole_graph(cls, window: DynamicGraph) -> "WindowSelection":
        """Select every vertex (baseline formats store the full window)."""
        return cls(window, np.arange(window.num_vertices, dtype=np.int64))

    @property
    def num_snapshots(self) -> int:
        return self.window.num_snapshots

    def edges(self) -> np.ndarray:
        """All selected edges as an ``(n, 3)`` array of
        ``(source, target, timestamp)``, sorted by (source, timestamp,
        target).  Cached; this is the canonical content formats must agree
        on (property tests compare formats against it)."""
        if self._edges is None:
            chunks = []
            src_mask = np.zeros(self.window.num_vertices, dtype=bool)
            src_mask[self.sources] = True
            for k, snap in enumerate(self.window):
                src = np.repeat(
                    np.arange(snap.num_vertices, dtype=np.int64), snap.degrees
                )
                keep = src_mask[src]
                if keep.any():
                    chunks.append(
                        np.stack(
                            [
                                src[keep],
                                snap.indices[keep].astype(np.int64),
                                np.full(int(keep.sum()), k, dtype=np.int64),
                            ],
                            axis=1,
                        )
                    )
            if chunks:
                e = np.concatenate(chunks)
                order = np.lexsort((e[:, 1], e[:, 2], e[:, 0]))
                self._edges = e[order]
            else:
                self._edges = np.empty((0, 3), dtype=np.int64)
        return self._edges

    def feature_version_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``(fv_vertex, fv_start)`` arrays of distinct feature
        versions, sorted by (vertex, start snapshot).

        For each vertex appearing in the selection (as source or target),
        one row per snapshot at which its feature vector differs from the
        previous snapshot — snapshot 0 always included.  This is the
        vectorised backbone of :meth:`feature_versions`; formats consume
        it directly to build version tables without per-vertex loops.
        """
        if self._fv is None:
            e = self.edges()
            vertices = np.unique(
                np.concatenate([e[:, 0], e[:, 1], self.sources])
            )
            snaps = self.window.snapshots
            K = len(snaps)
            changed = np.ones((vertices.size, K), dtype=bool)
            for k in range(1, K):
                changed[:, k] = np.any(
                    snaps[k].features[vertices]
                    != snaps[k - 1].features[vertices],
                    axis=1,
                )
            fv_vertex = np.repeat(vertices, changed.sum(axis=1))
            fv_start = np.tile(np.arange(K, dtype=np.int64), vertices.size)[
                changed.ravel()
            ]
            self._fv = (fv_vertex, fv_start)
        return self._fv

    def feature_versions(self) -> dict[int, list[int]]:
        """For each vertex appearing in the selection (as source or
        target), the snapshot indices at which its feature vector differs
        from the previous appearance.

        ``result[v]`` lists the snapshot offsets holding *distinct*
        feature versions of ``v`` — the minimum any format must store.
        """
        fv_vertex, fv_start = self.feature_version_arrays()
        vertices, starts = np.unique(fv_vertex, return_index=True)
        splits = np.split(fv_start, starts[1:])
        return {int(v): s.tolist() for v, s in zip(vertices, splits)}


class MultiSnapshotStorage(abc.ABC):
    """Abstract multi-snapshot storage format.

    Concrete formats build from a :class:`WindowSelection` and must
    support the gather pattern the DGNN computation consumes: *"give me
    every (neighbour, timestamp) pair of source v across the window"*.
    """

    name: str = "abstract"

    def __init__(self, selection: WindowSelection):
        self.selection = selection

    # -- content ---------------------------------------------------------
    @abc.abstractmethod
    def gather(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(targets, timestamps)`` of every stored edge of
        ``source`` across the window, in (timestamp, target) order."""

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Total bytes the format occupies (structure + features +
        indexing overhead)."""

    @abc.abstractmethod
    def scan_cost(self) -> AccessCost:
        """Access cost of one full pass that gathers every source's
        neighbours and features across the window — the pattern one GNN
        layer executes."""

    # -- shared helpers ----------------------------------------------------
    def all_edges(self) -> np.ndarray:
        """Stored content as a canonical sorted ``(source, target,
        timestamp)`` array — used by equivalence tests."""
        rows = []
        for s in self.selection.sources.tolist():  # repro: noqa R006 — test-only canonicaliser, exercises scalar gather()
            tgt, ts = self.gather(s)
            for t_, k_ in zip(tgt.tolist(), ts.tolist()):  # repro: noqa R006 — test-only canonicaliser
                rows.append((s, t_, k_))
        if not rows:
            return np.empty((0, 3), dtype=np.int64)
        e = np.array(rows, dtype=np.int64)
        order = np.lexsort((e[:, 1], e[:, 2], e[:, 0]))
        return e[order]

    def compression_vs(self, other: "MultiSnapshotStorage") -> float:
        """Storage reduction of ``self`` relative to ``other`` in
        [0, 1) — the metric of the paper's Fig. 13(b) discussion."""
        a, b = self.storage_bytes(), other.storage_bytes()
        return 1.0 - a / b if b else 0.0
