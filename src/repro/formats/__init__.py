"""Multi-snapshot storage formats: per-snapshot CSR, O-CSR, and PMA.

These are the three formats the paper compares in Fig. 13(b).  All
implement :class:`~repro.formats.base.MultiSnapshotStorage` over a
:class:`~repro.formats.base.WindowSelection`, so they can be swapped
freely inside the engines and benches.
"""

from .base import (
    RANDOM_ACCESS_CYCLES,
    WORDS_PER_CYCLE,
    AccessCost,
    MultiSnapshotStorage,
    WindowSelection,
)
from .csr import SnapshotCSRStorage
from .ocsr import OCSRStorage
from .pma import PackedMemoryArray, PMAStorage

FORMATS = {
    "CSR": SnapshotCSRStorage,
    "O-CSR": OCSRStorage,
    "PMA": PMAStorage,
}

__all__ = [
    "AccessCost",
    "MultiSnapshotStorage",
    "WindowSelection",
    "RANDOM_ACCESS_CYCLES",
    "WORDS_PER_CYCLE",
    "SnapshotCSRStorage",
    "OCSRStorage",
    "PackedMemoryArray",
    "PMAStorage",
    "FORMATS",
]
