"""Multi-snapshot storage formats: CSR, O-CSR, PMA, and dense bitmaps.

CSR/O-CSR/PMA are the three formats the paper compares in Fig. 13(b);
DENSE is the planner's fourth axis point (Dynasparse's dense end — see
:mod:`repro.adaptive`).  All implement
:class:`~repro.formats.base.MultiSnapshotStorage` over a
:class:`~repro.formats.base.WindowSelection`, so they can be swapped
freely inside the engines, the planner, and the benches.
"""

from .base import (
    RANDOM_ACCESS_CYCLES,
    WORDS_PER_CYCLE,
    AccessCost,
    MultiSnapshotStorage,
    WindowSelection,
)
from .csr import SnapshotCSRStorage
from .dense import DenseWindowStorage
from .ocsr import OCSRStorage
from .pma import PackedMemoryArray, PMAStorage

FORMATS = {
    "DENSE": DenseWindowStorage,
    "CSR": SnapshotCSRStorage,
    "O-CSR": OCSRStorage,
    "PMA": PMAStorage,
}

__all__ = [
    "AccessCost",
    "MultiSnapshotStorage",
    "WindowSelection",
    "RANDOM_ACCESS_CYCLES",
    "WORDS_PER_CYCLE",
    "DenseWindowStorage",
    "SnapshotCSRStorage",
    "OCSRStorage",
    "PackedMemoryArray",
    "PMAStorage",
    "FORMATS",
]
