"""Packed Memory Array storage — the dynamic-graph baseline (TaGNN-PMA).

FPGA/GPU dynamic-graph systems (GPMA, GraSU — the paper's Fig. 13(b)
comparators) keep the edge list in a *Packed Memory Array*: a sorted array
with deliberate gaps whose density is bounded per power-of-two segment
window, so inserts/deletes cost amortised O(log² n) element moves instead
of O(n).

:class:`PackedMemoryArray` is a faithful implementation of the classic
structure (leaf segments of Θ(log n) slots, linearly interpolated density
thresholds, window rebalancing, growth/shrink at the root).  Property
tests check the invariants: keys sorted ignoring gaps, every level's
density within its thresholds after each operation, and contents equal to
a reference set.

:class:`PMAStorage` adapts it to the multi-snapshot interface: one entry
per *distinct* edge with a K-bit snapshot-presence bitmap (structure is
deduplicated, unlike per-snapshot CSR), and a feature store that
deduplicates versions but — being itself gap-padded and pointer-indexed —
pays the PMA fill-factor and indirection overhead.  That is why PMA lands
between CSR and O-CSR in both storage and scan cost, as in Fig. 13(b).
"""

from __future__ import annotations

import numpy as np

from .base import AccessCost, MultiSnapshotStorage, WindowSelection

__all__ = ["EMPTY", "PackedMemoryArray", "PMAStorage"]

_WORD = 4
EMPTY = np.int64(-1)


class PackedMemoryArray:
    """A classic PMA over int64 keys with an optional int64 payload.

    Parameters
    ----------
    capacity:
        Initial slot count (rounded up to a power of two, minimum 8).
    leaf_density:
        (min, max) density thresholds at the leaves; the root thresholds
        are fixed at (0.30, 0.75) and intermediate levels interpolate
        linearly, per the textbook construction.
    """

    ROOT_MIN, ROOT_MAX = 0.30, 0.75

    def __init__(
        self,
        capacity: int = 64,
        leaf_density: tuple[float, float] = (0.08, 0.92),
    ):
        self.leaf_min, self.leaf_max = leaf_density
        if not 0 < self.leaf_min < self.ROOT_MIN:
            raise ValueError("leaf_min must be in (0, root_min)")
        if not self.ROOT_MAX < self.leaf_max <= 1.0:
            raise ValueError("leaf_max must be in (root_max, 1]")
        cap = 8
        while cap < capacity:
            cap *= 2
        self._alloc(cap)
        self.num_items = 0
        #: total slot writes performed by rebalances (access accounting)
        self.moved_slots = 0

    # ------------------------------------------------------------------
    def _alloc(self, capacity: int) -> None:
        self.capacity = capacity
        self.keys = np.full(capacity, EMPTY, dtype=np.int64)
        self.payload = np.zeros(capacity, dtype=np.int64)
        # leaf segment size: smallest power of two >= log2(capacity)
        lg = max(1, int(np.ceil(np.log2(capacity))))
        seg = 1
        while seg < lg:
            seg *= 2
        self.segment_size = seg
        self.num_segments = capacity // seg
        self.height = max(0, int(np.log2(self.num_segments)))

    # -- density thresholds -------------------------------------------
    def thresholds(self, level: int) -> tuple[float, float]:
        """(min, max) density for a window at ``level`` (0 = leaf)."""
        if self.height == 0:
            return self.ROOT_MIN, self.ROOT_MAX
        f = level / self.height
        lo = self.leaf_min + (self.ROOT_MIN - self.leaf_min) * f
        hi = self.leaf_max + (self.ROOT_MAX - self.leaf_max) * f
        return lo, hi

    # -- queries ---------------------------------------------------------
    def __len__(self) -> int:
        return self.num_items

    def occupied(self) -> np.ndarray:
        """Boolean mask of non-empty slots."""
        return self.keys != EMPTY

    def items(self) -> tuple[np.ndarray, np.ndarray]:
        """(keys, payloads) of occupied slots in key order."""
        m = self.occupied()
        return self.keys[m], self.payload[m]

    def _slot_of(self, key: int) -> int:
        """Index of the slot holding ``key``, or -1."""
        occ = np.flatnonzero(self.occupied())
        if occ.size == 0:
            return -1
        pos = np.searchsorted(self.keys[occ], key)
        if pos < occ.size and self.keys[occ[pos]] == key:
            return int(occ[pos])
        return -1

    def __contains__(self, key: int) -> bool:
        return self._slot_of(int(key)) >= 0

    def get(self, key: int) -> int | None:
        """Payload stored under ``key``, or None."""
        s = self._slot_of(int(key))
        return int(self.payload[s]) if s >= 0 else None

    def search_cost_randoms(self) -> int:
        """Random accesses of one lookup: binary search over segments
        plus one segment scan."""
        return max(1, self.height) + 1

    # -- mutation --------------------------------------------------------
    def insert(self, key: int, payload: int = 0) -> bool:
        """Insert ``key``; returns False if already present (payload is
        then overwritten)."""
        key = int(key)
        s = self._slot_of(key)
        if s >= 0:
            self.payload[s] = payload
            return False
        if self.num_items >= int(self.capacity * self.ROOT_MAX):
            self._resize(self.capacity * 2)
        occ = np.flatnonzero(self.occupied())
        pos = int(np.searchsorted(self.keys[occ], key))
        # target slot: just after predecessor (or slot 0)
        slot = int(occ[pos - 1]) + 1 if pos > 0 else 0
        if slot < self.capacity and self.keys[slot] == EMPTY:
            self.keys[slot] = key
            self.payload[slot] = payload
        else:
            self._insert_with_shift(slot, key, payload)
        self.num_items += 1
        self._rebalance_after(slot if slot < self.capacity else self.capacity - 1)
        return True

    def bulk_load(self, keys: np.ndarray, payloads: np.ndarray | None = None) -> None:
        """Load sorted unique keys into an *empty* PMA with one even
        spread — O(n) instead of the O(n log² n) of repeated inserts.

        Capacity grows by doubling until the root density bound holds, so
        the resulting capacity (hence storage and search cost) is
        identical to what the same keys inserted one by one produce.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if self.num_items:
            raise ValueError("bulk_load requires an empty PMA")
        if keys.size and not bool(np.all(np.diff(keys) > 0)):
            raise ValueError("bulk_load keys must be strictly increasing")
        if payloads is None:
            payloads = np.zeros(keys.size, dtype=np.int64)
        payloads = np.asarray(payloads, dtype=np.int64)
        if payloads.shape != keys.shape:
            raise ValueError("payloads must match keys")
        # Sequential inserts double when the pre-insert count hits the
        # root bound, i.e. while (m - 1) >= int(cap * ROOT_MAX); match it
        # exactly so bulk and sequential loads end at the same capacity.
        cap = self.capacity
        while keys.size > int(cap * self.ROOT_MAX):  # repro: noqa R006 — O(log) capacity doubling, not per-element
            cap *= 2
        if cap != self.capacity:
            self._alloc(cap)
        if keys.size:
            positions = (
                np.arange(keys.size, dtype=np.int64) * self.capacity // keys.size
            )
            self.keys[positions] = keys
            self.payload[positions] = payloads
            self.moved_slots += int(keys.size)
        self.num_items = int(keys.size)

    def _insert_with_shift(self, slot: int, key: int, payload: int) -> None:
        """Shift the run of occupied slots right (or left) by one to open
        ``slot``, counting moved words."""
        right = slot
        while right < self.capacity and self.keys[right] != EMPTY:  # repro: noqa R006 — amortised single-insert shift scan (bulk path avoids it)
            right += 1
        if right < self.capacity:
            n = right - slot
            self.keys[slot + 1 : right + 1] = self.keys[slot:right]
            self.payload[slot + 1 : right + 1] = self.payload[slot:right]
            self.moved_slots += n
            self.keys[slot] = key
            self.payload[slot] = payload
            return
        left = slot - 1
        while left >= 0 and self.keys[left] != EMPTY:  # repro: noqa R006 — amortised single-insert shift scan (bulk path avoids it)
            left -= 1
        if left < 0:  # pragma: no cover - prevented by root-density resize
            raise RuntimeError("PMA full despite density bound")
        # slots (left, slot) hold keys < key and slot holds the successor,
        # so shift the predecessor run left by one and open slot - 1
        n = slot - left - 1
        self.keys[left : slot - 1] = self.keys[left + 1 : slot]
        self.payload[left : slot - 1] = self.payload[left + 1 : slot]
        self.moved_slots += n
        self.keys[slot - 1] = key
        self.payload[slot - 1] = payload

    def delete(self, key: int) -> bool:
        """Remove ``key``; returns whether it was present."""
        s = self._slot_of(int(key))
        if s < 0:
            return False
        self.keys[s] = EMPTY
        self.num_items -= 1
        if self.capacity > 8 and self.num_items < int(
            self.capacity * self.ROOT_MIN / 2
        ):
            self._resize(max(8, self.capacity // 2))
        else:
            self._rebalance_after(s)
        return True

    # -- rebalancing -----------------------------------------------------
    def _window_bounds(self, seg: int, level: int) -> tuple[int, int]:
        width = self.segment_size << level
        start = (seg >> level) * (1 << level) * self.segment_size
        return start, start + width

    def _rebalance_after(self, slot: int) -> None:
        """Walk up from the touched leaf until a window satisfies its
        density thresholds, then spread its items evenly."""
        seg = min(slot // self.segment_size, self.num_segments - 1)
        for level in range(self.height + 1):
            lo, hi = self._window_bounds(seg, level)
            window = self.keys[lo:hi]
            count = int((window != EMPTY).sum())
            dmin, dmax = self.thresholds(level)
            density = count / (hi - lo)
            if dmin <= density <= dmax or level == self.height:
                self._spread(lo, hi)
                return

    def _spread(self, lo: int, hi: int) -> None:
        """Evenly redistribute the occupied slots of [lo, hi)."""
        window_keys = self.keys[lo:hi]
        m = window_keys != EMPTY
        ks = window_keys[m].copy()
        ps = self.payload[lo:hi][m].copy()
        if ks.size == 0:
            return
        self.keys[lo:hi] = EMPTY
        positions = lo + (
            np.arange(ks.size, dtype=np.int64) * (hi - lo) // ks.size
        )
        self.keys[positions] = ks
        self.payload[positions] = ps
        self.moved_slots += int(ks.size)

    def _resize(self, new_capacity: int) -> None:
        ks, ps = self.items()
        self._alloc(new_capacity)
        if ks.size:
            positions = (
                np.arange(ks.size, dtype=np.int64) * new_capacity // ks.size
            )
            self.keys[positions] = ks
            self.payload[positions] = ps
            self.moved_slots += int(ks.size)

    # -- introspection for tests ----------------------------------------
    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        ks, _ = self.items()
        assert np.all(np.diff(ks) > 0), "keys not strictly sorted"
        assert len(ks) == self.num_items, "item count drifted"
        root_density = self.num_items / self.capacity
        assert root_density <= 1.0
        if self.num_items > 0 and self.capacity > 8:
            assert root_density <= self.ROOT_MAX + 1e-9, "root overfull"

    def storage_bytes(self, payload_words: int = 1) -> int:
        """Allocated bytes including gaps (that is the PMA trade-off)."""
        return self.capacity * (2 + payload_words) * _WORD  # 8B key + payload


class PMAStorage(MultiSnapshotStorage):
    """Multi-snapshot adapter: distinct edges + snapshot bitmaps in a PMA."""

    name = "PMA"

    def __init__(self, selection: WindowSelection):
        super().__init__(selection)
        if selection.num_snapshots > 62:
            raise ValueError("bitmap payload supports at most 62 snapshots")
        e = selection.edges()
        n = selection.window.num_vertices
        # one entry per distinct (source, target); payload is the bitmap
        keys = e[:, 0] * np.int64(n) + e[:, 1]
        bits = np.int64(1) << e[:, 2]
        uniq, inv = np.unique(keys, return_inverse=True)
        bitmaps = np.zeros(len(uniq), dtype=np.int64)
        np.bitwise_or.at(bitmaps, inv, bits)
        # size for a ~0.6 steady-state fill (the PMA space/update trade-off)
        self.pma = PackedMemoryArray(capacity=max(8, int(len(uniq) / 0.6)))
        self.pma.bulk_load(uniq, bitmaps)
        fv_vertex, _ = selection.feature_version_arrays()
        counts = np.unique(fv_vertex, return_counts=True)[1]
        self._num_feature_rows = int(counts.sum())
        self._num_touched_vertices = int(counts.size)
        self._num_changed_vertices = int((counts > 1).sum())

    # ------------------------------------------------------------------
    def gather(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        n = self.selection.window.num_vertices
        ks, ps = self.pma.items()
        lo = int(np.searchsorted(ks, source * np.int64(n)))
        hi = int(np.searchsorted(ks, (source + 1) * np.int64(n)))
        if hi == lo:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        # expand the bitmaps: one (target, snapshot) pair per set bit, in
        # (snapshot, target) order like the per-bit walk produced
        bits = (
            ps[lo:hi, None] >> np.arange(self.selection.num_snapshots)
        ) & np.int64(1)
        row, snap = np.nonzero(bits)
        tgts = (ks[lo:hi] % n)[row]
        tss = snap.astype(np.int64)
        order = np.lexsort((tgts, tss))
        return tgts[order], tss[order]

    def storage_bytes(self) -> int:
        dim = self.selection.window.dim
        k = self.selection.num_snapshots
        # gapped slots: 4-byte packed (src,dst) key + 4-byte snapshot
        # bitmap per slot, over the full power-of-two capacity — the PMA
        # space trade-off (GPMA-style packed keys)
        structure = self.pma.capacity * 2 * _WORD
        # feature side-table with page-granular copy-on-write: a vertex
        # whose feature never changes in the window shares one row; any
        # vertex that changed gets a full per-snapshot copy (the PMA
        # version machinery tracks changed pages, not changed values, so
        # it cannot share the unchanged snapshots of a changed vertex —
        # the sharing O-CSR's explicit versioning provides).
        static = self._num_touched_vertices - self._num_changed_vertices
        features = (static + k * self._num_changed_vertices) * dim * _WORD
        pointers = k * self._num_touched_vertices * _WORD
        index = self._num_feature_rows * 3 * _WORD
        return structure + features + pointers + index

    def scan_cost(self) -> AccessCost:
        """Per source: a segment binary search, then a gap-inflated run
        scan; features via one pointer indirection per distinct row."""
        cost = AccessCost()
        dim = self.selection.window.dim
        n = np.int64(self.selection.window.num_vertices)
        ks, _ = self.pma.items()
        fill = max(self.pma.num_items / max(self.pma.capacity, 1), 0.25)
        srcs = self.selection.sources
        run = (
            np.searchsorted(ks, (srcs + 1) * n) - np.searchsorted(ks, srcs * n)
        ).astype(np.int64)
        # key+bitmap slots incl. gaps; per-run float-to-int truncation
        # kept so totals match the per-source accumulation exactly
        cost.add(
            randoms=self.pma.search_cost_randoms() * srcs.size,
            words=int((3.0 * run / fill).astype(np.int64).sum()),
        )
        # feature rows: ~one deduplicated row per distinct target plus
        # the source's own; each is reached through a pointer
        # indirection (random) because the PMA feature store is not
        # laid out in traversal order.
        cost.add(
            randoms=int((run + 1).sum()),
            words=int(((run + 1) * dim).sum()),
        )
        return cost
