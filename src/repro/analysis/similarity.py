r"""The similarity score :math:`\theta` gating the cell-update mode.

Paper Section 3.1 defines, for vertex :math:`v` across snapshots
:math:`t` and :math:`t+1`:

.. math::

   \theta(v) \;=\;
   \frac{Z^t(v) \cdot Z^{t+1}(v)}{\lVert Z^t(v)\rVert\,\lVert Z^{t+1}(v)\rVert}
   \;\times\;
   \frac{|\mathcal N_{sv}(v)|}{|\mathcal N^t(v) \cap \mathcal N^{t+1}(v)|}

— cosine similarity of the GNN outputs, weighted by the fraction of the
common neighbours that are (feature-)stable.  The score lies in
:math:`[-1, 1]`; high means "reuse the previous RNN result" and low means
"full cell update".

Conventions for the degenerate cases (the paper leaves them implicit):

* zero-norm GNN output on either side → cosine term 0 (no evidence of
  similarity);
* no common neighbours but both neighbourhoods empty and equal → weight 1
  (an isolated vertex that stayed isolated is perfectly consistent);
* no common neighbours otherwise → weight 0 (total topological change).
"""

from __future__ import annotations

import numpy as np

from ..check.shapes import contract
from ..graphs.snapshot import CSRSnapshot

__all__ = [
    "COSINE_SHARPNESS",
    "cosine_rows",
    "neighbor_stability_weights",
    "similarity_scores",
]


@contract("(r,f) f, (r,f) f -> (r,) f64")
def cosine_rows(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise cosine similarity of two equally-shaped matrices.

    Rows with zero norm on either side score 0.
    """
    num = np.einsum("ij,ij->i", a.astype(np.float64), b.astype(np.float64))
    na = np.linalg.norm(a, axis=1)
    nb = np.linalg.norm(b, axis=1)
    denom = na * nb
    out = np.zeros(len(a), dtype=np.float64)
    np.divide(num, denom, out=out, where=denom > 0)
    return np.clip(out, -1.0, 1.0)


def _gather_rows(snap: CSRSnapshot, vertices: np.ndarray, deg: np.ndarray) -> np.ndarray:
    """Concatenated neighbour lists of ``vertices`` (each row sorted)."""
    total = int(deg.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    first = np.repeat(snap.indptr[vertices].astype(np.int64), deg)
    run_start = np.repeat(np.cumsum(deg) - deg, deg)
    idx = first + (np.arange(total, dtype=np.int64) - run_start)
    return snap.indices[idx].astype(np.int64)


@contract("_, _, (r,) i, (n,) b -> (r,) f64")
def neighbor_stability_weights(
    snap_t: CSRSnapshot,
    snap_t1: CSRSnapshot,
    vertices: np.ndarray,
    feature_stable: np.ndarray,
) -> np.ndarray:
    r"""The topological factor
    :math:`|\mathcal N_{sv}| / |\mathcal N^t \cap \mathcal N^{t+1}|`
    for each vertex in ``vertices``.

    ``feature_stable`` marks vertices whose own features are unchanged
    between the two snapshots (the paper's inclusive stable set).

    All rows are intersected at once: neighbour lists are sorted (a
    :func:`~repro.graphs.snapshot.build_csr` invariant), so tagging each
    entry with its owner's rank yields two strictly increasing composite
    keys whose common elements fall out of one ``searchsorted`` pass.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    r = vertices.size
    out = np.zeros(r, dtype=np.float64)
    if r == 0:
        return out
    deg_a = snap_t.degrees[vertices].astype(np.int64)
    deg_b = snap_t1.degrees[vertices].astype(np.int64)
    # both neighbourhoods empty and equal -> perfectly consistent
    out[(deg_a == 0) & (deg_b == 0)] = 1.0
    nb_a = _gather_rows(snap_t, vertices, deg_a)
    nb_b = _gather_rows(snap_t1, vertices, deg_b)
    if nb_a.size == 0 or nb_b.size == 0:
        return out
    n = np.int64(snap_t.num_vertices)
    owner_a = np.repeat(np.arange(r, dtype=np.int64), deg_a)
    key_a = owner_a * n + nb_a
    key_b = np.repeat(np.arange(r, dtype=np.int64), deg_b) * n + nb_b
    pos = np.searchsorted(key_b, key_a)
    pos_c = np.minimum(pos, key_b.size - 1)
    hit = (pos < key_b.size) & (key_b[pos_c] == key_a)
    owners = owner_a[hit]
    common = nb_a[hit]
    cnt = np.bincount(owners, minlength=r)
    stable = np.bincount(
        owners, weights=feature_stable[common].astype(np.float64), minlength=r
    )
    has = cnt > 0
    # integer-valued float64 sums: identical to feature_stable[common].mean()
    out[has] = stable[has] / cnt[has]
    return out


#: Calibration constant for the cosine term (see similarity_scores).
COSINE_SHARPNESS = 10.0 / 3.0


@contract("(n,f) f, (n,f) f, _, _, (r,) i, (n,) b -> (r,) f64")
def similarity_scores(
    z_t: np.ndarray,
    z_t1: np.ndarray,
    snap_t: CSRSnapshot,
    snap_t1: CSRSnapshot,
    vertices: np.ndarray,
    feature_stable: np.ndarray,
    *,
    sharpness: float = COSINE_SHARPNESS,
) -> np.ndarray:
    r"""Full :math:`\theta` for each vertex in ``vertices``.

    Parameters
    ----------
    z_t, z_t1:
        GNN-module outputs :math:`Z^t`, :math:`Z^{t+1}` over *all*
        vertices (rows indexed by global id).
    snap_t, snap_t1:
        The two snapshots (for the neighbourhood intersection).
    vertices:
        Vertex ids to score (TaGNN scores stable and affected vertices).
    feature_stable:
        Boolean per-vertex own-feature stability between the snapshots.
    sharpness:
        Calibration of the cosine term: ``cos' = 1 - sharpness*(1 - cos)``.
        Our reservoir models produce consecutive-snapshot cosines packed
        near 1 (far tighter than the trained models in the paper's
        Fig. 3(b), whose measured differences span roughly [-0.6, 0.8]).
        The affine stretch maps our distribution onto that range so that
        the paper's thresholds :math:`[\theta_s, \theta_e] = [-0.5, 0.5]`
        are also the operating point here — pass ``sharpness=1.0`` for the
        raw cosine.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    cos = cosine_rows(z_t[vertices], z_t1[vertices])
    cos = np.clip(1.0 - sharpness * (1.0 - cos), -1.0, 1.0)
    w = neighbor_stability_weights(snap_t, snap_t1, vertices, feature_stable)
    return np.clip(cos * w, -1.0, 1.0)
