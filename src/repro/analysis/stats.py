"""Temporal statistics of dynamic graphs.

These are the measurements behind the paper's motivation (Section 2.3's
"significant overlap of vertices across multiple snapshots") packaged as
reusable analysis: pairwise snapshot overlap, churn timelines, degree
evolution, and a one-call profile the CLI exposes as ``repro stats``.
"""

from __future__ import annotations

import numpy as np

from ..graphs.dynamic import DynamicGraph
from .classify import classify_window

__all__ = [
    "edge_jaccard_matrix",
    "churn_timeline",
    "degree_evolution",
    "temporal_profile",
]


def _edge_key_sets(graph: DynamicGraph) -> list[np.ndarray]:
    n = graph.num_vertices
    out = []
    for s in graph:
        src = np.repeat(np.arange(n, dtype=np.int64), s.degrees)
        out.append(src * n + s.indices.astype(np.int64))
    return out


def edge_jaccard_matrix(graph: DynamicGraph) -> np.ndarray:
    """Pairwise Jaccard similarity of snapshot edge sets — the overlap
    structure TaGNN's windowing exploits (high near the diagonal,
    decaying with temporal distance)."""
    keys = _edge_key_sets(graph)
    t = len(keys)
    out = np.ones((t, t), dtype=np.float64)
    for i in range(t):
        for j in range(i + 1, t):
            inter = len(np.intersect1d(keys[i], keys[j], assume_unique=True))
            union = len(keys[i]) + len(keys[j]) - inter
            out[i, j] = out[j, i] = inter / union if union else 1.0
    return out


def churn_timeline(graph: DynamicGraph) -> dict[str, np.ndarray]:
    """Per-step change series: edges added/removed, features changed,
    vertices arrived/departed."""
    deltas = graph.deltas()
    return {
        "edges_added": np.array([len(d.added_edges) for d in deltas]),
        "edges_removed": np.array([len(d.removed_edges) for d in deltas]),
        "features_changed": np.array([len(d.feature_changed) for d in deltas]),
        "arrived": np.array([len(d.arrived) for d in deltas]),
        "departed": np.array([len(d.departed) for d in deltas]),
    }


def degree_evolution(graph: DynamicGraph) -> dict[str, np.ndarray]:
    """Per-snapshot degree statistics (mean / p50 / p99 / max over
    present vertices)."""
    means, p50, p99, mx = [], [], [], []
    for s in graph:
        deg = s.degrees[s.present]
        if deg.size == 0:
            means.append(0.0); p50.append(0.0); p99.append(0.0); mx.append(0.0)
            continue
        means.append(float(deg.mean()))
        p50.append(float(np.percentile(deg, 50)))
        p99.append(float(np.percentile(deg, 99)))
        mx.append(float(deg.max()))
    return {
        "mean": np.array(means),
        "p50": np.array(p50),
        "p99": np.array(p99),
        "max": np.array(mx),
    }


def temporal_profile(graph: DynamicGraph, *, window: int = 4) -> dict:
    """One-call profile: the numbers that predict how well TaGNN's
    mechanisms will work on this graph."""
    jac = edge_jaccard_matrix(graph)
    t = graph.num_snapshots
    adjacent = np.array([jac[i, i + 1] for i in range(t - 1)])
    churn = churn_timeline(graph)
    ratios = {}
    for k in (2, 3, window):
        if k <= t:
            ratios[k] = classify_window(graph.window(0, k)).unaffected_ratio()
    return {
        "name": graph.name,
        "num_vertices": graph.num_vertices,
        "num_snapshots": t,
        "adjacent_edge_jaccard_mean": float(adjacent.mean()) if t > 1 else 1.0,
        "edges_changed_per_step_mean": float(
            (churn["edges_added"] + churn["edges_removed"]).mean()
        ) if t > 1 else 0.0,
        "features_changed_per_step_mean": float(
            churn["features_changed"].mean()
        ) if t > 1 else 0.0,
        "unaffected_ratio_by_window": ratios,
    }
