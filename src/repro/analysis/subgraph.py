"""Affected-subgraph extraction via DFS from stable roots.

Paper Section 3.1: stable vertices "serve as roots for a concurrent DFS
traversal" over the union topology of the window; every stable/affected
vertex reached is incorporated into the *affected subgraph*, which is the
unit TaGNN recomputes per snapshot (and stores in O-CSR).  Unaffected
vertices bound the traversal — the DFS never expands through them, which
is why the paper likens stable vertices to cut vertices.

Isolated affected components (e.g. a cluster of newly-arrived vertices
with no stable neighbour) are unreachable from any stable root; they are
added as extra roots afterwards so the subgraph is complete — correctness
requires *every* non-unaffected vertex to be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..check.shapes import contract
from ..formats.base import WindowSelection
from ..graphs.dynamic import DynamicGraph
from ..graphs.snapshot import build_csr
from .classify import VertexClass, WindowClassification, classify_window

__all__ = ["AffectedSubgraph", "extract_affected_subgraph", "union_adjacency"]


@contract("_ -> (m,) i64, (e,) i32")
def union_adjacency(window: DynamicGraph) -> tuple[np.ndarray, np.ndarray]:
    """CSR of the union of every snapshot's edges (deduplicated)."""
    n = window.num_vertices
    keys = []
    for s in window:
        src = np.repeat(np.arange(n, dtype=np.int64), s.degrees)
        keys.append(src * n + s.indices.astype(np.int64))
    merged = np.unique(np.concatenate(keys)) if keys else np.empty(0, np.int64)
    return build_csr(n, merged // n, merged % n)


@dataclass
class AffectedSubgraph:
    """The affected subgraph of one window.

    Attributes
    ----------
    vertices:
        Sorted ids of every subgraph member (stable roots + affected).
    roots:
        The stable vertices used as DFS roots.
    dfs_order:
        Vertices in discovery order — the locality-friendly layout order
        the MSDL streams into O-CSR.
    classification:
        The window classification the extraction was based on.
    """

    window: DynamicGraph
    vertices: np.ndarray
    roots: np.ndarray
    dfs_order: np.ndarray
    classification: WindowClassification

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def selection(self) -> WindowSelection:
        """The :class:`WindowSelection` storing this subgraph (feeds
        O-CSR construction)."""
        return WindowSelection(self.window, self.vertices)

    def coverage_ok(self) -> bool:
        """Every stable/affected vertex must be in the subgraph."""
        need = self.classification.recompute_vertices()
        return np.array_equal(np.intersect1d(need, self.vertices), need)

    def stats(self) -> dict:
        c = self.classification.counts()
        return {
            "subgraph_vertices": self.num_vertices,
            "roots": len(self.roots),
            **c,
            "subgraph_fraction": self.num_vertices / self.window.num_vertices,
        }


def extract_affected_subgraph(
    window: DynamicGraph,
    classification: WindowClassification | None = None,
    *,
    atol: float = 0.0,
) -> AffectedSubgraph:
    """Run the stable-rooted DFS and return the affected subgraph."""
    if classification is None:
        classification = classify_window(window, atol=atol)
    labels = classification.labels
    n = window.num_vertices
    indptr, indices = union_adjacency(window)

    expandable = labels != VertexClass.UNAFFECTED  # stable or affected
    visited = np.zeros(n, dtype=bool)
    dfs_order: list[int] = []

    roots = np.flatnonzero(labels == VertexClass.STABLE)

    def dfs(root: int) -> None:
        stack = [root]
        visited[root] = True
        while stack:
            v = stack.pop()
            dfs_order.append(v)
            row = indices[indptr[v] : indptr[v + 1]]
            # push unvisited stable/affected neighbours (reverse order so
            # traversal visits ascending ids first, matching a hardware
            # TFSM scanning the row left to right)
            for u in row[::-1].tolist():
                if expandable[u] and not visited[u]:
                    visited[u] = True
                    stack.append(u)

    for r in roots.tolist():
        if not visited[r]:
            dfs(r)
    # isolated affected components: add them as their own roots
    for v in np.flatnonzero(expandable & ~visited).tolist():
        dfs(v)

    order = np.asarray(dfs_order, dtype=np.int64)
    return AffectedSubgraph(
        window=window,
        vertices=np.sort(order) if order.size else order,
        roots=roots,
        dfs_order=order,
        classification=classification,
    )
