"""Topology analysis: vertex classification, affected-subgraph extraction,
and the similarity score that gates cell skipping."""

from .classify import VertexClass, WindowClassification, classify_window
from .similarity import cosine_rows, neighbor_stability_weights, similarity_scores
from .stats import (
    churn_timeline,
    degree_evolution,
    edge_jaccard_matrix,
    temporal_profile,
)
from .subgraph import AffectedSubgraph, extract_affected_subgraph, union_adjacency

__all__ = [
    "VertexClass",
    "WindowClassification",
    "classify_window",
    "cosine_rows",
    "neighbor_stability_weights",
    "similarity_scores",
    "churn_timeline",
    "degree_evolution",
    "edge_jaccard_matrix",
    "temporal_profile",
    "AffectedSubgraph",
    "extract_affected_subgraph",
    "union_adjacency",
]
