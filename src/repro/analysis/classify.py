"""Vertex classification across a snapshot window.

The paper (Section 3.1) partitions vertices of a sliding window into:

* **affected** — the vertex's own feature changed, or it arrived/departed;
* **stable** — feature unchanged, but its neighbourhood changed (edge
  churn at the vertex, or a neighbour whose feature changed);
* **unaffected** — feature unchanged, neighbour lists identical in every
  snapshot, and every neighbour's feature unchanged.  Per the paper,
  "the set of unaffected vertices is a subset of the stable vertices";
  the labels here are disjoint, with STABLE meaning stable-but-not-
  unaffected.

Unaffected vertices are loaded and computed once per layer for the whole
window (the heart of the topology-aware concurrent execution); stable
vertices act as DFS roots bounding the affected subgraph; affected
vertices get full per-snapshot treatment.

Everything is vectorised: feature stability is one stacked comparison,
topology stability uses the order-independent row fingerprints from
:meth:`CSRSnapshot.row_fingerprints`, and neighbour-feature stability is
one masked min-scatter over the first snapshot's CSR.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..graphs.dynamic import DynamicGraph

__all__ = ["VertexClass", "WindowClassification", "classify_window"]


class VertexClass(enum.IntEnum):
    """Disjoint vertex categories of one window."""

    UNAFFECTED = 0
    STABLE = 1
    AFFECTED = 2


@dataclass(frozen=True)
class WindowClassification:
    """Result of :func:`classify_window` for one window."""

    labels: np.ndarray  # (n,) VertexClass values
    window_size: int

    @property
    def unaffected_mask(self) -> np.ndarray:
        return self.labels == VertexClass.UNAFFECTED

    @property
    def stable_mask(self) -> np.ndarray:
        """Stable-but-not-unaffected vertices (DFS roots)."""
        return self.labels == VertexClass.STABLE

    @property
    def affected_mask(self) -> np.ndarray:
        return self.labels == VertexClass.AFFECTED

    @property
    def feature_stable_mask(self) -> np.ndarray:
        """The paper's inclusive 'stable' set: unaffected ∪ stable."""
        return self.labels != VertexClass.AFFECTED

    def counts(self) -> dict[str, int]:
        return {
            "unaffected": int(self.unaffected_mask.sum()),
            "stable": int(self.stable_mask.sum()),
            "affected": int(self.affected_mask.sum()),
        }

    def unaffected_ratio(self) -> float:
        """Fraction of all vertices that are unaffected — the quantity in
        the paper's Fig. 3(a)."""
        return float(self.unaffected_mask.mean())

    def recompute_vertices(self) -> np.ndarray:
        """Vertices needing per-snapshot computation (stable + affected) —
        the affected-subgraph candidate set."""
        return np.flatnonzero(self.labels != VertexClass.UNAFFECTED)


def classify_window(window: DynamicGraph, *, atol: float = 0.0) -> WindowClassification:
    """Classify every vertex of a window as unaffected / stable / affected.

    Parameters
    ----------
    window:
        The snapshot window (>= 1 snapshot; a single snapshot makes every
        present vertex unaffected by definition).
    atol:
        Feature-comparison tolerance (0 = exact, the paper's definition).
    """
    snaps = window.snapshots
    n = window.num_vertices
    if len(snaps) == 1:
        return WindowClassification(
            np.full(n, VertexClass.UNAFFECTED, dtype=np.int64), 1
        )

    # --- presence: any arrival/departure within the window -> affected ---
    present = np.stack([s.present for s in snaps])
    present_all = present.all(axis=0)
    presence_changed = present.any(axis=0) & ~present_all

    # --- own-feature stability ------------------------------------------
    feats = np.stack([s.features for s in snaps])  # (K, n, d)
    if atol > 0.0:
        feat_stable = np.isclose(feats[1:], feats[:-1], atol=atol).all(axis=(0, 2))
    else:
        feat_stable = (feats[1:] == feats[:-1]).all(axis=(0, 2))
    feat_stable &= present_all

    # --- topology stability via row fingerprints ------------------------
    fps = np.stack([s.row_fingerprints() for s in snaps])
    degs = np.stack([s.degrees for s in snaps])
    topo_stable = (fps[1:] == fps[:-1]).all(axis=0) & (degs[1:] == degs[:-1]).all(
        axis=0
    )

    # --- neighbour-feature stability -------------------------------------
    # Only meaningful for topo-stable vertices (their rows are identical in
    # every snapshot, so snapshot 0's CSR gives *the* neighbour list).
    s0 = snaps[0]
    neigh_ok = np.ones(n, dtype=np.uint8)
    if s0.num_edges:
        src = np.repeat(np.arange(n, dtype=np.int64), s0.degrees)
        np.minimum.at(neigh_ok, src, feat_stable[s0.indices].astype(np.uint8))
    neigh_feat_stable = neigh_ok.astype(bool)

    labels = np.full(n, VertexClass.AFFECTED, dtype=np.int64)
    stable = feat_stable & ~presence_changed
    labels[stable] = VertexClass.STABLE
    unaffected = stable & topo_stable & neigh_feat_stable
    labels[unaffected] = VertexClass.UNAFFECTED
    # vertices absent throughout the window never need work: unaffected
    labels[~present.any(axis=0)] = VertexClass.UNAFFECTED
    return WindowClassification(labels, len(snaps))
