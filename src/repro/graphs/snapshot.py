"""CSR graph snapshots — the basic unit of a dynamic graph.

A :class:`CSRSnapshot` is one timestamped observation of an evolving graph,
stored in Compressed Sparse Row form over a *global* vertex-id space shared
by every snapshot of the same dynamic graph.  Vertices that are absent from
a snapshot keep their id (so ids are stable across time) but are flagged off
in the ``present`` mask and have empty adjacency rows.

The paper stores each snapshot in CSR (Section 2.1) and drives both the GNN
aggregation and the vertex-classification pipelines off this layout, so all
hot paths here are vectorised NumPy on the raw ``indptr``/``indices`` arrays
(per the HPC guide: no per-vertex Python loops, contiguous reads, views not
copies).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from ..check.shapes import contract

__all__ = [
    "AGGREGATE_KERNELS",
    "CSRSnapshot",
    "FEAT_DTYPE",
    "PTR_DTYPE",
    "VID_DTYPE",
    "active_aggregate_kernel",
    "aggregate_kernel",
    "build_csr",
    "degrees_from_indptr",
    "set_aggregate_kernel",
]

# dtype conventions used across the whole package
VID_DTYPE = np.int32  # vertex ids
PTR_DTYPE = np.int64  # CSR row pointers
FEAT_DTYPE = np.float32  # vertex features


# src/dst carry independent symbols (and any dtype) on purpose: the body
# owns the equal-length ValueError and the asarray coercion, and the
# empty-graph idiom passes float64 ``np.array([])``.  dedup can shrink
# indices below the input edge count, hence the free return dim.
@contract("n, (e,) ?, (m,) ? -> (n+1,) i64, (*,) i32")
def build_csr(
    num_vertices: int,
    src: np.ndarray,
    dst: np.ndarray,
    *,
    dedup: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Build sorted CSR (``indptr``, ``indices``) from an edge list.

    Edges are directed ``src -> dst``; callers wanting an undirected graph
    pass both orientations.  Neighbour lists come out sorted ascending,
    which the rest of the package relies on for O(deg) set algebra
    (`np.intersect1d` on sorted rows, vectorised row comparisons).

    Parameters
    ----------
    num_vertices:
        Size of the global vertex-id space.
    src, dst:
        Equal-length integer arrays of endpoints; ids must lie in
        ``[0, num_vertices)``.
    dedup:
        Drop duplicate ``(src, dst)`` pairs (the default; snapshots are
        simple graphs in the paper's datasets).

    Returns
    -------
    (indptr, indices):
        ``indptr`` has length ``num_vertices + 1`` and dtype int64;
        ``indices`` holds sorted neighbour ids with dtype int32.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError(f"src/dst length mismatch: {src.shape} vs {dst.shape}")
    if src.size:
        lo = min(src.min(), dst.min())
        hi = max(src.max(), dst.max())
        if lo < 0 or hi >= num_vertices:
            raise ValueError(
                f"edge endpoint out of range [0, {num_vertices}): min={lo} max={hi}"
            )
    # Sort by (src, dst) via a single composite key — one O(m log m) pass.
    key = src * np.int64(num_vertices) + dst
    order = np.argsort(key, kind="stable")
    key = key[order]
    if dedup and key.size:
        keep = np.empty(key.shape, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        key = key[keep]
    counts = np.bincount(key // num_vertices, minlength=num_vertices) if key.size else (
        np.zeros(num_vertices, dtype=np.int64)
    )
    indptr = np.zeros(num_vertices + 1, dtype=PTR_DTYPE)
    np.cumsum(counts, out=indptr[1:])
    indices = (key % num_vertices).astype(VID_DTYPE)
    return indptr, indices


@contract("(n+1,) i -> (n,) i")
def degrees_from_indptr(indptr: np.ndarray) -> np.ndarray:
    """Out-degrees as a view-friendly diff of the row-pointer array."""
    return np.diff(indptr)


# ----------------------------------------------------------------------
# aggregation kernel selection (repro.adaptive)
# ----------------------------------------------------------------------
#: The interchangeable aggregation kernels.  Both execute *exactly* the
#: same additions in the same per-row order, so their outputs are
#: bit-identical by construction (property-tested in tests/adaptive):
#:
#: * ``scatter`` — one gather per edge + ``np.add.at`` over the CSR
#:   (irregular access, work proportional to nnz);
#: * ``dense``  — neighbour ids padded into an ``(n, max_degree)``
#:   rectangle, accumulated one degree-slot at a time with regular
#:   full-width vector ops (gemm-style streaming; work proportional
#:   to ``n * max_degree``, profitable on dense/regular subgraphs).
AGGREGATE_KERNELS = ("scatter", "dense")

_active_aggregate_kernel = "scatter"


def set_aggregate_kernel(name: str) -> str:
    """Select the process-wide default aggregation kernel; returns the
    previous one.  The adaptive planner flips this per window."""
    global _active_aggregate_kernel
    if name not in AGGREGATE_KERNELS:
        raise ValueError(
            f"unknown aggregate kernel {name!r}; choose from {AGGREGATE_KERNELS}"
        )
    prev = _active_aggregate_kernel
    _active_aggregate_kernel = name
    return prev


def active_aggregate_kernel() -> str:
    return _active_aggregate_kernel


@contextlib.contextmanager
def aggregate_kernel(name: str):
    """Scoped kernel override: restores the previous kernel on exit."""
    prev = set_aggregate_kernel(name)
    try:
        yield
    finally:
        set_aggregate_kernel(prev)


@dataclass
class CSRSnapshot:
    """One graph snapshot :math:`G_t = (V_t, E_t, X_t)` in CSR form.

    Attributes
    ----------
    indptr, indices:
        Sorted CSR adjacency over the global id space (directed edges;
        undirected graphs store both orientations).
    features:
        ``(num_vertices, dim)`` float32 feature matrix :math:`X_t`.  Rows of
        absent vertices are zero and ignored.
    present:
        Boolean mask of vertices that exist at this timestamp.
    timestamp:
        Integer snapshot index within the parent dynamic graph.
    """

    indptr: np.ndarray
    indices: np.ndarray
    features: np.ndarray
    present: np.ndarray
    timestamp: int = 0
    _degrees: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.num_vertices
        if self.features.shape[0] != n:
            raise ValueError(
                f"features rows {self.features.shape[0]} != num_vertices {n}"
            )
        if self.present.shape[0] != n:
            raise ValueError(f"present mask length {self.present.shape[0]} != {n}")
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise ValueError("malformed indptr")

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Size of the global id space (present and absent vertices)."""
        return len(self.indptr) - 1

    @property
    def num_present(self) -> int:
        """Number of vertices that exist at this timestamp."""
        return int(self.present.sum())

    @property
    def num_edges(self) -> int:
        """Number of directed edges stored."""
        return len(self.indices)

    @property
    def dim(self) -> int:
        """Feature dimensionality."""
        return self.features.shape[1]

    @property
    def degrees(self) -> np.ndarray:
        """Per-vertex out-degree (cached)."""
        if self._degrees is None:
            self._degrees = degrees_from_indptr(self.indptr)
        return self._degrees

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` — a zero-copy view into ``indices``."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Membership test via binary search on the sorted row of ``u``."""
        row = self.neighbors(u)
        i = np.searchsorted(row, v)
        return bool(i < len(row) and row[i] == v)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: np.ndarray | Iterable[tuple[int, int]],
        features: np.ndarray | None = None,
        *,
        present: np.ndarray | None = None,
        timestamp: int = 0,
        undirected: bool = True,
        dim: int = 1,
    ) -> "CSRSnapshot":
        """Build a snapshot from an ``(m, 2)`` edge array.

        When ``undirected`` (the default, matching the paper's datasets)
        each edge is stored in both directions.
        """
        edges = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        src, dst = edges[:, 0], edges[:, 1]
        if undirected:
            src, dst = np.concatenate([src, dst]), np.concatenate([dst, src])
        indptr, indices = build_csr(num_vertices, src, dst)
        if features is None:
            features = np.zeros((num_vertices, dim), dtype=FEAT_DTYPE)
        else:
            features = np.ascontiguousarray(features, dtype=FEAT_DTYPE)
        if present is None:
            present = np.ones(num_vertices, dtype=bool)
        return cls(indptr, indices, features, present, timestamp)

    def copy(self) -> "CSRSnapshot":
        """Deep copy (fresh arrays) — checkpoint/restore builds on this."""
        return CSRSnapshot(
            indptr=self.indptr.copy(),
            indices=self.indices.copy(),
            features=self.features.copy(),
            present=self.present.copy(),
            timestamp=self.timestamp,
        )

    # ------------------------------------------------------------------
    # GNN support
    # ------------------------------------------------------------------
    def mean_norm_coeffs(self, *, add_self_loops: bool = True) -> np.ndarray:
        r"""Per-vertex :math:`1/\hat d_v` coefficients of mean (random-walk)
        GCN normalisation, with :math:`\hat d_v = d_v + 1` when self-loops
        are added.  Absent vertices get coefficient 0.
        """
        d = self.degrees.astype(np.float64) + (1.0 if add_self_loops else 0.0)
        coeff = np.zeros_like(d)
        np.divide(1.0, d, out=coeff, where=d > 0)
        coeff[~self.present] = 0.0
        return coeff

    def aggregate(
        self,
        x: np.ndarray,
        *,
        add_self_loops: bool = True,
        kernel: str | None = None,
    ) -> np.ndarray:
        r"""Mean-normalised neighbourhood aggregation
        :math:`\hat D^{-1}(A + I)\, x`.

        This is the GNN module's "aggregation" operation (paper Fig. 1(b)):
        one gather per edge plus an ``np.add.at`` scatter — the exact access
        pattern the accelerator's APE adder trees execute.

        Mean (random-walk) normalisation — rather than Kipf–Welling's
        symmetric :math:`\hat D^{-1/2}(A+I)\hat D^{-1/2}` — is load-bearing
        for the whole reproduction: only under mean normalisation is the
        paper's claim true that an *unaffected* vertex (same neighbours,
        features, and neighbours' features) has an identical GNN output in
        every snapshot.  Under symmetric normalisation a neighbour's
        *degree* change elsewhere would alter its coefficient and leak into
        the vertex's output, so "compute unaffected vertices once per
        layer" would be an approximation instead of an identity.
        """
        if kernel is None:
            kernel = _active_aggregate_kernel
        coeff = self.mean_norm_coeffs(add_self_loops=add_self_loops)
        out = np.zeros_like(x)
        if self.num_edges:
            if kernel == "dense":
                self._accumulate_dense(out, x)
            else:
                src = np.repeat(
                    np.arange(self.num_vertices, dtype=VID_DTYPE), self.degrees
                )
                np.add.at(out, src, x[self.indices])
        if add_self_loops:
            out += x
        out *= coeff[:, None]
        return out.astype(x.dtype, copy=False)

    def _accumulate_dense(self, out: np.ndarray, x: np.ndarray) -> None:
        """Dense-gemm-style neighbour accumulation into ``out``.

        Neighbour ids are padded row-major into an ``(n, max_degree)``
        rectangle and accumulated one degree slot at a time with regular
        full-width vector ops — the access pattern of a dense MAC array.
        Each row's additions happen in ascending CSR position, the exact
        sequence ``np.add.at`` applies, so the result is bit-identical to
        the scatter kernel by construction.
        """
        deg = self.degrees
        max_deg = int(deg.max())
        n = self.num_vertices
        nbr = np.zeros((n, max_deg), dtype=np.int64)
        slot_valid = np.arange(max_deg)[None, :] < deg[:, None]
        nbr[slot_valid] = self.indices  # row-major fill == CSR order
        for j in range(max_deg):  # repro: noqa R006 — bounded by max degree; each iteration is a full-width vector op, not per-element work
            sel = slot_valid[:, j]
            out[sel] += x[nbr[sel, j]]

    # ------------------------------------------------------------------
    # structural comparisons (used by vertex classification)
    # ------------------------------------------------------------------
    def row_fingerprints(self) -> np.ndarray:
        """64-bit order-independent hash of each neighbour list.

        Two vertices with equal fingerprints across snapshots *almost
        certainly* kept the same neighbour set; the classifier uses this as
        a fast pre-filter before exact row comparison.
        """
        # Mix each neighbour id with a splitmix64-style finaliser, then sum
        # per row (sum is order-independent; rows are sorted anyway).
        x = self.indices.astype(np.uint64)
        x = (x + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        out = np.zeros(self.num_vertices, dtype=np.uint64)
        if x.size:
            src = np.repeat(
                np.arange(self.num_vertices, dtype=np.int64), self.degrees
            )
            np.add.at(out, src, x)
        # Fold the degree in so "empty row" differs from "absent vertex".
        out += self.degrees.astype(np.uint64) * np.uint64(0xDA942042E4DD58B5)
        return out

    def same_row(self, other: "CSRSnapshot", v: int) -> bool:
        """Exact neighbour-list equality for one vertex across snapshots."""
        a = self.neighbors(v)
        b = other.neighbors(v)
        return len(a) == len(b) and bool(np.array_equal(a, b))

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def edge_array(self) -> np.ndarray:
        """Return the ``(m, 2)`` directed edge list (src, dst)."""
        src = np.repeat(np.arange(self.num_vertices, dtype=VID_DTYPE), self.degrees)
        return np.stack([src, self.indices], axis=1)

    def to_networkx(self):
        """Export present vertices/edges to a ``networkx.DiGraph`` (tests only)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(np.flatnonzero(self.present).tolist())
        g.add_edges_from(map(tuple, self.edge_array().tolist()))
        return g

    def memory_bytes(self) -> int:
        """Footprint of the snapshot's arrays (structure + features)."""
        return (
            self.indptr.nbytes
            + self.indices.nbytes
            + self.features.nbytes
            + self.present.nbytes
        )
