"""Loading *real* dynamic-graph traces from timestamped edge lists.

The public datasets the paper uses (HepPh, Epinions, Flickr, …) are
distributed as timestamped edge lists (SNAP / Network Repository style):
one ``src dst timestamp`` triple per line.  This module turns such a
stream into the snapshot representation the rest of the library consumes:

1. edges are bucketed into ``num_snapshots`` equal-duration intervals
   (or caller-provided boundaries — the paper's per-dataset granularity);
2. each snapshot's edge set is the **sliding accumulation** of the last
   ``retention`` buckets (an interaction stays visible for ``retention``
   intervals, then expires — pure accumulation never removes edges and a
   pure bucket view is too sparse; retention reproduces the add/remove
   churn the paper's Fig. 3(a) measures);
3. vertex features are synthesised from per-interval behaviour
   (degree, activity recency) unless the trace provides features —
   behaviour-derived features change exactly for the vertices whose
   neighbourhood changed, matching how the paper's affected sets arise.

So a real public trace can drive every experiment in this repository::

    from repro.graphs import load_edge_list
    g = load_edge_list("soc-epinions.txt", num_snapshots=12, dim=32)
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from ..check.shapes import contract
from .dynamic import DynamicGraph
from .snapshot import FEAT_DTYPE, CSRSnapshot, build_csr

__all__ = ["TemporalEdgeList", "parse_edge_list", "load_edge_list"]


@dataclass(frozen=True)
class TemporalEdgeList:
    """A parsed timestamped edge list (global ids, sorted by time)."""

    src: np.ndarray
    dst: np.ndarray
    timestamp: np.ndarray
    num_vertices: int

    @property
    def num_events(self) -> int:
        return len(self.src)

    def time_range(self) -> tuple[float, float]:
        if self.num_events == 0:
            raise ValueError("empty edge list")
        return float(self.timestamp[0]), float(self.timestamp[-1])


def parse_edge_list(
    source,
    *,
    comment: str = "#",
    relabel: bool = True,
) -> TemporalEdgeList:
    """Parse ``src dst timestamp`` lines from a path, file object, or
    string.

    Lines starting with ``comment`` are skipped; extra columns beyond the
    third are ignored (many SNAP traces carry weights/ratings there).
    With ``relabel`` (default) raw vertex ids are densely renumbered in
    first-appearance order; otherwise ids are used as-is.
    """
    if isinstance(source, str) and "\n" in source:
        fh = io.StringIO(source)
        close = False
    elif hasattr(source, "read"):
        fh, close = source, False
    else:
        fh, close = open(source, "r"), True
    try:
        srcs, dsts, times = [], [], []
        for line in fh:
            line = line.strip()
            if not line or line.startswith(comment):
                continue
            parts = line.split()
            if len(parts) < 3:
                raise ValueError(
                    f"need at least 'src dst timestamp' per line, got {line!r}"
                )
            srcs.append(int(parts[0]))
            dsts.append(int(parts[1]))
            times.append(float(parts[2]))
    finally:
        if close:
            fh.close()
    if not srcs:
        raise ValueError("edge list contains no edges")

    src = np.asarray(srcs, dtype=np.int64)
    dst = np.asarray(dsts, dtype=np.int64)
    ts = np.asarray(times, dtype=np.float64)
    order = np.argsort(ts, kind="stable")
    src, dst, ts = src[order], dst[order], ts[order]

    if relabel:
        # dense relabel in first-appearance order (time order)
        interleaved = np.empty(2 * len(src), dtype=np.int64)
        interleaved[0::2] = src
        interleaved[1::2] = dst
        _, first_idx = np.unique(interleaved, return_index=True)
        uniq_in_order = interleaved[np.sort(first_idx)]
        mapping = {int(v): i for i, v in enumerate(uniq_in_order.tolist())}
        src = np.array([mapping[int(v)] for v in src], dtype=np.int64)
        dst = np.array([mapping[int(v)] for v in dst], dtype=np.int64)
        n = len(mapping)
    else:
        n = int(max(src.max(), dst.max())) + 1
    return TemporalEdgeList(src, dst, ts, n)


def _synthesize_features(
    edges_per_bucket: list[np.ndarray],
    n: int,
    dim: int,
    seed: int,
) -> list[np.ndarray]:
    """Behaviour-derived features: a fixed random base per vertex plus a
    drift term driven by the vertex's *activity level* (distinct partners
    in the current bucket).

    A vertex whose behaviour is steady — same partner count bucket after
    bucket — keeps an identical feature vector, and an inactive vertex
    keeps its previous one; only behaviour changes produce feature
    changes.  Feature churn therefore coincides with structural churn,
    which is exactly how the paper's affected sets arise in attributed
    dynamic graphs.
    """
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, dim)).astype(FEAT_DTYPE)
    drift = rng.standard_normal((n, dim)).astype(FEAT_DTYPE)
    feats: list[np.ndarray] = []
    current = base.copy()
    for edges in edges_per_bucket:
        current = current.copy()
        if len(edges):
            deg = np.bincount(edges.reshape(-1), minlength=n).astype(np.float32)
            active = np.flatnonzero(deg)
            level = np.log1p(deg[active])
            current[active] = base[active] + drift[active] * level[:, None]
        feats.append(current)
    return feats


@contract("_, int, int, int, ?(n,f) f, str, int, str -> _")
def load_edge_list(
    source,
    *,
    num_snapshots: int = 10,
    retention: int = 3,
    dim: int = 32,
    features: np.ndarray | None = None,
    name: str = "edge-list",
    seed: int = 0,
    comment: str = "#",
) -> DynamicGraph:
    """Build a :class:`DynamicGraph` from a timestamped edge list.

    Parameters
    ----------
    source:
        Path, file object, or multi-line string of ``src dst ts`` rows.
    num_snapshots:
        Number of equal-duration time buckets.
    retention:
        Snapshot t shows the union of buckets ``(t-retention, t]`` — the
        interaction-expiry window producing both edge additions *and*
        removals.
    dim / features / seed:
        Feature synthesis (see :func:`_synthesize_features`), or a fixed
        ``(n, dim)`` matrix to hold constant across snapshots.
    """
    if num_snapshots < 1:
        raise ValueError("num_snapshots must be >= 1")
    if retention < 1:
        raise ValueError("retention must be >= 1")
    tel = source if isinstance(source, TemporalEdgeList) else parse_edge_list(
        source, comment=comment
    )
    n = tel.num_vertices
    if features is not None and features.shape[0] != n:
        raise ValueError(
            f"features has {features.shape[0]} rows but the trace has {n} "
            f"vertices after relabelling (parse first to learn n)"
        )
    t0, t1 = tel.time_range()
    span = max(t1 - t0, 1e-9)
    bucket = np.minimum(
        ((tel.timestamp - t0) / span * num_snapshots).astype(np.int64),
        num_snapshots - 1,
    )

    per_bucket: list[np.ndarray] = []
    for b in range(num_snapshots):
        m = bucket == b
        lo = np.minimum(tel.src[m], tel.dst[m])
        hi = np.maximum(tel.src[m], tel.dst[m])
        ok = lo != hi
        keys = np.unique(lo[ok] * np.int64(n) + hi[ok])
        per_bucket.append(
            np.stack([keys // n, keys % n], axis=1)
            if keys.size
            else np.empty((0, 2), dtype=np.int64)
        )

    feats_per_bucket = (
        None if features is not None
        else _synthesize_features(per_bucket, n, dim, seed)
    )

    snapshots = []
    ever_seen = np.zeros(n, dtype=bool)
    for t in range(num_snapshots):
        window_edges = np.concatenate(
            per_bucket[max(0, t - retention + 1) : t + 1]
        )
        if window_edges.size:
            keys = np.unique(
                window_edges[:, 0] * np.int64(n) + window_edges[:, 1]
            )
            lo, hi = keys // n, keys % n
            src = np.concatenate([lo, hi])
            dst = np.concatenate([hi, lo])
        else:
            src = dst = np.empty(0, dtype=np.int64)
        indptr, indices = build_csr(n, src, dst)
        ever_seen[np.unique(window_edges.reshape(-1))] = True
        present = ever_seen.copy()
        f = (
            np.ascontiguousarray(features, dtype=FEAT_DTYPE)
            if features is not None
            else feats_per_bucket[t]
        ).copy()
        f[~present] = 0.0
        snapshots.append(
            CSRSnapshot(
                indptr=indptr, indices=indices, features=f,
                present=present, timestamp=t,
            )
        )
    return DynamicGraph(snapshots, name=name)
