"""Persistence: save/load dynamic graphs as ``.npz`` archives.

A dynamic graph is stored as one compressed NumPy archive holding every
snapshot's CSR arrays, features, and presence masks, plus the name and
shape metadata.  The format is self-contained and versioned so archives
survive library upgrades; round-tripping is exact (a property test).

This lets users generate a synthetic trace once (or convert a real trace
offline) and reload it across sessions::

    from repro.graphs import load_dataset, save_dynamic_graph, load_dynamic_graph

    g = load_dataset("FK", num_snapshots=16)
    save_dynamic_graph(g, "fk16.npz")
    g2 = load_dynamic_graph("fk16.npz")
"""

from __future__ import annotations

import numpy as np

from .dynamic import DynamicGraph
from .snapshot import CSRSnapshot

__all__ = ["save_dynamic_graph", "load_dynamic_graph", "FORMAT_VERSION"]

FORMAT_VERSION = 1


def save_dynamic_graph(graph: DynamicGraph, path: str) -> None:
    """Write ``graph`` to ``path`` as a compressed ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {
        "__version__": np.array([FORMAT_VERSION], dtype=np.int64),
        "__meta__": np.array(
            [graph.num_vertices, graph.num_snapshots, graph.dim], dtype=np.int64
        ),
        "__name__": np.frombuffer(graph.name.encode("utf-8"), dtype=np.uint8),
    }
    for t, snap in enumerate(graph):
        arrays[f"s{t}_indptr"] = snap.indptr
        arrays[f"s{t}_indices"] = snap.indices
        arrays[f"s{t}_features"] = snap.features
        arrays[f"s{t}_present"] = snap.present
    np.savez_compressed(path, **arrays)


def load_dynamic_graph(path: str) -> DynamicGraph:
    """Load a dynamic graph written by :func:`save_dynamic_graph`."""
    with np.load(path) as data:
        version = int(data["__version__"][0])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported dynamic-graph archive version {version} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        n, t_count, _dim = (int(x) for x in data["__meta__"])
        name = bytes(data["__name__"].tobytes()).decode("utf-8")
        snapshots = []
        for t in range(t_count):
            try:
                snapshots.append(
                    CSRSnapshot(
                        indptr=data[f"s{t}_indptr"],
                        indices=data[f"s{t}_indices"],
                        features=data[f"s{t}_features"],
                        present=data[f"s{t}_present"],
                        timestamp=t,
                    )
                )
            except KeyError as exc:
                raise ValueError(
                    f"archive is truncated: snapshot {t} of {t_count} missing"
                ) from exc
        if snapshots and snapshots[0].num_vertices != n:
            raise ValueError("archive metadata disagrees with snapshot arrays")
    return DynamicGraph(snapshots, name=name)
