"""Dynamic-graph substrate: snapshots, dynamic graphs, generators, datasets.

Public surface::

    from repro.graphs import (
        CSRSnapshot, DynamicGraph, SnapshotDelta,
        load_dataset, available_datasets, paper_stats,
        generate_dynamic_graph, DynamicGraphSpec, ChurnConfig,
    )
"""

from .snapshot import CSRSnapshot, build_csr, degrees_from_indptr
from .dynamic import DynamicGraph, SnapshotDelta, snapshot_delta
from .generators import (
    ChurnConfig,
    DynamicGraphSpec,
    chung_lu_edges,
    generate_dynamic_graph,
)
from .datasets import (
    DATASET_NAMES,
    DATASET_SPECS,
    TABLE2,
    PaperDatasetStats,
    available_datasets,
    dataset_spec,
    load_dataset,
    paper_stats,
)
from .io import FORMAT_VERSION, load_dynamic_graph, save_dynamic_graph
from .real import TemporalEdgeList, load_edge_list, parse_edge_list
from .updates import (
    UpdateEvent,
    UpdateKind,
    apply_events,
    delta_to_events,
    event_stream,
    event_violation,
)

__all__ = [
    "CSRSnapshot",
    "build_csr",
    "degrees_from_indptr",
    "DynamicGraph",
    "SnapshotDelta",
    "snapshot_delta",
    "ChurnConfig",
    "DynamicGraphSpec",
    "chung_lu_edges",
    "generate_dynamic_graph",
    "DATASET_NAMES",
    "DATASET_SPECS",
    "TABLE2",
    "PaperDatasetStats",
    "available_datasets",
    "dataset_spec",
    "load_dataset",
    "paper_stats",
    "FORMAT_VERSION",
    "TemporalEdgeList",
    "load_edge_list",
    "parse_edge_list",
    "load_dynamic_graph",
    "save_dynamic_graph",
    "UpdateEvent",
    "UpdateKind",
    "apply_events",
    "delta_to_events",
    "event_stream",
    "event_violation",
]
