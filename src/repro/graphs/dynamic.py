"""Dynamic graphs: ordered snapshot sequences plus change tracking.

A :class:`DynamicGraph` is the paper's :math:`G = \\{G_1, \\dots, G_T\\}`
(Section 2.1): a list of :class:`~repro.graphs.snapshot.CSRSnapshot` over a
shared global vertex-id space.  It provides the sliding-window views the
multi-snapshot execution pattern consumes, and per-step
:class:`SnapshotDelta` summaries (added/removed edges, feature churn,
vertex arrivals/departures) that drive both the synthetic generators and
the vertex classifier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .snapshot import CSRSnapshot

__all__ = ["DynamicGraph", "SnapshotDelta", "snapshot_delta"]


@dataclass(frozen=True)
class SnapshotDelta:
    """Summary of the change from snapshot ``t`` to ``t + 1``.

    All members are arrays of vertex ids (sorted, unique), except the edge
    sets which are ``(k, 2)`` directed-edge arrays.
    """

    added_edges: np.ndarray
    removed_edges: np.ndarray
    feature_changed: np.ndarray  # vertices whose feature vector changed
    arrived: np.ndarray  # vertices absent at t, present at t+1
    departed: np.ndarray  # vertices present at t, absent at t+1

    @property
    def num_structural_changes(self) -> int:
        """Total count of edge insertions + deletions."""
        return len(self.added_edges) + len(self.removed_edges)

    def touched_vertices(self) -> np.ndarray:
        """Vertices directly involved in any change (endpoints of changed
        edges, feature churn, arrivals, departures)."""
        parts = [
            self.added_edges.reshape(-1),
            self.removed_edges.reshape(-1),
            self.feature_changed,
            self.arrived,
            self.departed,
        ]
        merged = np.concatenate([np.asarray(p, dtype=np.int64) for p in parts])
        return np.unique(merged)


def _edge_keys(snap: CSRSnapshot) -> np.ndarray:
    """Directed edges of a snapshot as sorted int64 composite keys."""
    n = np.int64(snap.num_vertices)
    src = np.repeat(np.arange(snap.num_vertices, dtype=np.int64), snap.degrees)
    return src * n + snap.indices.astype(np.int64)  # already (src,dst)-sorted


def snapshot_delta(a: CSRSnapshot, b: CSRSnapshot, *, atol: float = 0.0) -> SnapshotDelta:
    """Compute the :class:`SnapshotDelta` between two snapshots.

    ``atol`` lets callers treat tiny feature perturbations as unchanged
    (exact comparison by default, matching the paper's definition of an
    unchanged feature).
    """
    if a.num_vertices != b.num_vertices:
        raise ValueError("snapshots must share a global id space")
    n = a.num_vertices
    ka, kb = _edge_keys(a), _edge_keys(b)
    added = np.setdiff1d(kb, ka, assume_unique=True)
    removed = np.setdiff1d(ka, kb, assume_unique=True)
    added_edges = np.stack([added // n, added % n], axis=1).astype(np.int64)
    removed_edges = np.stack([removed // n, removed % n], axis=1).astype(np.int64)

    both = a.present & b.present
    if atol > 0.0:
        feat_diff = ~np.isclose(a.features, b.features, atol=atol).all(axis=1)
    else:
        feat_diff = (a.features != b.features).any(axis=1)
    feature_changed = np.flatnonzero(feat_diff & both)

    arrived = np.flatnonzero(~a.present & b.present)
    departed = np.flatnonzero(a.present & ~b.present)
    return SnapshotDelta(added_edges, removed_edges, feature_changed, arrived, departed)


class DynamicGraph:
    """An ordered sequence of snapshots over one global vertex-id space.

    Parameters
    ----------
    snapshots:
        Snapshots in timestamp order; all must agree on ``num_vertices``
        and feature dimension.  Timestamps are renumbered ``0..T-1``.
    name:
        Optional dataset name (used in reports).
    """

    def __init__(self, snapshots: Sequence[CSRSnapshot], name: str = "dynamic-graph"):
        if not snapshots:
            raise ValueError("a dynamic graph needs at least one snapshot")
        n = snapshots[0].num_vertices
        d = snapshots[0].dim
        for s in snapshots:
            if s.num_vertices != n:
                raise ValueError("snapshots disagree on global vertex count")
            if s.dim != d:
                raise ValueError("snapshots disagree on feature dimension")
        self.snapshots: list[CSRSnapshot] = list(snapshots)
        for t, s in enumerate(self.snapshots):
            s.timestamp = t
        self.name = name
        self._deltas: dict[int, SnapshotDelta] = {}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, t: int) -> CSRSnapshot:
        return self.snapshots[t]

    def __iter__(self) -> Iterator[CSRSnapshot]:
        return iter(self.snapshots)

    @property
    def num_vertices(self) -> int:
        """Size of the shared global id space."""
        return self.snapshots[0].num_vertices

    @property
    def dim(self) -> int:
        """Feature dimensionality (constant across snapshots)."""
        return self.snapshots[0].dim

    @property
    def num_snapshots(self) -> int:
        return len(self.snapshots)

    def total_edges(self) -> int:
        """Sum of directed edge counts over every snapshot."""
        return sum(s.num_edges for s in self.snapshots)

    def max_edges(self) -> int:
        """Largest per-snapshot edge count (sizing for buffers)."""
        return max(s.num_edges for s in self.snapshots)

    # ------------------------------------------------------------------
    def delta(self, t: int) -> SnapshotDelta:
        """Cached change summary from snapshot ``t`` to ``t + 1``."""
        if not 0 <= t < len(self.snapshots) - 1:
            raise IndexError(f"delta index {t} out of range")
        if t not in self._deltas:
            self._deltas[t] = snapshot_delta(self.snapshots[t], self.snapshots[t + 1])
        return self._deltas[t]

    def deltas(self) -> list[SnapshotDelta]:
        """All consecutive deltas ``t -> t+1`` for ``t in [0, T-1)``."""
        return [self.delta(t) for t in range(len(self) - 1)]

    # ------------------------------------------------------------------
    def window(self, start: int, size: int) -> "DynamicGraph":
        """A sliding-window view ``[start, start + size)`` as a new
        :class:`DynamicGraph` sharing the underlying snapshot objects.

        This is the unit the multi-snapshot execution pattern processes in
        one batch (the paper's default window is 4 snapshots).
        """
        if size < 1:
            raise ValueError("window size must be >= 1")
        if start < 0 or start + size > len(self):
            raise IndexError(
                f"window [{start}, {start + size}) out of range for T={len(self)}"
            )
        sub = DynamicGraph(
            self.snapshots[start : start + size],
            name=f"{self.name}[{start}:{start + size}]",
        )
        # restore true timestamps clobbered by the constructor's renumbering
        for off, s in enumerate(sub.snapshots):
            s.timestamp = start + off
        return sub

    def windows(self, size: int, stride: int | None = None) -> Iterator["DynamicGraph"]:
        """Iterate over sliding windows (default stride = size, i.e. the
        disjoint batches TaGNN's MSDL forms)."""
        stride = size if stride is None else stride
        for start in range(0, len(self) - size + 1, stride):
            yield self.window(start, size)

    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Total footprint across snapshots (no overlap dedup — this is the
        naive multi-snapshot cost Section 1 says overflows accelerators)."""
        return sum(s.memory_bytes() for s in self.snapshots)

    def stats(self) -> dict:
        """Summary statistics used by the Table 2 bench."""
        return {
            "name": self.name,
            "num_vertices": self.num_vertices,
            "num_snapshots": self.num_snapshots,
            "dim": self.dim,
            "total_edges": self.total_edges(),
            "max_edges": self.max_edges(),
            "mean_edges": self.total_edges() / self.num_snapshots,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"T={self.num_snapshots}, dim={self.dim})"
        )
