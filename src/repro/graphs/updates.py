"""Update streams: the event-level view of a dynamic graph.

Real systems receive dynamic graphs as a stream of update events rather
than materialised snapshots.  This module converts between the two views:
:func:`delta_to_events` flattens a :class:`~repro.graphs.dynamic.SnapshotDelta`
into ordered :class:`UpdateEvent` records, and :func:`apply_events`
replays events onto a snapshot to reconstruct its successor.  The round
trip is exercised by property tests and by the O-CSR dynamic-maintenance
benches (the paper notes O-CSR "efficiently accommodates dynamic changes,
such as inserting, updating, and deleting edges and vertices").

Replay is batched: :func:`apply_events` decodes the whole event list into
flat arrays once, validates every event with vectorised alternation and
point-in-time presence checks, and materialises the successor with a
single canonical CSR rebuild.  The moment anything is off — an
undecodable payload or any strict-replay violation — it falls back to
:func:`apply_events_reference`, the per-event implementation, which
raises the exact first-violation error (or, for the resilience ingest,
produces the exact dead-letter sequence).  The batched path is therefore
bit-identical to the reference on valid streams and indistinguishable
from it on hostile ones.
"""

from __future__ import annotations

import enum
import itertools
import operator
from dataclasses import dataclass

import numpy as np

from ..check.shapes import contract
from .dynamic import SnapshotDelta, snapshot_delta
from .snapshot import CSRSnapshot, build_csr

__all__ = [
    "UpdateKind",
    "UpdateEvent",
    "delta_to_events",
    "apply_events",
    "apply_events_reference",
    "event_stream",
    "event_violation",
]


class UpdateKind(enum.Enum):
    """The five event types a dynamic graph stream can carry."""

    EDGE_INSERT = "edge_insert"
    EDGE_DELETE = "edge_delete"
    FEATURE_UPDATE = "feature_update"
    VERTEX_ARRIVE = "vertex_arrive"
    VERTEX_DEPART = "vertex_depart"


@dataclass(frozen=True)
class UpdateEvent:
    """One atomic change.

    ``payload`` is ``(src, dst)`` for edge events, the new feature vector
    for feature updates, and ``None`` for vertex arrival/departure (the
    arrival feature travels in a separate FEATURE_UPDATE event).
    """

    kind: UpdateKind
    vertex: int
    payload: tuple[int, int] | np.ndarray | None = None


@contract("_, ?(n,f) f -> _")
def delta_to_events(
    delta: SnapshotDelta, new_features: np.ndarray | None = None
) -> list[UpdateEvent]:
    """Flatten a delta into an ordered event list.

    Ordering is: departures, edge deletions, arrivals, edge insertions,
    feature updates — the order in which :func:`apply_events` can replay
    them without referencing not-yet-arrived vertices.
    """
    events: list[UpdateEvent] = [
        UpdateEvent(UpdateKind.VERTEX_DEPART, v) for v in delta.departed.tolist()
    ]
    events += [
        UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d))
        for s, d in delta.removed_edges.tolist()
    ]
    events += [
        UpdateEvent(UpdateKind.VERTEX_ARRIVE, v) for v in delta.arrived.tolist()
    ]
    events += [
        UpdateEvent(UpdateKind.EDGE_INSERT, s, (s, d))
        for s, d in delta.added_edges.tolist()
    ]
    if new_features is not None:
        touched = np.union1d(delta.feature_changed, delta.arrived)
        events += [
            UpdateEvent(UpdateKind.FEATURE_UPDATE, v, new_features[v].copy())
            for v in touched.tolist()
        ]
    return events


@contract("_, int, int, ?(n,) b, _ -> _")
def event_violation(
    ev,
    *,
    num_vertices: int,
    dim: int,
    present: np.ndarray | None = None,
    edge_keys: set[int] | None = None,
) -> str | None:
    """Explain why ``ev`` cannot be applied, or ``None`` when it can.

    ``present``/``edge_keys`` carry the replay state at the point the
    event would apply (vertex presence mask and the set of live
    ``src * num_vertices + dst`` edge keys); passing ``None`` skips the
    state-dependent checks and validates only kind/shape/range.  This is
    the single validation authority shared by the strict
    :func:`apply_events` replay and the resilience ingest guard.
    """
    n = num_vertices
    if not isinstance(ev, UpdateEvent):
        return f"not an UpdateEvent: {type(ev).__name__}"
    if not isinstance(ev.kind, UpdateKind):
        return f"unknown event kind {ev.kind!r}"
    if not isinstance(ev.vertex, (int, np.integer)):
        return f"vertex id {ev.vertex!r} is not an integer"
    v = int(ev.vertex)
    if not 0 <= v < n:
        return f"vertex id {v} out of range [0, {n})"
    if ev.kind is UpdateKind.VERTEX_DEPART:
        if present is not None and not present[v]:
            return f"departure of absent vertex {v}"
    elif ev.kind is UpdateKind.VERTEX_ARRIVE:
        if present is not None and present[v]:
            return f"arrival of already-present vertex {v}"
    elif ev.kind in (UpdateKind.EDGE_INSERT, UpdateKind.EDGE_DELETE):
        payload = ev.payload
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or not all(isinstance(x, (int, np.integer)) for x in payload)
        ):
            return f"edge payload {payload!r} is not a (src, dst) pair"
        s, d = int(payload[0]), int(payload[1])
        if not (0 <= s < n and 0 <= d < n):
            return f"edge endpoint out of range [0, {n}): ({s}, {d})"
        key = s * n + d
        if ev.kind is UpdateKind.EDGE_DELETE:
            if edge_keys is not None and key not in edge_keys:
                return f"deletion of absent edge ({s}, {d})"
        else:
            if edge_keys is not None and key in edge_keys:
                return f"duplicate insertion of edge ({s}, {d})"
            if present is not None and not (present[s] and present[d]):
                return f"insertion of edge ({s}, {d}) with absent endpoint"
    else:  # FEATURE_UPDATE
        x = ev.payload
        if not isinstance(x, np.ndarray) or x.shape != (dim,):
            return (
                f"feature payload {x!r} does not have shape ({dim},)"
            )
        if not bool(np.isfinite(x).all()):
            return f"non-finite feature payload for vertex {v}"
        if present is not None and not present[v]:
            return f"feature update for absent vertex {v}"
    return None


# ----------------------------------------------------------------------
# batched replay
# ----------------------------------------------------------------------
# integer codes for the decode arrays (order is arbitrary but fixed)
_INS, _DEL, _FEAT, _ARR, _DEP = range(5)
_KIND_CODE = {
    UpdateKind.EDGE_INSERT: _INS,
    UpdateKind.EDGE_DELETE: _DEL,
    UpdateKind.FEATURE_UPDATE: _FEAT,
    UpdateKind.VERTEX_ARRIVE: _ARR,
    UpdateKind.VERTEX_DEPART: _DEP,
}


def _edge_keys_sorted(snap: CSRSnapshot) -> np.ndarray:
    """Live ``src * n + dst`` keys of a snapshot — sorted and unique
    because CSR rows are sorted and deduplicated."""
    n = snap.num_vertices
    src = np.repeat(np.arange(n, dtype=np.int64), snap.degrees)
    return src * n + snap.indices.astype(np.int64)


@dataclass
class _DecodedEvents:
    """Flat-array view of an event list (one decode pass, then all
    validation and application is vectorised)."""

    kind: np.ndarray  # (E,) int64 codes
    vertex: np.ndarray  # (E,) int64
    ekey: np.ndarray  # (E,) int64: src*n+dst for edge events, -1 otherwise
    fidx: np.ndarray  # (F,) int64 event indices of feature updates
    feats: np.ndarray  # (F, dim) stacked feature payloads


_GET_KIND = operator.attrgetter("kind")
_GET_VERTEX = operator.attrgetter("vertex")
_GET_PAYLOAD = operator.attrgetter("payload")


def _all_plain_ints(types: set) -> bool:
    """Whether every *type* in the set is ``int`` or a NumPy integer.

    Called on ``set(map(type, values))`` — a handful of distinct types —
    so value-count-independent.  ``bool`` is deliberately excluded even
    though it subclasses ``int``: boolean ids are legal but exotic, and
    sending them down the reference path keeps this predicate trivially
    sound.
    """
    return all(
        t is int or (t is not bool and issubclass(t, np.integer))
        for t in types
    )


def _decode_events(events, num_vertices: int, dim: int) -> _DecodedEvents | None:
    """Decode events into flat arrays; None when anything is malformed
    (unknown kind, bad payload shape, out-of-range id, non-finite
    feature) — the caller then falls back to the per-event reference.

    Checks here are deliberately *stricter* than the reference's
    ``isinstance`` checks (exact ``type`` sets, no bool ids): an exotic
    but valid event merely drops to the reference path, which is slower
    but never wrong.  All passes are C-level ``map``/``set`` sweeps; no
    per-event Python bytecode.
    """
    n = num_vertices
    E = len(events)
    if set(map(type, events)) - {UpdateEvent}:
        return None
    try:
        kind = np.fromiter(
            map(_KIND_CODE.__getitem__, map(_GET_KIND, events)),
            dtype=np.int64,
            count=E,
        )
        verts = list(map(_GET_VERTEX, events))
        if not _all_plain_ints(set(map(type, verts))):
            return None
        vertex = np.asarray(verts, dtype=np.int64)
        if E and (int(vertex.min()) < 0 or int(vertex.max()) >= n):
            return None
        ekey = np.full(E, -1, dtype=np.int64)
        eidx = np.flatnonzero((kind == _INS) | (kind == _DEL))
        if eidx.size:
            pays = list(
                map(_GET_PAYLOAD, map(events.__getitem__, eidx.tolist()))
            )
            if set(map(type, pays)) - {tuple}:
                return None
            if not _all_plain_ints(
                set(map(type, itertools.chain.from_iterable(pays)))
            ):
                return None
            sd = np.asarray(pays, dtype=np.int64)
            if sd.shape != (eidx.size, 2):
                return None
            if int(sd.min()) < 0 or int(sd.max()) >= n:
                return None
            ekey[eidx] = sd[:, 0] * n + sd[:, 1]
        fidx = np.flatnonzero(kind == _FEAT).astype(np.int64)
        if fidx.size:
            fpay = list(
                map(_GET_PAYLOAD, map(events.__getitem__, fidx.tolist()))
            )
            if set(map(type, fpay)) - {np.ndarray}:
                return None
            feats = np.stack(fpay)
            if feats.shape != (fidx.size, dim):
                return None
        else:
            feats = np.empty((0, dim), dtype=np.float32)
    except (KeyError, TypeError, ValueError, OverflowError):
        return None
    if not bool(np.isfinite(feats).all()):
        return None
    return _DecodedEvents(
        kind=kind, vertex=vertex, ekey=ekey, fidx=fidx, feats=feats
    )


def _group_positions(sorted_groups: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal values (the input
    must already be sorted by group)."""
    m = sorted_groups.size
    if m == 0:
        return np.empty(0, dtype=np.int64)
    newgrp = np.empty(m, dtype=bool)
    newgrp[0] = True
    np.not_equal(sorted_groups[1:], sorted_groups[:-1], out=newgrp[1:])
    idx = np.arange(m, dtype=np.int64)
    starts = np.maximum.accumulate(np.where(newgrp, idx, 0))
    return idx - starts


def _decoded_violation(
    snap: CSRSnapshot, dec: _DecodedEvents, key0: np.ndarray
) -> bool:
    """Whether *any* event violates the strict-replay state rules.

    The sequential rules are order-local, which makes them vectorisable:

    * arrivals/departures of a vertex must strictly alternate, starting
      opposite the vertex's initial presence;
    * inserts/deletes of an edge key must strictly alternate, starting
      opposite the key's initial liveness;
    * an edge insert needs both endpoints present *at its position*, and
      a feature update needs its vertex present — both answered by a
      toggle-parity count over the composite (vertex, index) key space.

    Sound and complete: the batch is clean iff the per-event reference
    replay would accept every event.
    """
    n = snap.num_vertices
    E = dec.kind.size
    p0 = snap.present
    kind, vertex, ekey = dec.kind, dec.vertex, dec.ekey

    # --- presence toggles must alternate --------------------------------
    tmask = (kind == _ARR) | (kind == _DEP)
    tv = vertex[tmask]
    tidx = np.flatnonzero(tmask).astype(np.int64)
    t_is_arr = kind[tmask] == _ARR
    order = np.argsort(tv, kind="stable")
    sv, sarr = tv[order], t_is_arr[order]
    pos = _group_positions(sv)
    if sv.size and bool(np.any(sarr != ((pos % 2 == 0) ^ p0[sv]))):
        return True
    # composite key for point-in-time presence queries (idx < E < E + 1)
    toggle_keys = sv * np.int64(E + 1) + tidx[order]

    def present_at(vq: np.ndarray, iq: np.ndarray) -> np.ndarray:
        base = np.searchsorted(toggle_keys, vq * np.int64(E + 1))
        cnt = np.searchsorted(toggle_keys, vq * np.int64(E + 1) + iq) - base
        return p0[vq] ^ (cnt % 2 == 1)

    # --- edge toggles must alternate ------------------------------------
    emask = (kind == _INS) | (kind == _DEL)
    ek = ekey[emask]
    e_is_ins = kind[emask] == _INS
    if ek.size:
        eorder = np.argsort(ek, kind="stable")
        sk, sins = ek[eorder], e_is_ins[eorder]
        pos = _group_positions(sk)
        if key0.size:
            at = np.searchsorted(key0, sk)
            at_c = np.minimum(at, key0.size - 1)
            live0 = (at < key0.size) & (key0[at_c] == sk)
        else:
            live0 = np.zeros(sk.size, dtype=bool)
        if bool(np.any(sins != ((pos % 2 == 0) ^ live0))):
            return True

    # --- point-in-time presence requirements ----------------------------
    ins = kind == _INS
    if bool(ins.any()):
        iidx = np.flatnonzero(ins).astype(np.int64)
        isrc, idst = ekey[ins] // n, ekey[ins] % n
        if not bool(present_at(isrc, iidx).all()):
            return True
        if not bool(present_at(idst, iidx).all()):
            return True
    if dec.fidx.size and not bool(
        present_at(vertex[dec.fidx], dec.fidx).all()
    ):
        return True
    return False


def _decoded_apply(
    snap: CSRSnapshot, dec: _DecodedEvents, key0: np.ndarray
) -> CSRSnapshot:
    """Materialise the successor of a *validated* decoded batch: toggle
    parities give the final presence/edge sets, the last feature update
    per vertex wins, and one canonical :func:`build_csr` pass closes."""
    n = snap.num_vertices
    kind, vertex, ekey = dec.kind, dec.vertex, dec.ekey

    tmask = (kind == _ARR) | (kind == _DEP)
    flips = np.bincount(vertex[tmask], minlength=n) % 2 == 1
    present = snap.present ^ flips

    features = snap.features.copy()
    if dec.fidx.size:
        fv = vertex[dec.fidx]
        forder = np.argsort(fv, kind="stable")
        sorted_fv = fv[forder]
        last = np.empty(sorted_fv.size, dtype=bool)
        last[-1] = True
        np.not_equal(sorted_fv[1:], sorted_fv[:-1], out=last[:-1])
        rows = forder[last]
        features[fv[rows]] = dec.feats[rows]

    emask = (kind == _INS) | (kind == _DEL)
    ek = ekey[emask]
    if ek.size:
        uk, cnt = np.unique(ek, return_counts=True)
        toggled = uk[cnt % 2 == 1]  # odd toggle count = membership flips
        # Sorted-merge symmetric difference: key0 and toggled are both
        # sorted and unique, so a searchsorted membership split plus one
        # positional np.insert reproduces np.setxor1d bit for bit at a
        # fraction of the cost.
        at = np.searchsorted(key0, toggled)
        at_c = np.minimum(at, max(key0.size - 1, 0))
        live0 = (
            (at < key0.size) & (key0[at_c] == toggled)
            if key0.size
            else np.zeros(toggled.size, dtype=bool)
        )
        keep = np.ones(key0.size, dtype=bool)
        keep[at[live0]] = False
        kept = key0[keep]
        ins = toggled[~live0]
        arr = np.insert(kept, np.searchsorted(kept, ins), ins)
    else:
        arr = key0
    # Departed vertices take their incident edges with them.
    if arr.size:
        srcs = arr // n
        arr = arr[present[srcs] & present[arr % n]]
        srcs = arr // n
    else:
        srcs = arr
    # ``arr`` is sorted unique composite keys — exactly the order
    # build_csr canonicalises into — so the CSR assembles directly.
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(srcs, minlength=n), out=indptr[1:])
    indices = (arr % n).astype(np.int32)
    features[~present] = 0.0  # canonical form: absent rows are zero
    return CSRSnapshot(
        indptr=indptr,
        indices=indices,
        features=features,
        present=present,
        timestamp=snap.timestamp + 1,
    )


def apply_events(snap: CSRSnapshot, events: list[UpdateEvent]) -> CSRSnapshot:
    """Replay events onto a snapshot, returning the successor snapshot.

    The batch is decoded into flat arrays, validated with vectorised
    alternation/parity checks, and applied as one splice plus a single
    O(m log m) :func:`build_csr` pass — the vectorised idiom the HPC
    guide recommends over per-event Python mutation.

    Replay is *strict*: an event that cannot apply to the evolving state
    (duplicate edge insert, delete of an absent edge, out-of-range vertex
    id, unknown kind, malformed payload, …) raises :class:`ValueError`
    rather than silently corrupting the successor snapshot.  Error
    reporting is delegated to :func:`apply_events_reference`, so messages
    and first-violation ordering match the per-event replay exactly.
    Callers that want to survive hostile streams should route events
    through :mod:`repro.resilience.ingest`, which dead-letters poison
    events instead of raising.
    """
    dec = _decode_events(events, snap.num_vertices, snap.features.shape[1])
    if dec is not None:
        key0 = _edge_keys_sorted(snap)
        if not _decoded_violation(snap, dec, key0):
            return _decoded_apply(snap, dec, key0)
    return apply_events_reference(snap, events)


def apply_events_reference(
    snap: CSRSnapshot, events: list[UpdateEvent]
) -> CSRSnapshot:
    """Per-event reference replay (the pre-vectorisation semantics).

    Kept as the error-reporting fallback of :func:`apply_events`, the
    oracle the batched-path property tests compare against, and the
    baseline the ``repro perf`` event-application microbenchmark times.
    """
    n = snap.num_vertices
    present = snap.present.copy()
    features = snap.features.copy()
    keys = set(_edge_keys_sorted(snap).tolist())

    for ev in events:  # repro: noqa R006 — reference path, kept for exact errors
        reason = event_violation(
            ev,
            num_vertices=n,
            dim=features.shape[1],
            present=present,
            edge_keys=keys,
        )
        if reason is not None:
            raise ValueError(f"invalid update event: {reason}")
        if ev.kind is UpdateKind.VERTEX_DEPART:
            present[ev.vertex] = False
        elif ev.kind is UpdateKind.VERTEX_ARRIVE:
            present[ev.vertex] = True
        elif ev.kind is UpdateKind.EDGE_DELETE:
            s, d = ev.payload  # type: ignore[misc]
            keys.discard(s * n + d)
        elif ev.kind is UpdateKind.EDGE_INSERT:
            s, d = ev.payload  # type: ignore[misc]
            keys.add(s * n + d)
        elif ev.kind is UpdateKind.FEATURE_UPDATE:
            features[ev.vertex] = ev.payload  # type: ignore[assignment]

    # Departed vertices take their incident edges with them.
    arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
    if arr.size:
        s, d = arr // n, arr % n
        arr = arr[present[s] & present[d]]
        s, d = arr // n, arr % n
    else:
        s = d = np.empty(0, dtype=np.int64)
    indptr, indices = build_csr(n, s, d)
    features[~present] = 0.0  # canonical form: absent rows are zero
    return CSRSnapshot(
        indptr=indptr,
        indices=indices,
        features=features,
        present=present,
        timestamp=snap.timestamp + 1,
    )


def event_stream(graph) -> list[list[UpdateEvent]]:
    """Per-step event lists for a whole :class:`DynamicGraph`.

    ``result[t]`` transforms snapshot ``t`` into snapshot ``t + 1``.
    """
    out: list[list[UpdateEvent]] = []
    for t in range(len(graph) - 1):
        delta = snapshot_delta(graph[t], graph[t + 1])
        out.append(delta_to_events(delta, new_features=graph[t + 1].features))
    return out
