"""Update streams: the event-level view of a dynamic graph.

Real systems receive dynamic graphs as a stream of update events rather
than materialised snapshots.  This module converts between the two views:
:func:`delta_to_events` flattens a :class:`~repro.graphs.dynamic.SnapshotDelta`
into ordered :class:`UpdateEvent` records, and :func:`apply_events`
replays events onto a snapshot to reconstruct its successor.  The round
trip is exercised by property tests and by the O-CSR dynamic-maintenance
benches (the paper notes O-CSR "efficiently accommodates dynamic changes,
such as inserting, updating, and deleting edges and vertices").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .dynamic import SnapshotDelta, snapshot_delta
from .snapshot import CSRSnapshot, build_csr

__all__ = [
    "UpdateKind",
    "UpdateEvent",
    "delta_to_events",
    "apply_events",
    "event_stream",
    "event_violation",
]


class UpdateKind(enum.Enum):
    """The five event types a dynamic graph stream can carry."""

    EDGE_INSERT = "edge_insert"
    EDGE_DELETE = "edge_delete"
    FEATURE_UPDATE = "feature_update"
    VERTEX_ARRIVE = "vertex_arrive"
    VERTEX_DEPART = "vertex_depart"


@dataclass(frozen=True)
class UpdateEvent:
    """One atomic change.

    ``payload`` is ``(src, dst)`` for edge events, the new feature vector
    for feature updates, and ``None`` for vertex arrival/departure (the
    arrival feature travels in a separate FEATURE_UPDATE event).
    """

    kind: UpdateKind
    vertex: int
    payload: tuple[int, int] | np.ndarray | None = None


def delta_to_events(
    delta: SnapshotDelta, new_features: np.ndarray | None = None
) -> list[UpdateEvent]:
    """Flatten a delta into an ordered event list.

    Ordering is: departures, edge deletions, arrivals, edge insertions,
    feature updates — the order in which :func:`apply_events` can replay
    them without referencing not-yet-arrived vertices.
    """
    events: list[UpdateEvent] = []
    for v in delta.departed.tolist():
        events.append(UpdateEvent(UpdateKind.VERTEX_DEPART, v))
    for s, d in delta.removed_edges.tolist():
        events.append(UpdateEvent(UpdateKind.EDGE_DELETE, s, (s, d)))
    for v in delta.arrived.tolist():
        events.append(UpdateEvent(UpdateKind.VERTEX_ARRIVE, v))
    for s, d in delta.added_edges.tolist():
        events.append(UpdateEvent(UpdateKind.EDGE_INSERT, s, (s, d)))
    if new_features is not None:
        touched = np.union1d(delta.feature_changed, delta.arrived)
        for v in touched.tolist():
            events.append(
                UpdateEvent(UpdateKind.FEATURE_UPDATE, v, new_features[v].copy())
            )
    return events


def event_violation(
    ev,
    *,
    num_vertices: int,
    dim: int,
    present: np.ndarray | None = None,
    edge_keys: set[int] | None = None,
) -> str | None:
    """Explain why ``ev`` cannot be applied, or ``None`` when it can.

    ``present``/``edge_keys`` carry the replay state at the point the
    event would apply (vertex presence mask and the set of live
    ``src * num_vertices + dst`` edge keys); passing ``None`` skips the
    state-dependent checks and validates only kind/shape/range.  This is
    the single validation authority shared by the strict
    :func:`apply_events` replay and the resilience ingest guard.
    """
    n = num_vertices
    if not isinstance(ev, UpdateEvent):
        return f"not an UpdateEvent: {type(ev).__name__}"
    if not isinstance(ev.kind, UpdateKind):
        return f"unknown event kind {ev.kind!r}"
    if not isinstance(ev.vertex, (int, np.integer)):
        return f"vertex id {ev.vertex!r} is not an integer"
    v = int(ev.vertex)
    if not 0 <= v < n:
        return f"vertex id {v} out of range [0, {n})"
    if ev.kind is UpdateKind.VERTEX_DEPART:
        if present is not None and not present[v]:
            return f"departure of absent vertex {v}"
    elif ev.kind is UpdateKind.VERTEX_ARRIVE:
        if present is not None and present[v]:
            return f"arrival of already-present vertex {v}"
    elif ev.kind in (UpdateKind.EDGE_INSERT, UpdateKind.EDGE_DELETE):
        payload = ev.payload
        if (
            not isinstance(payload, tuple)
            or len(payload) != 2
            or not all(isinstance(x, (int, np.integer)) for x in payload)
        ):
            return f"edge payload {payload!r} is not a (src, dst) pair"
        s, d = int(payload[0]), int(payload[1])
        if not (0 <= s < n and 0 <= d < n):
            return f"edge endpoint out of range [0, {n}): ({s}, {d})"
        key = s * n + d
        if ev.kind is UpdateKind.EDGE_DELETE:
            if edge_keys is not None and key not in edge_keys:
                return f"deletion of absent edge ({s}, {d})"
        else:
            if edge_keys is not None and key in edge_keys:
                return f"duplicate insertion of edge ({s}, {d})"
            if present is not None and not (present[s] and present[d]):
                return f"insertion of edge ({s}, {d}) with absent endpoint"
    else:  # FEATURE_UPDATE
        x = ev.payload
        if not isinstance(x, np.ndarray) or x.shape != (dim,):
            return (
                f"feature payload {x!r} does not have shape ({dim},)"
            )
        if not bool(np.isfinite(x).all()):
            return f"non-finite feature payload for vertex {v}"
        if present is not None and not present[v]:
            return f"feature update for absent vertex {v}"
    return None


def apply_events(snap: CSRSnapshot, events: list[UpdateEvent]) -> CSRSnapshot:
    """Replay events onto a snapshot, returning the successor snapshot.

    The CSR is rebuilt once at the end (one O(m log m) pass) rather than
    mutated per event — the vectorised idiom the HPC guide recommends over
    incremental Python-level mutation.

    Replay is *strict*: an event that cannot apply to the evolving state
    (duplicate edge insert, delete of an absent edge, out-of-range vertex
    id, unknown kind, malformed payload, …) raises :class:`ValueError`
    rather than silently corrupting the successor snapshot.  Callers that
    want to survive hostile streams should route events through
    :mod:`repro.resilience.ingest`, which dead-letters poison events
    instead of raising.
    """
    n = snap.num_vertices
    present = snap.present.copy()
    features = snap.features.copy()
    keys = set()
    src = np.repeat(np.arange(n, dtype=np.int64), snap.degrees)
    for k in (src * n + snap.indices.astype(np.int64)).tolist():
        keys.add(int(k))

    for ev in events:
        reason = event_violation(
            ev,
            num_vertices=n,
            dim=features.shape[1],
            present=present,
            edge_keys=keys,
        )
        if reason is not None:
            raise ValueError(f"invalid update event: {reason}")
        if ev.kind is UpdateKind.VERTEX_DEPART:
            present[ev.vertex] = False
        elif ev.kind is UpdateKind.VERTEX_ARRIVE:
            present[ev.vertex] = True
        elif ev.kind is UpdateKind.EDGE_DELETE:
            s, d = ev.payload  # type: ignore[misc]
            keys.discard(s * n + d)
        elif ev.kind is UpdateKind.EDGE_INSERT:
            s, d = ev.payload  # type: ignore[misc]
            keys.add(s * n + d)
        elif ev.kind is UpdateKind.FEATURE_UPDATE:
            features[ev.vertex] = ev.payload  # type: ignore[assignment]

    # Departed vertices take their incident edges with them.
    arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
    if arr.size:
        s, d = arr // n, arr % n
        arr = arr[present[s] & present[d]]
        s, d = arr // n, arr % n
    else:
        s = d = np.empty(0, dtype=np.int64)
    indptr, indices = build_csr(n, s, d)
    features[~present] = 0.0  # canonical form: absent rows are zero
    return CSRSnapshot(
        indptr=indptr,
        indices=indices,
        features=features,
        present=present,
        timestamp=snap.timestamp + 1,
    )


def event_stream(graph) -> list[list[UpdateEvent]]:
    """Per-step event lists for a whole :class:`DynamicGraph`.

    ``result[t]`` transforms snapshot ``t`` into snapshot ``t + 1``.
    """
    out: list[list[UpdateEvent]] = []
    for t in range(len(graph) - 1):
        delta = snapshot_delta(graph[t], graph[t + 1])
        out.append(delta_to_events(delta, new_features=graph[t + 1].features))
    return out
