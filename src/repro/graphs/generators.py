"""Synthetic dynamic-graph generators.

The paper evaluates on five real dynamic graphs (Table 2: HepPh, Gdelt,
MovieLens, Epinions, Flickr).  Those traces are not redistributable here,
so this module builds seeded synthetic equivalents whose *mechanism-relevant*
statistics are controlled directly:

* power-law degree distribution (Chung–Lu sampling) like citation/social
  graphs;
* per-step churn confined to a small "active set" of vertices, so that —
  exactly as the paper measures in Fig. 3(a) — only a minority of vertices
  are affected across a window while the rest overlap;
* feature churn coupled to structural churn (active vertices get new
  features), which is what the similarity score exploits.

Every mechanism in TaGNN (vertex classification, O-CSR compression, cell
skipping) keys off these overlap statistics, not off any other property of
the real traces, so the substitution preserves the evaluated behaviour
(see DESIGN.md, substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..check.shapes import contract
from .dynamic import DynamicGraph
from .snapshot import FEAT_DTYPE, CSRSnapshot, build_csr

__all__ = ["ChurnConfig", "DynamicGraphSpec", "generate_dynamic_graph", "chung_lu_edges"]


@dataclass(frozen=True)
class ChurnConfig:
    """How much, and how locally, the graph changes per snapshot.

    Attributes
    ----------
    active_frac:
        Fraction of present vertices forming each step's *active set* —
        the only vertices whose features change and around which edges
        churn.  This is the main knob for the unaffected-vertex ratio.
    edge_change_frac:
        Fraction of current edges rewired per step (half removed, half
        added), endpoints drawn from the active set.
    feature_change_frac:
        Fraction of the active set whose features are resampled each step
        (the rest of the active set only sees structural churn, making them
        the paper's *stable vertices*).
    vertex_arrival_frac / vertex_departure_frac:
        Fractions of the id space arriving/departing per step.
    hub_avoidance:
        Exponent ``a >= 0`` biasing active-set sampling toward low-degree
        vertices with weight ``(deg + 1)^-a``.  Real traces churn at the
        periphery; without this, hub churn would touch nearly every
        neighbourhood and no vertex would ever be unaffected.
    """

    active_frac: float = 0.10
    edge_change_frac: float = 0.05
    feature_change_frac: float = 0.6
    vertex_arrival_frac: float = 0.002
    vertex_departure_frac: float = 0.002
    hub_avoidance: float = 2.0

    def scaled(self, factor: float) -> "ChurnConfig":
        """A copy with churn intensity multiplied by ``factor`` (used by
        sensitivity benches)."""
        return replace(
            self,
            active_frac=min(1.0, self.active_frac * factor),
            edge_change_frac=min(1.0, self.edge_change_frac * factor),
        )


@dataclass(frozen=True)
class DynamicGraphSpec:
    """Full recipe for one synthetic dynamic graph."""

    name: str
    num_vertices: int
    num_edges: int  # undirected edge target for the initial snapshot
    dim: int
    num_snapshots: int
    churn: ChurnConfig = ChurnConfig()
    power_law_exponent: float = 2.2
    seed: int = 0


# the duplicate/self-loop trim can return fewer than num_edges rows,
# hence the free leading return dim
@contract("int, int, float, _ -> (*, 2) i64")
def chung_lu_edges(
    num_vertices: int,
    num_edges: int,
    exponent: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample an undirected power-law edge list via the Chung–Lu model.

    Endpoint ``i`` is drawn with probability proportional to
    ``(i + 1)^(-1/(exponent - 1))`` (the expected-degree sequence of a
    power law with the given exponent).  Fully vectorised: oversample,
    drop self-loops and duplicates, trim to target.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    w = (np.arange(1, num_vertices + 1, dtype=np.float64)) ** (
        -1.0 / (exponent - 1.0)
    )
    p = w / w.sum()
    # Oversample 30% to survive self-loop/duplicate removal.
    target = num_edges
    m = int(target * 1.3) + 16
    src = rng.choice(num_vertices, size=m, p=p)
    dst = rng.choice(num_vertices, size=m, p=p)
    lo, hi = np.minimum(src, dst), np.maximum(src, dst)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    keys = np.unique(lo.astype(np.int64) * num_vertices + hi)
    rng.shuffle(keys)
    keys = keys[:target]
    return np.stack([keys // num_vertices, keys % num_vertices], axis=1)


def _sample_active(
    present_ids: np.ndarray,
    degrees: np.ndarray,
    cfg: ChurnConfig,
    rng: np.random.Generator,
) -> np.ndarray:
    """Choose the step's active set among present vertices, biased away
    from hubs per ``cfg.hub_avoidance``."""
    k = max(1, int(round(cfg.active_frac * len(present_ids))))
    w = (degrees[present_ids].astype(np.float64) + 1.0) ** (-cfg.hub_avoidance)
    w /= w.sum()
    k = min(k, len(present_ids))
    return rng.choice(present_ids, size=k, replace=False, p=w)


def generate_dynamic_graph(spec: DynamicGraphSpec) -> DynamicGraph:
    """Materialise a :class:`DynamicGraph` from a spec.

    The generator keeps the *undirected* edge set as sorted int64 keys and
    evolves it with NumPy set algebra; each snapshot is then expanded to a
    directed CSR (both orientations), matching the storage the paper
    assumes.
    """
    cfg = spec.churn
    n = spec.num_vertices
    rng = np.random.default_rng(spec.seed)

    edges = chung_lu_edges(n, spec.num_edges, spec.power_law_exponent, rng)
    keys = np.unique(edges[:, 0] * np.int64(n) + edges[:, 1])

    features = rng.standard_normal((n, spec.dim)).astype(FEAT_DTYPE)
    present = np.ones(n, dtype=bool)
    # Hold back a small reserve of ids so vertices can arrive later.
    reserve = max(2, int(n * cfg.vertex_arrival_frac * spec.num_snapshots * 1.5))
    if reserve < n // 2:
        absent_ids = rng.choice(n, size=reserve, replace=False)
        present[absent_ids] = False
        # Drop edges touching initially-absent vertices.
        lo, hi = keys // n, keys % n
        keep = present[lo] & present[hi]
        keys = keys[keep]

    snapshots: list[CSRSnapshot] = []
    for t in range(spec.num_snapshots):
        if t > 0:
            keys, features, present = _evolve_step(
                keys, features, present, n, cfg, rng
            )
        lo, hi = keys // n, keys % n
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        indptr, indices = build_csr(n, src, dst)
        snap_features = features.copy()
        snap_features[~present] = 0.0  # canonical form: absent rows are zero
        snapshots.append(
            CSRSnapshot(
                indptr=indptr,
                indices=indices,
                features=snap_features,
                present=present.copy(),
                timestamp=t,
            )
        )
    return DynamicGraph(snapshots, name=spec.name)


def _evolve_step(
    keys: np.ndarray,
    features: np.ndarray,
    present: np.ndarray,
    n: int,
    cfg: ChurnConfig,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One churn step: vertex arrivals/departures, localized edge rewiring,
    feature resampling on part of the active set."""
    present = present.copy()
    features = features.copy()

    # --- vertex arrivals / departures -------------------------------------
    absent_ids = np.flatnonzero(~present)
    n_arrive = min(len(absent_ids), int(round(cfg.vertex_arrival_frac * n)))
    if n_arrive:
        arrivals = rng.choice(absent_ids, size=n_arrive, replace=False)
        present[arrivals] = True
        features[arrivals] = rng.standard_normal(
            (n_arrive, features.shape[1])
        ).astype(features.dtype)
    present_ids = np.flatnonzero(present)
    n_depart = min(len(present_ids) - 2, int(round(cfg.vertex_departure_frac * n)))
    departures = np.empty(0, dtype=np.int64)
    if n_depart > 0:
        # Departures avoid hubs for the same reason the active set does: a
        # departing hub would touch every neighbour's adjacency list and
        # erase the cross-snapshot overlap real traces exhibit.
        deg_now = np.bincount(np.concatenate([keys // n, keys % n]), minlength=n)
        w = (deg_now[present_ids].astype(np.float64) + 1.0) ** (-cfg.hub_avoidance)
        w /= w.sum()
        departures = rng.choice(present_ids, size=n_depart, replace=False, p=w)
        present[departures] = False
        lo, hi = keys // n, keys % n
        keys = keys[present[lo] & present[hi]]
    present_ids = np.flatnonzero(present)

    # --- active set --------------------------------------------------------
    degrees = np.bincount(
        np.concatenate([keys // n, keys % n]), minlength=n
    )
    active = _sample_active(present_ids, degrees, cfg, rng)
    # Arrivals are always active (they need edges) — unless they already
    # departed again this same step.
    if n_arrive:
        active = np.union1d(active, arrivals[present[arrivals]])

    # --- edge churn ----------------------------------------------------
    n_change = int(round(cfg.edge_change_frac * len(keys)))
    n_remove = n_change // 2
    n_add = n_change - n_remove + (10 * n_arrive if n_arrive else 0)

    if n_remove and len(keys):
        lo, hi = keys // n, keys % n
        active_mask = np.zeros(n, dtype=bool)
        active_mask[active] = True
        candidate = np.flatnonzero(active_mask[lo] | active_mask[hi])
        if len(candidate):
            drop = rng.choice(
                candidate, size=min(n_remove, len(candidate)), replace=False
            )
            keep = np.ones(len(keys), dtype=bool)
            keep[drop] = False
            keys = keys[keep]

    if n_add and len(active) >= 2:
        a = rng.choice(active, size=n_add)
        b = rng.choice(active, size=n_add)
        lo, hi = np.minimum(a, b), np.maximum(a, b)
        ok = lo != hi
        new_keys = lo[ok].astype(np.int64) * n + hi[ok].astype(np.int64)
        keys = np.unique(np.concatenate([keys, new_keys]))

    # --- feature churn ---------------------------------------------------
    n_feat = int(round(cfg.feature_change_frac * len(active)))
    if n_feat:
        churn_ids = rng.choice(active, size=n_feat, replace=False)
        features[churn_ids] += 0.5 * rng.standard_normal(
            (n_feat, features.shape[1])
        ).astype(features.dtype)

    return keys, features, present
